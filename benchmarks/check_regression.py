"""CI entry point: fail the build on hot-path perf regressions.

Runs the hotpath microbenchmarks (quick mode by default, well under the
60-second budget) and diffs them against the committed
``BENCH_hotpath.json``. Exits nonzero if any wall-clock rate regressed
past the threshold (default 25%) or any deterministic work counter
regressed past its tight tolerance.

Usage::

    python benchmarks/check_regression.py             # quick run, 25%
    python benchmarks/check_regression.py --threshold 0.10
    python benchmarks/check_regression.py --full      # full-size run
    python benchmarks/check_regression.py --update    # rewrite baseline
    python benchmarks/check_regression.py --macro     # scenario pack
    python benchmarks/check_regression.py --macro --only hot_key_skew

``--macro`` switches to the end-to-end scenario pack: it diffs a fresh
``benchmarks/bench_macro.py`` run against ``BENCH_macro.json``, where
only the absolute floor rules apply (macro reports carry no wall-clock
metrics). ``--only`` restricts the macro run to one scenario — the CI
smoke job runs the cheapest one; floors skip absent benchmarks.

The same check is available as a pytest marker::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -m perf_smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_harness import (  # noqa: E402  (path bootstrap above)
    BASELINE_PATH,
    diff_reports,
    load_report,
    write_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                        help="baseline JSON to compare against")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed wall-clock regression (default 0.25)")
    parser.add_argument("--full", action="store_true",
                        help="full-size run instead of quick mode")
    parser.add_argument("--update", action="store_true",
                        help="write the fresh run to the baseline and exit")
    parser.add_argument("--macro", action="store_true",
                        help="check the macro scenario pack instead")
    parser.add_argument("--only", default=None,
                        help="with --macro: run a single scenario")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    if args.macro:
        from bench_macro import MACRO_BASELINE_PATH, run_macro

        if args.baseline == BASELINE_PATH:  # not overridden on the CLI
            args.baseline = MACRO_BASELINE_PATH
        current = run_macro(quick=not args.full, only=args.only)
    else:
        from bench_hotpath import run_hotpath

        current = run_hotpath(quick=not args.full)
    elapsed = time.perf_counter() - start

    if args.update:
        path = write_report(current, args.baseline)
        print(f"baseline updated: {path} ({elapsed:.1f}s)")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 2

    regressions = diff_reports(current, load_report(args.baseline),
                               threshold=args.threshold)
    if regressions:
        print(f"PERF REGRESSION ({len(regressions)} metric(s), "
              f"bench took {elapsed:.1f}s):", file=sys.stderr)
        for regression in regressions:
            print(f"  {regression.describe()}", file=sys.stderr)
        return 1
    print(f"perf ok: no regression past {args.threshold:.0%} "
          f"(bench took {elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
