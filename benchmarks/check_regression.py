"""CI entry point: fail the build on hot-path perf regressions.

Runs the hotpath microbenchmarks (quick mode by default, well under the
60-second budget) and diffs them against the committed
``BENCH_hotpath.json``. Exits nonzero if any wall-clock rate regressed
past the threshold (default 25%) or any deterministic work counter
regressed past its tight tolerance.

Usage::

    python benchmarks/check_regression.py             # quick run, 25%
    python benchmarks/check_regression.py --threshold 0.10
    python benchmarks/check_regression.py --full      # full-size run
    python benchmarks/check_regression.py --update    # rewrite baseline

The same check is available as a pytest marker::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -m perf_smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_harness import (  # noqa: E402  (path bootstrap above)
    BASELINE_PATH,
    diff_reports,
    load_report,
    write_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                        help="baseline JSON to compare against")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed wall-clock regression (default 0.25)")
    parser.add_argument("--full", action="store_true",
                        help="full-size run instead of quick mode")
    parser.add_argument("--update", action="store_true",
                        help="write the fresh run to the baseline and exit")
    args = parser.parse_args(argv)

    from bench_hotpath import run_hotpath

    start = time.perf_counter()
    current = run_hotpath(quick=not args.full)
    elapsed = time.perf_counter() - start

    if args.update:
        path = write_report(current, args.baseline)
        print(f"baseline updated: {path} ({elapsed:.1f}s)")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 2

    regressions = diff_reports(current, load_report(args.baseline),
                               threshold=args.threshold)
    if regressions:
        print(f"PERF REGRESSION ({len(regressions)} metric(s), "
              f"bench took {elapsed:.1f}s):", file=sys.stderr)
        for regression in regressions:
            print(f"  {regression.describe()}", file=sys.stderr)
        return 1
    print(f"perf ok: no regression past {args.threshold:.0%} "
          f"(bench took {elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
