"""Ablation: the watermark confidence knob (paper Section 2.4).

Stylus "provides a function to estimate the event time low watermark
with a given confidence interval" — the design choice being that window
finalization latency trades off against stragglers missed. The ablation
sweeps the confidence level of the watermark-driven windowed aggregator
over a stream with heavy-tailed disorder and reports, per level:

- emission latency: how far behind the newest event the watermark sits;
- late drops: events that arrived after their window had closed.
"""

from __future__ import annotations

from repro.core.semantics import SemanticsPolicy
from repro.runtime.clock import SimClock
from repro.runtime.rng import make_rng
from repro.scribe.store import ScribeStore
from repro.scribe.reader import CategoryReader
from repro.storage.merge import CounterMergeOperator
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusTask
from repro.stylus.windowed import WindowedAggregator

from benchmarks.conftest import print_table

EVENTS = 4_000
CONFIDENCES = [0.5, 0.9, 0.99, 0.999]


def disordered_times():
    rng = make_rng(13, "wm-ablation")
    times = []
    for i in range(EVENTS):
        arrival = i * 0.25
        # Heavy-tailed lateness: mostly near-ordered, occasionally very late.
        if rng.random() < 0.02:
            lateness = rng.uniform(5.0, 25.0)
        else:
            lateness = rng.uniform(0.0, 2.0)
        times.append(max(0.0, arrival - lateness))
    return times


def run_arm(confidence: float):
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    scribe.create_category("out", 1)
    aggregator = WindowedAggregator(
        window_seconds=10.0, operator=CounterMergeOperator(),
        extract=lambda event: [("all", 1)], confidence=confidence,
    )
    task = StylusTask("win", scribe, "in", 0, aggregator,
                      semantics=SemanticsPolicy.at_least_once(),
                      checkpoint_policy=CheckpointPolicy(every_n_events=100),
                      output_category="out", clock=clock)
    for event_time in disordered_times():
        scribe.write_record("in", {"event_time": event_time})
    task.pump(EVENTS)
    task.checkpoint_now()
    rows = [m.decode() for m in CategoryReader(scribe, "out").read_all()]
    max_seen = task.state["max_seen"]
    newest_closed = (task.state["closed_before"]
                     if task.state["closed_before"] is not None else 0.0)
    emission_latency = max_seen - newest_closed
    counted = sum(row["value"] for row in rows)
    late = WindowedAggregator.late_events(task.state)
    return emission_latency, late, counted, len(rows)


def test_ablation_watermark_confidence(benchmark):
    def sweep():
        return {c: run_arm(c) for c in CONFIDENCES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [f"{c:.3f}", f"{latency:.1f}s", late, counted, windows]
        for c, (latency, late, counted, windows) in results.items()
    ]
    print_table(
        "Ablation (Section 2.4): watermark confidence vs emission latency "
        "and late drops",
        ["confidence", "emission latency", "late drops",
         "events counted in closed windows", "windows closed"],
        rows,
    )

    latencies = [results[c][0] for c in CONFIDENCES]
    lates = [results[c][1] for c in CONFIDENCES]
    # The tradeoff: higher confidence -> wait longer -> drop fewer.
    assert latencies == sorted(latencies)
    assert lates == sorted(lates, reverse=True)
    benchmark.extra_info["latency_by_confidence"] = {
        str(c): round(results[c][0], 1) for c in CONFIDENCES
    }
