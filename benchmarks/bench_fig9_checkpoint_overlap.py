"""Figure 9: Stylus (overlapped) vs Swift (buffered) ingest throughput.

The paper measured the Scuba data-ingestion processor, at-most-once
output, checkpoints every ~2 seconds: the Stylus implementation overlaps
side-effect-free work (deserialization — the bottleneck) with receiving
and with the checkpoint wait; the Swift implementation buffers raw input
between checkpoints, then processes in a burst while its CPU idled
during buffering. The paper reports 135 vs 35 MB/s — nearly 4x.

Our arms run the *same* processor under the two engine strategies over a
modeled timeline (see DESIGN.md's substitution table). Calibration,
recorded in EXPERIMENTS.md:

- both arms: deserialize 6 us + process 1.4 us of CPU per 1 KiB event;
- Stylus receive: 4 us/event; Swift receive: 12 us/event (the paper's
  Swift clients speak through system-level pipes from Python —
  Section 2.3 — which triples the per-event transport cost);
- checkpoint interval 0.2 s with 0.15 s of checkpoint synchronization
  (scaled 10:1 from the paper's ~2 s cadence to keep the run short; the
  ratio is scale-invariant).
"""

from __future__ import annotations

from repro.core.costs import CostModel
from repro.core.semantics import SemanticsPolicy
from repro.runtime.clock import SimClock
from repro.scribe.store import ScribeStore
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import Strategy, StylusTask
from repro.stylus.processor import Output, StatelessProcessor

from benchmarks.conftest import print_table

EVENTS = 60_000
EVENT_BYTES = 1024
CHECKPOINT_INTERVAL = 0.2
CHECKPOINT_SYNC = 0.15

STYLUS_COSTS = CostModel(receive_per_event=4e-6, deserialize_per_event=6e-6,
                         process_per_event=1.4e-6,
                         checkpoint_sync=CHECKPOINT_SYNC,
                         event_bytes=EVENT_BYTES)
SWIFT_COSTS = CostModel(receive_per_event=12e-6, deserialize_per_event=6e-6,
                        process_per_event=1.4e-6,
                        checkpoint_sync=CHECKPOINT_SYNC,
                        event_bytes=EVENT_BYTES)


class ScubaIngestProcessor(StatelessProcessor):
    """Deserialize-and-forward: the Scuba ingestion shape."""

    def process(self, event):
        return [Output(event.to_record())]


def run_arm(strategy: Strategy, costs: CostModel) -> tuple[float, float]:
    """Returns (throughput MB/s, cpu utilization) on the modeled timeline."""
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    payload = {"event_time": 0.0, "data": "x" * 24}
    for i in range(EVENTS):
        payload["event_time"] = float(i)
        scribe.write_record("in", payload)
    task = StylusTask("ingest", scribe, "in", 0, ScubaIngestProcessor(),
                      semantics=SemanticsPolicy.at_most_once(),
                      checkpoint_policy=CheckpointPolicy(
                          interval_seconds=CHECKPOINT_INTERVAL),
                      clock=clock, cost_model=costs, strategy=strategy)
    task.pump(EVENTS)
    task.checkpoint_now()
    elapsed = task.timeline.elapsed()
    throughput = EVENTS * costs.event_bytes / elapsed / 1e6
    return throughput, task.timeline.utilization("cpu")


def test_fig9_overlapped_vs_buffered(benchmark):
    def run_both():
        stylus = run_arm(Strategy.OVERLAPPED, STYLUS_COSTS)
        swift = run_arm(Strategy.BUFFERED, SWIFT_COSTS)
        return stylus, swift

    (stylus_mbps, stylus_util), (swift_mbps, swift_util) = \
        benchmark.pedantic(run_both, rounds=1, iterations=1)

    ratio = stylus_mbps / swift_mbps
    print_table(
        "Figure 9: Scuba-ingest throughput, overlapped vs buffered "
        "(paper: 135 vs 35 MB/s, ~3.9x)",
        ["implementation", "MB/s", "cpu utilization"],
        [
            ["Stylus (side-effect-free work between checkpoints)",
             round(stylus_mbps, 1), round(stylus_util, 2)],
            ["Swift (buffer, checkpoint, then process)",
             round(swift_mbps, 1), round(swift_util, 2)],
            ["ratio", round(ratio, 2), ""],
        ],
    )

    # Shape assertions: Stylus wins by roughly the paper's factor, and the
    # mechanism is CPU utilization during the buffering/sync dead time.
    assert 3.0 <= ratio <= 5.0
    assert stylus_util > swift_util
    benchmark.extra_info.update({
        "stylus_mbps": round(stylus_mbps, 1),
        "swift_mbps": round(swift_mbps, 1),
        "ratio": round(ratio, 2),
        "paper_stylus_mbps": 135,
        "paper_swift_mbps": 35,
    })
