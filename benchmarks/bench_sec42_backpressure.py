"""Section 4.2.2: persistent-bus decoupling vs RPC back pressure.

"If one processing node is slow (or dies), the speed of the previous
node is not affected ... In a tightly coupled system, back pressure is
propagated upstream and the peak processing throughput is determined by
the slowest node in the DAG."

Both models run the same 3-stage chain (the middle stage 5x slower) over
the same arrivals; we report per-stage throughput and the chain's
completion behaviour under a mid-run stage outage.
"""

from __future__ import annotations

from repro.baselines.rpc_engine import (
    DecoupledPipelineModel,
    RpcPipelineModel,
    StageSpec,
)

from benchmarks.conftest import print_table

EVENTS = 5_000
ARRIVAL_RATE = 20_000.0


def stages(outage=None):
    middle_outages = (outage,) if outage else ()
    return [
        StageSpec("filterer", 0.0005),
        StageSpec("joiner", 0.0025, outages=middle_outages),  # 5x slower
        StageSpec("ranker", 0.0005),
    ]


def test_sec42_backpressure(benchmark):
    def run_both():
        rpc = RpcPipelineModel(stages(), queue_capacity=10).run(
            EVENTS, ARRIVAL_RATE)
        bus = DecoupledPipelineModel(stages(), bus_delay=1.0).run(
            EVENTS, ARRIVAL_RATE)
        return rpc, bus

    rpc, bus = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for name in ["filterer", "joiner", "ranker"]:
        rows.append([
            name,
            round(rpc.stage_throughput[name]),
            round(bus.stage_throughput[name]),
        ])
    print_table(
        "Section 4.2.2: per-stage throughput (events/s) with a 5x-slow "
        "middle stage",
        ["stage", "RPC (tightly coupled)", "Scribe (decoupled)"],
        rows,
    )

    # The claims, as assertions:
    # 1. RPC: the whole chain runs at the slowest stage's rate.
    slowest_rate = 1 / 0.0025
    assert rpc.stage_throughput["filterer"] < slowest_rate * 1.2
    # 2. Decoupled: the fast stages keep their own full throughput.
    assert bus.stage_throughput["filterer"] > 3 * rpc.stage_throughput[
        "filterer"]
    # 3. But the bus pays its per-hop delivery latency.
    assert bus.final_departures[0] > rpc.final_departures[0]

    benchmark.extra_info["rpc_pipeline_throughput"] = round(
        rpc.pipeline_throughput)
    benchmark.extra_info["bus_upstream_throughput"] = round(
        bus.stage_throughput["filterer"])


def test_sec42_failure_isolation(benchmark):
    """A 2-second middle-stage outage: RPC stalls everything, the bus
    lets upstream finish and downstream catch up from the log."""

    def run_both():
        rpc = RpcPipelineModel(stages(outage=(0.05, 2.05)),
                               queue_capacity=10).run(EVENTS, ARRIVAL_RATE)
        bus = DecoupledPipelineModel(stages(outage=(0.05, 2.05)),
                                     bus_delay=1.0).run(EVENTS, ARRIVAL_RATE)
        return rpc, bus

    rpc, bus = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_table(
        "Section 4.2.2: stage finish times (s) with a 2 s joiner outage",
        ["stage", "RPC (tightly coupled)", "Scribe (decoupled)"],
        [[name, round(rpc.stage_finish[name], 2),
          round(bus.stage_finish[name], 2)]
         for name in ["filterer", "joiner", "ranker"]],
    )

    # Decoupled: the filterer is untouched by the downstream outage —
    # it finishes in its own 2.5 s of work plus one bus-delivery delay.
    assert bus.stage_finish["filterer"] < 4.0
    # RPC: the outage propagates; the filterer is held by back pressure.
    assert rpc.stage_finish["filterer"] > bus.stage_finish["filterer"]
