"""Perf-regression harness: run, persist, and diff hot-path benchmarks.

This is the trajectory-tracking side of the benchmark suite: the figure
benchmarks reproduce the paper's *plots*, while this module measures our
*implementation* — wall-clock microbenchmarks plus deterministic work
counters — and persists them to ``BENCH_hotpath.json`` at the repo root
so every future PR can be judged against the committed baseline.

Two kinds of metric, diffed with different strictness:

- ``*_per_sec`` / ``*_us`` wall-clock rates: noisy, so regressions are
  flagged only past a configurable threshold (default 25%);
- ``counters``: deterministic work counts (SSTable probes per absent
  read, modeled per-event seconds). These do not jitter with scheduler
  noise — only with algorithm changes — so they get their own tolerance.

Entry points: ``benchmarks/bench_hotpath.py`` (run + write the JSON) and
``benchmarks/check_regression.py`` (diff a fresh run against the
committed baseline; nonzero exit on regression).
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_hotpath.json"
SCHEMA_VERSION = 1

#: Work counters are compared with their own tolerance, independent of
#: the wall-clock threshold. It is loose enough to absorb bloom-filter
#: false-positive-rate differences between the quick checker run and the
#: full-size committed baseline, but still catches structural regressions
#: (e.g. absent-key probes reverting to one-scan-per-run is a >10x jump).
COUNTER_TOLERANCE = 0.5

if str(REPO_ROOT / "src") not in sys.path:  # script-mode convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))


@dataclass
class BenchResult:
    """One microbenchmark: wall time, op count, and derived metrics."""

    name: str
    wall_seconds: float
    ops: int
    metrics: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def us_per_op(self) -> float:
        return self.wall_seconds / self.ops * 1e6 if self.ops else 0.0

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "wall_seconds": round(self.wall_seconds, 6),
            "ops": self.ops,
            "ops_per_sec": round(self.ops_per_sec, 1),
            "us_per_op": round(self.us_per_op, 3),
        }
        payload.update({k: round(v, 6) for k, v in self.metrics.items()})
        if self.counters:
            payload["counters"] = {
                k: round(v, 6) for k, v in self.counters.items()
            }
        return payload


def timed(func: Callable[[], int], *, repeat: int = 3) -> tuple[float, int]:
    """Best-of-``repeat`` wall time for ``func`` (returns its op count).

    Best-of is the standard defense against scheduler noise: the minimum
    is the run with the least interference, and it is what a regression
    should be judged on.
    """
    best = float("inf")
    ops = 0
    for _ in range(repeat):
        start = time.perf_counter()
        ops = func()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, ops


def collect(results: list[BenchResult], quick: bool) -> dict[str, Any]:
    """Assemble the persistable report."""
    return {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "benchmarks": {result.name: result.as_dict() for result in results},
    }


def write_report(report: dict[str, Any], path: Path = BASELINE_PATH) -> Path:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: Path = BASELINE_PATH) -> dict[str, Any]:
    return json.loads(path.read_text())


@dataclass(frozen=True)
class Regression:
    """One metric that regressed past its tolerance."""

    benchmark: str
    metric: str
    baseline: float
    current: float
    threshold: float

    @property
    def change(self) -> float:
        if self.baseline == 0:
            return float("inf")
        return self.current / self.baseline - 1.0

    def describe(self) -> str:
        return (f"{self.benchmark}.{self.metric}: {self.baseline:g} -> "
                f"{self.current:g} ({self.change:+.1%}, "
                f"threshold {self.threshold:.0%})")


#: metric-name suffix -> direction ("higher"/"lower" is better). Metrics
#: not matching any rule are informational and never flagged.
_RATE_RULES: list[tuple[str, str]] = [
    ("ops_per_sec", "higher"),
    ("us_per_op", "lower"),
]
#: Only size-independent (per-op) counters participate in the diff —
#: totals like ``naive_scans`` scale with the run size, and the quick
#: checker run is smaller than the committed full-size baseline.
_COUNTER_RULES: list[tuple[str, str]] = [
    ("probes_per_absent_read", "lower"),
    ("modeled_seconds_per_event", "lower"),
    ("cache_hits_per_refresh", "higher"),
]
#: (benchmark, metric, floor): absolute acceptance bars checked on the
#: *current* run alone. Speedup ratios are size-dependent (a quick run's
#: ratio is legitimately smaller than the full-size baseline's), so a
#: relative diff would misfire — but dropping below the bar the feature
#: was accepted at is a regression at any size. Metrics are looked up
#: top-level first, then under ``counters``.
_FLOOR_RULES: list[tuple[str, str, float]] = [
    ("scuba_query", "columnar_speedup", 3.0),
    ("scuba_compiled", "compiled_speedup", 1.5),
    ("scuba_compiled", "plan_cache_hit_rate", 0.5),
    ("segment_pruning", "segments_pruned_per_query", 1.0),
    ("dashboard_refresh", "cached_refresh_speedup", 5.0),
    ("dashboard_refresh", "cache_hits_per_refresh", 1.0),
    ("puma_compiled", "compiled_speedup", 2.0),
    ("puma_compiled", "plan_cache_hit_rate", 0.5),
    ("delta_checkpoint", "restart_speedup", 5.0),
    ("shard_scaling", "scaling_efficiency_4x", 2.5),
    ("backpressure", "credits_blocked", 1.0),
    ("backpressure", "depth_within_bound", 1.0),
    # Macro scenarios (BENCH_macro.json, benchmarks/bench_macro.py):
    # every acceptance check green, and the headline behaviors — the
    # flash crowd sheds and triggers scaling, the hot key shows up in
    # the imbalance gauge, the join is exact, the noisy tenant is the
    # one that blocks — hold at any scale.
    ("macro_ad_click_join", "checks_passed_fraction", 1.0),
    ("macro_diurnal_flash_crowd", "checks_passed_fraction", 1.0),
    ("macro_hot_key_skew", "checks_passed_fraction", 1.0),
    ("macro_multi_tenant", "checks_passed_fraction", 1.0),
    ("macro_session_trending", "checks_passed_fraction", 1.0),
    ("macro_ad_click_join", "join_exactness", 1.0),
    ("macro_diurnal_flash_crowd", "events_shed", 1.0),
    ("macro_diurnal_flash_crowd", "scaling_actions", 2.0),
    ("macro_hot_key_skew", "shard_cost_imbalance", 1.5),
    ("macro_multi_tenant", "b_shed", 1.0),
    ("macro_session_trending", "joiner_cache_hit_rate", 0.8),
]


def _check(benchmark: str, metric: str, base: float, cur: float,
           direction: str, threshold: float) -> Regression | None:
    if base <= 0:
        # A zero baseline has no ratio; for lower-is-better counters any
        # value past the tolerance is still a regression (e.g. absent-key
        # probes going from 0 back to one-per-run).
        if direction == "lower" and cur > threshold:
            return Regression(benchmark, metric, base, cur, threshold)
        return None
    if direction == "higher":
        regressed = cur < base * (1.0 - threshold)
    else:
        regressed = cur > base * (1.0 + threshold)
    if regressed:
        return Regression(benchmark, metric, base, cur, threshold)
    return None


def diff_reports(current: dict[str, Any], baseline: dict[str, Any],
                 threshold: float = 0.25) -> list[Regression]:
    """Compare two reports; return the metrics that regressed.

    Wall-clock rates use ``threshold``; deterministic counters use
    ``COUNTER_TOLERANCE``. Benchmarks present in only one report are
    ignored (adding a benchmark must not fail the checker).
    """
    regressions: list[Regression] = []
    base_benches = baseline.get("benchmarks", {})
    for name, bench in current.get("benchmarks", {}).items():
        base = base_benches.get(name)
        if base is None:
            continue
        for suffix, direction in _RATE_RULES:
            if suffix in bench and suffix in base:
                found = _check(name, suffix, base[suffix], bench[suffix],
                               direction, threshold)
                if found:
                    regressions.append(found)
        base_counters = base.get("counters", {})
        for key, value in bench.get("counters", {}).items():
            if key not in base_counters:
                continue
            for suffix, direction in _COUNTER_RULES:
                if key == suffix:
                    found = _check(name, key, base_counters[key], value,
                                   direction, COUNTER_TOLERANCE)
                    if found:
                        regressions.append(found)
    for bench_name, metric, floor in _FLOOR_RULES:
        bench = current.get("benchmarks", {}).get(bench_name)
        if bench is None:
            continue
        value = bench.get(metric, bench.get("counters", {}).get(metric))
        if value is not None and value < floor:
            regressions.append(Regression(bench_name, metric,
                                          baseline=floor, current=value,
                                          threshold=0.0))
    return regressions
