"""Section 4.4.2: the recovery ladder of the two state-saving mechanisms.

- process crash with a local DB: replay the WAL tail (fast);
- machine failure with a local DB: restore the HDFS snapshot, then
  re-process the delta from Scribe (slowest, grows with state size);
- machine failure with a remote DB: "faster machine failover time since
  we do not need to load the complete state to the machine upon restart"
  (constant).

The bench builds the same aggregation state at several sizes and reports
each path's modeled recovery time.
"""

from __future__ import annotations

from repro.runtime.clock import SimClock
from repro.scribe.store import ScribeStore
from repro.storage.backup import BackupEngine
from repro.storage.hdfs import HdfsBlobStore
from repro.storage.merge import DictSumMergeOperator
from repro.storage.zippydb import ZippyDb
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusTask
from repro.stylus.state import LocalDbStateBackend, RemoteDbStateBackend

from repro.core.event import Event
from repro.storage.merge import MergeOperator
from repro.stylus.processor import MonoidProcessor

from benchmarks.conftest import print_table

STATE_SIZES = [1_000, 5_000, 20_000]  # events folded into the state
WAL_TAIL_EVENTS = 400  # checkpointed after the last backup, in the WAL


class WideDimensionCounter(MonoidProcessor):
    """Key universe proportional to the stream so state size grows."""

    def __init__(self, universe: int) -> None:
        self.universe = universe

    def merge_operator(self) -> MergeOperator:
        return DictSumMergeOperator()

    def extract(self, event: Event):
        seq = int(event["seq"])
        return [(f"dim{seq % self.universe}_{i}", {"count": 1})
                for i in range(3)]


def build_local(events: int):
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    hdfs = HdfsBlobStore(clock=clock)
    backend = LocalDbStateBackend(
        "agg", {}, backup_engine=BackupEngine(hdfs),
        merge_operator=DictSumMergeOperator(),
    )
    task = StylusTask("agg", scribe, "in", 0, WideDimensionCounter(events),
                      state_backend=backend,
                      checkpoint_policy=CheckpointPolicy(every_n_events=100),
                      clock=clock)
    for i in range(events):
        scribe.write_record("in", {"event_time": float(i), "seq": i})
    task.pump(events)
    task.checkpoint_now()
    backend.maybe_backup()
    # Checkpointed work after the backup lands in the local WAL only:
    # the process-crash path replays it, the machine-failure path loses
    # it (and relies on at-least-once replay from Scribe).
    for i in range(WAL_TAIL_EVENTS):
        scribe.write_record("in", {"event_time": float(events + i),
                                   "seq": events + i})
    task.pump(WAL_TAIL_EVENTS)
    task.checkpoint_now()
    return backend


def build_remote(events: int):
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    db = ZippyDb(num_shards=3, merge_operator=DictSumMergeOperator(),
                 clock=clock)
    backend = RemoteDbStateBackend("agg", db)
    task = StylusTask("agg", scribe, "in", 0, WideDimensionCounter(events),
                      state_backend=backend,
                      checkpoint_policy=CheckpointPolicy(every_n_events=100),
                      clock=clock)
    for i in range(events):
        scribe.write_record("in", {"event_time": float(i), "seq": i})
    task.pump(events)
    task.checkpoint_now()
    return backend


def test_sec44_recovery_paths(benchmark):
    def measure():
        results = []
        for events in STATE_SIZES:
            local = build_local(events)
            wal = local.recover_after_process_crash()
            hdfs = local.recover_after_machine_failure(new_disk={})
            remote = build_remote(events).recover_failover()
            results.append((events, wal.seconds, hdfs.seconds,
                            remote.seconds))
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [events, f"{wal * 1000:.1f}", f"{hdfs * 1000:.0f}",
         f"{remote * 1000:.0f}"]
        for events, wal, hdfs, remote in results
    ]
    print_table(
        "Section 4.4.2: modeled recovery time (ms) by failure and "
        "state-saving mechanism",
        ["state (events)", "local DB / process crash (WAL)",
         "local DB / machine failure (HDFS)",
         "remote DB / machine failover"],
        rows,
    )

    for events, wal, hdfs, remote in results:
        assert wal < hdfs          # same-machine restart is the fast path
        assert remote < hdfs       # the paper's remote-DB failover claim
    # Remote failover is constant; the HDFS restore grows with state.
    hdfs_times = [r[2] for r in results]
    remote_times = [r[3] for r in results]
    assert hdfs_times == sorted(hdfs_times)
    assert len(set(remote_times)) == 1
