"""Hot-path microbenchmarks: ingest, process, point reads, recovery.

Times the three loops the paper's evaluation is about — Scribe ingest
(Section 4.2.2), the Stylus per-event loop (Figure 9), and LSM point
reads (Figure 12) — plus WAL recovery replay (Figure 10), and persists
the results to ``BENCH_hotpath.json`` at the repo root.

Run directly::

    python benchmarks/bench_hotpath.py            # full run, write JSON
    python benchmarks/bench_hotpath.py --quick    # smaller sizes
    python benchmarks/bench_hotpath.py --output /tmp/bench.json

or as the perf smoke test (compares against the committed baseline)::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -m perf_smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_harness import (  # noqa: E402  (path bootstrap above)
    BASELINE_PATH,
    BenchResult,
    collect,
    diff_reports,
    load_report,
    timed,
    write_report,
)

from repro import serde  # noqa: E402
from repro.core.costs import CostModel  # noqa: E402
from repro.core.event import Event  # noqa: E402
from repro.puma.app import PumaApp  # noqa: E402
from repro.puma.compiler import PlanCache  # noqa: E402
from repro.puma.parser import parse  # noqa: E402
from repro.puma.planner import plan  # noqa: E402
from repro.runtime.clock import SimClock  # noqa: E402
from repro.runtime.cluster import Cluster  # noqa: E402
from repro.runtime.metrics import MetricsRegistry  # noqa: E402
from repro.runtime.topology import (  # noqa: E402
    ShardedTopology,
    stylus_worker_factory,
)
from repro.scribe.checkpoints import CheckpointStore  # noqa: E402
from repro.scribe.message import Message  # noqa: E402
from repro.scribe.reader import ScribeReader  # noqa: E402
from repro.scribe.store import ScribeStore  # noqa: E402
from repro.scribe.writer import ScribeWriter  # noqa: E402
from repro.storage.backup import BackupEngine  # noqa: E402
from repro.storage.hdfs import HdfsBlobStore  # noqa: E402
from repro.scuba.ingest import ScubaIngester  # noqa: E402
from repro.scuba.query import ColumnFilter, ScubaQuery  # noqa: E402
from repro.scuba.table import ScubaTable  # noqa: E402
from repro.storage.hbase import HBaseTable  # noqa: E402
from repro.storage.lsm import LsmStore  # noqa: E402
from repro.storage.merge import CounterMergeOperator  # noqa: E402
from repro.stylus.checkpointing import CheckpointPolicy  # noqa: E402
from repro.stylus.engine import StylusTask  # noqa: E402
from repro.stylus.processor import Output, StatelessProcessor  # noqa: E402
from repro.stylus.windowed import WindowedAggregator  # noqa: E402
from repro.swift.engine import SwiftApp  # noqa: E402


class _Passthrough(StatelessProcessor):
    """Minimal processor so the bench measures engine overhead."""

    def process(self, event: Event) -> list[Output]:
        return []


def _record(i: int) -> dict:
    return {"event_time": float(i), "seq": i, "user": f"user-{i % 997}",
            "action": "click", "weight": i % 13}


# -- microbenchmarks ---------------------------------------------------------


def bench_ingest(n: int) -> BenchResult:
    """Scribe write path: serialize + append via a cached writer handle."""

    def run() -> int:
        scribe = ScribeStore(clock=SimClock())
        scribe.create_category("in", num_buckets=4)
        writer = ScribeWriter(scribe, "in")
        write = writer.write
        for i in range(n):
            write(_record(i), key=str(i))
        return n

    wall, ops = timed(run)
    return BenchResult("ingest", wall, ops)


def bench_process(n: int) -> BenchResult:
    """Stylus per-event loop: read_batch + batched decode + process."""
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("in", num_buckets=1)
    writer = ScribeWriter(scribe, "in")
    for i in range(n):
        writer.write_to_bucket(_record(i), 0)

    def run() -> int:
        task = StylusTask("bench", scribe, "in", 0, _Passthrough(),
                          checkpoint_policy=CheckpointPolicy(
                              every_n_events=1000),
                          clock=SimClock())
        done = 0
        while True:
            pumped = task.pump(10_000)
            if pumped == 0:
                return done
            done += pumped

    wall, ops = timed(run)

    # Deterministic companion: the modeled (simulated-clock) cost of the
    # same loop under a fixed CostModel — catches engine-timeline
    # regressions that wall clocks are too noisy to see.
    costs = CostModel(receive_per_event=2e-6, deserialize_per_event=8e-6,
                      process_per_event=2e-6, checkpoint_sync=1e-3)
    modeled_task = StylusTask("modeled", scribe, "in", 0, _Passthrough(),
                              checkpoint_policy=CheckpointPolicy(
                                  every_n_events=1000),
                              clock=SimClock(), cost_model=costs)
    modeled = 0
    while True:
        pumped = modeled_task.pump(10_000)
        if pumped == 0:
            break
        modeled += pumped
    modeled_per_event = (modeled_task.timeline.elapsed() / modeled
                         if modeled else 0.0)
    return BenchResult("process", wall, ops, counters={
        "modeled_seconds_per_event": modeled_per_event,
    })


def bench_lsm_point_read(num_keys: int, num_reads: int) -> BenchResult:
    """LSM point reads: hit (cold/warm) and absent-key latency + scans.

    The store is built with several un-compacted runs so the bloom
    filters have work to do; the counters record how many runs an
    absent-key read actually probes versus the one-search-per-run cost
    the seed implementation paid.
    """
    store = LsmStore(name="bench", compaction_trigger=64,
                     memtable_flush_bytes=1 << 30,
                     row_cache_size=2 * num_keys)  # warm pass fits
    for i in range(num_keys):
        store.put(f"key:{i:08d}", {"seq": i, "weight": i % 13})
        if (i + 1) % (num_keys // 8) == 0:
            store.flush()
    store.flush()
    runs = store.num_sstables
    get = store.get

    def run_hits() -> int:
        for i in range(num_reads):
            get(f"key:{(i * 7919) % num_keys:08d}")
        return num_reads

    hit_cold_wall, _ = timed(run_hits, repeat=1)
    hit_warm_wall, _ = timed(run_hits)  # row cache + bloom already warm

    probes_before = store.stats.sstable_probes

    def run_absent() -> int:
        # Interleaved *inside* the stored key range so the min/max check
        # cannot reject them — the bloom filters do the work.
        for i in range(num_reads):
            get(f"key:{i:08d}x")
        return num_reads

    absent_wall, _ = timed(run_absent, repeat=1)
    absent_probes = store.stats.sstable_probes - probes_before
    naive_scans = num_reads * runs  # the seed probed every run per read
    reduction = naive_scans / max(1, absent_probes)

    wall = hit_cold_wall + hit_warm_wall + absent_wall
    ops = num_reads * 3
    stats = store.stats
    return BenchResult(
        "lsm_point_read", wall, ops,
        metrics={
            "hit_cold_us": hit_cold_wall / num_reads * 1e6,
            "hit_warm_us": hit_warm_wall / num_reads * 1e6,
            "absent_us": absent_wall / num_reads * 1e6,
        },
        counters={
            "sstable_runs": float(runs),
            "absent_reads": float(num_reads),
            "absent_probes": float(absent_probes),
            "naive_scans": float(naive_scans),
            "scan_reduction_factor": reduction,
            "probes_per_absent_read": absent_probes / num_reads,
            "cache_hit_rate": (stats.cache_hits
                               / max(1, stats.cache_hits
                                     + stats.cache_misses)),
        },
    )


def bench_recovery(n: int) -> BenchResult:
    """WAL replay after a process crash (Figure 10's fast rung)."""
    store = LsmStore(name="recover", memtable_flush_bytes=1 << 30)
    for i in range(n):
        store.put(f"key:{i:08d}", i)
    store.drop_memory()

    def run() -> int:
        return store.recover()

    wall, ops = timed(run)
    return BenchResult("recovery", wall, ops)


def bench_serde_batch(n: int) -> BenchResult:
    """Batched vs per-message deserialization (the Figure 9 bottleneck)."""
    payloads = serde.encode_batch([_record(i) for i in range(n)])

    def run_single() -> int:
        decode = serde.decode
        for payload in payloads:
            decode(payload)
        return n

    def run_batch() -> int:
        serde.decode_batch(payloads)
        return n

    single_wall, _ = timed(run_single)
    batch_wall, ops = timed(run_batch)
    return BenchResult(
        "serde_batch", batch_wall, ops,
        metrics={
            "single_us_per_op": single_wall / n * 1e6,
            "batch_speedup": single_wall / batch_wall if batch_wall else 0.0,
        },
    )


# -- batch-first dataflow: batched vs per-message, end to end ----------------


_PUMA_BENCH_SOURCE = """
CREATE APPLICATION bench;
CREATE INPUT TABLE events(event_time, page, user) FROM SCRIBE("puma_in")
TIME event_time;
CREATE TABLE by_page AS
SELECT page, count(*) AS n FROM events [1 minute];
"""


def _puma_record(i: int) -> dict:
    # Group-reuse shape of a real Puma app (clicks per page per minute):
    # a bounded page set and many events per window, so aggregation
    # cells are touched repeatedly rather than created once each.
    return {"event_time": i * 0.05, "page": f"p{i % 16}",
            "user": f"user-{i % 997}"}


def _speedup_result(name: str, single_wall: float, batch_wall: float,
                    ops: int) -> BenchResult:
    return BenchResult(name, batch_wall, ops, metrics={
        "single_us_per_op": single_wall / max(1, ops) * 1e6,
        "batched_speedup": single_wall / batch_wall if batch_wall else 0.0,
    })


def bench_puma_pump(n: int) -> BenchResult:
    """Puma end-to-end: batched decode+vectorized tables vs per-message."""
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("puma_in", num_buckets=1)
    writer = ScribeWriter(scribe, "puma_in")
    for i in range(n):
        writer.write_to_bucket(_puma_record(i), 0)
    app_plan = plan(parse(_PUMA_BENCH_SOURCE))

    def run(batched: bool):
        def go() -> int:
            app = PumaApp(app_plan, scribe, HBaseTable("bench-state"),
                          checkpoint_every_events=1000, clock=scribe.clock,
                          batched=batched)
            done = 0
            while True:
                pumped = app.pump(10_000)
                if pumped == 0:
                    return done
                done += pumped
        return timed(go)

    single_wall, _ = run(False)
    batch_wall, ops = run(True)
    return _speedup_result("puma_pump", single_wall, batch_wall, ops)


_PUMA_COMPILED_SOURCE = """
CREATE APPLICATION delta;
CREATE INPUT TABLE events(event_time, page, user, ms) FROM
SCRIBE("puma_comp_in") TIME event_time;
CREATE TABLE timings AS
SELECT page, count(*) AS n, sum(ms) AS total, avg(ms) AS mean,
       max(ms) AS worst
FROM events [1 minute];
"""


def _timing_record(i: int) -> dict:
    return {"event_time": i * 0.05, "page": f"p{i % 16}",
            "user": f"user-{i % 997}", "ms": i % 250}


def bench_puma_compiled(n: int) -> BenchResult:
    """Plan execution only: compiled ExecutablePlan vs the interpreters.

    Feeds pre-decoded rows straight into each executor's processing
    path, so serde (measured by ``serde_batch``/``puma_pump``) does not
    dilute the ratio — this is the per-row cost of the aggregation
    program itself. All three apps compile through one shared PlanCache;
    the hit/miss counters land in the report.
    """
    rows = [_timing_record(i) for i in range(n)]
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("puma_comp_in", num_buckets=1)
    app_plan = plan(parse(_PUMA_COMPILED_SOURCE))
    cache = PlanCache()

    def run(executor: str):
        def go() -> int:
            app = PumaApp(app_plan, scribe, HBaseTable("bench-compiled"),
                          checkpoint_every_events=1 << 30,
                          clock=scribe.clock, executor=executor,
                          plan_cache=cache)
            if executor == "row":
                for row in rows:
                    app._process_row(row)
            else:
                app._process_rows(rows)
            return n
        return timed(go)

    row_wall, _ = run("row")
    interpreted_wall, _ = run("batch")
    compiled_wall, ops = run("compiled")
    stats = cache.stats()
    requests = stats["hits"] + stats["misses"]
    return BenchResult(
        "puma_compiled", compiled_wall, ops,
        metrics={
            "row_us_per_op": row_wall / max(1, ops) * 1e6,
            "interpreted_us_per_op": interpreted_wall / max(1, ops) * 1e6,
            "compiled_us_per_op": compiled_wall / max(1, ops) * 1e6,
            "compiled_speedup": (interpreted_wall / compiled_wall
                                 if compiled_wall else 0.0),
            "compiled_vs_row_speedup": (row_wall / compiled_wall
                                        if compiled_wall else 0.0),
        },
        counters={
            "plan_cache_hits": stats["hits"],
            "plan_cache_misses": stats["misses"],
            "plan_cache_hit_rate": (stats["hits"] / requests
                                    if requests else 0.0),
        },
    )


def bench_delta_checkpoint(n: int, restarts: int = 50) -> BenchResult:
    """Delta-based recovery vs the seed's full state scan.

    The delta runtime keeps only unflushed deltas in memory, so
    ``_recover`` reads nothing but per-bucket offsets; the seed's
    recovery re-loaded every state row for the app from HBase. Both are
    timed over ``restarts`` recoveries against the same populated store.
    The incremental-flush economy rides along as counters: after a
    second pump touching one window, the checkpoint writes only the
    dirty cells, not the whole state.
    """
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("puma_comp_in", num_buckets=1)
    writer = ScribeWriter(scribe, "puma_comp_in")
    for i in range(n):
        writer.write_to_bucket(_timing_record(i), 0)
    hbase = HBaseTable("bench-delta")
    app = PumaApp(plan(parse(_PUMA_COMPILED_SOURCE)), scribe, hbase,
                  checkpoint_every_events=1000, clock=scribe.clock)
    while app.pump(10_000):
        pass
    app.checkpoint()
    prefix = f"{app.name}|"
    total_cells = sum(1 for _ in hbase.scan(prefix, prefix + "￿"))
    flushes_before = app._flushes_counter.value
    for i in range(64):  # a trickle touching one window
        writer.write_to_bucket(_timing_record(n + i), 0)
    while app.pump(10_000):
        pass
    app.checkpoint()
    dirty_cells = app._flushes_counter.value - flushes_before

    def delta_restart():
        def go() -> int:
            for _ in range(restarts):
                app._recover()
            return restarts
        return timed(go)

    def legacy_restart():
        # The seed's _recover body: scan the app's whole state prefix
        # and materialize every cell before processing can resume.
        def go() -> int:
            for _ in range(restarts):
                loaded = {}
                for row_key, columns in hbase.scan(prefix, prefix + "￿"):
                    _, table_name, window_text, key_json = row_key.split(
                        "|", 3)
                    loaded[(table_name, float(window_text),
                            tuple(json.loads(key_json)))] = dict(columns)
            return restarts
        return timed(go)

    legacy_wall, _ = legacy_restart()
    delta_wall, ops = delta_restart()
    return BenchResult(
        "delta_checkpoint", delta_wall, ops,
        metrics={
            "legacy_ms_per_restart": legacy_wall / max(1, ops) * 1e3,
            "delta_ms_per_restart": delta_wall / max(1, ops) * 1e3,
            "restart_speedup": (legacy_wall / delta_wall
                                if delta_wall else 0.0),
        },
        counters={
            "state_cells": float(total_cells),
            "dirty_cells_flushed": float(dirty_cells),
            "checkpoint_write_fraction": (dirty_cells / total_cells
                                          if total_cells else 0.0),
        },
    )


class _NullBatchClient:
    """Swift batch client that models a zero-cost downstream app."""

    def on_batch(self, messages: list[Message]) -> None:
        pass


def bench_swift_pump(n: int, passes: int = 4) -> BenchResult:
    """Swift delivery loop: segment batches vs one client call per message.

    The batched path is almost pure list slicing, so a single drain is
    too fast to time reliably; each measurement drains the stream
    ``passes`` times with fresh apps. The reported wall covers *both*
    paths (the stable quantity); ``batched_speedup`` carries the ratio.
    """
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("swift_in", num_buckets=1)
    writer = ScribeWriter(scribe, "swift_in")
    for i in range(n):
        writer.write_to_bucket(_record(i), 0)

    def run(use_batch_client: bool):
        def go() -> int:
            done = 0
            for _ in range(passes):
                client = _NullBatchClient() if use_batch_client else (
                    lambda message: None)
                app = SwiftApp("bench", scribe, "swift_in", 0, client,
                               CheckpointStore(),
                               checkpoint_every_messages=1000)
                while True:
                    pumped = app.pump(10_000)
                    if pumped == 0:
                        break
                    done += pumped
            return done
        return timed(go)

    single_wall, ops = run(False)
    batch_wall, _ = run(True)
    return BenchResult(
        "swift_pump", single_wall + batch_wall, 2 * ops,
        metrics={
            "single_us_per_op": single_wall / max(1, ops) * 1e6,
            "batched_us_per_op": batch_wall / max(1, ops) * 1e6,
            "batched_speedup": (single_wall / batch_wall
                                if batch_wall else 0.0),
        },
    )


def bench_scuba_ingest(n: int) -> BenchResult:
    """Scuba ingest: decode_batch + add_rows vs per-message decode + add.

    Runs on a row-tail table (``columnar=False``) so the ratio isolates
    the decode/store batching win: segment sealing is identical
    deterministic work on both arms (~2us/row amortized) and is paid —
    and recouped — in ``bench_scuba_query``/``bench_dashboard_refresh``.
    """
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("scuba_in", num_buckets=1)
    writer = ScribeWriter(scribe, "scuba_in")
    for i in range(n):
        writer.write_to_bucket(_record(i), 0)

    def run(batched: bool):
        def go() -> int:
            ingester = ScubaIngester(scribe, "scuba_in",
                                     ScubaTable("bench", columnar=False),
                                     metrics=MetricsRegistry(),
                                     batched=batched)
            done = 0
            while True:
                pumped = ingester.pump(10_000)
                if pumped == 0 and ingester.lag_messages() == 0:
                    return done
                done += pumped
        return timed(go)

    single_wall, _ = run(False)
    batch_wall, ops = run(True)
    return _speedup_result("scuba_ingest", single_wall, batch_wall, ops)


def bench_windowed_agg(n: int) -> BenchResult:
    """Stylus windowed aggregation: process_batch chunks vs per-event."""
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("win_in", num_buckets=1)
    writer = ScribeWriter(scribe, "win_in")
    for i in range(n):
        writer.write_to_bucket(_record(i), 0)

    def run(force_per_message: bool):
        def go() -> int:
            processor = WindowedAggregator(
                window_seconds=60.0, operator=CounterMergeOperator(),
                extract=lambda event: [(event["user"], 1)],
                sample_size=256)
            task = StylusTask("bench", scribe, "win_in", 0, processor,
                              checkpoint_policy=CheckpointPolicy(
                                  every_n_events=1000),
                              clock=SimClock())
            task._force_per_message = force_per_message
            done = 0
            while True:
                pumped = task.pump(10_000)
                if pumped == 0:
                    return done
                done += pumped
        return timed(go)

    single_wall, _ = run(True)
    batch_wall, ops = run(False)
    return _speedup_result("windowed_agg", single_wall, batch_wall, ops)


def _scuba_row(i: int) -> dict:
    return {"event_time": float(i), "page": f"p{i % 16}",
            "status": 500 if i % 11 == 0 else 200, "ms": float(i % 37) * 0.5}


def _scuba_tables(n: int) -> tuple[ScubaTable, ScubaTable]:
    """The same n rows in a row-tail table and a sealed columnar table."""
    row_table = ScubaTable("bench", columnar=False)
    col_table = ScubaTable("bench", columnar=True)
    for i in range(n):
        row_table.add(_scuba_row(i))
        col_table.add(_scuba_row(i))
    col_table.seal_tail()
    return row_table, col_table


def bench_scuba_query(n: int) -> BenchResult:
    """Vectorized slice-and-dice vs the paper-faithful row scan.

    Each iteration runs a filtered grouped count and a grouped avg over
    the full range. The columnar arm clears the query cache every
    iteration so this measures pure vectorized execution; the cache's own
    win is ``bench_dashboard_refresh``.
    """
    row_table, col_table = _scuba_tables(n)
    queries = [
        dict(group_by=("page",),
             filters=(ColumnFilter("status", "==", 200),)),
        dict(aggregation="avg", value_column="ms", group_by=("page",)),
    ]

    def make_run(table: ScubaTable, engine: str):
        def go() -> int:
            table.query_cache.clear()
            for spec in queries:
                ScubaQuery(table, 0.0, float(n), engine=engine,
                           limit=100, **spec).run()
            return len(queries)
        return go

    # Sanity: both engines agree before we time anything.
    for spec in queries:
        assert ScubaQuery(row_table, 0.0, float(n), engine="rows",
                          limit=100, **spec).run() == \
            ScubaQuery(col_table, 0.0, float(n), engine="columnar",
                       limit=100, **spec).run()

    rows_wall, _ = timed(make_run(row_table, "rows"))
    col_wall, ops = timed(make_run(col_table, "columnar"))
    return BenchResult(
        "scuba_query", rows_wall + col_wall, 2 * ops,
        metrics={
            "rows_ms_per_query": rows_wall / len(queries) * 1e3,
            "columnar_ms_per_query": col_wall / len(queries) * 1e3,
            "columnar_speedup": rows_wall / col_wall if col_wall else 0.0,
        },
    )


def bench_dashboard_refresh(n: int, refreshes: int = 10) -> BenchResult:
    """Repeated ``shifted()`` dashboard refreshes: cache vs full rescan.

    The window covers ten segments and slides by one segment per
    refresh, so consecutive windows overlap 90% — the Section 5.2
    dashboard pattern. The columnar arm serves the overlap from cached
    per-segment partials and only scans the freshly exposed edge. The
    geometry (segments per window, refreshes) is fixed relative to ``n``
    so ``cache_hits_per_refresh`` is size-independent and the quick
    checker run can diff it against the full-size baseline.
    """
    segment_rows = max(1, n // 20)
    row_table = ScubaTable("bench", columnar=False)
    col_table = ScubaTable("bench", columnar=True, segment_rows=segment_rows)
    for i in range(n):
        row_table.add(_scuba_row(i))
        col_table.add(_scuba_row(i))
    col_table.seal_tail()
    window = n * 0.5
    step = float(segment_rows)
    base = dict(aggregation="avg", value_column="ms", group_by=("page",),
                limit=100)

    def make_run(table: ScubaTable, engine: str, metrics: MetricsRegistry):
        def go() -> int:
            table.query_cache.clear()
            query = ScubaQuery(table, 0.0, window, engine=engine,
                               metrics=metrics, **base)
            for k in range(refreshes):
                query.shifted(k * step).run()
            return refreshes
        return go

    rows_wall, _ = timed(make_run(row_table, "rows", MetricsRegistry()))
    col_metrics = MetricsRegistry()
    col_wall, ops = timed(make_run(col_table, "columnar", col_metrics))
    hits = col_metrics.counter("scuba.bench.cache.hits").value
    assert hits > 0, "dashboard refreshes never hit the query cache"
    # timed() ran go() three times; normalize hits to one measured pass.
    hits_per_refresh = hits / (3 * refreshes)
    return BenchResult(
        "dashboard_refresh", rows_wall + col_wall, 2 * ops,
        metrics={
            "rows_ms_per_refresh": rows_wall / refreshes * 1e3,
            "cached_ms_per_refresh": col_wall / refreshes * 1e3,
            "cached_refresh_speedup": (rows_wall / col_wall
                                       if col_wall else 0.0),
        },
        counters={"cache_hits_per_refresh": hits_per_refresh},
    )


def bench_scuba_compiled(n: int) -> BenchResult:
    """Fused compiled plans vs the interpreted columnar engine.

    Both arms run the same filter-heavy query mix over the same sealed
    table with ``use_cache=False``, so every query re-executes its
    per-segment program — the ratio isolates fused execution (inline
    float comparators, dictionary-domain filters, ``compress``
    selection) from the partial-cache win measured by
    ``bench_dashboard_refresh``. The plan cache stays on: lowering a
    shape once and reusing the plan is part of the feature, and its
    hit rate over the whole bench lands in the counters.
    """
    table = ScubaTable("bench", columnar=True)
    for i in range(n):
        table.add(_scuba_row(i))
    table.seal_tail()
    queries = [
        dict(aggregation="avg", value_column="ms", group_by=("page",),
             filters=(ColumnFilter("ms", ">", 9.0),)),
        dict(group_by=("page",),
             filters=(ColumnFilter("ms", ">", 12.0),)),
        dict(group_by=("page", "status"),
             filters=(ColumnFilter("status", "==", 200),
                      ColumnFilter("ms", ">=", 10.0))),
        dict(group_by=("page",),
             filters=(ColumnFilter("status", "==", 200),)),
    ]

    def make_run(engine: str):
        def go() -> int:
            for spec in queries:
                ScubaQuery(table, 0.0, float(n), engine=engine,
                           use_cache=False, limit=100, **spec).run()
            return len(queries)
        return go

    # Sanity: both engines agree (state-identical kernels) before timing.
    for spec in queries:
        assert ScubaQuery(table, 0.0, float(n), engine="columnar",
                          use_cache=False, limit=100, **spec).run() == \
            ScubaQuery(table, 0.0, float(n), engine="compiled",
                       use_cache=False, limit=100, **spec).run()

    interpreted_wall, _ = timed(make_run("columnar"))
    compiled_wall, ops = timed(make_run("compiled"))
    stats = table.query_cache.plans.stats()
    requests = stats["hits"] + stats["misses"]
    return BenchResult(
        "scuba_compiled", compiled_wall, ops,
        metrics={
            "interpreted_ms_per_query": (interpreted_wall
                                         / len(queries) * 1e3),
            "compiled_ms_per_query": compiled_wall / len(queries) * 1e3,
            "compiled_speedup": (interpreted_wall / compiled_wall
                                 if compiled_wall else 0.0),
        },
        counters={
            "plan_cache_hits": float(stats["hits"]),
            "plan_cache_misses": float(stats["misses"]),
            "plan_cache_hit_rate": (stats["hits"] / requests
                                    if requests else 0.0),
        },
    )


def bench_segment_pruning(n: int) -> BenchResult:
    """Zone-map pruning on a time-correlated column.

    Scuba segments are time-ordered and the ``value`` column here grows
    with time, so each sealed segment's min/max zone covers a narrow
    slice of the range — the layout the paper's time-partitioned tables
    have for any metric correlated with time. A filter selecting only
    the newest segment's values lets the compiled plan refute the other
    23 segments from their zones without touching a row; the
    interpreted arm scans everything. The segment count is fixed
    relative to ``n`` so ``segments_pruned_per_query`` is
    size-independent and the quick checker run can compare it against
    the full-size baseline.
    """
    segments = 24
    segment_rows = max(1, n // segments)
    table = ScubaTable("bench", columnar=True, segment_rows=segment_rows)
    for i in range(n):
        table.add({"event_time": float(i), "value": float(i),
                   "page": f"p{i % 3}"})
    table.seal_tail()
    # Passes only in the last segment: prunes the other 23 entirely.
    spec = dict(group_by=("page",),
                filters=(ColumnFilter("value", ">",
                                      float(n - segment_rows) + 0.5),))

    def make_run(engine: str, metrics: MetricsRegistry):
        def go() -> int:
            ScubaQuery(table, 0.0, float(n), engine=engine,
                       use_cache=False, limit=100, metrics=metrics,
                       **spec).run()
            return 1
        return go

    probe = MetricsRegistry()
    expected = ScubaQuery(table, 0.0, float(n), engine="columnar",
                          use_cache=False, limit=100, **spec).run()
    assert make_run("compiled", probe)() == 1
    snapshot = probe.snapshot()
    pruned = snapshot.get("scuba.bench.segments_pruned", 0.0)
    rows_pruned = snapshot.get("scuba.bench.rows_pruned", 0.0)
    assert ScubaQuery(table, 0.0, float(n), engine="compiled",
                      use_cache=False, limit=100, **spec).run() == expected

    scan_wall, _ = timed(make_run("columnar", MetricsRegistry()))
    pruned_wall, ops = timed(make_run("compiled", MetricsRegistry()))
    return BenchResult(
        "segment_pruning", pruned_wall, ops,
        metrics={
            "scan_ms_per_query": scan_wall * 1e3,
            "pruned_ms_per_query": pruned_wall * 1e3,
            "pruned_speedup": (scan_wall / pruned_wall
                               if pruned_wall else 0.0),
        },
        counters={
            "segments_total": float(segments),
            "segments_pruned_per_query": float(pruned),
            "rows_pruned_fraction": rows_pruned / n if n else 0.0,
        },
    )


def bench_compaction(num_keys: int, num_runs: int) -> BenchResult:
    """Compaction pauses: one full-store merge vs bounded incremental steps.

    The deterministic counters are the point: ``max_step_entries`` (the
    most entries any single ``compact_step`` call merged) stays a bounded
    fraction of the store, while the legacy ``compact()`` rewrites
    everything in one stop-the-world call. The wall metrics record the
    worst pause a writer would actually see on each path.
    """
    per_run = max(1, num_keys // num_runs)
    total_entries = per_run * num_runs

    def fill_run(store: LsmStore, run: int) -> None:
        base = run * per_run
        for i in range(per_run):
            store.put(f"key:{base + i:08d}", i % 13)

    # Legacy path: accumulate every run, then one full-store merge.
    full = LsmStore(name="bench-full", compaction_trigger=10_000,
                    memtable_flush_bytes=1 << 30, row_cache_size=0)
    for run in range(num_runs):
        fill_run(full, run)
        full.flush()
    start = time.perf_counter()
    full.compact()
    full_wall = time.perf_counter() - start

    # Incremental path: flushes fold in bounded steps; drain the rest
    # the way Scheduler.every would, one step per tick.
    stepped = LsmStore(name="bench-step", compaction_trigger=4,
                       max_compact_runs=4, memtable_flush_bytes=1 << 30,
                       row_cache_size=0)
    max_pause = 0.0
    stepping_wall = 0.0
    for run in range(num_runs):
        fill_run(stepped, run)
        start = time.perf_counter()
        stepped.flush()  # may fold one bounded compaction step in
        elapsed = time.perf_counter() - start
        max_pause = max(max_pause, elapsed)
        stepping_wall += elapsed
    while True:
        start = time.perf_counter()
        merged = stepped.compact_step()
        elapsed = time.perf_counter() - start
        if merged == 0:
            break
        max_pause = max(max_pause, elapsed)
        stepping_wall += elapsed

    stats = stepped.stats
    return BenchResult(
        "compaction", stepping_wall, stats.compacted_entries,
        metrics={
            "full_compact_ms": full_wall * 1e3,
            "max_incremental_pause_ms": max_pause * 1e3,
            "pause_reduction": full_wall / max_pause if max_pause else 0.0,
        },
        counters={
            "total_entries": float(total_entries),
            "compact_steps": float(stats.compact_steps),
            "max_step_entries": float(stats.max_step_entries),
            "max_step_fraction": stats.max_step_entries / total_entries,
        },
    )


def bench_shard_scaling(n: int) -> BenchResult:
    """Throughput scaling at 1/2/4/8 shards on the modeled timeline.

    The same pre-written input is drained by topologies of increasing
    shard counts; each shard's work is charged to its own process
    timeline, so the makespan is the busiest shard and the efficiency
    ratios are deterministic (consistent hashing's residual skew is the
    only thing between the measured ratio and the ideal N). Input is
    written through ``write_batch(keys=...)``, the vectorized
    ``shards_for_keys`` path.
    """
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("sharded", num_buckets=64)
    writer = ScribeWriter(scribe, "sharded")
    batch = 1000
    for start in range(0, n, batch):
        records = [_record(i) for i in range(start, min(start + batch, n))]
        writer.write_batch(records,
                           keys=[str(r["seq"]) for r in records])

    cost = CostModel()
    elapsed: dict[int, float] = {}

    def build(num_shards: int) -> ShardedTopology:
        cluster = Cluster()
        for i in range(8):
            cluster.add_machine(f"m{i}")
        factory = stylus_worker_factory(
            scribe, "sharded", _Passthrough,
            BackupEngine(HdfsBlobStore(clock=clock)),
            state_prefix=f"scale{num_shards}",
            checkpoint_policy=CheckpointPolicy(every_n_events=1 << 30),
            clock=clock)
        return ShardedTopology(
            f"scaling{num_shards}", cluster, scribe, "sharded",
            num_shards, factory, cost_model=cost, ring_replicas=128)

    # Time the drain alone (the hot path); topology construction is a
    # fixed cost that would otherwise dominate the quick-size run and
    # make us_per_op incomparable with the full-size baseline.
    total_wall = 0.0
    ops = 0
    for num_shards in (1, 2, 4, 8):
        best = float("inf")
        done = 0
        for _ in range(3):
            topology = build(num_shards)
            start = time.perf_counter()
            done = topology.drain()
            best = min(best, time.perf_counter() - start)
        elapsed[num_shards] = topology.modeled_elapsed()
        total_wall += best
        ops += done
    base = elapsed[1]
    return BenchResult(
        "shard_scaling", total_wall, ops,
        metrics={
            "scaling_efficiency_2x": base / elapsed[2],
            "scaling_efficiency_4x": base / elapsed[4],
            "scaling_efficiency_8x": base / elapsed[8],
        },
        counters={f"modeled_seconds_{c}shard": elapsed[c]
                  for c in (1, 2, 4, 8)},
    )


def bench_backpressure(n: int) -> BenchResult:
    """A 10x-faster producer against a credit-gated bucket.

    The producer attempts ten writes per consumer read; without flow
    control the bucket would grow toward 9n. With the credit gate the
    depth is capped at the credit limit: ``max_depth`` and the
    ``depth_within_bound`` flag are the acceptance counters, and
    ``credits_blocked`` proves the gate actually engaged.
    """
    limit = 64
    stats = {"max_depth": 0, "blocked": 0.0}

    def run() -> int:
        scribe = ScribeStore(clock=SimClock())
        scribe.create_category("bp", num_buckets=1)
        scribe.enable_backpressure("bp", max_outstanding=limit)
        writer = ScribeWriter(scribe, "bp")
        reader = ScribeReader(scribe, "bp", 0)
        end_offset = scribe.end_offset
        consumed = 0
        attempts = 0
        max_depth = 0
        while consumed < n:
            for _ in range(10):
                writer.try_write(_record(attempts))
                attempts += 1
            consumed += len(reader.read_batch(1))
            depth = end_offset("bp", 0) - reader.position
            if depth > max_depth:
                max_depth = depth
        stats["max_depth"] = max_depth
        stats["blocked"] = scribe.metrics.snapshot()[
            "scribe.credits.blocked"]
        return consumed

    wall, ops = timed(run)
    return BenchResult(
        "backpressure", wall, ops,
        metrics={"blocked_writes_per_event": stats["blocked"] / n},
        counters={
            "credits_blocked": stats["blocked"],
            "max_depth": float(stats["max_depth"]),
            "credit_limit": float(limit),
            "depth_within_bound":
                1.0 if stats["max_depth"] <= limit else 0.0,
        },
    )


# -- driver ------------------------------------------------------------------


def run_hotpath(quick: bool = False) -> dict:
    """Run every microbenchmark; return the persistable report."""
    scale = 4 if quick else 1
    results = [
        bench_ingest(20_000 // scale),
        bench_process(20_000 // scale),
        bench_lsm_point_read(8_000 // scale, 4_000 // scale),
        bench_recovery(20_000 // scale),
        bench_serde_batch(20_000 // scale),
        bench_puma_pump(12_000 // scale),
        bench_puma_compiled(12_000 // scale),
        bench_delta_checkpoint(24_000 // scale),
        bench_swift_pump(20_000 // scale),
        bench_scuba_ingest(20_000 // scale),
        bench_scuba_query(40_000 // scale),
        bench_scuba_compiled(40_000 // scale),
        bench_segment_pruning(24_000 // scale),
        bench_dashboard_refresh(40_000 // scale),
        bench_windowed_agg(12_000 // scale),
        bench_compaction(16_000 // scale, 32),
        bench_shard_scaling(8_000 // scale),
        bench_backpressure(6_000 // scale),
    ]
    return collect(results, quick)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes (finishes in a few seconds)")
    parser.add_argument("--output", type=Path, default=BASELINE_PATH,
                        help=f"where to write the JSON (default "
                             f"{BASELINE_PATH})")
    args = parser.parse_args(argv)
    start = time.perf_counter()
    report = run_hotpath(quick=args.quick)
    elapsed = time.perf_counter() - start
    path = write_report(report, args.output)
    print(f"wrote {path} in {elapsed:.1f}s")
    for name, bench in sorted(report["benchmarks"].items()):
        print(f"  {name:16s} {bench['ops_per_sec']:>12,.0f} ops/s  "
              f"{bench['us_per_op']:>8.2f} us/op")
    counters = report["benchmarks"]["lsm_point_read"]["counters"]
    print(f"  absent-key scan reduction: "
          f"{counters['scan_reduction_factor']:.1f}x "
          f"({counters['naive_scans']:.0f} naive scans -> "
          f"{counters['absent_probes']:.0f} probes)")
    for name in ("puma_pump", "swift_pump", "scuba_ingest", "windowed_agg"):
        speedup = report["benchmarks"][name]["batched_speedup"]
        print(f"  {name} batched speedup: {speedup:.2f}x")
    compiled = report["benchmarks"]["puma_compiled"]
    print(f"  puma compiled plan: {compiled['compiled_speedup']:.2f}x vs "
          f"interpreted batch ({compiled['interpreted_us_per_op']:.2f} -> "
          f"{compiled['compiled_us_per_op']:.2f} us/row, "
          f"{compiled['counters']['plan_cache_hit_rate']:.0%} plan-cache "
          f"hit rate)")
    delta = report["benchmarks"]["delta_checkpoint"]
    print(f"  delta recovery: {delta['restart_speedup']:.1f}x vs full "
          f"state scan ({delta['legacy_ms_per_restart']:.2f}ms -> "
          f"{delta['delta_ms_per_restart']:.2f}ms per restart; "
          f"incremental checkpoint rewrote "
          f"{delta['counters']['checkpoint_write_fraction']:.0%} of "
          f"{delta['counters']['state_cells']:.0f} cells)")
    scuba = report["benchmarks"]["scuba_query"]
    print(f"  scuba columnar speedup: {scuba['columnar_speedup']:.2f}x "
          f"({scuba['rows_ms_per_query']:.1f}ms -> "
          f"{scuba['columnar_ms_per_query']:.1f}ms per query)")
    scuba_compiled = report["benchmarks"]["scuba_compiled"]
    print(f"  scuba compiled plan: "
          f"{scuba_compiled['compiled_speedup']:.2f}x vs interpreted "
          f"columnar ({scuba_compiled['interpreted_ms_per_query']:.2f} -> "
          f"{scuba_compiled['compiled_ms_per_query']:.2f} ms/query, "
          f"{scuba_compiled['counters']['plan_cache_hit_rate']:.0%} "
          f"plan-cache hit rate)")
    pruning = report["benchmarks"]["segment_pruning"]
    print(f"  zone-map pruning: "
          f"{pruning['counters']['segments_pruned_per_query']:.0f}/"
          f"{pruning['counters']['segments_total']:.0f} segments pruned, "
          f"{pruning['pruned_speedup']:.1f}x "
          f"({pruning['scan_ms_per_query']:.1f}ms -> "
          f"{pruning['pruned_ms_per_query']:.1f}ms per query)")
    dash = report["benchmarks"]["dashboard_refresh"]
    print(f"  dashboard cached refresh: "
          f"{dash['cached_refresh_speedup']:.2f}x "
          f"({dash['rows_ms_per_refresh']:.1f}ms -> "
          f"{dash['cached_ms_per_refresh']:.1f}ms per refresh, "
          f"{dash['counters']['cache_hits_per_refresh']:.1f} cache "
          f"hits/refresh)")
    compaction = report["benchmarks"]["compaction"]
    print(f"  compaction: full merge {compaction['full_compact_ms']:.1f}ms "
          f"vs worst incremental pause "
          f"{compaction['max_incremental_pause_ms']:.1f}ms "
          f"(max step touches "
          f"{compaction['counters']['max_step_fraction']:.0%} of the store)")
    scaling = report["benchmarks"]["shard_scaling"]
    print(f"  shard scaling: "
          f"{scaling['scaling_efficiency_2x']:.2f}x / "
          f"{scaling['scaling_efficiency_4x']:.2f}x / "
          f"{scaling['scaling_efficiency_8x']:.2f}x modeled throughput "
          f"at 2/4/8 shards")
    bp = report["benchmarks"]["backpressure"]
    print(f"  backpressure: 10x producer capped at depth "
          f"{bp['counters']['max_depth']:.0f} (limit "
          f"{bp['counters']['credit_limit']:.0f}, "
          f"{bp['counters']['credits_blocked']:.0f} writes blocked)")
    return 0


# -- perf smoke test (opt-in: pytest -m perf_smoke on this file) -------------

try:
    import pytest
except ImportError:  # script mode without pytest installed
    pytest = None

if pytest is not None:

    @pytest.mark.perf_smoke
    def test_hotpath_no_regression_vs_baseline():
        """Quick bench vs. the committed baseline; >25% rate drop fails.

        A flagged regression must survive a second run: transient load
        spikes flag random benchmarks, real regressions flag the same
        ones both times.
        """
        if not BASELINE_PATH.exists():
            pytest.skip("no committed BENCH_hotpath.json baseline")
        baseline = load_report()
        regressions = diff_reports(run_hotpath(quick=True), baseline,
                                   threshold=0.25)
        if regressions:
            repeated = {r.describe() for r in diff_reports(
                run_hotpath(quick=True), baseline, threshold=0.25)}
            regressions = [r for r in regressions
                           if r.describe() in repeated]
        assert not regressions, "\n".join(r.describe() for r in regressions)

    @pytest.mark.perf_smoke
    def test_absent_key_reads_skip_sstable_scans():
        """The acceptance bar: >= 5x fewer scans than the seed's."""
        result = bench_lsm_point_read(2_000, 1_000)
        assert result.counters["scan_reduction_factor"] >= 5.0

    @pytest.mark.perf_smoke
    def test_batched_dataflow_beats_per_message():
        """The acceptance bar: >= 2x events/sec on each batched path."""
        benches = {
            "puma_pump": lambda: bench_puma_pump(12_000),
            "swift_pump": lambda: bench_swift_pump(20_000),
            "scuba_ingest": lambda: bench_scuba_ingest(20_000),
            "windowed_agg": lambda: bench_windowed_agg(12_000),
        }
        slow = {}
        for name, bench in benches.items():
            # Wall-clock ratios under pytest wobble with machine load;
            # one retry absorbs the noise without softening the 2x bar.
            speedup = bench().metrics["batched_speedup"]
            if speedup < 2.0:
                speedup = max(speedup, bench().metrics["batched_speedup"])
            if speedup < 2.0:
                slow[name] = round(speedup, 2)
        assert not slow, f"batched paths under 2x: {slow}"

    @pytest.mark.perf_smoke
    def test_compiled_plan_beats_interpreted_batch():
        """The acceptance bar: compiled execution >= 2x the interpreted
        batch path, with the plan cache actually being exercised."""
        result = bench_puma_compiled(12_000)
        assert result.counters["plan_cache_hits"] > 0
        assert result.counters["plan_cache_misses"] == 1
        assert result.counters["plan_cache_hit_rate"] > 0.5
        speedup = result.metrics["compiled_speedup"]
        if speedup < 2.0:  # one retry absorbs machine-load noise
            speedup = max(speedup,
                          bench_puma_compiled(12_000).metrics[
                              "compiled_speedup"])
        assert speedup >= 2.0, f"compiled speedup only {speedup:.2f}x"

    @pytest.mark.perf_smoke
    def test_delta_recovery_beats_full_state_scan():
        """The acceptance bar: offset-only recovery >= 5x the seed's
        full state reload, and checkpoints only rewrite dirty cells."""
        result = bench_delta_checkpoint(24_000)
        assert result.counters["checkpoint_write_fraction"] < 0.5
        speedup = result.metrics["restart_speedup"]
        if speedup < 5.0:  # one retry absorbs machine-load noise
            speedup = max(speedup,
                          bench_delta_checkpoint(24_000).metrics[
                              "restart_speedup"])
        assert speedup >= 5.0, f"delta recovery speedup only {speedup:.2f}x"

    @pytest.mark.perf_smoke
    def test_columnar_scuba_beats_row_scan():
        """The acceptance bar: >= 3x on grouped slice-and-dice queries."""
        speedup = bench_scuba_query(40_000).metrics["columnar_speedup"]
        if speedup < 3.0:  # one retry absorbs machine-load noise
            speedup = max(speedup,
                          bench_scuba_query(40_000).metrics[
                              "columnar_speedup"])
        assert speedup >= 3.0, f"columnar speedup only {speedup:.2f}x"

    @pytest.mark.perf_smoke
    def test_compiled_scuba_beats_interpreted_columnar():
        """The acceptance bar: fused compiled plans >= 1.5x interpreted
        columnar on the filter-heavy mix, with the plan cache warm."""
        result = bench_scuba_compiled(40_000)
        assert result.counters["plan_cache_hit_rate"] >= 0.5
        speedup = result.metrics["compiled_speedup"]
        if speedup < 1.5:  # one retry absorbs machine-load noise
            speedup = max(speedup,
                          bench_scuba_compiled(40_000).metrics[
                              "compiled_speedup"])
        assert speedup >= 1.5, f"compiled scuba speedup only {speedup:.2f}x"

    @pytest.mark.perf_smoke
    def test_zone_maps_prune_segments():
        """The acceptance bar: the selective query must skip whole
        segments from zone maps alone, and win wall-clock doing it."""
        result = bench_segment_pruning(24_000)
        assert result.counters["segments_pruned_per_query"] >= 1.0
        speedup = result.metrics["pruned_speedup"]
        if speedup < 2.0:  # one retry absorbs machine-load noise
            speedup = max(speedup,
                          bench_segment_pruning(24_000).metrics[
                              "pruned_speedup"])
        assert speedup >= 2.0, f"pruned speedup only {speedup:.2f}x"

    @pytest.mark.perf_smoke
    def test_dashboard_refresh_cache_beats_rescan():
        """The acceptance bar: >= 5x on repeated shifted() refreshes."""
        result = bench_dashboard_refresh(40_000)
        assert result.counters["cache_hits_per_refresh"] > 0
        speedup = result.metrics["cached_refresh_speedup"]
        if speedup < 5.0:  # one retry absorbs machine-load noise
            speedup = max(speedup,
                          bench_dashboard_refresh(40_000).metrics[
                              "cached_refresh_speedup"])
        assert speedup >= 5.0, f"cached refresh speedup only {speedup:.2f}x"

    @pytest.mark.perf_smoke
    def test_compaction_steps_stay_bounded():
        """No single compaction call may rewrite the whole store."""
        result = bench_compaction(8_000, 32)
        assert result.counters["compact_steps"] > 0
        assert result.counters["max_step_fraction"] <= 0.5

    @pytest.mark.perf_smoke
    def test_shard_scaling_efficiency():
        """The acceptance bar: >= 2.5x modeled throughput at 4 shards.

        The ratio is measured on the simulated timeline, so it is
        deterministic — no retry needed."""
        result = bench_shard_scaling(4_000)
        assert result.metrics["scaling_efficiency_4x"] >= 2.5

    @pytest.mark.perf_smoke
    def test_backpressure_caps_bucket_depth():
        """A 10x-faster producer must block, and the bucket depth must
        never exceed the credit limit."""
        result = bench_backpressure(3_000)
        assert result.counters["credits_blocked"] > 0
        assert result.counters["depth_within_bound"] == 1.0


if __name__ == "__main__":
    raise SystemExit(main())
