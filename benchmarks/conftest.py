"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation and prints the same rows/series the paper reports (run with
``pytest benchmarks/ --benchmark-only -s`` to see them). Reproduced
numbers also land in each benchmark's ``extra_info`` so they appear in
``--benchmark-json`` output. EXPERIMENTS.md records paper-vs-measured.

Lint contract: ``benchmarks/`` is exempt from reprolint's R001
(no-wall-clock) because measuring real elapsed time is this harness's
job — ``time.perf_counter`` is fine here. Every other rule still
applies; in particular workload randomness must flow through
``repro.runtime.rng.make_rng`` (R002) so a benchmark's input stream is
identical run-to-run and only the measured time varies.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str],
                rows: list[list[object]]) -> None:
    """Render an aligned text table to stdout."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in text_rows))
        if text_rows else len(header)
        for i, header in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in text_rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
