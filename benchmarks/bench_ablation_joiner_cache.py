"""Ablation: Joiner cache size x input sharding (paper Section 3).

"Since each Joiner process receives sharded input, it is more likely to
have the dimension information it needs in a cache, which reduces
network calls to the external service." The ablation runs the same
Joiner over the same events twice — once with input sharded by dim_id
(each instance sees 1/8 of the dimension space) and once unsharded — at
several cache sizes, and reports hit rates and Laser lookups saved.
"""

from __future__ import annotations

from repro.apps.trending import ClassifierService, JoinerProcessor
from repro.core.event import Event
from repro.laser.service import LaserTable
from repro.runtime.clock import SimClock
from repro.workloads.events import TrendingEventsWorkload

from benchmarks.conftest import print_table

EVENTS = 4_000
NUM_DIMENSIONS = 256
SHARDS = 8
CACHE_SIZES = [8, 32, 128]


def build_events():
    workload = TrendingEventsWorkload(num_dimensions=NUM_DIMENSIONS,
                                      rate_per_second=100.0)
    dims = LaserTable("dims", ["dim_id"], ["language", "country"],
                      clock=SimClock())
    for row in workload.dimension_rows():
        dims.put_row(row)
    events = [Event.from_record(r) for r in workload.generate(EVENTS / 100.0)]
    return dims, events


def run_arm(dims, events, cache_size: int, sharded: bool) -> float:
    """Hit rate of one Joiner instance (shard 0 of 8 when sharded)."""
    joiner = JoinerProcessor(dims, ClassifierService(),
                             cache_capacity=cache_size)
    for event in events:
        dim_index = int(str(event["dim_id"])[3:])
        if sharded and dim_index % SHARDS != 0:
            continue
        joiner.process(event)
    return joiner.cache_hit_rate()


def test_ablation_joiner_cache(benchmark):
    dims, events = build_events()

    def sweep():
        return {
            size: (run_arm(dims, events, size, sharded=True),
                   run_arm(dims, events, size, sharded=False))
            for size in CACHE_SIZES
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [size, f"{sharded:.3f}", f"{unsharded:.3f}",
         f"+{(sharded - unsharded) * 100:.1f}pp"]
        for size, (sharded, unsharded) in results.items()
    ]
    print_table(
        "Ablation (Section 3): Joiner cache hit rate, sharded vs "
        f"unsharded input ({NUM_DIMENSIONS} dimensions, 1-of-{SHARDS} shard)",
        ["cache size", "sharded by dim_id", "unsharded", "advantage"],
        rows,
    )

    for size, (sharded, unsharded) in results.items():
        assert sharded > unsharded  # the paper's claim, at every size
    # The advantage is largest when the cache is small relative to the
    # dimension space — exactly why the Filterer re-shards.
    advantages = [results[s][0] - results[s][1] for s in CACHE_SIZES]
    assert advantages[0] > advantages[-1]
