"""Figure 12: read-modify-write vs append-only remote-state throughput.

The paper's workload "aggregates its input events across many
dimensions, which means that one input event changes many different
values in the application state"; state lives in a 3-machine ZippyDB
cluster whose custom merge operator enables the append-only
optimization; the flush interval to the remote database is varied. The
paper reports 25% to 200% higher throughput with append-only.

Here the same monoid Stylus processor runs with the
:class:`RemoteDbStateBackend` in both write modes over a 3-shard ZippyDb
with the default latency model; per-event CPU cost is charged to the
same simulated clock, so throughput = events / simulated seconds.
"""

from __future__ import annotations

from repro.core.event import Event
from repro.runtime.clock import SimClock
from repro.scribe.store import ScribeStore
from repro.storage.merge import DictSumMergeOperator
from repro.storage.zippydb import ZippyDb
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusTask
from repro.stylus.processor import MonoidProcessor
from repro.stylus.state import RemoteDbStateBackend, RemoteWriteMode
from repro.workloads.zipf import ZipfSampler
from repro.runtime.rng import make_rng

from benchmarks.conftest import print_table

EVENTS = 6_000
DIMENSIONS_PER_EVENT = 5
DIMENSION_UNIVERSE = 500
CPU_PER_EVENT = 2e-5  # deserialization + extraction, charged to the clock
FLUSH_INTERVALS_EVENTS = [50, 200, 1000]  # the swept x-axis


class MultiDimensionAggregator(MonoidProcessor):
    """One event updates DIMENSIONS_PER_EVENT values in the state."""

    def __init__(self) -> None:
        self._sampler = ZipfSampler(DIMENSION_UNIVERSE, 0.9,
                                    make_rng(31, "fig12"))

    def merge_operator(self):
        return DictSumMergeOperator()

    def extract(self, event: Event):
        return [
            (f"dim{self._sampler.sample()}", {"count": 1, "sum": event["v"]})
            for _ in range(DIMENSIONS_PER_EVENT)
        ]


def run_arm(mode: RemoteWriteMode, flush_every_events: int) -> float:
    """Returns throughput in events per simulated second."""
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    for i in range(EVENTS):
        scribe.write_record("in", {"event_time": float(i), "v": i % 7})
    db = ZippyDb(num_shards=3, replication_factor=3,
                 merge_operator=DictSumMergeOperator(), clock=clock)
    backend = RemoteDbStateBackend("agg", db, mode)
    task = StylusTask("agg", scribe, "in", 0, MultiDimensionAggregator(),
                      state_backend=backend,
                      checkpoint_policy=CheckpointPolicy(
                          every_n_events=flush_every_events),
                      clock=clock)
    start = clock.now()
    remaining = EVENTS
    while remaining > 0:
        done = task.pump(1000)
        clock.advance(done * CPU_PER_EVENT)
        remaining -= done
        if done == 0:
            break
    task.checkpoint_now()
    return EVENTS / (clock.now() - start)


def test_fig12_append_only_vs_read_modify_write(benchmark):
    def sweep():
        results = []
        for interval in FLUSH_INTERVALS_EVENTS:
            rmw = run_arm(RemoteWriteMode.READ_MODIFY_WRITE, interval)
            append = run_arm(RemoteWriteMode.APPEND_ONLY, interval)
            results.append((interval, rmw, append))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    gains = []
    for interval, rmw, append in results:
        gain = (append - rmw) / rmw * 100.0
        gains.append(gain)
        rows.append([f"every {interval} events", round(rmw), round(append),
                     f"+{gain:.0f}%"])
    print_table(
        "Figure 12: remote-DB write throughput (events/s), "
        "read-modify-write vs append-only (paper: +25% to +200%)",
        ["flush interval", "read-modify-write", "append-only", "gain"],
        rows,
    )

    # Shape: append-only wins at every interval, by a factor within the
    # paper's 25%-200% band.
    assert all(gain >= 20.0 for gain in gains)
    assert all(gain <= 250.0 for gain in gains)
    benchmark.extra_info["gains_percent"] = [round(g) for g in gains]
    benchmark.extra_info["paper_band_percent"] = [25, 200]
