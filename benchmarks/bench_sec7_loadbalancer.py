"""Section 7 future work: dynamic load balancing for stream jobs.

"The load balancer should coordinate hundreds of jobs on a single
machine and minimize the recovery time for lagging jobs." The bench
places 200 jobs of skewed load on a small cluster, overloads one
machine, and compares the lag-aware balancer against a no-op baseline
on: load imbalance, and the modeled catch-up time of the lagging jobs
(a lagging job's catch-up rate is the spare capacity of its machine).
"""

from __future__ import annotations

from repro.runtime.cluster import Cluster
from repro.runtime.loadbalancer import JobSpec, LoadBalancer
from repro.runtime.rng import make_rng

from benchmarks.conftest import print_table

MACHINES = 5
JOBS = 200
MACHINE_CAPACITY = 60.0


def build(seed=21):
    cluster = Cluster()
    for index in range(MACHINES):
        cluster.add_machine(f"m{index}")
    balancer = LoadBalancer(cluster)
    rng = make_rng(seed, "lb-bench")
    jobs = []
    for index in range(JOBS):
        lag = rng.randrange(50_000) if rng.random() < 0.1 else 0
        job = JobSpec(f"job{index}", load=rng.uniform(0.5, 2.0), lag=lag)
        jobs.append(job)
        balancer.place(job)
    # Overload one machine: pile a burst of hot jobs onto m0 directly
    # (the situation a balancer must dig out of).
    for index in range(30):
        job = JobSpec(f"hot{index}", load=1.5,
                      lag=rng.randrange(100_000))
        jobs.append(job)
        balancer._jobs[job.name] = job
        balancer._placement[job.name] = "m0"
    return cluster, balancer, jobs


def catchup_seconds(balancer: LoadBalancer, jobs: list[JobSpec]) -> float:
    """Modeled catch-up time of lagging jobs: lag / machine spare rate."""
    total = 0.0
    loads = balancer.loads()
    for job in jobs:
        if job.lag == 0:
            continue
        machine_load = loads[balancer.placement_of(job.name)]
        spare = max(1.0, MACHINE_CAPACITY - machine_load)
        total += job.lag / (spare * 1000.0)  # 1k msgs per unit spare rate
    return total


def test_sec7_load_balancer(benchmark):
    def run():
        _, baseline, jobs_a = build()
        before_imbalance = baseline.imbalance()
        before_catchup = catchup_seconds(baseline, jobs_a)

        _, balanced, jobs_b = build()
        moves = balanced.rebalance(max_moves=50)
        after_imbalance = balanced.imbalance()
        after_catchup = catchup_seconds(balanced, jobs_b)
        return (before_imbalance, before_catchup, after_imbalance,
                after_catchup, len(moves))

    (before_imb, before_catchup, after_imb, after_catchup,
     move_count) = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"Section 7: lag-aware rebalancing of {JOBS + 30} jobs on "
        f"{MACHINES} machines",
        ["metric", "no balancer", "with balancer"],
        [
            ["load imbalance (max/mean)", f"{before_imb:.2f}",
             f"{after_imb:.2f}"],
            ["lagging jobs' catch-up time", f"{before_catchup:.1f}s",
             f"{after_catchup:.1f}s"],
            ["job moves", 0, move_count],
        ],
    )

    assert after_imb < before_imb
    assert after_catchup < before_catchup
    benchmark.extra_info["catchup_improvement"] = round(
        before_catchup / after_catchup, 2)


def test_sec7_failure_replacement(benchmark):
    """Machine failure: orphans re-placed, most-lagging first."""

    def run():
        cluster, balancer, jobs = build()
        cluster.fail_machine("m0")
        moves = balancer.handle_machine_failure("m0")
        return balancer, moves

    balancer, moves = benchmark.pedantic(run, rounds=1, iterations=1)

    loads = balancer.loads()
    print_table(
        "Section 7: job re-placement after a machine failure",
        ["metric", "value"],
        [
            ["orphaned jobs re-placed", len(moves)],
            ["surviving machines", len(loads)],
            ["post-failure imbalance", f"{balancer.imbalance():.2f}"],
        ],
    )
    assert len(loads) == MACHINES - 1
    assert balancer.imbalance() < 1.3
    # The most-lagging orphan was handled first (fastest back to work).
    lags = [balancer._jobs[m.job].lag for m in moves]
    assert lags[0] == max(lags)
