"""Section 7 future work: alternative backfill runtimes.

"We are also considering alternate runtime environments for running
stream processing backfill jobs. Today, they run in Hive. We plan to
evaluate Spark and Flink." The bench runs the same monoid Stylus
processor's backfill on both batch runtimes — the Hive/MapReduce
framework and the Spark-style dataset engine — asserts result equality,
and compares wall time plus the dataset engine's execution profile
(stages, shuffled records with map-side combining).
"""

from __future__ import annotations

import time

from repro.backfill.alt_runner import run_monoid_backfill_dataset
from repro.backfill.runner import run_monoid_backfill
from repro.batch.dataset import DatasetContext
from repro.workloads.events import TrendingEventsWorkload

from benchmarks.conftest import print_table
from tests.stylus.helpers import DimensionCounter

ROWS = 20_000


def build_rows():
    workload = TrendingEventsWorkload(rate_per_second=200.0)
    rows = []
    for index, record in enumerate(workload.generate(ROWS / 200.0)):
        record["seq"] = index
        rows.append(record)
    return rows


def test_sec7_alternative_backfill_runtime(benchmark):
    rows = build_rows()
    processor = DimensionCounter(dims_per_event=3)

    def run_both():
        start = time.perf_counter()
        mapreduce = run_monoid_backfill(processor, rows, num_map_tasks=8)
        mapreduce_seconds = time.perf_counter() - start

        context = DatasetContext(default_partitions=8)
        start = time.perf_counter()
        dataset = run_monoid_backfill_dataset(processor, rows, context)
        dataset_seconds = time.perf_counter() - start
        return mapreduce, mapreduce_seconds, dataset, dataset_seconds, context

    (mapreduce, mr_seconds, dataset, ds_seconds,
     context) = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_table(
        f"Section 7: the same monoid backfill on two batch runtimes "
        f"({ROWS} rows)",
        ["runtime", "wall time", "result keys", "stages",
         "shuffled records"],
        [
            ["Hive / MapReduce", f"{mr_seconds * 1000:.0f} ms",
             len(mapreduce), "map+reduce", "(combined in-memory)"],
            ["Dataset (Spark-style)", f"{ds_seconds * 1000:.0f} ms",
             len(dataset), context.stats.stages,
             context.stats.shuffled_records],
        ],
    )

    # The must-hold property: identical results from identical app code.
    assert dataset == mapreduce
    # Map-side combining bounds the shuffle at keys x partitions.
    assert context.stats.shuffled_records <= len(dataset) * 8
    benchmark.extra_info["rows"] = ROWS
    benchmark.extra_info["results_equal"] = True
