"""Figure 7: counter output under failure, per state semantics.

The Counter Node (Figure 6) processes a fixed stream and emits its value
at every checkpoint; one crash is injected at the vulnerable point
between the two checkpoint saves. The reproduced series show the paper's
four shapes:

- (A) ideal: the uninterrupted trajectory;
- (B) at-most-once: drops below ideal after the failure and stays low;
- (C) at-least-once: jumps above ideal after the failure and stays high;
- (D) exactly-once: indistinguishable from ideal.
"""

from __future__ import annotations

from repro.core.semantics import SemanticsPolicy
from repro.runtime.clock import SimClock
from repro.scribe.reader import CategoryReader
from repro.scribe.store import ScribeStore
from repro.stylus.checkpointing import CheckpointPolicy, CrashInjector, CrashPoint
from repro.stylus.engine import StylusTask

from benchmarks.conftest import print_table
from tests.stylus.helpers import CountingProcessor

TOTAL_EVENTS = 500
CHECKPOINT_EVERY = 50
CRASH_AT_CHECKPOINT = 5  # the "Failure Time" in the figure


def run_arm(semantics: SemanticsPolicy, crash_point: CrashPoint | None):
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    scribe.create_category("out", 1)
    injector = CrashInjector()
    if crash_point is not None:
        injector.arm(crash_point, CRASH_AT_CHECKPOINT)
    task = StylusTask("counter", scribe, "in", 0, CountingProcessor(),
                      semantics=semantics,
                      checkpoint_policy=CheckpointPolicy(
                          every_n_events=CHECKPOINT_EVERY),
                      output_category="out", clock=clock,
                      crash_injector=injector)
    for i in range(TOTAL_EVENTS):
        scribe.write_record("in", {"event_time": float(i), "seq": i})
    for _ in range(50):
        task.pump()
        if task.crashed:
            task.restart()
        elif task.lag_messages() == 0:
            break
    if semantics.output.value == "exactly-once":
        return [o["count"] for o in task.state_backend.committed_outputs()]
    return [m.decode()["count"]
            for m in CategoryReader(scribe, "out").read_all()]


def test_fig7_counter_semantics(benchmark):
    def run_all():
        return {
            "ideal": run_arm(SemanticsPolicy.at_least_once(), None),
            "at-most-once": run_arm(SemanticsPolicy.at_most_once(),
                                    CrashPoint.AFTER_FIRST_SAVE),
            "at-least-once": run_arm(SemanticsPolicy.at_least_once(),
                                     CrashPoint.AFTER_FIRST_SAVE),
            "exactly-once": run_arm(SemanticsPolicy.exactly_once(),
                                    CrashPoint.BEFORE_CHECKPOINT),
        }

    series = benchmark.pedantic(run_all, rounds=1, iterations=1)

    length = max(len(s) for s in series.values())

    def cell(name: str, index: int) -> object:
        values = series[name]
        return values[index] if index < len(values) else ""

    rows = [
        [f"t{i}", cell("ideal", i), cell("at-most-once", i),
         cell("at-least-once", i), cell("exactly-once", i)]
        for i in range(length)
    ]
    print_table(
        "Figure 7: counter value over time "
        f"(failure at checkpoint {CRASH_AT_CHECKPOINT})",
        ["checkpoint", "(A) ideal", "(B) at-most-once",
         "(C) at-least-once", "(D) exactly-once"],
        rows,
    )

    finals = {name: values[-1] for name, values in series.items()}
    assert finals["ideal"] == TOTAL_EVENTS
    assert finals["at-most-once"] == TOTAL_EVENTS - CHECKPOINT_EVERY
    assert finals["at-least-once"] == TOTAL_EVENTS + CHECKPOINT_EVERY
    assert finals["exactly-once"] == TOTAL_EVENTS
    # The paper's ordering: B < A = D < C after the failure.
    assert (finals["at-most-once"] < finals["ideal"]
            == finals["exactly-once"] < finals["at-least-once"])
    benchmark.extra_info["final_counts"] = finals
