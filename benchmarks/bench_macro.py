"""Macro benchmark: persist the scenario pack's measures as a baseline.

The hotpath benchmark tracks microseconds; this one tracks *behavior*.
Each end-to-end scenario in :mod:`repro.scenarios` yields deterministic
measures (events shed under backpressure, autoscaler actions, shard-cost
imbalance, join exactness, cache hit rates) that depend only on the code
— not the machine — so the committed ``BENCH_macro.json`` is exactly
reproducible and any drift is a real behavior change.

The report deliberately carries **no wall-clock metrics**: the diff in
``perf_harness.diff_reports`` only applies rate rules when the keys are
present, so macro entries are judged purely by the absolute floor rules
(``_FLOOR_RULES``) — the bars each scenario was accepted at.

Usage::

    python benchmarks/bench_macro.py                  # run + print
    python benchmarks/check_regression.py --macro     # diff vs baseline
    python benchmarks/check_regression.py --macro --update
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
MACRO_BASELINE_PATH = REPO_ROOT / "BENCH_macro.json"

if str(REPO_ROOT / "src") not in sys.path:  # script-mode convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

from perf_harness import SCHEMA_VERSION  # noqa: E402

from repro.scenarios import run_scenario, scenario_names  # noqa: E402


def run_macro(quick: bool = True, seed: int = 0,
              only: str | None = None) -> dict[str, Any]:
    """Run the scenarios and assemble a perf-harness-shaped report.

    ``only`` restricts the run to one scenario (the CI smoke job runs
    just the cheapest one; the floor rules skip absent benchmarks).
    """
    scale = "smoke" if quick else "full"
    names = [only] if only is not None else scenario_names()
    benchmarks: dict[str, Any] = {}
    for name in names:
        result = run_scenario(name, scale=scale, seed=seed)
        entry: dict[str, Any] = {
            "events_in": result.events_in,
            "events_processed": result.events_processed,
            "modeled_elapsed": round(result.modeled_elapsed, 6),
            "final_lag": result.final_lag,
            "checks_passed_fraction": (
                sum(result.checks.values()) / len(result.checks)
                if result.checks else 0.0),
            "digest": result.digest(),
        }
        for metric, value in sorted(result.measures.items()):
            entry[metric] = round(float(value), 6)
        benchmarks[f"macro_{name}"] = entry
    return {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", default=None,
                        help="run a single scenario")
    args = parser.parse_args(argv)
    report = run_macro(quick=not args.full, seed=args.seed, only=args.only)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
