"""Section 5.3: hybrid realtime-batch pipelines complete hours earlier.

"In multiple cases, we have sped up pipelines by 10 to 24 hours. For
example, we were able to convert a portion of a pipeline that used to
complete around 2pm to a set of realtime stream processing apps that
deliver the same data in Hive by 1am. The end result of this pipeline is
therefore available 13 hours sooner."

The bench builds a daily pipeline whose batch critical path lands at
2 pm, converts its convertible prefix to streaming apps, and reports the
per-stage landing times and the total speedup.
"""

from __future__ import annotations

from repro.backfill.hybrid import HybridPipeline, PipelineStage

from benchmarks.conftest import print_table


def paper_pipeline() -> HybridPipeline:
    """A pipeline landing at 14:00 (2 pm) in all-batch mode."""
    return HybridPipeline([
        PipelineStage("clean_raw_events", batch_hours=3.0),
        PipelineStage("sessionize", batch_hours=3.5,
                      depends_on=("clean_raw_events",)),
        PipelineStage("join_dimensions", batch_hours=3.0,
                      depends_on=("sessionize",)),
        PipelineStage("daily_rollups", batch_hours=3.75,
                      depends_on=("join_dimensions",)),
        PipelineStage("exec_report", batch_hours=0.75,
                      depends_on=("daily_rollups",), convertible=False),
    ])


def test_sec53_hybrid_pipeline_speedup(benchmark):
    pipeline = paper_pipeline()

    def run():
        converted = pipeline.convertible_prefix()
        return (pipeline.completion_times(set()),
                pipeline.completion_times(converted), converted)

    batch_times, hybrid_times, converted = benchmark.pedantic(
        run, rounds=1, iterations=1)

    def clock_text(hours: float) -> str:
        total_minutes = round(hours * 60)
        return f"{total_minutes // 60:02d}:{total_minutes % 60:02d}"

    rows = [
        [name,
         "streaming" if name in converted else "batch",
         clock_text(batch_times[name]),
         clock_text(hybrid_times[name])]
        for name in batch_times
    ]
    print_table(
        "Section 5.3: stage landing times (clock after midnight), "
        "all-batch vs hybrid",
        ["stage", "hybrid mode", "all-batch lands", "hybrid lands"],
        rows,
    )

    batch_done = max(batch_times.values())
    hybrid_done = max(hybrid_times.values())
    speedup = batch_done - hybrid_done
    print(f"pipeline completes {clock_text(batch_done)} -> "
          f"{clock_text(hybrid_done)}: {speedup:.1f} hours sooner "
          "(paper: 13 hours, '10 to 24 hours' in general)")

    assert batch_done == 14.0                  # ~2 pm, as in the paper
    assert hybrid_done <= 1.0                  # data in Hive by 1 am
    assert 10.0 <= speedup <= 24.0             # the paper's reported range
    benchmark.extra_info["speedup_hours"] = round(speedup, 2)
    benchmark.extra_info["paper_speedup_hours"] = 13
