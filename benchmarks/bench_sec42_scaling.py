"""Section 4.2.2 scaling claim: "We can scale the number of partitions
up or down easily by changing the number of buckets per Scribe category
in a configuration file."

A keyed counting job runs over the same stream at 1..16 buckets, one
task per bucket. In a real deployment the tasks run on different
machines; the modeled completion time is therefore the *maximum* task
work (they run concurrently), and the speedup over one bucket should
track the bucket count while key hashing stays balanced. The bench also
reports how many keys a reshard 8 -> 16 actually moves.
"""

from __future__ import annotations

from repro.core.sharding import Resharder
from repro.runtime.clock import SimClock
from repro.scribe.store import ScribeStore
from repro.stylus.engine import StylusJob

from benchmarks.conftest import print_table
from tests.stylus.helpers import CountingProcessor

EVENTS = 8_000
PER_EVENT_SECONDS = 1e-4
BUCKET_COUNTS = [1, 2, 4, 8, 16]


def run_with_buckets(num_buckets: int) -> tuple[float, int]:
    """Returns (modeled completion seconds, max per-task events)."""
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", num_buckets)
    for i in range(EVENTS):
        scribe.write_record("in", {"event_time": float(i)}, key=f"user{i % 997}")
    job = StylusJob.create("count", scribe, "in", CountingProcessor,
                           clock=clock)
    per_task = []
    for task in job.tasks:
        per_task.append(task.pump(EVENTS))
    assert sum(per_task) == EVENTS
    # Tasks are parallel processes on disjoint buckets: completion is the
    # straggler's work.
    slowest = max(per_task)
    return slowest * PER_EVENT_SECONDS, slowest


def test_sec42_bucket_scaling(benchmark):
    def sweep():
        return {n: run_with_buckets(n) for n in BUCKET_COUNTS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    base_seconds = results[1][0]
    rows = []
    for buckets in BUCKET_COUNTS:
        seconds, straggler = results[buckets]
        speedup = base_seconds / seconds
        rows.append([buckets, round(seconds, 3), straggler,
                     f"{speedup:.2f}x"])
    print_table(
        "Section 4.2.2: scaling by changing the bucket count "
        f"({EVENTS} events, keyed by 997 users)",
        ["buckets", "completion (s)", "straggler events", "speedup"],
        rows,
    )

    # Near-linear scaling while keys stay balanced.
    for buckets in BUCKET_COUNTS:
        speedup = base_seconds / results[buckets][0]
        assert speedup > 0.7 * buckets

    moved = Resharder(8, 16).moved_fraction([f"user{i}" for i in range(997)])
    print(f"reshard 8 -> 16 buckets moves {moved:.1%} of keys")
    assert 0.3 < moved < 0.7
    benchmark.extra_info["speedups"] = {
        str(n): round(base_seconds / results[n][0], 2) for n in BUCKET_COUNTS
    }
