"""Section 5.2: migrating dashboard queries from Scuba to Puma.

"Overall, the migration project has been very successful. The Puma apps
consume approximate 14% of the CPU that was needed to run the same
queries in Scuba."

The experiment: a dashboard of three fixed panels refreshes every 60 s
over a 30-minute sliding window, for two simulated hours of a 2-event/s
stream. The Scuba arm aggregates at read time (re-scanning the raw rows
on every refresh); the Puma arm aggregates at write time (fixed windowed
apps) and serves refreshes from the pre-computed windows.

CPU accounting (documented in EXPERIMENTS.md): one unit per raw row
scanned (Scuba); eleven units per event for the write-time path (three
apps, each hashing a group key and folding aggregate state, which costs
several sequential-scan touches per update); one unit per result row
served.

The paper arm runs the row-scan engine on a row-tail table, so its cost
is identical to the seed experiment. A third arm runs the same three
panels on the columnar engine with the incremental query cache, charging
only rows actually scanned — showing how far read-time aggregation
itself closes the gap before any migration to write-time. A fourth arm
runs the compiled engine: compiled plans mostly change the cost *per
scanned row* (invisible in this unit model), but zone maps can also
refute whole segments — the errors panel skips any segment whose status
column never reaches 500 — so its scan count is bounded by the columnar
arm's. The near-perfect plan-cache hit rate over two hours of refreshes
is the other point: fixed dashboard queries are exactly the shapes a
plan cache amortizes to nothing.
"""

from __future__ import annotations

from repro.monitoring.dashboards import Dashboard, DashboardPanel
from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.clock import SimClock
from repro.runtime.rng import make_rng
from repro.scribe.store import ScribeStore
from repro.scuba.ingest import ScubaIngester
from repro.scuba.query import ColumnFilter, ScubaQuery
from repro.scuba.table import ScubaTable
from repro.storage.hbase import HBaseTable

from benchmarks.conftest import print_table

DURATION = 7_200.0        # two simulated hours
RATE = 2.0                 # events per second
WINDOW = 1_800.0           # 30-minute sliding dashboard window
REFRESH = 60.0
UPDATE_UNITS = 11.0        # per event: three apps x ~3.7/update
SERVE_UNITS = 1.0          # per served result row

PUMA_SOURCE = """
CREATE APPLICATION dashboards;
CREATE INPUT TABLE requests(event_time, endpoint, status, latency_ms)
FROM SCRIBE("requests") TIME event_time;
CREATE TABLE by_endpoint AS
SELECT endpoint, count(*) AS n FROM requests [60 seconds];
CREATE TABLE errors AS
SELECT status, count(*) AS n FROM requests [60 seconds]
WHERE status >= 500;
CREATE TABLE latency AS
SELECT endpoint, avg(latency_ms) AS mean_ms FROM requests [60 seconds];
"""


def generate_stream(scribe):
    rng = make_rng(77, "sec52")
    count = int(DURATION * RATE)
    for i in range(count):
        scribe.write_record("requests", {
            "event_time": i / RATE,
            "endpoint": rng.choice(["/home", "/feed", "/msg", "/profile"]),
            "status": 500 if rng.random() < 0.02 else 200,
            "latency_ms": rng.expovariate(1 / 80.0),
        }, key=str(i))
    return count


def run_experiment():
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("requests", 2)
    events = generate_stream(scribe)

    # Scuba paper arm: row-tail storage + read-time row scans — the cost
    # model of the seed experiment, unchanged.
    scuba_table = ScubaTable("requests", columnar=False)
    ingest = ScubaIngester(scribe, "requests", scuba_table)
    ingest.pump(10 * events)

    # Columnar arm: same table contents, vectorized engine + query cache.
    # Segments of 256 rows (~2 minutes at 2 events/s) keep most of the
    # 30-minute window fully covered by cacheable segments, so a refresh
    # only scans the sliding edges.
    columnar_table = ScubaTable("requests", columnar=True, segment_rows=256)
    columnar_ingest = ScubaIngester(scribe, "requests", columnar_table)
    columnar_ingest.pump(10 * events)
    columnar_table.seal_tail()

    def panel_specs(table, engine):
        return [
            ("by_endpoint", ScubaQuery(table, 0.0, WINDOW, engine=engine,
                                       group_by=("endpoint",))),
            ("errors", ScubaQuery(table, 0.0, WINDOW, engine=engine,
                                  group_by=("status",),
                                  filters=(ColumnFilter("status", ">=",
                                                        500),))),
            ("latency", ScubaQuery(table, 0.0, WINDOW, engine=engine,
                                   aggregation="avg",
                                   value_column="latency_ms",
                                   group_by=("endpoint",))),
        ]

    scuba_dashboard = Dashboard("ops-scuba", WINDOW, clock=clock)
    metrics_holder = []
    for name, query in panel_specs(scuba_table, "rows"):
        metrics_holder.append(query.metrics)
        scuba_dashboard.add_panel(DashboardPanel.from_scuba(name, query))

    columnar_dashboard = Dashboard("ops-scuba-columnar", WINDOW, clock=clock)
    columnar_metrics = []
    for name, query in panel_specs(columnar_table, "columnar"):
        columnar_metrics.append(query.metrics)
        columnar_dashboard.add_panel(DashboardPanel.from_scuba(name, query))

    # Compiled arm: own table (so its query cache is not pre-warmed by
    # the columnar arm), same panels on the default compiled engine.
    compiled_table = ScubaTable("requests", columnar=True, segment_rows=256)
    compiled_ingest = ScubaIngester(scribe, "requests", compiled_table)
    compiled_ingest.pump(10 * events)
    compiled_table.seal_tail()
    compiled_dashboard = Dashboard("ops-scuba-compiled", WINDOW, clock=clock)
    compiled_metrics = []
    for name, query in panel_specs(compiled_table, "compiled"):
        compiled_metrics.append(query.metrics)
        compiled_dashboard.add_panel(DashboardPanel.from_scuba(name, query))

    # Puma arm: write-time aggregation, read from pre-computed windows.
    puma_app = PumaApp(plan(parse(PUMA_SOURCE)), scribe, HBaseTable("s"),
                       clock=clock)
    puma_app.pump(10 * events)
    puma_dashboard = Dashboard("ops-puma", WINDOW, clock=clock)
    puma_dashboard.add_panel(
        DashboardPanel.from_puma("by_endpoint", puma_app, "by_endpoint", "n"))
    puma_dashboard.add_panel(
        DashboardPanel.from_puma("errors", puma_app, "errors", "n"))
    puma_dashboard.add_panel(
        DashboardPanel.from_puma("latency", puma_app, "latency", "mean_ms"))

    served_rows = 0
    refreshes = 0
    while clock.now() + REFRESH <= DURATION:
        clock.advance(REFRESH)
        scuba_dashboard.refresh()
        columnar_dashboard.refresh()
        compiled_dashboard.refresh()
        for panel_rows in puma_dashboard.refresh().values():
            served_rows += len(panel_rows)
        refreshes += 1

    scuba_cpu = sum(
        m.counter("scuba.requests.rows_scanned").value
        for m in metrics_holder
    )
    columnar_cpu = sum(
        m.counter("scuba.requests.rows_scanned").value
        for m in columnar_metrics
    )
    cache_hits = sum(
        m.counter("scuba.requests.cache.hits").value
        for m in columnar_metrics
    )
    assert cache_hits > 0, "columnar dashboard arm never hit the cache"
    compiled_cpu = sum(
        m.counter("scuba.requests.rows_scanned").value
        for m in compiled_metrics
    )
    plan_stats = compiled_table.query_cache.plans.stats()
    plan_requests = plan_stats["hits"] + plan_stats["misses"]
    plan_hit_rate = (plan_stats["hits"] / plan_requests
                     if plan_requests else 0.0)
    puma_cpu = (puma_app.metrics.counter("puma.dashboards.events").value
                * UPDATE_UNITS + served_rows * SERVE_UNITS)
    return (events, refreshes, scuba_cpu, columnar_cpu, compiled_cpu,
            plan_hit_rate, puma_cpu)


def test_sec52_dashboard_migration_cpu(benchmark):
    (events, refreshes, scuba_cpu, columnar_cpu, compiled_cpu,
     plan_hit_rate, puma_cpu) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)

    ratio = puma_cpu / scuba_cpu
    columnar_ratio = columnar_cpu / scuba_cpu
    print_table(
        "Section 5.2: CPU to serve the same dashboard "
        f"({refreshes} refreshes over {DURATION / 3600:.0f}h, "
        "paper: Puma ~= 14% of Scuba)",
        ["arm", "CPU units", "relative"],
        [
            ["Scuba (read-time row scans)", round(scuba_cpu), "100%"],
            ["Scuba (columnar + query cache)", round(columnar_cpu),
             f"{columnar_ratio:.1%}"],
            ["Scuba (compiled plans + cache)", round(compiled_cpu),
             f"{compiled_cpu / scuba_cpu:.1%} "
             f"({plan_hit_rate:.1%} plan-cache hits)"],
            ["Puma (write-time aggregation)", round(puma_cpu),
             f"{ratio:.1%}"],
        ],
    )

    assert 0.05 <= ratio <= 0.30  # the paper's ~14%, within a loose band
    assert columnar_cpu < scuba_cpu  # caching must strictly reduce scans
    # Compiled plans never scan *more*: same rows minus any segments the
    # zone maps refute, and the fixed panel shapes compile once across
    # two hours of refreshes.
    assert compiled_cpu <= columnar_cpu
    assert plan_hit_rate > 0.95
    benchmark.extra_info["puma_over_scuba"] = round(ratio, 3)
    benchmark.extra_info["columnar_over_scuba"] = round(columnar_ratio, 3)
    benchmark.extra_info["plan_cache_hit_rate"] = round(plan_hit_rate, 3)
    benchmark.extra_info["paper_ratio"] = 0.14
