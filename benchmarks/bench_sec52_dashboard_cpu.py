"""Section 5.2: migrating dashboard queries from Scuba to Puma.

"Overall, the migration project has been very successful. The Puma apps
consume approximate 14% of the CPU that was needed to run the same
queries in Scuba."

The experiment: a dashboard of three fixed panels refreshes every 60 s
over a 30-minute sliding window, for two simulated hours of a 2-event/s
stream. The Scuba arm aggregates at read time (re-scanning the raw rows
on every refresh); the Puma arm aggregates at write time (fixed windowed
apps) and serves refreshes from the pre-computed windows.

CPU accounting (documented in EXPERIMENTS.md): one unit per raw row
scanned (Scuba); eleven units per event for the write-time path (three
apps, each hashing a group key and folding aggregate state, which costs
several sequential-scan touches per update); one unit per result row
served.
"""

from __future__ import annotations

from repro.monitoring.dashboards import Dashboard, DashboardPanel
from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.clock import SimClock
from repro.runtime.rng import make_rng
from repro.scribe.store import ScribeStore
from repro.scuba.ingest import ScubaIngester
from repro.scuba.query import ScubaQuery
from repro.scuba.table import ScubaTable
from repro.storage.hbase import HBaseTable

from benchmarks.conftest import print_table

DURATION = 7_200.0        # two simulated hours
RATE = 2.0                 # events per second
WINDOW = 1_800.0           # 30-minute sliding dashboard window
REFRESH = 60.0
UPDATE_UNITS = 11.0        # per event: three apps x ~3.7/update
SERVE_UNITS = 1.0          # per served result row

PUMA_SOURCE = """
CREATE APPLICATION dashboards;
CREATE INPUT TABLE requests(event_time, endpoint, status, latency_ms)
FROM SCRIBE("requests") TIME event_time;
CREATE TABLE by_endpoint AS
SELECT endpoint, count(*) AS n FROM requests [60 seconds];
CREATE TABLE errors AS
SELECT status, count(*) AS n FROM requests [60 seconds]
WHERE status >= 500;
CREATE TABLE latency AS
SELECT endpoint, avg(latency_ms) AS mean_ms FROM requests [60 seconds];
"""


def generate_stream(scribe):
    rng = make_rng(77, "sec52")
    count = int(DURATION * RATE)
    for i in range(count):
        scribe.write_record("requests", {
            "event_time": i / RATE,
            "endpoint": rng.choice(["/home", "/feed", "/msg", "/profile"]),
            "status": 500 if rng.random() < 0.02 else 200,
            "latency_ms": rng.expovariate(1 / 80.0),
        }, key=str(i))
    return count


def run_experiment():
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("requests", 2)
    events = generate_stream(scribe)

    # Scuba arm: raw ingestion + read-time aggregation.
    scuba_table = ScubaTable("requests")
    ingest = ScubaIngester(scribe, "requests", scuba_table)
    ingest.pump(10 * events)
    scuba_dashboard = Dashboard("ops-scuba", WINDOW, clock=clock)
    metrics_holder = []
    panels = [
        ("by_endpoint", ScubaQuery(scuba_table, 0.0, WINDOW,
                                   group_by=("endpoint",))),
        ("errors", ScubaQuery(scuba_table, 0.0, WINDOW, group_by=("status",),
                              where=lambda r: r["status"] >= 500)),
        ("latency", ScubaQuery(scuba_table, 0.0, WINDOW, aggregation="avg",
                               value_column="latency_ms",
                               group_by=("endpoint",))),
    ]
    for name, query in panels:
        metrics_holder.append(query.metrics)
        scuba_dashboard.add_panel(DashboardPanel.from_scuba(name, query))

    # Puma arm: write-time aggregation, read from pre-computed windows.
    puma_app = PumaApp(plan(parse(PUMA_SOURCE)), scribe, HBaseTable("s"),
                       clock=clock)
    puma_app.pump(10 * events)
    puma_dashboard = Dashboard("ops-puma", WINDOW, clock=clock)
    puma_dashboard.add_panel(
        DashboardPanel.from_puma("by_endpoint", puma_app, "by_endpoint", "n"))
    puma_dashboard.add_panel(
        DashboardPanel.from_puma("errors", puma_app, "errors", "n"))
    puma_dashboard.add_panel(
        DashboardPanel.from_puma("latency", puma_app, "latency", "mean_ms"))

    served_rows = 0
    refreshes = 0
    while clock.now() + REFRESH <= DURATION:
        clock.advance(REFRESH)
        scuba_dashboard.refresh()
        for panel_rows in puma_dashboard.refresh().values():
            served_rows += len(panel_rows)
        refreshes += 1

    scuba_cpu = sum(
        m.counter("scuba.requests.rows_scanned").value
        for m in metrics_holder
    )
    puma_cpu = (puma_app.metrics.counter("puma.dashboards.events").value
                * UPDATE_UNITS + served_rows * SERVE_UNITS)
    return events, refreshes, scuba_cpu, puma_cpu


def test_sec52_dashboard_migration_cpu(benchmark):
    events, refreshes, scuba_cpu, puma_cpu = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)

    ratio = puma_cpu / scuba_cpu
    print_table(
        "Section 5.2: CPU to serve the same dashboard "
        f"({refreshes} refreshes over {DURATION / 3600:.0f}h, "
        "paper: Puma ~= 14% of Scuba)",
        ["arm", "CPU units", "relative"],
        [
            ["Scuba (read-time aggregation)", round(scuba_cpu), "100%"],
            ["Puma (write-time aggregation)", round(puma_cpu),
             f"{ratio:.1%}"],
        ],
    )

    assert 0.05 <= ratio <= 0.30  # the paper's ~14%, within a loose band
    benchmark.extra_info["puma_over_scuba"] = round(ratio, 3)
    benchmark.extra_info["paper_ratio"] = 0.14
