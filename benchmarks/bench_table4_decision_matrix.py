"""Table 4 (the paper's Figure 4): design decision x quality matrix."""

from __future__ import annotations

from repro.core.decisions import Quality, decision_matrix_rows

from benchmarks.conftest import print_table

QUALITY_ORDER = [Quality.EASE_OF_USE, Quality.PERFORMANCE,
                 Quality.FAULT_TOLERANCE, Quality.SCALABILITY,
                 Quality.CORRECTNESS]


def test_table4_decision_matrix(benchmark):
    rows = benchmark(decision_matrix_rows)

    rendered = []
    for decision, affected in rows:
        rendered.append(
            [decision] + ["X" if q.value in affected else ""
                          for q in QUALITY_ORDER]
        )
    print_table(
        "Table 4: each design decision affects some quality attributes",
        ["Design decision"] + [q.value for q in QUALITY_ORDER],
        rendered,
    )

    # Verify the exact X pattern of the paper's figure.
    expected = {
        "Language paradigm": ["X", "X", "", "", ""],
        "Data transfer": ["X", "X", "X", "X", ""],
        "Processing semantics": ["", "", "X", "", "X"],
        "State-saving mechanism": ["X", "X", "X", "X", "X"],
        "Reprocessing": ["X", "", "", "X", "X"],
    }
    for row in rendered:
        assert row[1:] == expected[row[0]], row[0]
