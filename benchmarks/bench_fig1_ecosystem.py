"""Figure 1: the whole ecosystem, end to end.

The paper's overview figure: products log to Scribe; Puma, Stylus, and
Swift read and write Scribe; Laser, Scuba, and Hive ingest from Scribe,
and Laser feeds results back to products and processors. The bench
builds that exact topology, streams one workload through it, and prints
per-system message counts — every arrow in the figure carries data.
"""

from __future__ import annotations

from repro.core.dag import Dag
from repro.core.event import Event
from repro.hive.warehouse import HiveWarehouse
from repro.laser.service import LaserService
from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.clock import SimClock
from repro.scribe.checkpoints import CheckpointStore
from repro.scribe.store import ScribeStore
from repro.scuba.ingest import ScubaIngester
from repro.scuba.table import ScubaTable
from repro.storage.hbase import HBaseTable
from repro.stylus.engine import StylusJob
from repro.stylus.processor import Output, StatelessProcessor
from repro.swift.engine import SwiftApp
from repro.workloads.events import TrendingEventsWorkload

from benchmarks.conftest import print_table

EVENTS_SECONDS = 120.0

PUMA_FILTER = """
CREATE APPLICATION mobile_filter;
CREATE INPUT TABLE events(event_time, event_type, dim_id, text)
FROM SCRIBE("product_logs") TIME event_time;
CREATE TABLE posts_only AS
SELECT event_time, dim_id, text FROM events WHERE event_type = 'post';
"""


class Annotator(StatelessProcessor):
    """A Stylus stage enriching the Puma output (with a Laser read-back)."""

    def __init__(self, laser_table):
        self.laser = laser_table
        self.laser_hits = 0

    def process(self, event: Event) -> list[Output]:
        looked_up = self.laser.get(str(event["dim_id"]))
        if looked_up is not None:
            self.laser_hits += 1
        record = event.to_record()
        record["language"] = looked_up["language"] if looked_up else None
        return [Output(record, key=str(event["dim_id"]))]


def test_fig1_ecosystem(benchmark):
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("product_logs", 4)

    # Laser serves the dimension table back to processors (dashed arrow).
    laser = LaserService(scribe, clock=clock)
    dims = laser.create_table("dims", ["dim_id"], ["language", "country"])
    workload = TrendingEventsWorkload(rate_per_second=50.0)
    for row in workload.dimension_rows():
        dims.put_row(row)

    puma_app = PumaApp(plan(parse(PUMA_FILTER)), scribe, HBaseTable("s"),
                       clock=clock)
    scribe.ensure_category("annotated", 4)
    annotators = []

    def annotator_factory():
        annotator = Annotator(dims)
        annotators.append(annotator)
        return annotator

    stylus_job = StylusJob.create("annotator", scribe, "posts_only",
                                  annotator_factory,
                                  output_category="annotated", clock=clock)
    swift_seen = []
    swift = SwiftApp("swift_tail", scribe, "annotated", 0,
                     lambda m: swift_seen.append(m.offset),
                     CheckpointStore(), checkpoint_every_messages=50)
    scuba_table = ScubaTable("annotated")
    scuba = ScubaIngester(scribe, "annotated", scuba_table)
    hive = HiveWarehouse(scribe)
    hive.ingest_from_scribe("annotated", "annotated_events")
    results = laser.create_table("post_langs", ["dim_id"], ["language"],
                                 scribe_category="annotated")

    dag = Dag("figure1")
    dag.add(puma_app, reads=["product_logs"], writes=["posts_only"])
    dag.add(stylus_job, reads=["posts_only"], writes=["annotated"])
    dag.add(swift, reads=["annotated"])
    dag.add(scuba, reads=["annotated"])
    dag.add(hive, reads=["annotated"])
    dag.add(results, reads=["annotated"])

    def run():
        count = 0
        for record in workload.generate(EVENTS_SECONDS):
            scribe.write_record("product_logs", record,
                                key=record["dim_id"])
            count += 1
        clock.advance_to(EVENTS_SECONDS)
        dag.run_until_quiescent()
        return count

    produced = benchmark.pedantic(run, rounds=1, iterations=1)

    annotated = sum(scribe.end_offset("annotated", b) for b in range(4))
    laser_hits = sum(a.laser_hits for a in annotators)
    print_table(
        "Figure 1: data flow through the ecosystem",
        ["system", "role", "messages"],
        [
            ["products -> Scribe", "raw product logs", produced],
            ["Puma", "filter to posts (stateless app)",
             sum(scribe.end_offset("posts_only", b) for b in range(
                 scribe.category("posts_only").num_buckets))],
            ["Laser -> Stylus", "dimension lookups served", laser_hits],
            ["Stylus", "annotated posts emitted", annotated],
            ["Swift", "messages tailed", len(swift_seen)],
            ["Scuba", "rows ingested", scuba_table.row_count()],
            ["Hive", "rows warehoused",
             hive.table("annotated_events").row_count()],
            ["Laser (serving)", "post_langs keys",
             "(point lookups live)"],
        ],
    )

    # Every arrow in the figure carried data.
    assert produced > 0
    assert annotated > 0
    assert laser_hits == annotated  # every post joined a dimension
    assert scuba_table.row_count() == annotated
    assert hive.table("annotated_events").row_count() == annotated
    # Swift reads only bucket 0 of the annotated stream.
    assert len(swift_seen) == scribe.end_offset("annotated", 0)
    # The serving Laser table answers product queries.
    assert results.get("dim0") is not None or annotated == 0
