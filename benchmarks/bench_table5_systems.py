"""Table 5 (the paper's Figure 5): decisions made by nine systems."""

from __future__ import annotations

from repro.core.decisions import system_decision_rows, systems_using

from benchmarks.conftest import print_table


def test_table5_system_decisions(benchmark):
    rows = benchmark(system_decision_rows)

    print_table(
        "Table 5: the design decisions made by different streaming systems",
        ["System", "Language", "Data transfer", "Semantics",
         "State-saving", "Reprocessing"],
        [list(row) for row in rows],
    )

    assert len(rows) == 9
    # Spot checks straight out of the paper's table.
    by_name = {row[0]: row for row in rows}
    assert by_name["Puma"][1:] == ("SQL", "Scribe", "at least",
                                   "remote DB", "same code")
    assert by_name["Samza"][2] == "Kafka"
    assert by_name["Flink"][4] == "global snapshot"
    assert "exactly" in by_name["Stylus"][3]
    assert systems_using("Scribe") == ["Puma", "Stylus", "Swift"]
