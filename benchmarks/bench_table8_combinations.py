"""Table 8 (the paper's Figure 8): common state x output semantics.

Beyond rendering the grid, the bench verifies the engine enforces it:
each of the nine combinations either constructs a working policy (the
five X cells) or is rejected (the four empty cells).
"""

from __future__ import annotations

import pytest

from repro.core.semantics import (
    OutputSemantics,
    SemanticsPolicy,
    StateSemantics,
    is_common_combination,
)
from repro.errors import SemanticsError

from benchmarks.conftest import print_table

STATE_ORDER = [StateSemantics.AT_LEAST_ONCE, StateSemantics.AT_MOST_ONCE,
               StateSemantics.EXACTLY_ONCE]
OUTPUT_ORDER = [OutputSemantics.AT_LEAST_ONCE, OutputSemantics.AT_MOST_ONCE,
                OutputSemantics.EXACTLY_ONCE]


def enumerate_grid():
    grid = {}
    for output in OUTPUT_ORDER:
        for state in STATE_ORDER:
            try:
                SemanticsPolicy(state, output)
                grid[(state, output)] = True
            except SemanticsError:
                grid[(state, output)] = False
    return grid


def test_table8_semantics_combinations(benchmark):
    grid = benchmark(enumerate_grid)

    rows = [
        [output.value] + ["X" if grid[(state, output)] else ""
                          for state in STATE_ORDER]
        for output in OUTPUT_ORDER
    ]
    print_table(
        "Table 8: common combinations of state and output semantics "
        "(rows: output, columns: state)",
        ["Output \\ State"] + [s.value for s in STATE_ORDER],
        rows,
    )

    for (state, output), accepted in grid.items():
        assert accepted == is_common_combination(state, output)
    assert sum(grid.values()) == 5
