"""Ablation: LSM compaction trigger vs read amplification.

A design-choice ablation for the local state store (Section 4.4.2):
RocksDB-style engines trade write amplification (compacting often)
against read amplification (consulting many runs per lookup). The
ablation writes the same update-heavy workload at several compaction
triggers and reports run counts and measured read cost.
"""

from __future__ import annotations

import time

from repro.runtime.rng import make_rng
from repro.storage.lsm import LsmStore
from repro.storage.merge import CounterMergeOperator

from benchmarks.conftest import print_table

KEYS = 300
UPDATES = 12_000
TRIGGERS = [2, 8, 32]


def build_store(compaction_trigger: int) -> LsmStore:
    store = LsmStore(merge_operator=CounterMergeOperator(),
                     memtable_flush_bytes=4_096,
                     compaction_trigger=compaction_trigger)
    rng = make_rng(3, "lsm-ablation")
    for _ in range(UPDATES):
        store.merge(f"key{rng.randrange(KEYS)}", 1)
    return store


def read_all(store: LsmStore) -> float:
    start = time.perf_counter()
    total = 0
    for i in range(KEYS):
        value = store.get(f"key{i}")
        total += value or 0
    elapsed = time.perf_counter() - start
    assert total == UPDATES  # merges are never lost, at any trigger
    return elapsed


def test_ablation_lsm_compaction(benchmark):
    def sweep():
        results = {}
        for trigger in TRIGGERS:
            store = build_store(trigger)
            runs = store.num_sstables
            read_seconds = read_all(store)
            results[trigger] = (runs, read_seconds)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [trigger, runs, f"{read_seconds * 1e6 / KEYS:.1f}"]
        for trigger, (runs, read_seconds) in results.items()
    ]
    print_table(
        "Ablation: LSM compaction trigger vs read amplification "
        f"({UPDATES} counter merges over {KEYS} keys)",
        ["compaction trigger (runs)", "sstables at end",
         "read cost (us/key)"],
        rows,
    )

    run_counts = [results[t][0] for t in TRIGGERS]
    assert run_counts == sorted(run_counts)  # lazier compaction, more runs
    # Correctness at every setting is asserted inside read_all.
