"""Figure 3: the 4-node trending-events DAG, end to end.

Runs the full Filterer -> Joiner (Laser lookup join + classifier RPC) ->
Scorer -> Ranker pipeline over a workload with a scripted topic burst,
and reports: end-to-end throughput, the Joiner's cache hit rate (the
reason its input is sharded by dimension id), and the ranked output —
the scripted burst topic must rank first.
"""

from __future__ import annotations

from repro.apps.trending import TrendingPipeline
from repro.laser.service import LaserTable
from repro.runtime.clock import SimClock
from repro.scribe.store import ScribeStore
from repro.scribe.writer import ScribeWriter
from repro.workloads.events import TrendBurst, TrendingEventsWorkload

from benchmarks.conftest import print_table

DURATION = 300.0
RATE = 80.0


def build_world():
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    workload = TrendingEventsWorkload(
        bursts=(TrendBurst("science", 150.0, 300.0, multiplier=30.0),),
        rate_per_second=RATE,
    )
    dimensions = LaserTable("dims", ["dim_id"], ["language", "country"],
                            clock=clock)
    for row in workload.dimension_rows():
        dimensions.put_row(row)
    return clock, scribe, workload, dimensions


def test_fig3_trending_pipeline(benchmark):
    clock, scribe, workload, dimensions = build_world()
    pipeline = TrendingPipeline(scribe, dimensions, clock=clock,
                                checkpoint_interval=30.0)
    events = list(workload.generate(DURATION))
    writer = ScribeWriter(scribe, "trend_input")

    def run():
        index = 0
        total = 0
        for chunk_end in range(30, int(DURATION) + 30, 30):
            while (index < len(events)
                   and events[index]["event_time"] <= chunk_end - 30):
                writer.write(events[index], key=events[index]["dim_id"])
                index += 1
            clock.advance_to(float(chunk_end))
            total += pipeline.pump()
        while index < len(events):
            writer.write(events[index], key=events[index]["dim_id"])
            index += 1
        total += pipeline.run_until_quiescent()
        pipeline.checkpoint_all()
        total += pipeline.run_until_quiescent()
        return total

    benchmark.pedantic(run, rounds=1, iterations=1)

    last_window = max(pipeline.ranker.windows("top_events_5min"))
    top = pipeline.ranker.top_events(5, last_window)
    print_table(
        "Figure 3: trending pipeline output (top events, last window)",
        ["rank", "topic", "score"],
        [[i + 1, row["event"],
          round(row["score"][0], 3) if row["score"] else None]
         for i, row in enumerate(top)],
    )
    print(f"joiner cache hit rate: {pipeline.joiner_cache_hit_rate():.3f} "
          f"(sharded-by-dim input)")
    print(f"classifier RPC calls: {pipeline.classifier.calls} "
          f"for {len(events)} input events")

    assert top[0]["event"] == "science"  # the scripted burst trends
    assert pipeline.joiner_cache_hit_rate() > 0.8
    benchmark.extra_info["cache_hit_rate"] = round(
        pipeline.joiner_cache_hit_rate(), 3)
    benchmark.extra_info["input_events"] = len(events)
