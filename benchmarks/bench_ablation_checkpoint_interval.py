"""Ablation: checkpoint interval vs exposure window (paper Section 4.3.1).

The checkpoint interval is the knob behind every semantics discussion:
a crash costs at most one interval of replayed events (at-least-once)
or lost events (at-most-once), and checkpointing more often costs more
synchronization. The ablation sweeps the interval, injects a crash at
the vulnerable point, and reports the realized drift plus the modeled
checkpoint overhead — making the tradeoff the paper reasons about
concrete.
"""

from __future__ import annotations

from repro.core.semantics import SemanticsPolicy
from repro.runtime.clock import SimClock
from repro.scribe.store import ScribeStore
from repro.stylus.checkpointing import CheckpointPolicy, CrashInjector, CrashPoint
from repro.stylus.engine import StylusTask

from benchmarks.conftest import print_table
from tests.stylus.helpers import CountingProcessor

TOTAL = 2_400
INTERVALS = [20, 100, 400]
SYNC_COST_PER_CHECKPOINT = 0.05  # modeled seconds per checkpoint


def run_arm(semantics: SemanticsPolicy, every_n: int) -> tuple[int, int]:
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    injector = CrashInjector()
    # Crash mid-stream, between the two checkpoint saves.
    injector.arm(CrashPoint.AFTER_FIRST_SAVE, max(1, TOTAL // every_n // 2))
    task = StylusTask("c", scribe, "in", 0, CountingProcessor(),
                      semantics=semantics,
                      checkpoint_policy=CheckpointPolicy(
                          every_n_events=every_n),
                      clock=clock, crash_injector=injector)
    for i in range(TOTAL):
        scribe.write_record("in", {"event_time": float(i), "seq": i})
    while True:
        task.pump()
        if task.crashed:
            task.restart()
        elif task.lag_messages() == 0:
            break
    checkpoints = int(task.metrics.counter("stylus.c.checkpoints").value)
    return task.state["count"], checkpoints


def test_ablation_checkpoint_interval(benchmark):
    def sweep():
        results = {}
        for every_n in INTERVALS:
            alo_count, alo_cps = run_arm(SemanticsPolicy.at_least_once(),
                                         every_n)
            amo_count, _ = run_arm(SemanticsPolicy.at_most_once(), every_n)
            results[every_n] = (alo_count, amo_count, alo_cps)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for every_n, (alo, amo, checkpoints) in results.items():
        rows.append([
            every_n,
            f"+{alo - TOTAL}",
            f"-{TOTAL - amo}",
            checkpoints,
            f"{checkpoints * SYNC_COST_PER_CHECKPOINT:.1f}s",
        ])
    print_table(
        "Ablation (Section 4.3.1): checkpoint interval vs one-crash "
        f"exposure ({TOTAL} events, crash between the two saves)",
        ["interval (events)", "at-least-once duplicates",
         "at-most-once losses", "checkpoints", "modeled sync overhead"],
        rows,
    )

    for every_n, (alo, amo, _) in results.items():
        # Exposure is exactly one interval on each side of ideal.
        assert alo - TOTAL == every_n
        assert TOTAL - amo == every_n
    overheads = [results[n][2] for n in INTERVALS]
    assert overheads == sorted(overheads, reverse=True)
