"""Figure 2: the complete "top K events" Puma app.

Deploys the paper's PQL verbatim, streams the Figure 2 workload through
it, and reports the per-window top-K table the app serves through its
query API — plus the app's event throughput, since "Puma apps have good
throughput" is the paper's qualitative claim.
"""

from __future__ import annotations

import pytest

from repro.apps.trending import RANKER_PQL
from repro.puma.service import PumaService
from repro.runtime.clock import SimClock
from repro.scribe.store import ScribeStore
from repro.workloads.events import EventStreamWorkload

from benchmarks.conftest import print_table

EVENTS = 20_000


def build_world():
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("events_stream", num_buckets=4)
    workload = EventStreamWorkload(rate_per_second=100.0)
    for record in workload.generate(EVENTS / 100.0):
        scribe.write_record("events_stream", record, key=record["event"])
    service = PumaService(scribe, clock=clock)
    return service


def test_fig2_top_events_app(benchmark):
    service = build_world()

    def run():
        app = service.deploy(RANKER_PQL)
        processed = app.pump(10 * EVENTS)
        service.delete("top_events")
        return app, processed

    # One round: a redeployed app would recover the previous round's
    # HBase state (by design) and double-count.
    app, processed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert processed == EVENTS

    rows = []
    for window_start in app.windows("top_events_5min")[:2]:
        for entry in app.query_top_k("top_events_5min", "score", 3,
                                     window_start):
            top_score = entry["score"][0] if entry["score"] else None
            rows.append([window_start, entry["category"], entry["event"],
                         round(top_score, 3)])
    print_table(
        "Figure 2: top K events per 5-minute window (Puma query API)",
        ["window", "category", "event", "top score"], rows,
    )
    assert rows, "the app must serve pre-computed results"
    benchmark.extra_info["events"] = EVENTS
    benchmark.extra_info["windows"] = len(app.windows("top_events_5min"))
