#!/usr/bin/env python3
"""The functional paradigm (paper Section 4.1's third language option).

The paper compares declarative (Puma's SQL), functional (Spark
Streaming / Flink style), and procedural (Stylus) paradigms, and notes
Facebook was "exploring Spark Streaming". This example writes the
trending-ish pipeline in the functional style — a chain of operators
that compiles down onto Stylus over Scribe:

- consecutive narrow operators fuse into one node (Section 4.2.1:
  one-to-one connections "can be collapsed");
- ``key_by`` introduces a re-sharded Scribe stage boundary;
- ``window_count`` is a watermark-closed tumbling window.

Run: ``python examples/functional_api.py``
"""

from repro import ScribeStore, SimClock
from repro.functional.streams import StreamBuilder
from repro.scribe.reader import CategoryReader
from repro.workloads.events import TrendBurst, TrendingEventsWorkload


def main() -> None:
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    builder = StreamBuilder(scribe, clock=clock, num_buckets=4,
                            checkpoint_every_events=200)

    pipeline = (
        builder.source("raw_events")
        .filter(lambda r: r["event_type"] == "post")
        .map(lambda r: {**r, "topic": r["text"].rsplit("#", 1)[-1]})
        .key_by(lambda r: r["topic"])
        .window_count(60.0)
        .to("topic_counts")
        .build("trending_fn")
    )
    print("pipeline nodes:",
          " -> ".join(n.name for n in pipeline.dag.topological_order()))
    print("(three narrow operators fused into the first node; key_by "
          "created the stage boundary)\n")

    workload = TrendingEventsWorkload(
        bursts=(TrendBurst("science", 120.0, 240.0, multiplier=25.0),),
        rate_per_second=50.0,
    )
    events = list(workload.generate(240.0))
    # Feed live: small chunks with pumping in between, as production would.
    index = 0
    for chunk_end in range(10, 250, 10):
        while (index < len(events)
               and events[index]["event_time"] <= chunk_end - 10):
            scribe.write_record("raw_events", events[index],
                                key=events[index]["dim_id"])
            index += 1
        clock.advance_to(float(chunk_end))
        pipeline.pump(500)
    pipeline.run_until_quiescent()
    pipeline.checkpoint_all()
    pipeline.run_until_quiescent()

    rows = [m.decode()
            for m in CategoryReader(scribe, "topic_counts").read_all()]
    by_window: dict[float, list] = {}
    for row in rows:
        by_window.setdefault(row["window_start"], []).append(
            (row["key"], row["value"]))
    for window_start in sorted(by_window):
        ranked = sorted(by_window[window_start], key=lambda kv: -kv[1])[:3]
        print(f"window t={window_start:>5.0f}s top topics: "
              + ", ".join(f"{topic} ({count})" for topic, count in ranked))

    print("\nduring the burst (120s-240s) 'science' dominates; "
          "before it, organic topics lead.")


if __name__ == "__main__":
    main()
