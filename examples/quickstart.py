#!/usr/bin/env python3
"""Quickstart: deploy and query the paper's Figure 2 Puma app.

Builds a Scribe deployment on a simulated clock, streams a synthetic
(event_time, event, category, score) workload into the ``events_stream``
category, deploys the paper's "top K events" PQL verbatim through the
self-service Puma deployment flow, and queries the pre-computed results
the way a consumer service would (the paper's Thrift API).

Run: ``python examples/quickstart.py``
"""

from repro import PumaService, ScribeStore, SimClock
from repro.workloads.events import EventStreamWorkload

FIGURE_2_PQL = """
CREATE APPLICATION top_events;

CREATE INPUT TABLE events_score(
    event_time,
    event,
    category,
    score
)
FROM SCRIBE("events_stream")
TIME event_time;

CREATE TABLE top_events_5min AS
SELECT
    category,
    event,
    topk(score) AS score
FROM
    events_score [5 minutes];
"""


def main() -> None:
    # 1. A Scribe tier on a simulated clock (deterministic end to end).
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("events_stream", num_buckets=4)

    # 2. Produce fifteen minutes of scored events.
    workload = EventStreamWorkload(rate_per_second=50.0)
    for record in workload.generate(900.0):
        scribe.write_record("events_stream", record, key=record["event"])
    clock.advance_to(900.0)

    # 3. Deploy the app. Parsing, column checking, and plan compilation
    #    all happen here — a typo fails at deploy, not in production.
    service = PumaService(scribe, clock=clock)
    app = service.deploy(FIGURE_2_PQL)
    print(f"deployed apps: {service.apps()}")

    # 4. Let the app consume its backlog (in production a driver pumps
    #    continuously; lag alerts fire if it falls behind).
    processed = app.pump(100_000)
    print(f"processed {processed} events; lag now {app.lag_messages()}")

    # 5. Query the pre-computed results, window by window.
    for window_start in app.windows("top_events_5min"):
        print(f"\ntop 5 events for window starting at t={window_start:.0f}s:")
        for row in app.query_top_k("top_events_5min", "score", 5,
                                   window_start):
            top_score = row["score"][0] if row["score"] else float("nan")
            print(f"  {row['category']:>8}  {row['event']:<6} "
                  f"best score {top_score:.2f}")


if __name__ == "__main__":
    main()
