#!/usr/bin/env python3
"""The Chorus pipeline (paper Section 5.1): anonymized realtime voice.

Streams a post workload with a scripted "TV-ad moment" (the paper's
Superbowl "#likeagirl" spike) through the mixed Puma + Stylus pipeline
with its Laser lookup join, then asks the two questions the paper leads
with: what are the top topics right now, and what are the (k-anonymous)
demographic breakdowns?

Run: ``python examples/chorus.py``
"""

from repro import ScribeStore, ScribeWriter, SimClock
from repro.apps.chorus import ChorusPipeline
from repro.workloads.posts import AdMoment, PostsWorkload

DURATION = 600.0
SPIKE = AdMoment("#likeagirl", start=300.0, duration=120.0, multiplier=40.0)


def main() -> None:
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    pipeline = ChorusPipeline(scribe, clock=clock, k_anonymity=20,
                              window_seconds=300.0)

    workload = PostsWorkload(rate_per_second=50.0, ad_moment=SPIKE)
    writer = ScribeWriter(scribe, "chorus_posts")
    for record in workload.generate(DURATION):
        writer.write(record, key=record["post_id"])
    clock.advance_to(DURATION)

    pipeline.run_until_quiescent()
    pipeline.checkpoint_all()
    pipeline.run_until_quiescent()

    for window_start in pipeline.windows():
        label = " <-- the TV ad airs in this window" \
            if SPIKE.start >= window_start and \
            SPIKE.start < window_start + 300.0 else ""
        print(f"\ntop topics, window t={window_start:.0f}s{label}:")
        for hashtag, count in pipeline.top_topics(window_start, 5):
            print(f"  {hashtag:<14} ~{count:.0f} posts")

    print(f"\ndemographics for {SPIKE.hashtag} during the spike "
          f"(cells below k={pipeline.k_anonymity} suppressed):")
    breakdown = pipeline.demographic_breakdown(300.0, SPIKE.hashtag)
    for cell, count in sorted(breakdown.items(), key=lambda kv: -kv[1])[:8]:
        age, gender, region = cell.split("|")
        print(f"  {age:<6} {gender:<8} {region:<5} {count:>5}")
    print(f"  ({len(breakdown)} revealable cells in total)")

    print(f"\nsummaries also flowed to Scuba: "
          f"{pipeline.scuba_table.row_count()} rows for ad-hoc queries")


if __name__ == "__main__":
    main()
