#!/usr/bin/env python3
"""Figure 7 live: the Counter Node under a crash, per semantics policy.

Runs the paper's Figure 6 counter with each Table 8 semantics option,
injects a crash at the vulnerable point between the two checkpoint
saves, and prints the counter trajectory each policy produces — the
paper's four sub-figures as four columns.

Run: ``python examples/fault_tolerance.py``
"""

from repro import CategoryReader, ScribeStore, SemanticsPolicy, SimClock
from repro.core.event import Event
from repro.stylus.checkpointing import (
    CheckpointPolicy,
    CrashInjector,
    CrashPoint,
)
from repro.stylus.engine import StylusTask
from repro.stylus.processor import Output, StatefulProcessor

TOTAL_EVENTS = 400
CHECKPOINT_EVERY = 40
CRASH_AT_CHECKPOINT = 5


class CounterNode(StatefulProcessor):
    """The paper's Figure 6 processor."""

    def initial_state(self) -> dict:
        return {"count": 0}

    def process(self, event: Event, state: dict) -> list[Output]:
        state["count"] += 1
        return []

    def on_checkpoint(self, state: dict, now: float) -> list[Output]:
        return [Output({"event_time": now, "count": state["count"]})]


def run(policy: SemanticsPolicy, crash_point: CrashPoint | None) -> list[int]:
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    scribe.create_category("out", 1)
    injector = CrashInjector()
    if crash_point is not None:
        injector.arm(crash_point, CRASH_AT_CHECKPOINT)
    task = StylusTask("counter", scribe, "in", 0, CounterNode(),
                      semantics=policy,
                      checkpoint_policy=CheckpointPolicy(
                          every_n_events=CHECKPOINT_EVERY),
                      output_category="out", clock=clock,
                      crash_injector=injector)
    for i in range(TOTAL_EVENTS):
        scribe.write_record("in", {"event_time": float(i)})
    while True:
        task.pump()
        if task.crashed:
            print(f"    [{policy.describe()}] crashed at "
                  f"checkpoint {CRASH_AT_CHECKPOINT}; restarting "
                  "from the saved checkpoint")
            task.restart()
        elif task.lag_messages() == 0:
            break
    if policy.output.value == "exactly-once":
        return [o["count"] for o in task.state_backend.committed_outputs()]
    return [m.decode()["count"]
            for m in CategoryReader(scribe, "out").read_all()]


def main() -> None:
    print(f"counter over {TOTAL_EVENTS} events, checkpoint every "
          f"{CHECKPOINT_EVERY}, crash between the two checkpoint saves:\n")
    arms = {
        "(A) ideal": (SemanticsPolicy.at_least_once(), None),
        "(B) at-most-once": (SemanticsPolicy.at_most_once(),
                             CrashPoint.AFTER_FIRST_SAVE),
        "(C) at-least-once": (SemanticsPolicy.at_least_once(),
                              CrashPoint.AFTER_FIRST_SAVE),
        "(D) exactly-once": (SemanticsPolicy.exactly_once(),
                             CrashPoint.BEFORE_CHECKPOINT),
    }
    series = {name: run(policy, point)
              for name, (policy, point) in arms.items()}

    print(f"\n{'checkpoint':>10}", *(f"{name:>18}" for name in series))
    length = min(len(s) for s in series.values())
    for i in range(length):
        print(f"{i + 1:>10}", *(f"{series[name][i]:>18}" for name in series))

    print("\nfinal counts (true total is "
          f"{TOTAL_EVENTS}):")
    for name, values in series.items():
        drift = values[-1] - TOTAL_EVENTS
        note = ("exact" if drift == 0
                else f"{'+' if drift > 0 else ''}{drift} "
                     f"({'duplicated' if drift > 0 else 'lost'} events)")
        print(f"  {name:<18} {values[-1]:>5}  {note}")


if __name__ == "__main__":
    main()
