#!/usr/bin/env python3
"""Ease of debugging (paper Section 6.2): replay the exact same input.

"When a problem is observed with a particular processing node, we can
reproduce the problem by reading the same input stream from a new node"
and "with persistent Scribe streams, we can replay a stream from a given
(recent) time period, which makes debugging much easier."

The scenario: a deployed scorer has a bug (it drops negative deltas).
We notice its totals look wrong, replay the same stream from the same
time period through a fixed build on a *new* node, and diff the outputs
— without touching the production node or the producers.

Run: ``python examples/debugging_replay.py``
"""

from repro import ScribeStore, SimClock
from repro.core.event import Event
from repro.runtime.rng import make_rng
from repro.scribe.reader import ScribeReader
from repro.stylus.engine import StylusTask
from repro.stylus.processor import Output, StatefulProcessor


class BuggyScorer(StatefulProcessor):
    """v1, in production: silently ignores negative deltas."""

    def initial_state(self):
        return {"total": 0}

    def process(self, event: Event, state) -> list[Output]:
        delta = event["delta"]
        if delta >= 0:  # the bug
            state["total"] += delta
        return []


class FixedScorer(BuggyScorer):
    """v2, the candidate fix."""

    def process(self, event: Event, state) -> list[Output]:
        state["total"] += event["delta"]
        return []


def main() -> None:
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("deltas", 1, retention_seconds=3 * 24 * 3600.0)

    rng = make_rng(55, "debug")
    for i in range(2_000):
        clock.advance_to(i * 0.5)
        scribe.write_record("deltas", {
            "event_time": i * 0.5,
            "delta": rng.randrange(-5, 10),
        })

    # Production: the buggy node has been consuming all along.
    production = StylusTask("scorer-v1", scribe, "deltas", 0, BuggyScorer(),
                            clock=clock)
    production.pump(10_000)
    print(f"production (v1) total: {production.state['total']}")
    print("...an analyst reports the total looks too high vs the ledger\n")

    # Debugging: replay the last 10 minutes into a brand-new node running
    # the candidate fix. The production node, its offsets, and the
    # producers are untouched — readers are independent.
    replay_from = clock.now() - 600.0
    print(f"replaying the stream from t={replay_from:.0f}s "
          "into a new node (production untouched):")
    for name, processor in [("v1-replay", BuggyScorer()),
                            ("v2-replay", FixedScorer())]:
        task = StylusTask(name, scribe, "deltas", 0, processor, clock=clock)
        task._reader.seek_to_time(replay_from)
        task._next_offset = task._reader.position
        task.pump(10_000)
        print(f"  {name:<10} total over the window: {task.state['total']}")

    # The ground truth over the same window, straight from the bus.
    reader = ScribeReader(scribe, "deltas", 0)
    reader.seek_to_time(replay_from)
    truth = sum(m.decode()["delta"] for m in reader.read_batch(10_000))
    print(f"  {'ledger':<10} true sum over the window: {truth}")
    print("\nv2 matches the ledger; v1 reproduces the discrepancy -> "
          "the fix is validated against real traffic before deploying.")
    print(f"production node still at its own position "
          f"(offset {production.position}), unaffected by the replay.")


if __name__ == "__main__":
    main()
