#!/usr/bin/env python3
"""Operating a fleet of stream apps: monitoring, scaling, balancing.

The paper's operational lessons (Sections 6.4 and 7) in one scenario:

1. **auto-configured monitoring** — a lag monitor and dashboard wired up
   for every deployed app in one call;
2. **processing-lag alerts** — a traffic spike pushes an app behind and
   the alert fires;
3. **auto-scaling** — sustained lag doubles the app's Scribe bucket
   count and the job grows into the new buckets ("changing the
   parallelism is often just changing the number of Scribe buckets");
4. **dynamic load balancing** — a machine failure re-places its jobs,
   most-lagging first, onto the least-loaded survivors.

Run: ``python examples/operations.py``
"""

from repro import ScribeStore, SimClock
from repro.monitoring.autoconfig import auto_monitor
from repro.monitoring.autoscaler import AutoScaler
from repro.runtime.cluster import Cluster
from repro.runtime.loadbalancer import JobSpec, LoadBalancer
from repro.stylus.engine import StylusJob
from repro.stylus.processor import Output, StatefulProcessor


class Counter(StatefulProcessor):
    def initial_state(self):
        return {"count": 0}

    def process(self, event, state):
        state["count"] += 1
        return []


def main() -> None:
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("clicks", 2)
    scribe.create_category("views", 2)

    clicks_job = StylusJob.create("clicks_counter", scribe, "clicks",
                                  Counter, clock=clock)
    views_job = StylusJob.create("views_counter", scribe, "views",
                                 Counter, clock=clock)

    # 1. One call wires monitoring for the whole fleet.
    monitor, dashboard = auto_monitor([clicks_job, views_job], clock,
                                      lag_threshold=500)
    scaler = AutoScaler(scribe, clock=clock, high_lag=500,
                        sustain_samples=2, cooldown_seconds=60.0)
    scaler.watch(clicks_job)
    scaler.watch(views_job)

    # 2. Normal traffic, everyone keeps up.
    for i in range(200):
        scribe.write_record("clicks", {"event_time": float(i)}, key=str(i))
        scribe.write_record("views", {"event_time": float(i)}, key=str(i))
    clicks_job.pump()
    views_job.pump()
    monitor.sample()
    print(f"steady state lags: {monitor.current_lags()}; "
          f"alerts: {monitor.active_alerts() or 'none'}")

    # 3. A spike hits clicks; the job falls behind; the alert fires.
    for i in range(5_000):
        scribe.write_record("clicks", {"event_time": 200.0 + i},
                            key=str(i))
    clock.advance(60.0)
    alerts = monitor.sample()
    print(f"\nafter the spike: lag={clicks_job.lag_messages()}, "
          f"alert raised: {[a.consumer for a in alerts]}")

    # 4. Sustained lag -> the autoscaler doubles the bucket count.
    scaler.sample()
    clock.advance(60.0)
    actions = scaler.sample()
    for action in actions:
        print(f"autoscaler: {action.kind} {action.job} "
              f"{action.old_buckets} -> {action.new_buckets} buckets "
              f"({len(clicks_job.tasks)} tasks now)")
    clicks_job.pump(100_000)
    monitor.sample()
    print(f"after scaling and catch-up: lag={clicks_job.lag_messages()}, "
          f"active alerts: {monitor.active_alerts() or 'none'}")

    # 5. A machine dies; the balancer re-places its jobs.
    cluster = Cluster()
    for name in ["m1", "m2", "m3"]:
        cluster.add_machine(name)
    balancer = LoadBalancer(cluster)
    for index in range(12):
        balancer.place(JobSpec(f"job{index}", load=1.0,
                               lag=1000 if index % 4 == 0 else 0))
    print(f"\ncluster loads before failure: {balancer.loads()}")
    cluster.fail_machine("m2")
    moves = balancer.handle_machine_failure("m2")
    print(f"m2 failed; re-placed {len(moves)} jobs "
          f"(most-lagging first: {moves[0].job} moved to {moves[0].target})")
    print(f"cluster loads after: {balancer.loads()} "
          f"(imbalance {balancer.imbalance():.2f})")

    # The dashboard panel shows the whole story.
    history = dashboard.refresh()["lag:clicks_counter"]
    print("\nclicks_counter lag history (from the auto-built dashboard):")
    for point in history:
        print(f"  t={point['t']:>6.0f}s  lag={point['lag']}")


if __name__ == "__main__":
    main()
