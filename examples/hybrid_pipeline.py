#!/usr/bin/env python3
"""Section 5.3: converting a daily batch pipeline to hybrid streaming.

Models a daily Hive pipeline that completes around 2 pm, converts its
convertible prefix to realtime streaming apps one stage at a time (the
paper's incremental migration story), and prints how the completion time
improves with each conversion — landing at the paper's "13 hours sooner".

Run: ``python examples/hybrid_pipeline.py``
"""

from repro.backfill.hybrid import HybridPipeline, PipelineStage


def clock_text(hours: float) -> str:
    minutes = round(hours * 60)
    return f"{minutes // 60:02d}:{minutes % 60:02d}"


def main() -> None:
    pipeline = HybridPipeline([
        PipelineStage("clean_raw_events", batch_hours=3.0),
        PipelineStage("sessionize", batch_hours=3.5,
                      depends_on=("clean_raw_events",)),
        PipelineStage("join_dimensions", batch_hours=3.0,
                      depends_on=("sessionize",)),
        PipelineStage("daily_rollups", batch_hours=3.75,
                      depends_on=("join_dimensions",)),
        PipelineStage("exec_report", batch_hours=0.75,
                      depends_on=("daily_rollups",), convertible=False),
    ])

    print("all-batch landing times (hours after midnight):")
    for name, hours in pipeline.completion_times().items():
        print(f"  {name:<18} {clock_text(hours)}")
    print(f"  pipeline completes around {clock_text(pipeline.pipeline_completion())} "
          "— the paper's '2pm' shape\n")

    # Convert one stage at a time, front to back (the paper: "converting
    # some of the earlier queries in these pipelines").
    conversion_order = ["clean_raw_events", "sessionize", "join_dimensions",
                        "daily_rollups"]
    converted: set[str] = set()
    print("incremental conversion:")
    for stage in conversion_order:
        converted.add(stage)
        done = pipeline.pipeline_completion(converted)
        print(f"  + {stage:<18} -> completes {clock_text(done)}")

    speedup = pipeline.speedup_hours(converted)
    print(f"\nfinal: {clock_text(pipeline.pipeline_completion())} -> "
          f"{clock_text(pipeline.pipeline_completion(converted))}, "
          f"{speedup:.0f} hours sooner (paper: 13 hours; "
          "'10 to 24 hours' across cases)")


if __name__ == "__main__":
    main()
