#!/usr/bin/env python3
"""Section 4.5: reprocessing old data with the SAME application code.

A monoid Stylus processor aggregates a live stream; the same events also
land in Hive through warehouse ingestion. We then run the *identical
processor object's class* as a batch binary — map-side partial
aggregation with a combiner — over the Hive partition and show the two
runtimes produce identical totals. Finally, a Puma app is backfilled
through its Hive-UDAF path the same way.

Run: ``python examples/backfill.py``
"""

from repro import ScribeStore, ScribeWriter, SimClock
from repro.backfill.runner import run_monoid_backfill
from repro.core.event import Event
from repro.hive.warehouse import HiveWarehouse
from repro.puma.app import PumaApp
from repro.puma.hive_udf import run_puma_backfill
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.storage.hbase import HBaseTable
from repro.storage.merge import DictSumMergeOperator
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusJob
from repro.stylus.processor import MonoidProcessor
from repro.workloads.events import TrendingEventsWorkload

PQL = """
CREATE APPLICATION type_counts;
CREATE INPUT TABLE events(event_time, event_type, dim_id, text)
FROM SCRIBE("raw") TIME event_time;
CREATE TABLE per_type AS
SELECT event_type, count(*) AS n FROM events [60 seconds];
"""


class PerTypeAggregator(MonoidProcessor):
    """Counts events per type: one class, two runtimes."""

    def merge_operator(self):
        return DictSumMergeOperator()

    def extract(self, event: Event):
        return [(str(event["event_type"]), {"count": 1})]


def main() -> None:
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("raw", 4)

    events = list(TrendingEventsWorkload(rate_per_second=60.0).generate(60.0))
    writer = ScribeWriter(scribe, "raw")
    for record in events:
        writer.write(record, key=record["dim_id"])

    # Streaming runtime.
    job = StylusJob.create("per_type", scribe, "raw", PerTypeAggregator,
                           clock=clock,
                           checkpoint_policy=CheckpointPolicy(
                               every_n_events=100))
    job.pump(100_000)
    job.checkpoint_now()
    streaming: dict[str, int] = {}
    for task in job.tasks:
        for event_type in ("post", "like", "share", "click", "comment"):
            value = task.state_backend.read_value(event_type)
            if value:
                streaming[event_type] = (streaming.get(event_type, 0)
                                         + value["count"])

    # The same events, as Hive holds them.
    warehouse = HiveWarehouse(scribe)
    warehouse.ingest_from_scribe("raw", "raw_events")
    warehouse.pump(100_000)
    rows = list(warehouse.table("raw_events")
                .partition(0, allow_unlanded=True).rows)

    # Batch runtime: the monoid batch binary (mapper + combiner).
    batch = run_monoid_backfill(PerTypeAggregator(), rows, num_map_tasks=8)
    batch_counts = {k: v["count"] for k, v in batch.items()}

    print(f"{len(events)} events through both runtimes:")
    print(f"{'event type':>12} {'streaming':>10} {'batch':>10}")
    for event_type in sorted(set(streaming) | set(batch_counts)):
        print(f"{event_type:>12} {streaming.get(event_type, 0):>10} "
              f"{batch_counts.get(event_type, 0):>10}")
    assert streaming == batch_counts
    print("=> identical, by the monoid laws\n")

    # Puma's backfill path: the compiled plan runs as Hive UDAFs.
    app_plan = plan(parse(PQL))
    app = PumaApp(app_plan, scribe, HBaseTable("s"), clock=clock)
    app.pump(100_000)
    stream_rows = app.query("per_type")
    batch_rows = run_puma_backfill(app_plan, "per_type", rows)
    assert stream_rows == batch_rows
    print(f"Puma backfill: {len(batch_rows)} result rows, "
          "identical to the streaming query output")
    for row in batch_rows[:5]:
        print(f"  {row}")


if __name__ == "__main__":
    main()
