#!/usr/bin/env python3
"""Section 5.2: migrating dashboard queries from Scuba to Puma.

Builds the same three-panel operations dashboard twice — once backed by
Scuba (read-time aggregation: every refresh re-scans the raw rows) and
once by Puma apps (write-time aggregation: refreshes read pre-computed
windows) — then compares the CPU consumed to serve identical refreshes,
and demonstrates the dead-dashboard-query detection the paper calls out.

Run: ``python examples/dashboard_migration.py``
"""

from repro import ScribeStore, SimClock
from repro.monitoring.dashboards import Dashboard, DashboardPanel
from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.rng import make_rng
from repro.scuba.ingest import ScubaIngester
from repro.scuba.query import ScubaQuery
from repro.scuba.table import ScubaTable
from repro.storage.hbase import HBaseTable

DURATION = 7_200.0
WINDOW = 1_800.0
REFRESH = 60.0

PQL = """
CREATE APPLICATION ops_dash;
CREATE INPUT TABLE requests(event_time, endpoint, status, latency_ms)
FROM SCRIBE("requests") TIME event_time;
CREATE TABLE by_endpoint AS
SELECT endpoint, count(*) AS n FROM requests [60 seconds];
CREATE TABLE errors AS
SELECT status, count(*) AS n FROM requests [60 seconds] WHERE status >= 500;
CREATE TABLE latency AS
SELECT endpoint, avg(latency_ms) AS mean_ms FROM requests [60 seconds];
"""


def main() -> None:
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("requests", 2)

    rng = make_rng(7, "dash-example")
    for i in range(int(DURATION * 2)):
        scribe.write_record("requests", {
            "event_time": i / 2.0,
            "endpoint": rng.choice(["/home", "/feed", "/msg", "/profile"]),
            "status": 500 if rng.random() < 0.02 else 200,
            "latency_ms": rng.expovariate(1 / 80.0),
        }, key=str(i))

    # Scuba arm.
    scuba_table = ScubaTable("requests")
    ScubaIngester(scribe, "requests", scuba_table).pump(1_000_000)
    queries = [
        ("by_endpoint", ScubaQuery(scuba_table, 0.0, WINDOW,
                                   group_by=("endpoint",))),
        ("errors", ScubaQuery(scuba_table, 0.0, WINDOW, group_by=("status",),
                              where=lambda r: r["status"] >= 500)),
        ("latency", ScubaQuery(scuba_table, 0.0, WINDOW, aggregation="avg",
                               value_column="latency_ms",
                               group_by=("endpoint",))),
    ]
    scuba_dash = Dashboard("ops-scuba", WINDOW, clock=clock)
    for name, query in queries:
        scuba_dash.add_panel(DashboardPanel.from_scuba(name, query))

    # Puma arm: the same aggregations, computed as data arrived.
    app = PumaApp(plan(parse(PQL)), scribe, HBaseTable("s"), clock=clock)
    app.pump(1_000_000)
    puma_dash = Dashboard("ops-puma", WINDOW, clock=clock)
    for table, metric in [("by_endpoint", "n"), ("errors", "n"),
                          ("latency", "mean_ms")]:
        puma_dash.add_panel(DashboardPanel.from_puma(table, app, table,
                                                     metric))

    served = 0
    while clock.now() + REFRESH <= DURATION:
        clock.advance(REFRESH)
        scuba_dash.refresh()
        for rows in puma_dash.refresh().values():
            served += len(rows)
    # Someone looks at two of the three Puma panels; one goes stale.
    puma_dash.view("by_endpoint")
    puma_dash.view("latency")

    scanned = sum(q.metrics.counter("scuba.requests.rows_scanned").value
                  for _, q in queries)
    puma_units = app.metrics.counter("puma.ops_dash.events").value * 11 + served
    print(f"refreshes served by both arms over {DURATION / 3600:.0f}h "
          f"(window {WINDOW / 60:.0f} min, refresh {REFRESH:.0f} s)")
    print(f"  Scuba read-time CPU : {scanned:>12,.0f} units "
          "(raw rows re-scanned per refresh)")
    print(f"  Puma write-time CPU : {puma_units:>12,.0f} units "
          "(one pass over the stream + cheap serving)")
    print(f"  Puma / Scuba        : {puma_units / scanned:.1%} "
          "(paper: ~14%)")
    print(f"\ndead dashboard queries (candidates to delete): "
          f"{puma_dash.dead_panels(idle_seconds=3600.0)}")

    sample = puma_dash.refresh()["by_endpoint"][:3]
    print("\nsample panel rows (by_endpoint):")
    for row in sample:
        print(f"  {row}")


if __name__ == "__main__":
    main()
