#!/usr/bin/env python3
"""The Figure 3 trending-events pipeline, end to end.

Assembles the paper's four-node DAG — Filterer, Joiner (Laser lookup
join plus a classifier-service RPC with a local cache), Scorer (stateful
sliding window vs long-term trend), and the Figure 2 Puma app as the
Ranker — over Scribe, feeds it a workload with a scripted burst of
"science" chatter, and shows the burst topic trending to the top.

Run: ``python examples/trending_events.py``
"""

from repro import ScribeStore, ScribeWriter, SimClock
from repro.apps.trending import TrendingPipeline
from repro.laser.service import LaserTable
from repro.workloads.events import TrendBurst, TrendingEventsWorkload

DURATION = 300.0


def main() -> None:
    clock = SimClock()
    scribe = ScribeStore(clock=clock)

    # The dimension side table, served by Laser for the Joiner's lookup
    # join (paper Section 2.5: "usually for a lookup join").
    workload = TrendingEventsWorkload(
        bursts=(TrendBurst("science", 150.0, 300.0, multiplier=30.0),),
        rate_per_second=80.0,
    )
    dimensions = LaserTable("dimensions", ["dim_id"],
                            ["language", "country"], clock=clock)
    for row in workload.dimension_rows():
        dimensions.put_row(row)

    pipeline = TrendingPipeline(scribe, dimensions, clock=clock,
                                checkpoint_interval=30.0)
    print("DAG:", " -> ".join(n.name for n in pipeline.dag.topological_order()))

    # Stream events in 30-second slices of simulated time so the Scorer's
    # periodic checkpoints interleave with arrivals, as in production.
    writer = ScribeWriter(scribe, "trend_input")
    events = list(workload.generate(DURATION))
    index = 0
    for chunk_end in range(30, int(DURATION) + 30, 30):
        while (index < len(events)
               and events[index]["event_time"] <= chunk_end - 30):
            writer.write(events[index], key=events[index]["dim_id"])
            index += 1
        clock.advance_to(float(chunk_end))
        pipeline.pump()
    while index < len(events):
        writer.write(events[index], key=events[index]["dim_id"])
        index += 1
    pipeline.run_until_quiescent()
    pipeline.checkpoint_all()
    pipeline.run_until_quiescent()

    print(f"\njoiner cache hit rate: {pipeline.joiner_cache_hit_rate():.1%} "
          "(input sharded by dim_id, so each task's cache stays hot)")
    print(f"classifier service calls: {pipeline.classifier.calls} "
          f"for {len(events)} events")

    for window_start in pipeline.ranker.windows("top_events_5min"):
        print(f"\ntrending in window t={window_start:.0f}s:")
        for rank, row in enumerate(pipeline.ranker.top_events(
                5, window_start), start=1):
            score = row["score"][0] if row["score"] else float("nan")
            print(f"  #{rank} {row['event']:<10} score {score:.2f}")
    last = max(pipeline.ranker.windows("top_events_5min"))
    winner = pipeline.ranker.top_events(1, last)[0]["event"]
    print(f"\nground truth burst topic: science; pipeline found: {winner}")


if __name__ == "__main__":
    main()
