"""Model-based property tests for the distributed stores.

ZippyDb and HBase must agree with trivial dict models under arbitrary
operation interleavings — including ZippyDb replica kills/revives, which
must never lose acknowledged writes while a quorum survives.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import StoreUnavailable
from repro.runtime.clock import SimClock
from repro.storage.hbase import HBaseTable
from repro.storage.merge import CounterMergeOperator
from repro.storage.zippydb import ZippyDb

keys = st.sampled_from([f"k{i}" for i in range(6)])

zippy_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, st.integers(-50, 50)),
        st.tuples(st.just("delete"), keys, st.none()),
        st.tuples(st.just("merge"), keys, st.integers(-5, 5)),
        st.tuples(st.just("kill"), st.integers(0, 2), st.integers(0, 2)),
        st.tuples(st.just("revive"), st.integers(0, 2), st.integers(0, 2)),
    ),
    min_size=1, max_size=50,
)


@settings(max_examples=60, deadline=None)
@given(ops=zippy_ops)
def test_zippydb_matches_model_under_replica_churn(ops):
    db = ZippyDb(num_shards=3, replication_factor=3,
                 merge_operator=CounterMergeOperator(), clock=SimClock())
    model: dict[str, int] = {}
    for op, a, b in ops:
        if op == "kill":
            db.kill_replica(a, b)
        elif op == "revive":
            if not db._shards[a].alive[b]:
                try:
                    db.revive_replica(a, b)
                except StoreUnavailable:
                    pass  # no live peer to catch up from
        else:
            try:
                if op == "put":
                    db.put(a, b)
                    model[a] = b
                elif op == "delete":
                    db.delete(a)
                    model.pop(a, None)
                else:
                    db.merge(a, b)
                    model[a] = model.get(a, 0) + b
            except StoreUnavailable:
                pass  # rejected writes must not change the model
    # Reads require a live replica per shard; revive everything first.
    for shard in range(3):
        for replica in range(3):
            if not db._shards[shard].alive[replica]:
                try:
                    db.revive_replica(shard, replica)
                except StoreUnavailable:
                    pass
    for key in [f"k{i}" for i in range(6)]:
        try:
            assert db.get(key) == model.get(key)
        except StoreUnavailable:
            pass  # an entire shard died; no consistency claim possible


hbase_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, st.integers(0, 100)),
        st.tuples(st.just("increment"), keys, st.integers(1, 5)),
        st.tuples(st.just("delete"), keys, st.none()),
    ),
    min_size=1, max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=hbase_ops)
def test_hbase_matches_model(ops):
    table = HBaseTable("t")
    model: dict[str, dict] = {}
    for op, key, value in ops:
        if op == "put":
            table.put(key, {"v": value})
            model.setdefault(key, {})["v"] = value
        elif op == "increment":
            table.increment(key, "count", value)
            row = model.setdefault(key, {})
            row["count"] = row.get("count", 0) + value
        else:
            table.delete_row(key)
            model.pop(key, None)
    for key in [f"k{i}" for i in range(6)]:
        assert table.get(key) == model.get(key)
    # Scans agree with the model and are sorted.
    scanned = list(table.scan())
    assert [k for k, _ in scanned] == sorted(model)
    assert dict(scanned) == model
