"""The macro chaos campaign: faults versus the whole Figure 1 pipeline.

The unit campaign (test_chaos_campaign) stresses one task; this one
stresses the *composition*: Scribe in, a live-rebalancing sharded Stylus
topology over four buckets, outputs flowing onward to a Laser view and
a Scuba ingest tail. One seeded draw schedules process crashes, HDFS
outages, and network partitions; on top of that the topology splits and
merges on a timer, and the rebalance transfer window itself sometimes
loses HDFS (the handoff falls back to fresh replay — the cross-layer
path where credits, offsets, and state must all reset *together*).

After the guaranteed-healed tail, the semantics lattice must hold at
every layer it is entitled to:

- **at-least-once**: no bucket lost an event (count >= written), and the
  keyed Laser view *converges to complete* — duplicates collapse on the
  key, which is the paper's idempotent-downstream story;
- **at-most-once**: no double counts (count <= written), and the output
  stream — emitted only after checkpoints — never carries more than one
  copy, so the Scuba tail (itself at-most-once) stores at most TOTAL;
- **exactly-once**: counts exact, and the transactionally committed
  outputs contain every sequence number exactly once;
- fault accounting: every injected ``StoreUnavailable`` was seen by a
  retry layer, and every retry give-up surfaces as a visible degraded
  event (skipped backup, deferred checkpoint, or a fresh-replay
  adoption fallback).
"""

import pytest

from repro.core.event import Event
from repro.core.semantics import SemanticsPolicy
from repro.laser.service import LaserTable
from repro.runtime.clock import SimClock
from repro.runtime.cluster import Cluster
from repro.runtime.failures import FailurePlan, Network
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.retry import RetryPolicy
from repro.runtime.rng import make_rng
from repro.runtime.scheduler import Scheduler
from repro.runtime.topology import ShardedTopology, stylus_worker_factory
from repro.scribe.reader import CategoryReader
from repro.scribe.store import ScribeStore
from repro.scuba.ingest import ScubaIngester
from repro.scuba.table import ScubaTable
from repro.storage.backup import BackupEngine
from repro.storage.hdfs import HdfsBlobStore
from repro.stylus.checkpointing import (CheckpointPolicy, CrashInjector,
                                        CrashPoint)
from repro.stylus.processor import Output, StatefulProcessor

TOTAL = 320
HORIZON = 120.0
NUM_BUCKETS = 4
POLICY = RetryPolicy(max_attempts=3, base_delay=0.5, multiplier=2.0,
                     max_delay=4.0, jitter=0.1)

SEMANTICS = [SemanticsPolicy.at_least_once(), SemanticsPolicy.at_most_once(),
             SemanticsPolicy.exactly_once()]


class CountAndEmit(StatefulProcessor):
    """Count per bucket and forward every event downstream."""

    def initial_state(self) -> dict[str, int]:
        return {"count": 0}

    def process(self, event: Event, state: dict[str, int]) -> list[Output]:
        state["count"] += 1
        return [Output(event.to_record(), key=str(event["seq"]))]


def build_world(seed, semantics):
    clock = SimClock()
    scheduler = Scheduler(clock)
    metrics = MetricsRegistry()
    network = Network()
    cluster = Cluster()
    for i in range(6):
        cluster.add_machine(f"m{i}")
    scribe = ScribeStore(clock=clock, metrics=metrics)
    scribe.create_category("wide_in", NUM_BUCKETS)
    scribe.create_category("wide_out", NUM_BUCKETS)
    # A gate on the input so every rebalance also exercises the credit
    # reconciliation path (generous: the producer must never block here).
    scribe.enable_backpressure("wide_in", max_outstanding=10_000)
    hdfs = HdfsBlobStore(clock=clock, metrics=metrics, name="hdfs",
                         network=network, link=("app", "hdfs"))
    engine = BackupEngine(hdfs, retry=POLICY, metrics=metrics)
    # Crash inside the vulnerable window between the two checkpoint
    # saves (shared across all tasks): this is where at-least-once can
    # double-count state and at-most-once can lose outputs — clean
    # between-pump crashes always replay exactly and would prove little.
    injector = CrashInjector()
    arm_rng = make_rng(seed, "macro-armed")
    for _ in range(2):
        injector.arm(CrashPoint.AFTER_FIRST_SAVE, arm_rng.randrange(1, 10))
    topology = ShardedTopology(
        "wide", cluster, scribe, "wide_in", 2,
        stylus_worker_factory(
            scribe, "wide_in", CountAndEmit, engine, state_prefix="wide",
            semantics=semantics, output_category="wide_out",
            checkpoint_policy=CheckpointPolicy(every_n_events=20),
            clock=clock, metrics=metrics, retry_policy=POLICY,
            crash_injector=injector),
        metrics=metrics,
    )
    laser = LaserTable("wide_view", ["seq"], ["event_time"],
                       clock=clock, metrics=metrics)
    laser.tail_scribe(scribe, "wide_out")
    scuba = ScubaIngester(scribe, "wide_out",
                          ScubaTable("wide_scuba"), metrics=metrics)
    return (clock, scheduler, metrics, network, cluster, scribe, hdfs,
            topology, laser, scuba)


def any_crashed(topology):
    return any(
        topology.worker(shard_name).task(bucket).crashed
        for shard_name in topology.shard_names()
        for bucket in topology.worker(shard_name).buckets())


def restart_crashed_tasks(topology):
    """Bring individually crashed tasks back up on running processes."""
    for shard_name in topology.shard_names():
        if not topology.process(shard_name).running:
            continue
        worker = topology.worker(shard_name)
        for bucket in worker.buckets():
            task = worker.task(bucket)
            if task.crashed:
                task.restart()


def run_campaign(seed, semantics):
    (clock, scheduler, metrics, network, cluster, scribe, hdfs,
     topology, laser, scuba) = build_world(seed, semantics)

    written = [0]

    def feed():
        for _ in range(10):
            if written[0] >= TOTAL:
                return
            scribe.write_record(
                "wide_in", {"event_time": clock.now(), "seq": written[0]},
                key=str(written[0]))
            written[0] += 1

    scheduler.every(3.0, feed)
    scheduler.every(2.5, lambda: topology.pump_all(60))
    scheduler.every(5.0, lambda: restart_crashed_tasks(topology))
    scheduler.every(4.0, lambda: (laser.pump(1000), scuba.pump(1000)))

    # The seeded chaos draw: crashes for the two permanent shards, HDFS
    # outages, and app<->HDFS partitions. Everything heals by HORIZON-10.
    plan = FailurePlan.random_chaos(
        HORIZON - 10.0, make_rng(seed, "macro-chaos"),
        processes=("wide-s000", "wide-s001"),
        stores=("hdfs",),
        links=[("app", "hdfs")],
        crash_rate=0.03, downtime=4.0,
        outage_rate=0.05, mean_outage=5.0,
        partition_rate=0.04, mean_partition=4.0)
    plan.install(scheduler, cluster=cluster, stores={"hdfs": hdfs},
                 network=network)

    # Live reshaping while all of that is happening — and sometimes the
    # transfer window itself loses HDFS, forcing fresh-replay adoption.
    shape_rng = make_rng(seed, "macro-shape")

    def hook(phase):
        if phase == "transfer" and shape_rng.random() < 0.4:
            hdfs.set_available(False)
            scheduler.after(6.0, lambda: hdfs.set_available(True))

    topology.rebalance_fault_hook = hook

    def reshape():
        target = shape_rng.choice((2, 3, 4))
        if target != topology.num_shards:
            topology.rebalance(target)

    scheduler.every(15.0, reshape)

    scheduler.run_until(HORIZON)

    # Guaranteed-healed tail: heal defensively, then drain every layer.
    network.heal_all()
    hdfs.set_available(True)
    for shard_name in topology.shard_names():
        process = topology.process(shard_name)
        if not process.running:
            cluster.restart_process(shard_name)
    restart_crashed_tasks(topology)
    while True:
        pumped = topology.pump_all(10_000)
        restart_crashed_tasks(topology)
        if pumped == 0 and topology.lag_messages() == 0:
            topology.checkpoint_all()  # may trip a still-armed injector
            if not any_crashed(topology):
                break
            restart_crashed_tasks(topology)
    while laser.pump(10_000):
        pass
    while scuba.pump(10_000):
        pass
    assert written[0] == TOTAL
    return metrics, scribe, topology, laser, scuba


def state_count(topology):
    total = 0
    for shard_name in topology.shard_names():
        worker = topology.worker(shard_name)
        for bucket in worker.buckets():
            state, _ = worker.task(bucket).state_backend.load()
            if state is not None:
                total += state["count"]
    return total


def committed_seqs(topology):
    seqs = []
    for shard_name in topology.shard_names():
        worker = topology.worker(shard_name)
        for bucket in worker.buckets():
            backend = worker.task(bucket).state_backend
            seqs.extend(r["seq"] for r in backend.committed_outputs())
    return sorted(seqs)


def output_messages(scribe):
    return len(CategoryReader(scribe, "wide_out").read_all())


def assert_accounting(metrics):
    snapshot = metrics.snapshot()

    def total(suffix):
        return sum(value for name, value in snapshot.items()
                   if name.endswith(suffix))

    injected = total(".unavailable_errors")
    failures = total(".retry.failures")
    assert injected == failures, (
        f"{injected} StoreUnavailable raised but only {failures} seen by "
        "a retry layer: some failure path is silent")
    give_ups = total(".retry.give_ups")
    skipped = snapshot.get("backup.snapshot.skipped", 0)
    deferred = total(".checkpoints_deferred")
    dropped = total(".partials_dropped")
    fallbacks = snapshot.get("topology.wide.adopt_fallbacks", 0)
    # Each skipped backup, deferred checkpoint, and dropped partial IS a
    # give-up; the only other give-up source is a failed restore, which
    # surfaces as an adoption fallback (fallbacks also cover the
    # no-retry BackupNotFound path, hence the upper bound).
    assert skipped + deferred + dropped <= give_ups, (
        f"{give_ups} give-ups cannot explain {skipped}+{deferred}+{dropped} "
        "degraded events")
    assert give_ups <= skipped + deferred + dropped + fallbacks, (
        f"{give_ups} retry give-ups but only "
        f"{skipped + deferred + dropped + fallbacks} degraded-mode events "
        "counted: a give-up vanished without a visible fallback")


class TestMacroChaosCampaign:
    @pytest.mark.parametrize("seed", range(10))
    def test_lattice_holds_across_the_full_pipeline(self, seed):
        for semantics in SEMANTICS:
            metrics, scribe, topology, laser, scuba = run_campaign(
                seed, semantics)
            count = state_count(topology)
            label = f"seed={seed} semantics={semantics.state.value}"
            if semantics == SemanticsPolicy.at_least_once():
                assert count >= TOTAL, f"{label}: lost events ({count})"
                # Duplicates collapse on the Laser key: the view converges.
                present = sum(1 for i in range(TOTAL)
                              if laser.get(i) is not None)
                assert present == TOTAL, (
                    f"{label}: Laser view incomplete ({present}/{TOTAL})")
                assert output_messages(scribe) >= TOTAL
            elif semantics == SemanticsPolicy.at_most_once():
                assert count <= TOTAL, f"{label}: doubled events ({count})"
                published = output_messages(scribe)
                assert published <= TOTAL, (
                    f"{label}: at-most-once output duplicated ({published})")
                assert scuba.table.row_count() <= published
            else:
                assert count == TOTAL, f"{label}: expected exact ({count})"
                assert committed_seqs(topology) == list(range(TOTAL)), (
                    f"{label}: committed outputs are not exactly-once")
            assert_accounting(metrics)

    def test_campaign_actually_stresses_the_composition(self):
        """Meta-check: the schedules exercise the cross-layer machinery.
        Rebalances fire while faults are live, some transfer window
        loses HDFS and forces a fresh-replay adoption, at-least-once
        replay produces downstream duplicates, and at-most-once crashes
        lose pending outputs. If these stop happening the campaign has
        gone soft."""
        rebalances = 0.0
        fallbacks = 0.0
        injected = 0.0
        alo_duplicates = 0
        amo_losses = 0
        for seed in range(10):
            metrics, scribe, topology, _, _ = run_campaign(seed, SEMANTICS[0])
            snapshot = metrics.snapshot()
            rebalances += snapshot.get("topology.wide.rebalances", 0)
            fallbacks += snapshot.get("topology.wide.adopt_fallbacks", 0)
            injected += sum(v for n, v in snapshot.items()
                            if n.endswith(".unavailable_errors"))
            if output_messages(scribe) > TOTAL:
                alo_duplicates += 1
            _, scribe, topology, _, _ = run_campaign(seed, SEMANTICS[1])
            if (state_count(topology) < TOTAL
                    or output_messages(scribe) < TOTAL):
                amo_losses += 1
        assert rebalances > 10, "the topology barely reshaped"
        assert fallbacks > 0, "no transfer window ever forced fresh replay"
        assert injected > 20, "chaos plans barely injected anything"
        assert alo_duplicates > 0, "replay never duplicated downstream"
        assert amo_losses > 0, "no at-most-once crash ever dropped events"
