"""Property test: Puma aggregation vs a naive reference implementation.

For randomized event streams and a fixed multi-aggregate query, the Puma
app's windowed results must equal a direct dict-based computation —
regardless of bucket count, write order, or checkpoint cadence.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.clock import SimClock
from repro.scribe.store import ScribeStore
from repro.storage.hbase import HBaseTable

SOURCE = """
CREATE APPLICATION prop;
CREATE INPUT TABLE t(event_time, grp, v) FROM SCRIBE("cat") TIME event_time;
CREATE TABLE agg AS
SELECT grp, count(*) AS n, sum(v) AS total, min(v) AS low, max(v) AS high
FROM t [60 seconds];
"""

events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
        st.sampled_from(["a", "b", "c"]),
        st.integers(-100, 100),
    ),
    min_size=1, max_size=80,
)


def reference(rows):
    result: dict[tuple[float, str], dict] = {}
    for event_time, grp, v in rows:
        window = math.floor(event_time / 60.0) * 60.0
        cell = result.setdefault((window, grp), {
            "n": 0, "total": 0, "low": None, "high": None,
        })
        cell["n"] += 1
        cell["total"] += v
        cell["low"] = v if cell["low"] is None else min(cell["low"], v)
        cell["high"] = v if cell["high"] is None else max(cell["high"], v)
    return result


@settings(max_examples=50, deadline=None)
@given(rows=events, buckets=st.integers(1, 4),
       checkpoint_every=st.integers(1, 40))
def test_puma_matches_reference(rows, buckets, checkpoint_every):
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("cat", buckets)
    app = PumaApp(plan(parse(SOURCE)), scribe, HBaseTable("s"),
                  checkpoint_every_events=checkpoint_every, clock=clock)
    for index, (event_time, grp, v) in enumerate(rows):
        scribe.write_record("cat", {"event_time": event_time, "grp": grp,
                                    "v": v}, key=str(index))
    app.pump(10_000)

    expected = reference(rows)
    actual = {
        (row["window_start"], row["grp"]): {
            "n": row["n"], "total": row["total"],
            "low": row["low"], "high": row["high"],
        }
        for row in app.query("agg")
    }
    assert actual == expected


@settings(max_examples=30, deadline=None)
@given(rows=events)
def test_puma_crash_replay_still_matches_reference(rows):
    """A full crash + replay (no checkpoint) must rebuild identically."""
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("cat", 2)
    app = PumaApp(plan(parse(SOURCE)), scribe, HBaseTable("s"),
                  checkpoint_every_events=10_000, clock=clock)
    for index, (event_time, grp, v) in enumerate(rows):
        scribe.write_record("cat", {"event_time": event_time, "grp": grp,
                                    "v": v}, key=str(index))
    app.pump(10_000)
    app.crash()
    app.restart()
    app.pump(10_000)
    actual = {
        (row["window_start"], row["grp"]): row["n"]
        for row in app.query("agg")
    }
    expected = {key: cell["n"] for key, cell in reference(rows).items()}
    assert actual == expected
