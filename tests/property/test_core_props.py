"""Property tests for windows, sharding, watermarks, and serde."""

from hypothesis import given, settings, strategies as st

from repro import serde
from repro.core.sharding import shard_for_key
from repro.core.watermark import WatermarkEstimator
from repro.core.windows import SlidingWindow, TumblingWindow

times = st.floats(min_value=0.0, max_value=1e7, allow_nan=False,
                  allow_infinity=False)


class TestWindowProperties:
    @settings(max_examples=100)
    @given(event_time=times, size=st.floats(0.1, 1e4))
    def test_tumbling_window_contains_its_event(self, event_time, size):
        window = TumblingWindow(size).window_containing(event_time)
        assert window.start <= event_time < window.end + 1e-6

    @settings(max_examples=100)
    @given(event_time=times,
           slide=st.floats(0.1, 100.0),
           multiplier=st.integers(1, 10))
    def test_sliding_assignment_covers_exactly_the_overlaps(
            self, event_time, slide, multiplier):
        size = slide * multiplier
        windows = SlidingWindow(size, slide).assign(event_time)
        assert 1 <= len(windows) <= multiplier + 1
        for window in windows:
            assert window.start <= event_time
            assert event_time < window.end + 1e-6


class TestShardingProperties:
    @settings(max_examples=100)
    @given(key=st.text(min_size=0, max_size=30),
           num_shards=st.integers(1, 128))
    def test_shard_in_range_and_stable(self, key, num_shards):
        shard = shard_for_key(key, num_shards)
        assert 0 <= shard < num_shards
        assert shard == shard_for_key(key, num_shards)


class TestWatermarkProperties:
    @settings(max_examples=50, deadline=None)
    @given(event_times=st.lists(times, min_size=1, max_size=300),
           confidence=st.floats(0.5, 1.0))
    def test_watermark_monotone_and_bounded(self, event_times, confidence):
        estimator = WatermarkEstimator(sample_size=64)
        previous = None
        for event_time in event_times:
            estimator.observe(event_time)
            mark = estimator.low_watermark(confidence)
            assert mark <= estimator.max_event_time() + 1e-9
            if previous is not None:
                assert mark >= previous
            previous = mark


json_values = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(-1e6, 1e6),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=20)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)


class TestSerdeProperties:
    @settings(max_examples=100)
    @given(record=st.dictionaries(st.text(min_size=1, max_size=10),
                                  json_values, max_size=6))
    def test_round_trip(self, record):
        assert serde.decode(serde.encode(record)) == record
