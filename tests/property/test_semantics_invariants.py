"""Property-based tests: semantics invariants under arbitrary crashes.

For ANY crash schedule (any vulnerable point, any checkpoint):

- at-least-once state: the final count never undercounts;
- at-most-once state: the final count never overcounts;
- exactly-once: the final count is exact and output has no duplicates.

This is the paper's Section 4.3 contract, checked exhaustively-ish.
"""

from hypothesis import given, settings, strategies as st

from repro.core.semantics import SemanticsPolicy
from repro.runtime.clock import SimClock
from repro.scribe.store import ScribeStore
from repro.stylus.checkpointing import CheckpointPolicy, CrashInjector, CrashPoint
from repro.stylus.engine import StylusTask

from tests.stylus.helpers import CountingProcessor

TOTAL = 60
EVERY = 7  # deliberately not a divisor of TOTAL

crash_points = st.sampled_from(list(CrashPoint))
crash_schedules = st.lists(
    st.tuples(crash_points, st.integers(min_value=1, max_value=10)),
    max_size=3, unique=True,
)


def run_with_crashes(semantics, schedule):
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    scribe.create_category("out", 1)
    injector = CrashInjector()
    for point, index in schedule:
        injector.arm(point, index)
    task = StylusTask("c", scribe, "in", 0, CountingProcessor(),
                      semantics=semantics,
                      checkpoint_policy=CheckpointPolicy(every_n_events=EVERY),
                      output_category="out", clock=clock,
                      crash_injector=injector)
    for i in range(TOTAL):
        scribe.write_record("in", {"event_time": float(i), "seq": i})
    for _ in range(100):
        if task.crashed:
            task.restart()
            continue
        task.pump()
        if task.crashed or task.lag_messages() > 0:
            continue
        task.checkpoint_now()
        if not task.crashed:
            break
    assert not task.crashed, "crash schedule never drained"
    return task


@settings(max_examples=40, deadline=None)
@given(schedule=crash_schedules)
def test_at_least_once_never_undercounts(schedule):
    task = run_with_crashes(SemanticsPolicy.at_least_once(), schedule)
    assert task.state["count"] >= TOTAL


@settings(max_examples=40, deadline=None)
@given(schedule=crash_schedules)
def test_at_most_once_never_overcounts(schedule):
    task = run_with_crashes(SemanticsPolicy.at_most_once(), schedule)
    assert task.state["count"] <= TOTAL


@settings(max_examples=40, deadline=None)
@given(schedule=crash_schedules)
def test_exactly_once_is_exact(schedule):
    task = run_with_crashes(SemanticsPolicy.exactly_once(), schedule)
    assert task.state["count"] == TOTAL


@settings(max_examples=40, deadline=None)
@given(schedule=crash_schedules)
def test_exactly_once_output_monotone_without_duplicates(schedule):
    task = run_with_crashes(SemanticsPolicy.exactly_once(), schedule)
    counts = [o["count"] for o in task.state_backend.committed_outputs()]
    assert counts == sorted(counts)
    # Counter output only repeats when a forced checkpoint emits the same
    # total again; within the committed (transactional) log every index
    # is unique, so strictly: no value may DECREASE, and the last is TOTAL.
    assert counts[-1] == TOTAL
