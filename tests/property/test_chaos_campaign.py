"""The chaos campaign: random fault schedules versus the paper invariants.

Each run builds a small world — Scribe in, a Stylus counter task, a
state backend, HDFS snapshots/backups, a network — subjects it to a
seed-derived schedule of store outages, network partitions, slow nodes,
and process crashes, then heals everything, drains, and checks:

- at-least-once never loses an event (final count >= events written);
- at-most-once never double-counts (final count <= events written);
- exactly-once matches the fault-free answer (final count == written);
- every injected ``StoreUnavailable`` is accounted for: the stores'
  ``unavailable_errors`` equal the retry layers' ``failures``, and every
  retry give-up surfaces as exactly one degraded-mode counter (skipped
  backup/snapshot, deferred checkpoint, dropped partials, deferred
  restart). Nothing is silently dropped.

18 seeds x 3 semantics = 54 schedules, per the acceptance floor of 50.
"""

import pytest

from repro.core.semantics import SemanticsPolicy
from repro.errors import StoreUnavailable
from repro.runtime.clock import SimClock
from repro.runtime.failures import FailurePlan, Network
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.retry import RETRYABLE, RetryPolicy
from repro.runtime.rng import make_rng
from repro.runtime.scheduler import Scheduler
from repro.scribe.store import ScribeStore
from repro.storage.backup import BackupEngine
from repro.storage.hdfs import HdfsBlobStore
from repro.storage.merge import DictSumMergeOperator
from repro.storage.zippydb import ZippyDb, ZippyDbLatencyModel
from repro.stylus.checkpointing import (CheckpointPolicy, CrashInjector,
                                        CrashPoint)
from repro.stylus.engine import StylusTask
from repro.stylus.state import (InMemoryStateBackend, LocalDbStateBackend,
                                RemoteDbStateBackend)

from tests.stylus.helpers import CountingProcessor, DimensionCounter

TOTAL = 240
HORIZON = 120.0
FREE = ZippyDbLatencyModel(read=0.0, write=0.0, batch_overhead=0.0,
                           per_item=0.0, transaction_round=0.0)
POLICY = RetryPolicy(max_attempts=3, base_delay=0.5, multiplier=2.0,
                     max_delay=4.0, jitter=0.1)

SEMANTICS = [SemanticsPolicy.at_least_once(), SemanticsPolicy.at_most_once(),
             SemanticsPolicy.exactly_once()]


def build_world(seed, semantics):
    clock = SimClock()
    scheduler = Scheduler(clock)
    metrics = MetricsRegistry()
    network = Network()
    scribe = ScribeStore(clock=clock, metrics=metrics)
    scribe.create_category("in", 1)
    hdfs = HdfsBlobStore(clock=clock, metrics=metrics, name="hdfs",
                         network=network, link=("app", "hdfs"))
    db = ZippyDb(clock=clock, latency=FREE, metrics=metrics, name="zippydb",
                 merge_operator=DictSumMergeOperator(),
                 network=network, link=("app", "zippydb"))
    engine = BackupEngine(hdfs, retry=POLICY, metrics=metrics)
    variant = seed % 3
    if variant == 0:
        backend = InMemoryStateBackend("t")
    elif variant == 1:
        backend = LocalDbStateBackend("t", {}, backup_engine=engine,
                                      merge_operator=DictSumMergeOperator())
    else:
        backend = RemoteDbStateBackend("t", db)
    processor = CountingProcessor() if seed % 2 == 0 else DimensionCounter()
    # Crash inside the vulnerable window between the two checkpoint
    # saves (Figure 7's experiment) — this is where at-least-once can
    # double-count and at-most-once can lose, so the invariants are
    # stressed for real, not just by clean between-pump crashes.
    injector = CrashInjector()
    arm_rng = make_rng(seed, "armed")
    for _ in range(2):
        injector.arm(CrashPoint.AFTER_FIRST_SAVE, arm_rng.randrange(1, 10))
    task = StylusTask("t", scribe, "in", 0, processor, semantics=semantics,
                      state_backend=backend,
                      checkpoint_policy=CheckpointPolicy(every_n_events=20),
                      clock=clock, metrics=metrics, retry_policy=POLICY,
                      crash_injector=injector)
    return (clock, scheduler, metrics, network, scribe, hdfs, db, engine,
            backend, task)


def run_campaign(seed, semantics):
    (clock, scheduler, metrics, network, scribe, hdfs, db, engine,
     backend, task) = build_world(seed, semantics)
    counts = {"restart_deferred": 0}

    # Feed the input gradually so faults overlap live processing.
    written = [0]

    def feed():
        for _ in range(8):
            if written[0] >= TOTAL:
                return
            scribe.write_record(
                "in", {"event_time": clock.now(), "seq": written[0]},
                key=str(written[0]))
            written[0] += 1

    scheduler.every(3.0, feed)
    scheduler.every(10.0, lambda: scribe.snapshot_to(hdfs, retry=POLICY))
    if isinstance(backend, LocalDbStateBackend):
        scheduler.every(15.0, backend.maybe_backup)

    # Store outages, partitions, and slow nodes from one seeded draw.
    plan = FailurePlan.random_chaos(
        HORIZON - 10.0, make_rng(seed, "chaos"),
        stores=("hdfs", "zippydb"),
        links=[("app", "hdfs"), ("app", "zippydb")],
        outage_rate=0.06, mean_outage=5.0,
        partition_rate=0.04, mean_partition=4.0)
    plan.install(scheduler, stores={"hdfs": hdfs, "zippydb": db},
                 network=network)

    # Process crashes, restarted with a retry-later loop: a restart that
    # cannot load its checkpoint defers, visibly, and tries again.
    crash_rng = make_rng(seed, "crashes")

    def attempt_restart():
        if not task.crashed:
            return
        try:
            task.restart()
        except RETRYABLE:
            counts["restart_deferred"] += 1
            scheduler.after(3.0, attempt_restart)

    def pump():
        if task.crashed:
            attempt_restart()  # covers injector-fired mid-checkpoint crashes
        else:
            task.pump(60)

    scheduler.every(2.5, pump)

    def schedule_crash(at):
        def fire():
            task.crash()
            scheduler.after(2.0, attempt_restart)
        scheduler.at(at, fire)

    for _ in range(1 + crash_rng.randrange(3)):
        schedule_crash(crash_rng.uniform(5.0, HORIZON - 15.0))

    scheduler.run_until(HORIZON)

    # Guaranteed-healed tail: the plan closed every window by the
    # horizon; clear latches/partitions defensively and drain.
    network.heal_all()
    hdfs.set_available(True)
    db.set_available(True)
    while task.crashed:
        task.restart()
    while True:
        task.pump(10_000)
        if task.crashed:
            task.restart()
            continue
        if task.lag_messages() == 0:
            task.checkpoint_now()
            if task.crashed:  # a still-armed injector fired here
                task.restart()
                continue
            break
    assert written[0] == TOTAL
    return metrics, counts, backend, task


def final_count(backend, task):
    if isinstance(task.processor, CountingProcessor):
        state, _ = backend.load()
        return state["count"]
    return sum((backend.read_value(f"dim{i}") or {}).get("count", 0)
               for i in range(10))


def assert_accounting(metrics, counts):
    snapshot = metrics.snapshot()

    def total(suffix):
        return sum(value for name, value in snapshot.items()
                   if name.endswith(suffix))

    injected = total(".unavailable_errors")
    failures = total(".retry.failures")
    assert injected == failures, (
        f"{injected} StoreUnavailable raised but only {failures} seen by "
        "a retry layer: some failure path is silent")
    give_ups = total(".retry.give_ups")
    degraded = (snapshot.get("backup.snapshot.skipped", 0)
                + snapshot.get("scribe.snapshot.skipped", 0)
                + snapshot.get("stylus.t.checkpoints_deferred", 0)
                + snapshot.get("stylus.t.partials_dropped", 0)
                + counts["restart_deferred"])
    assert give_ups == degraded, (
        f"{give_ups} retry give-ups but {degraded} degraded-mode events "
        "counted: a give-up vanished without a visible fallback")


class TestChaosCampaign:
    @pytest.mark.parametrize("seed", range(18))
    def test_invariants_hold_under_random_fault_schedules(self, seed):
        for semantics in SEMANTICS:
            metrics, counts, backend, task = run_campaign(seed, semantics)
            count = final_count(backend, task)
            label = f"seed={seed} semantics={semantics.state.value}"
            if semantics == SemanticsPolicy.at_least_once():
                assert count >= TOTAL, f"{label}: lost events ({count})"
            elif semantics == SemanticsPolicy.at_most_once():
                assert count <= TOTAL, f"{label}: doubled events ({count})"
            else:
                assert count == TOTAL, f"{label}: expected exact ({count})"
            assert_accounting(metrics, counts)

    def test_campaign_actually_injects_faults(self):
        """Meta-check: the schedules are not vacuous. Faults fired, some
        retry budget was exhausted somewhere, and the semantics branches
        discriminate — some schedule made at-least-once over-count and
        some schedule made at-most-once under-count. If these stop
        happening the campaign has gone soft and proves nothing."""
        injected = 0
        give_ups = 0
        overcounts = 0
        undercounts = 0
        for seed in range(18):
            metrics, _, backend, task = run_campaign(seed, SEMANTICS[0])
            if final_count(backend, task) > TOTAL:
                overcounts += 1
            snapshot = metrics.snapshot()
            injected += sum(v for n, v in snapshot.items()
                            if n.endswith(".unavailable_errors"))
            give_ups += sum(v for n, v in snapshot.items()
                            if n.endswith(".retry.give_ups"))
            _, _, backend, task = run_campaign(seed, SEMANTICS[1])
            if final_count(backend, task) < TOTAL:
                undercounts += 1
        assert injected > 20, "chaos plans barely injected anything"
        assert give_ups > 0, "no schedule ever exhausted a retry budget"
        assert overcounts > 0, "no at-least-once replay ever double-counted"
        assert undercounts > 0, "no at-most-once crash ever dropped events"
