"""Chaos schedules against live shard rebalancing.

Each run drives a :class:`~repro.runtime.topology.ShardedTopology` of
Stylus counter tasks through a mid-stream split (2 -> 4 shards) and a
later merge (4 -> 2) while events keep flowing, with three kinds of
trouble layered on top:

- the shard owning moving buckets is **killed inside the transfer
  window** (via ``rebalance_fault_hook``), exactly where a botched
  handoff would lose or double state;
- seed-scheduled HDFS outages hit the backup engine the handoff rides
  on, so some releases travel on an older snapshot;
- a crash injector fires between the two checkpoint saves (the
  Figure 7 window), which is what actually discriminates the three
  delivery semantics.

After healing and draining, the summed per-bucket counts must respect
the semantics lattice: at-least-once never loses (>= total written),
at-most-once never doubles (<= total), exactly-once is exact.
"""

import pytest

from repro.core.semantics import SemanticsPolicy
from repro.runtime.clock import SimClock
from repro.runtime.cluster import Cluster
from repro.runtime.failures import FailurePlan, Network
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.retry import RetryPolicy
from repro.runtime.rng import make_rng
from repro.runtime.scheduler import Scheduler
from repro.runtime.topology import ShardedTopology, stylus_worker_factory
from repro.scribe.store import ScribeStore
from repro.storage.backup import BackupEngine
from repro.storage.hdfs import HdfsBlobStore
from repro.stylus.checkpointing import (CheckpointPolicy, CrashInjector,
                                        CrashPoint)

from tests.stylus.helpers import CountingProcessor

TOTAL = 240
HORIZON = 120.0
NUM_BUCKETS = 8
POLICY = RetryPolicy(max_attempts=3, base_delay=0.5, multiplier=2.0,
                     max_delay=4.0, jitter=0.1)
SEMANTICS = [SemanticsPolicy.at_least_once(), SemanticsPolicy.at_most_once(),
             SemanticsPolicy.exactly_once()]


def any_crashed(topology: ShardedTopology) -> bool:
    return any(topology.worker(shard).task(bucket).crashed
               for shard in topology.shard_names()
               for bucket in topology.worker(shard).buckets())


def revive(cluster: Cluster, topology: ShardedTopology) -> None:
    """Restart dead shard processes and injector-crashed tasks."""
    for shard_name in topology.shard_names():
        if not topology.process(shard_name).running:
            cluster.restart_process(shard_name)
        # A task the injector killed inside a live process stays down
        # until someone restarts it; the process-level callback only
        # covers whole-process crashes.
        topology.worker(shard_name).handle_restart()


def final_count(topology: ShardedTopology) -> int:
    total = 0
    for shard_name in topology.shard_names():
        worker = topology.worker(shard_name)
        for bucket in worker.buckets():
            state, _ = worker.task(bucket).state_backend.load()
            if state is not None:
                total += state["count"]
    return total


def run_schedule(seed: int, semantics: SemanticsPolicy):
    clock = SimClock()
    scheduler = Scheduler(clock)
    metrics = MetricsRegistry()
    network = Network()
    cluster = Cluster()
    for i in range(4):
        cluster.add_machine(f"m{i}")
    scribe = ScribeStore(clock=clock, metrics=metrics)
    scribe.create_category("in", NUM_BUCKETS)
    hdfs = HdfsBlobStore(clock=clock, metrics=metrics, name="hdfs",
                         network=network, link=("app", "hdfs"))
    engine = BackupEngine(hdfs, retry=POLICY, metrics=metrics)

    injector = CrashInjector()
    arm_rng = make_rng(seed, "armed")
    for _ in range(2):
        injector.arm(CrashPoint.AFTER_FIRST_SAVE, arm_rng.randrange(1, 10))

    factory = stylus_worker_factory(
        scribe, "in", CountingProcessor, engine, state_prefix="t",
        semantics=semantics,
        checkpoint_policy=CheckpointPolicy(every_n_events=20),
        clock=clock, metrics=metrics, retry_policy=POLICY,
        crash_injector=injector)
    topology = ShardedTopology("t", cluster, scribe, "in", 2, factory)

    info = {"lag_at_split": 0, "moved": 0}
    written = [0]

    def feed():
        for _ in range(8):
            if written[0] >= TOTAL:
                return
            scribe.write_record(
                "in", {"event_time": clock.now(), "seq": written[0]},
                key=str(written[0]))
            written[0] += 1

    scheduler.every(3.0, feed)
    scheduler.every(2.5, lambda: topology.pump_all(60))

    # HDFS outages overlap the handoffs, so some releases find the
    # backup store down and the adopter rides an older snapshot.
    plan = FailurePlan.random_chaos(
        HORIZON - 10.0, make_rng(seed, "chaos"),
        stores=("hdfs",), links=[("app", "hdfs")],
        outage_rate=0.06, mean_outage=5.0,
        partition_rate=0.04, mean_partition=4.0)
    plan.install(scheduler, stores={"hdfs": hdfs}, network=network)

    fault_rng = make_rng(seed, "faults")

    def restart_later(shard_name, delay):
        def attempt():
            process = cluster.find_process(shard_name)
            if process is not None and not process.running:
                cluster.restart_process(shard_name)
        scheduler.after(delay, attempt)

    def split():
        info["lag_at_split"] = topology.lag_messages()

        def kill_owner(phase):
            # Mid-transfer: durable state is parked, nobody owns the
            # moving buckets, and we kill one of the shards anyway.
            victim = fault_rng.choice(topology.shard_names())
            cluster.crash_process(victim)
            restart_later(victim, 4.0)

        topology.rebalance_fault_hook = kill_owner
        info["moved"] += len(topology.rebalance(4))
        topology.rebalance_fault_hook = None

    def merge():
        info["moved"] += len(topology.rebalance(2))

    scheduler.at(fault_rng.uniform(20.0, 40.0), split)
    scheduler.at(fault_rng.uniform(60.0, 80.0), merge)

    # One plain process crash away from any rebalance.
    def crash_random():
        victim = fault_rng.choice(topology.shard_names())
        cluster.crash_process(victim)
        restart_later(victim, 3.0)

    scheduler.at(fault_rng.uniform(45.0, 55.0), crash_random)

    scheduler.run_until(HORIZON)

    # Heal everything and drain to a quiescent, fully checkpointed end.
    network.heal_all()
    hdfs.set_available(True)
    while True:
        revive(cluster, topology)
        topology.pump_all(10_000)
        if any_crashed(topology):
            continue
        if topology.lag_messages() > 0:
            continue
        topology.checkpoint_all()
        if not any_crashed(topology):  # a still-armed injector fired
            break
    assert written[0] == TOTAL
    return topology, metrics, info


class TestReshardChaos:
    @pytest.mark.parametrize("seed", range(8))
    def test_semantics_survive_mid_stream_rebalancing(self, seed):
        for semantics in SEMANTICS:
            topology, _, info = run_schedule(seed, semantics)
            count = final_count(topology)
            label = f"seed={seed} semantics={semantics.state.value}"
            assert info["moved"] > 0, f"{label}: no bucket ever moved"
            if semantics == SemanticsPolicy.at_least_once():
                assert count >= TOTAL, f"{label}: lost events ({count})"
            elif semantics == SemanticsPolicy.at_most_once():
                assert count <= TOTAL, f"{label}: doubled events ({count})"
            else:
                assert count == TOTAL, f"{label}: expected exact ({count})"

    def test_schedules_are_not_vacuous(self):
        """Meta-check: the splits really happen mid-stream (lag pending),
        crashes really fire, and the semantics branches discriminate —
        some at-least-once run over-counts and some at-most-once run
        under-counts. Otherwise the harness proves nothing."""
        mid_stream = 0
        crashes = 0
        overcounts = 0
        undercounts = 0
        for seed in range(8):
            topology, metrics, info = run_schedule(seed, SEMANTICS[0])
            if info["lag_at_split"] > 0:
                mid_stream += 1
            snapshot = metrics.snapshot()
            crashes += sum(value for name, value in snapshot.items()
                           if name.endswith(".crashes"))
            if final_count(topology) > TOTAL:
                overcounts += 1
            topology, _, _ = run_schedule(seed, SEMANTICS[1])
            if final_count(topology) < TOTAL:
                undercounts += 1
        assert mid_stream > 0, "every split happened on a drained topology"
        assert crashes > 0, "no schedule ever crashed a task"
        assert overcounts > 0, "no at-least-once replay ever double-counted"
        assert undercounts > 0, "no at-most-once crash ever dropped events"
