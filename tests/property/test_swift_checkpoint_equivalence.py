"""Property: Swift's batched delivery checkpoints exactly like the
per-message path, including under crashes at every segment boundary.

The batched path exists purely to cut per-message call overhead; it must
be observationally equivalent where it matters for correctness — the
sequence of checkpoint offsets it saves. We derive the segment
boundaries from a crash-free per-message reference run (which also makes
the byte-threshold configs self-calibrating), then crash both client
styles at each boundary and compare every offset either path ever saved.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import ProcessCrashed
from repro.runtime.clock import SimClock
from repro.scribe.checkpoints import CheckpointStore
from repro.scribe.store import ScribeStore
from repro.swift.engine import SwiftApp

from tests.conftest import write_events


class RecordingCheckpoints(CheckpointStore):
    """A checkpoint store that also records every offset ever saved."""

    def __init__(self):
        super().__init__()
        self.offsets = []

    def save(self, consumer, category, bucket, checkpoint):
        self.offsets.append(checkpoint.offset)
        super().save(consumer, category, bucket, checkpoint)


class PerMessageClient:
    def __init__(self, clock, crash_at=None):
        self.clock = clock
        self.seen = []
        self.crash_at = crash_at  # crash once, after this many deliveries

    def __call__(self, message):
        if self.crash_at is not None and len(self.seen) >= self.crash_at:
            self.crash_at = None
            raise ProcessCrashed("swift-client", self.clock.now())
        self.seen.append(message.decode()["seq"])


class BatchClient:
    """Same crash schedule, expressed at segment granularity: the call
    that would carry delivery past ``crash_at`` fails whole."""

    def __init__(self, clock, crash_at=None):
        self.clock = clock
        self.seen = []
        self.crash_at = crash_at

    def on_batch(self, messages):
        if (self.crash_at is not None
                and len(self.seen) + len(messages) > self.crash_at):
            self.crash_at = None
            raise ProcessCrashed("swift-client", self.clock.now())
        self.seen.extend(m.decode()["seq"] for m in messages)


def run(total, every_messages, every_bytes, batched, crash_at=None):
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    write_events(scribe, "in", total)
    checkpoints = RecordingCheckpoints()
    client = (BatchClient(clock, crash_at) if batched
              else PerMessageClient(clock, crash_at))
    app = SwiftApp("app", scribe, "in", 0, client, checkpoints,
                   checkpoint_every_messages=every_messages,
                   checkpoint_every_bytes=every_bytes)
    app.pump(10_000)
    crashed = app.crashed
    if crashed:
        app.restart()
        app.pump(10_000)
    assert not app.crashed and app.lag_messages() == 0
    return checkpoints.offsets, client.seen, crashed


@settings(max_examples=20, deadline=None)
@given(total=st.integers(10, 40),
       every_messages=st.integers(1, 12),
       every_bytes=st.one_of(st.none(), st.integers(30, 500)))
def test_batched_path_checkpoints_identically_under_boundary_crashes(
        total, every_messages, every_bytes):
    reference, seen, _ = run(total, every_messages, every_bytes,
                             batched=False)
    assert sorted(seen) == list(range(total))

    # Crash-free equivalence first.
    offsets, seen, _ = run(total, every_messages, every_bytes, batched=True)
    assert offsets == reference
    assert sorted(seen) == list(range(total))

    # Then a crash at every segment boundary the reference run revealed
    # (offsets are absolute; bucket history starts at 0, so the offset IS
    # the delivered-message count at that checkpoint).
    for boundary in reference:
        if boundary >= total:
            continue  # no delivery follows the final checkpoint
        results = {}
        for batched in (False, True):
            offsets, seen, crashed = run(total, every_messages, every_bytes,
                                         batched=batched, crash_at=boundary)
            assert crashed
            # At-least-once: after restart + drain, everything was seen.
            assert sorted(set(seen)) == list(range(total))
            results[batched] = offsets
        assert results[True] == results[False], (
            f"checkpoint sequences diverged for crash at {boundary}")


@settings(max_examples=10, deadline=None)
@given(total=st.integers(10, 30), every_messages=st.integers(2, 8),
       offset_in_segment=st.integers(1, 7))
def test_mid_segment_crashes_never_diverge_saved_offsets(
        total, every_messages, offset_in_segment):
    """A crash strictly inside a segment delivers partial work on the
    per-message path and none on the batched path — but neither saves a
    checkpoint for the torn segment, so the offset logs still match."""
    crash_at = min(every_messages * 2 - 1,
                   every_messages + (offset_in_segment % every_messages))
    reference, seen, _ = run(total, every_messages, None, batched=False,
                             crash_at=crash_at)
    offsets, batch_seen, _ = run(total, every_messages, None, batched=True,
                                 crash_at=crash_at)
    assert offsets == reference
    assert sorted(set(seen)) == sorted(set(batch_seen)) == list(range(total))
