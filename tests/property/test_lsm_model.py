"""Property test: the LSM store behaves like a dict + counter model.

Random interleavings of put/delete/merge/flush/compact/crash-recover must
always agree with a trivial in-memory model. This is the classic
model-based test for storage engines.
"""

from hypothesis import given, settings, strategies as st

from repro.storage.lsm import LsmStore
from repro.storage.merge import CounterMergeOperator

keys = st.sampled_from([f"k{i}" for i in range(8)])

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, st.integers(-100, 100)),
        st.tuples(st.just("delete"), keys, st.none()),
        st.tuples(st.just("merge"), keys, st.integers(-10, 10)),
        st.tuples(st.just("flush"), st.none(), st.none()),
        st.tuples(st.just("compact"), st.none(), st.none()),
        st.tuples(st.just("crash_recover"), st.none(), st.none()),
    ),
    min_size=1, max_size=60,
)


def apply_to_model(model, op, key, value):
    if op == "put":
        model[key] = value
    elif op == "delete":
        model.pop(key, None)
    elif op == "merge":
        model[key] = model.get(key, 0) + value


@settings(max_examples=80, deadline=None)
@given(ops=operations)
def test_lsm_matches_dict_model(ops):
    store = LsmStore(merge_operator=CounterMergeOperator(),
                     memtable_flush_bytes=1 << 30)
    model: dict[str, int] = {}
    for op, key, value in ops:
        if op == "flush":
            store.flush()
        elif op == "compact":
            store.flush()
            store.compact()
        elif op == "crash_recover":
            store.drop_memory()
            store.recover()
        else:
            apply_to_model(model, op, key, value)
            getattr(store, op)(key) if op == "delete" else \
                getattr(store, op)(key, value)

    for key in [f"k{i}" for i in range(8)]:
        assert store.get(key) == model.get(key)
    assert dict(store.scan()) == {k: v for k, v in model.items()
                                  if v is not None}


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_scan_is_sorted_and_consistent_with_get(ops):
    store = LsmStore(merge_operator=CounterMergeOperator(),
                     memtable_flush_bytes=1 << 30)
    for op, key, value in ops:
        if op == "flush":
            store.flush()
        elif op == "compact":
            store.flush()
            store.compact()
        elif op == "crash_recover":
            store.drop_memory()
            store.recover()
        elif op == "delete":
            store.delete(key)
        else:
            getattr(store, op)(key, value)
    scanned = list(store.scan())
    assert [k for k, _ in scanned] == sorted(k for k, _ in scanned)
    for key, value in scanned:
        assert store.get(key) == value
