"""Property tests: semantics invariants on the MONOID checkpoint path.

The monoid processor's checkpoint path (flush_partials orderings) is
distinct code from the stateful-state path, so the Section 4.3
invariants get their own property coverage: under arbitrary crash
schedules, per-key totals must respect at-least / at-most / exactly-once
bounds against the true counts.
"""

from hypothesis import given, settings, strategies as st

from repro.core.semantics import SemanticsPolicy
from repro.runtime.clock import SimClock
from repro.scribe.store import ScribeStore
from repro.stylus.checkpointing import CheckpointPolicy, CrashInjector, CrashPoint
from repro.stylus.engine import StylusTask

from tests.stylus.helpers import DimensionCounter

TOTAL = 50
EVERY = 7
KEYS = [f"dim{i}" for i in range(10)]

crash_schedules = st.lists(
    st.tuples(st.sampled_from(list(CrashPoint)),
              st.integers(min_value=1, max_value=9)),
    max_size=2, unique=True,
)


def run_monoid(semantics, schedule):
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    injector = CrashInjector()
    for point, index in schedule:
        injector.arm(point, index)
    task = StylusTask("agg", scribe, "in", 0, DimensionCounter(),
                      semantics=semantics,
                      checkpoint_policy=CheckpointPolicy(every_n_events=EVERY),
                      clock=clock, crash_injector=injector)
    for i in range(TOTAL):
        scribe.write_record("in", {"event_time": float(i), "seq": i})
    for _ in range(60):
        if task.crashed:
            task.restart()
            continue
        task.pump()
        if task.crashed or task.lag_messages() > 0:
            continue
        task.checkpoint_now()
        if not task.crashed:
            break
    assert not task.crashed
    backend = task.state_backend
    return {
        key: (backend.read_value(key) or {}).get("count", 0) for key in KEYS
    }


def true_counts():
    counts = {key: 0 for key in KEYS}
    for i in range(TOTAL):
        counts[f"dim{i % 10}"] += 1
    return counts


@settings(max_examples=30, deadline=None)
@given(schedule=crash_schedules)
def test_monoid_at_least_once_never_undercounts(schedule):
    totals = run_monoid(SemanticsPolicy.at_least_once(), schedule)
    for key, expected in true_counts().items():
        assert totals[key] >= expected


@settings(max_examples=30, deadline=None)
@given(schedule=crash_schedules)
def test_monoid_at_most_once_never_overcounts(schedule):
    totals = run_monoid(SemanticsPolicy.at_most_once(), schedule)
    for key, expected in true_counts().items():
        assert totals[key] <= expected


@settings(max_examples=30, deadline=None)
@given(schedule=crash_schedules)
def test_monoid_exactly_once_is_exact(schedule):
    totals = run_monoid(SemanticsPolicy.exactly_once(), schedule)
    assert totals == true_counts()
