"""Property: Scuba's three engines are interchangeable.

Feeds identical randomized row streams — out-of-order times, Nones,
missing keys, high- and low-cardinality groups, interleaved ``trim``
calls — into a paper-faithful row table (``columnar=False``) and a
columnar table with a tiny ``segment_rows`` (so every schedule exercises
sealing, deep out-of-order segment rebuilds, and boundary-segment
trims). Every aggregate then runs through all three engines — row-scan
(the oracle), interpreted columnar, and compiled — for both ``run()``
and ``run_time_series()``, twice per columnar engine so second passes
exercise the incremental cache. Compiled and interpreted runs alternate
order across seeds and share one table, so each engine also consumes
partials the *other* engine cached — the state-identity contract that
lets them share the query cache.

Float results are compared with ``isclose``: merging per-segment monoid
partials re-associates floating-point addition, which is allowed to
differ in the last ulp (count/min/max/topk/groups must match exactly).
"""

from __future__ import annotations

import math
import random

from repro.puma.functions import get_aggregate, get_columnar_kernel
from repro.scuba.query import ColumnFilter, ScubaQuery
from repro.scuba.table import ScubaTable

AGGREGATES = ["count", "sum", "avg", "min", "max", "topk", "stddev",
              "approx_distinct"]

GROUP_CHOICES = [
    (),                      # global aggregate
    ("page",),               # low cardinality, dictionary-encoded
    ("user",),               # high cardinality
    ("page", "status"),      # multi-column group
    ("absent",),             # column no row has
]

FILTER_CHOICES = [
    (),
    (ColumnFilter("status", ">=", 500),),
    (ColumnFilter("page", "==", "p1"),),
    (ColumnFilter("status", "<", 500), ColumnFilter("ms", ">", 2.0)),
    (ColumnFilter("page", "in", ("p0", "p2")),),
    # Negative ops: null/missing values pass these (and only these) —
    # "user" is absent from most rows, "ms" mixes Nones and floats.
    (ColumnFilter("user", "!=", "u3"),),
    (ColumnFilter("ms", "not in", (0.5, 1.0, -2.0)),),
    (ColumnFilter("ms", "!=", 2.0), ColumnFilter("status", "==", 200)),
    (ColumnFilter("absent", "not in", ("x",)),),
    (ColumnFilter("absent", "<", 5),),  # absent column: nothing passes
]


def _random_row(rng: random.Random, clock: float) -> dict:
    row = {
        "event_time": clock + rng.choice([0.0, 0.5, 1.0, 2.0, -3.0, -40.0]),
        "page": f"p{rng.randrange(4)}",
        "status": rng.choice([200, 200, 200, 500, 503]),
    }
    if rng.random() < 0.85:
        # Halves only: segment-partial merges must re-add exactly.
        row["ms"] = rng.choice([None, rng.randrange(-40, 40) * 0.5])
    if rng.random() < 0.3:
        row["user"] = f"u{rng.randrange(200)}"
    return row


def _build_tables(rng: random.Random, n: int):
    row_table = ScubaTable("t", retention_seconds=500.0, columnar=False)
    col_table = ScubaTable("t", retention_seconds=500.0, columnar=True,
                           segment_rows=16)
    clock = 100.0
    pending: list[dict] = []
    for _ in range(n):
        clock += rng.random() * 2.0
        pending.append(_random_row(rng, clock))
        roll = rng.random()
        if roll < 0.25 and pending:
            batch = list(pending)
            pending.clear()
            row_table.add_rows([dict(r) for r in batch])
            col_table.add_rows([dict(r) for r in batch])
        elif roll < 0.35:
            for r in pending:
                row_table.add(dict(r))
                col_table.add(dict(r))
            pending.clear()
        elif roll < 0.42:
            assert row_table.trim(clock) == col_table.trim(clock)
    for r in pending:
        row_table.add(dict(r))
        col_table.add(dict(r))
    return row_table, col_table, clock


def _close(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(_close(x, y) for x, y in zip(a, b))
    return a == b


def _assert_rows_match(expected, actual, context, group_by=()):
    # Order rows by their (exactly-matching) group key before comparing:
    # float aggregate values may differ in the last ulp between engines,
    # which must not be allowed to reorder the value-sorted output.
    def by_group(rows):
        return sorted(rows, key=lambda r: repr(tuple(r.get(c)
                                                     for c in group_by)))

    expected, actual = by_group(expected), by_group(actual)
    assert len(expected) == len(actual), (context, expected, actual)
    for left, right in zip(expected, actual):
        assert set(left) == set(right), (context, left, right)
        for key in left:
            assert _close(left[key], right[key]), (context, key, left, right)


def _assert_points_match(expected, actual, context):
    assert len(expected) == len(actual), (context, expected, actual)
    for left, right in zip(expected, actual):
        assert left.bucket_start == right.bucket_start, (context, left, right)
        assert left.group == right.group, (context, left, right)
        assert _close(left.value, right.value), (context, left, right)


def test_columnar_engines_match_row_engine_exhaustively():
    for seed in range(12):
        rng = random.Random(seed)
        row_table, col_table, clock = _build_tables(rng, 300)
        assert row_table.row_count() == col_table.row_count()
        assert row_table.rows_between(0.0, 1e9) == \
            col_table.rows_between(0.0, 1e9)
        lo = clock - 400.0 + rng.random() * 100.0
        hi = lo + 50.0 + rng.random() * 300.0
        for index, aggregation in enumerate(AGGREGATES):
            group_by = rng.choice(GROUP_CHOICES)
            filters = rng.choice(FILTER_CHOICES)
            value_column = rng.choice(["ms", "status", None])
            common = dict(aggregation=aggregation, value_column=value_column,
                          group_by=group_by, filters=filters, limit=10_000)
            context = (seed, aggregation, group_by, filters, value_column)
            expected = ScubaQuery(row_table, lo, hi, engine="rows",
                                  **common).run()
            # Alternate which columnar engine runs (and caches) first, so
            # each also consumes partials the other cached.
            engines = ["columnar", "compiled"]
            if (seed + index) % 2:
                engines.reverse()
            for engine in engines:
                arm = ScubaQuery(col_table, lo, hi, engine=engine, **common)
                _assert_rows_match(expected, arm.run(),
                                   context + (engine,), group_by)
                # Second run reuses cached per-segment partials.
                _assert_rows_match(expected, arm.run(),
                                   context + (engine, "cache"), group_by)

            series_common = dict(common, bucket_seconds=30.0)
            expected_ts = ScubaQuery(row_table, lo, hi, engine="rows",
                                     **series_common).run_time_series()
            for engine in engines:
                arm_ts = ScubaQuery(col_table, lo, hi, engine=engine,
                                    **series_common)
                _assert_points_match(expected_ts, arm_ts.run_time_series(),
                                     context + (engine,))
                _assert_points_match(expected_ts, arm_ts.run_time_series(),
                                     context + (engine, "cache"))


def test_cache_stays_correct_across_trim_and_append():
    """Cached partials must be precisely invalidated, never stale."""
    for seed in range(6):
        rng = random.Random(1000 + seed)
        engine = ("columnar", "compiled")[seed % 2]
        row_table, col_table, clock = _build_tables(rng, 250)
        query = ScubaQuery(col_table, clock - 450.0, clock + 100.0,
                           aggregation="sum", value_column="ms",
                           group_by=("page",), engine=engine, limit=100)
        query.run()  # populate the cache
        # Mutate: trim old rows, append new ones (some out-of-order).
        clock += 50.0
        assert row_table.trim(clock) == col_table.trim(clock)
        late = [_random_row(rng, clock - 300.0) for _ in range(40)]
        fresh = [_random_row(rng, clock) for _ in range(40)]
        for batch in (late, fresh):
            row_table.add_rows([dict(r) for r in batch])
            col_table.add_rows([dict(r) for r in batch])
        expected = ScubaQuery(row_table, clock - 450.0, clock + 100.0,
                              aggregation="sum", value_column="ms",
                              group_by=("page",), engine="rows",
                              limit=100).run()
        _assert_rows_match(expected, query.run(),
                           ("post-mutation", seed, engine), ("page",))
        _assert_rows_match(expected, query.run(),
                           ("post-mutation-2", seed, engine), ("page",))


def test_columnar_kernels_match_per_row_updates():
    """fold() == a create/update loop, for every kernel-backed aggregate."""
    rng = random.Random(7)
    for name in ("count", "sum", "avg", "min", "max"):
        function = get_aggregate(name)
        kernel = get_columnar_kernel(name)
        assert kernel is not None
        for trial in range(20):
            n = rng.randrange(0, 40)
            codes = [rng.randrange(5) for _ in range(n)]
            values = [rng.choice([None, rng.randrange(-20, 20) * 0.5])
                      for _ in range(n)]
            if trial % 3 == 0:
                values_arg = None  # count(*) shape: the literal 1
                per_row_values = [1] * n
            else:
                values_arg = values
                per_row_values = values
            expected: dict[int, object] = {}
            for code, value in zip(codes, per_row_values):
                state = expected.get(code)
                if state is None:
                    state = function.create()
                expected[code] = function.update(state, value)
            folded = kernel.fold(codes, values_arg, n)
            assert set(folded) == set(expected), (name, trial)
            for code in expected:
                assert _close(function.result(folded[code]),
                              function.result(expected[code])), \
                    (name, trial, code)
        # The no-group shape: codes is None, one implicit group.
        folded = kernel.fold(None, [1.0, None, 2.5], 3)
        state = function.create()
        for value in (1.0, None, 2.5):
            state = function.update(state, value)
        assert _close(function.result(folded[0]), function.result(state))
