"""Property tests for Scribe: replay determinism and offset stability."""

from hypothesis import given, settings, strategies as st

from repro.runtime.clock import SimClock
from repro.scribe.reader import ScribeReader
from repro.scribe.store import ScribeStore

payload_lists = st.lists(
    st.binary(min_size=0, max_size=40), min_size=1, max_size=60,
)

batch_sizes = st.lists(st.integers(1, 10), min_size=1, max_size=30)


@settings(max_examples=60, deadline=None)
@given(payloads=payload_lists, sizes=batch_sizes)
def test_replay_yields_identical_stream(payloads, sizes):
    store = ScribeStore(clock=SimClock())
    store.create_category("c", 1)
    for payload in payloads:
        store.write("c", payload)

    def read_with_batches(batch_plan):
        reader = ScribeReader(store, "c", 0)
        seen = []
        plan_index = 0
        while True:
            size = batch_plan[plan_index % len(batch_plan)]
            plan_index += 1
            batch = reader.read_batch(size)
            if not batch:
                return seen
            seen.extend((m.offset, m.payload) for m in batch)

    first = read_with_batches(sizes)
    second = read_with_batches([7])  # completely different batching
    assert first == second
    assert [offset for offset, _ in first] == list(range(len(payloads)))


@settings(max_examples=40, deadline=None)
@given(payloads=payload_lists,
       trim_at=st.integers(0, 30),
       data=st.data())
def test_offsets_stable_across_trim(payloads, trim_at, data):
    store = ScribeStore(clock=SimClock())
    store.create_category("c", 1)
    for payload in payloads:
        store.write("c", payload)
    bucket = store.category("c").bucket(0)
    bucket.trim_to_offset(min(trim_at, len(payloads)))
    start = bucket.first_retained_offset
    reader = ScribeReader(store, "c", 0, start_offset=start)
    for message in reader.read_batch(1000):
        assert message.payload == payloads[message.offset]


@settings(max_examples=40, deadline=None)
@given(payloads=payload_lists, keys=st.data())
def test_key_routing_is_a_partition(payloads, keys):
    """Every written message lands in exactly one bucket; totals add up."""
    store = ScribeStore(clock=SimClock())
    store.create_category("c", 4)
    for index, payload in enumerate(payloads):
        store.write("c", payload, key=f"key-{index % 13}")
    total = sum(store.end_offset("c", b) for b in range(4))
    assert total == len(payloads)
