"""Property tests: batched decode/read paths match the per-message path.

The engine's batch-decode fast path (and ``serde.decode_batch``) must be
a pure optimization — byte-identical output streams, identical
checkpoint offsets, identical counters — under every semantics policy.
The per-message path is forced via the engine's ``_force_per_message``
test hook so both implementations run over the same inputs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import serde
from repro.core.semantics import SemanticsPolicy
from repro.runtime.clock import SimClock
from repro.scribe.reader import ScribeReader
from repro.scribe.store import ScribeStore
from repro.scribe.writer import ScribeWriter
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusTask
from repro.stylus.state import InMemoryStateBackend

from tests.stylus.helpers import EchoProcessor

POISON = "<poison>"

records = st.fixed_dictionaries(
    {
        "event_time": st.floats(min_value=0, max_value=1e6,
                                allow_nan=False, allow_infinity=False),
        "seq": st.integers(0, 10_000),
    },
    optional={
        "tag": st.text(max_size=8),
        "weight": st.integers(-5, 5),
    },
)

#: An input stream: decodable records with poison bytes mixed in.
streams = st.lists(st.one_of(records, st.just(POISON)),
                   min_size=1, max_size=40)

batch_plans = st.lists(st.integers(1, 9), min_size=1, max_size=8)

POLICIES = {
    "at_least_once": SemanticsPolicy.at_least_once,
    "at_most_once": SemanticsPolicy.at_most_once,
    "exactly_once": SemanticsPolicy.exactly_once,
}


def _run_pipeline(items, batch_plan, checkpoint_every, policy_name,
                  force_per_message):
    """Write ``items`` to Scribe, drain them through a task, fingerprint."""
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("in", num_buckets=1)
    scribe.create_category("out", num_buckets=1)
    writer = ScribeWriter(scribe, "in")
    for item in items:
        if item == POISON:
            scribe.write("in", b"\xff{not json")
        else:
            writer.write_to_bucket(item, 0)

    backend = InMemoryStateBackend("task")
    task = StylusTask("task", scribe, "in", 0, EchoProcessor(),
                      semantics=POLICIES[policy_name](),
                      state_backend=backend,
                      checkpoint_policy=CheckpointPolicy(
                          every_n_events=checkpoint_every),
                      output_category="out",
                      clock=SimClock())
    task._force_per_message = force_per_message
    assert task._use_batched_decode() != force_per_message

    plan_index = 0
    while True:
        size = batch_plan[plan_index % len(batch_plan)]
        plan_index += 1
        if task.pump(size) == 0:
            break
    task.checkpoint_now()

    out_reader = ScribeReader(scribe, "out", 0)
    emitted = [(m.offset, m.payload) for m in out_reader.read_batch(100_000)]
    state, offset = backend.load()
    return {
        "emitted": emitted,
        "committed": backend.committed_outputs(),
        "state": state,
        "checkpoint_offset": offset,
        "checkpoint_index": task._checkpoint_index,
        "next_offset": task._next_offset,
        "events": task._events_counter.value,
        "poison": task._poison_counter.value,
        "outputs": task._outputs_counter.value,
        "checkpoints": task._checkpoints_counter.value,
        "low_watermark": task.low_watermark(),
    }


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@settings(max_examples=25, deadline=None)
@given(items=streams, batch_plan=batch_plans,
       checkpoint_every=st.integers(1, 7))
def test_batched_and_per_message_paths_are_equivalent(
        policy_name, items, batch_plan, checkpoint_every):
    batched = _run_pipeline(items, batch_plan, checkpoint_every,
                            policy_name, force_per_message=False)
    single = _run_pipeline(items, batch_plan, checkpoint_every,
                           policy_name, force_per_message=True)
    assert batched == single


@settings(max_examples=60, deadline=None)
@given(recs=st.lists(records, max_size=50))
def test_decode_batch_matches_single_decode(recs):
    payloads = [serde.encode(r) for r in recs]
    assert serde.encode_batch(recs) == payloads
    assert serde.decode_batch(payloads) == [serde.decode(p)
                                            for p in payloads]


@settings(max_examples=60, deadline=None)
@given(items=streams)
def test_decode_batch_none_policy_marks_poison(items):
    payloads = [b"\xff{not json" if item == POISON else serde.encode(item)
                for item in items]
    decoded = serde.decode_batch(payloads, errors="none")
    assert len(decoded) == len(items)
    for item, got in zip(items, decoded):
        if item == POISON:
            assert got is None
        else:
            assert got == serde.decode(serde.encode(item))


def test_decode_batch_strict_raises_on_poison():
    payloads = [serde.encode({"seq": 1}), b"\xff{not json"]
    with pytest.raises(serde.SerdeError):
        serde.decode_batch(payloads)
