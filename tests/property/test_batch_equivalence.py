"""Property tests: batched execution paths match the per-message paths.

Batch-at-a-time is the ecosystem's default execution mode; every batched
path (Stylus, Puma, Swift, Scuba) must be a pure optimization —
byte-identical output streams, identical checkpoint offsets, identical
counters — under every semantics policy, with poison messages mixed in.
Crash injection relaxes this to *semantic* equivalence: after a restart
and a full drain, the recovered durable state and delivered sets must
match, even though the batched path crashes at a coarser point.

Incremental leveled compaction gets the same treatment: bounded
``compact_step`` sequences (manual or scheduler-driven) and the full
``compact`` must all resolve every key to the same value as an
uncompacted store.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro import serde
from repro.core.semantics import SemanticsPolicy
from repro.errors import ProcessCrashed
from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.clock import SimClock
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.scheduler import Scheduler
from repro.scribe.checkpoints import Checkpoint, CheckpointStore
from repro.scribe.reader import CategoryReader, ScribeReader
from repro.scribe.store import ScribeStore
from repro.scribe.writer import ScribeWriter
from repro.scuba.ingest import ScubaIngester
from repro.scuba.table import ScubaTable
from repro.storage.hbase import HBaseTable
from repro.storage.lsm import LsmStore
from repro.storage.merge import CounterMergeOperator
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusTask
from repro.stylus.state import InMemoryStateBackend
from repro.stylus.windowed import WindowedAggregator
from repro.swift.engine import SwiftApp

from tests.stylus.helpers import EchoProcessor

POISON = "<poison>"

records = st.fixed_dictionaries(
    {
        "event_time": st.floats(min_value=0, max_value=1e6,
                                allow_nan=False, allow_infinity=False),
        "seq": st.integers(0, 10_000),
    },
    optional={
        "tag": st.text(max_size=8),
        "weight": st.integers(-5, 5),
    },
)

#: An input stream: decodable records with poison bytes mixed in.
streams = st.lists(st.one_of(records, st.just(POISON)),
                   min_size=1, max_size=40)

batch_plans = st.lists(st.integers(1, 9), min_size=1, max_size=8)

POLICIES = {
    "at_least_once": SemanticsPolicy.at_least_once,
    "at_most_once": SemanticsPolicy.at_most_once,
    "exactly_once": SemanticsPolicy.exactly_once,
}


def _run_pipeline(items, batch_plan, checkpoint_every, policy_name,
                  force_per_message):
    """Write ``items`` to Scribe, drain them through a task, fingerprint."""
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("in", num_buckets=1)
    scribe.create_category("out", num_buckets=1)
    writer = ScribeWriter(scribe, "in")
    for item in items:
        if item == POISON:
            scribe.write("in", b"\xff{not json")
        else:
            writer.write_to_bucket(item, 0)

    backend = InMemoryStateBackend("task")
    task = StylusTask("task", scribe, "in", 0, EchoProcessor(),
                      semantics=POLICIES[policy_name](),
                      state_backend=backend,
                      checkpoint_policy=CheckpointPolicy(
                          every_n_events=checkpoint_every),
                      output_category="out",
                      clock=SimClock())
    task._force_per_message = force_per_message
    assert task._use_batched_decode() != force_per_message

    plan_index = 0
    while True:
        size = batch_plan[plan_index % len(batch_plan)]
        plan_index += 1
        if task.pump(size) == 0:
            break
    task.checkpoint_now()

    out_reader = ScribeReader(scribe, "out", 0)
    emitted = [(m.offset, m.payload) for m in out_reader.read_batch(100_000)]
    state, offset = backend.load()
    return {
        "emitted": emitted,
        "committed": backend.committed_outputs(),
        "state": state,
        "checkpoint_offset": offset,
        "checkpoint_index": task._checkpoint_index,
        "next_offset": task._next_offset,
        "events": task._events_counter.value,
        "poison": task._poison_counter.value,
        "outputs": task._outputs_counter.value,
        "checkpoints": task._checkpoints_counter.value,
        "low_watermark": task.low_watermark(),
    }


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@settings(max_examples=25, deadline=None)
@given(items=streams, batch_plan=batch_plans,
       checkpoint_every=st.integers(1, 7))
def test_batched_and_per_message_paths_are_equivalent(
        policy_name, items, batch_plan, checkpoint_every):
    batched = _run_pipeline(items, batch_plan, checkpoint_every,
                            policy_name, force_per_message=False)
    single = _run_pipeline(items, batch_plan, checkpoint_every,
                           policy_name, force_per_message=True)
    assert batched == single


@settings(max_examples=60, deadline=None)
@given(recs=st.lists(records, max_size=50))
def test_decode_batch_matches_single_decode(recs):
    payloads = [serde.encode(r) for r in recs]
    assert serde.encode_batch(recs) == payloads
    assert serde.decode_batch(payloads) == [serde.decode(p)
                                            for p in payloads]


@settings(max_examples=60, deadline=None)
@given(items=streams)
def test_decode_batch_none_policy_marks_poison(items):
    payloads = [b"\xff{not json" if item == POISON else serde.encode(item)
                for item in items]
    decoded = serde.decode_batch(payloads, errors="none")
    assert len(decoded) == len(items)
    for item, got in zip(items, decoded):
        if item == POISON:
            assert got is None
        else:
            assert got == serde.decode(serde.encode(item))


def test_decode_batch_strict_raises_on_poison():
    payloads = [serde.encode({"seq": 1}), b"\xff{not json"]
    with pytest.raises(serde.SerdeError):
        serde.decode_batch(payloads)


# -- Stylus windowed aggregation ------------------------------------------------


def _run_windowed(items, batch_plan, checkpoint_every, force_per_message):
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("in", num_buckets=1)
    scribe.create_category("out", num_buckets=1)
    writer = ScribeWriter(scribe, "in")
    for item in items:
        if item == POISON:
            scribe.write("in", b"\xff{not json")
        else:
            writer.write_to_bucket(item, 0)

    processor = WindowedAggregator(
        window_seconds=30.0, operator=CounterMergeOperator(),
        extract=lambda e: [(f"g{int(e['seq']) % 3}", 1)],
        confidence=0.9, sample_size=16,
    )
    backend = InMemoryStateBackend("win")
    task = StylusTask("win", scribe, "in", 0, processor,
                      state_backend=backend,
                      checkpoint_policy=CheckpointPolicy(
                          every_n_events=checkpoint_every),
                      output_category="out",
                      clock=SimClock())
    task._force_per_message = force_per_message

    plan_index = 0
    while True:
        size = batch_plan[plan_index % len(batch_plan)]
        plan_index += 1
        if task.pump(size) == 0:
            break
    task.checkpoint_now()

    out_reader = ScribeReader(scribe, "out", 0)
    emitted = [(m.offset, m.payload) for m in out_reader.read_batch(100_000)]
    state, offset = backend.load()
    return {
        "emitted": emitted,
        "live_state": task.state,
        "saved_state": state,
        "checkpoint_offset": offset,
        "events": task._events_counter.value,
        "poison": task._poison_counter.value,
        "outputs": task._outputs_counter.value,
        "checkpoints": task._checkpoints_counter.value,
        "late": processor.late_events(task.state),
    }


@settings(max_examples=40, deadline=None)
@given(items=streams, batch_plan=batch_plans,
       checkpoint_every=st.integers(1, 7))
def test_windowed_batched_matches_per_message(items, batch_plan,
                                              checkpoint_every):
    batched = _run_windowed(items, batch_plan, checkpoint_every,
                            force_per_message=False)
    single = _run_windowed(items, batch_plan, checkpoint_every,
                           force_per_message=True)
    assert batched == single


# -- Puma -----------------------------------------------------------------------

PUMA_SOURCE = """
CREATE APPLICATION eq;
CREATE INPUT TABLE clicks(event_time, page, user) FROM SCRIBE("clicks")
TIME event_time;
CREATE TABLE agg AS
SELECT page, count(*) AS n FROM clicks [1 minute];
CREATE TABLE filt AS
SELECT user, page FROM clicks WHERE page = 'home';
"""

puma_records = st.fixed_dictionaries(
    {
        "page": st.sampled_from(["home", "about", "news"]),
        "user": st.sampled_from(["u1", "u2", "u3"]),
    },
    optional={
        "event_time": st.floats(min_value=0, max_value=300,
                                allow_nan=False, allow_infinity=False),
    },
)

puma_streams = st.lists(st.one_of(puma_records, st.just(POISON)),
                        min_size=1, max_size=40)


def _crashing_plan(app_plan, crash_on_call):
    """Wrap the filter table's predicate to crash once, mid-processing."""
    countdown = [crash_on_call]

    filt = app_plan.tables[1]
    inner = filt.predicate

    def crashing(row):
        countdown[0] -= 1
        if countdown[0] == 0:
            raise ProcessCrashed("puma-predicate", 0.0)
        return inner(row)

    return dataclasses.replace(
        app_plan,
        tables=(app_plan.tables[0],
                dataclasses.replace(filt, predicate=crashing)),
    )


def _run_puma(items, batch_plan, checkpoint_every, retain, batched,
              crash_on_call=None):
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("clicks", num_buckets=1)
    for item in items:
        if item == POISON:
            scribe.write("clicks", b"\xff{not json")
        else:
            scribe.write_record("clicks", item, key=item["user"])

    app_plan = plan(parse(PUMA_SOURCE))
    if crash_on_call is not None:
        app_plan = _crashing_plan(app_plan, crash_on_call)
    hbase = HBaseTable("state")
    app = PumaApp(app_plan, scribe, hbase,
                  checkpoint_every_events=checkpoint_every,
                  retain_windows=retain, clock=scribe.clock,
                  batched=batched)

    plan_index = 0
    while True:
        if app.crashed:
            app.restart()
        size = batch_plan[plan_index % len(batch_plan)]
        plan_index += 1
        if app.pump(size) == 0 and not app.crashed:
            break
    app.checkpoint()

    out = CategoryReader(scribe, "filt")
    emitted = [(m.bucket, m.offset, m.payload) for m in out.read_all()]
    return {
        "query": app.query("agg"),
        "hbase": sorted((key, dict(cols))
                        for key, cols in hbase.scan("", "￿")),
        "emitted": emitted,
        "events": app._events_counter.value,
        "poison": app._poison_counter.value,
        "checkpoints": app._checkpoints_counter.value,
        "out": app._out_counters["filt"].value,
    }


@settings(max_examples=40, deadline=None)
@given(items=puma_streams, batch_plan=batch_plans,
       checkpoint_every=st.integers(1, 9),
       retain=st.one_of(st.none(), st.integers(1, 3)))
def test_puma_batched_matches_per_message(items, batch_plan,
                                          checkpoint_every, retain):
    batched = _run_puma(items, batch_plan, checkpoint_every, retain,
                        batched=True)
    single = _run_puma(items, batch_plan, checkpoint_every, retain,
                       batched=False)
    assert batched == single


@settings(max_examples=25, deadline=None)
@given(items=puma_streams, batch_plan=batch_plans,
       checkpoint_every=st.integers(1, 9),
       crash_on_call=st.integers(1, 20))
def test_puma_crash_recovery_is_semantically_equivalent(
        items, batch_plan, checkpoint_every, crash_on_call):
    """A mid-processing crash lands at a coarser point on the batched
    path (table-major chunks), so byte equivalence of the at-least-once
    output stream is off the table — but after restart + drain, the
    recovered aggregate state and the *set* of delivered filter rows
    must match exactly."""
    results = [
        _run_puma(items, batch_plan, checkpoint_every, None,
                  batched=flag, crash_on_call=crash_on_call)
        for flag in (True, False)
    ]
    batched, single = results
    assert batched["query"] == single["query"]
    assert batched["hbase"] == single["hbase"]
    assert ({payload for _, _, payload in batched["emitted"]}
            == {payload for _, _, payload in single["emitted"]})


# -- Swift ----------------------------------------------------------------------


class _LoggingCheckpointStore(CheckpointStore):
    """Records every saved offset, in order."""

    def __init__(self):
        super().__init__()
        self.offset_log = []

    def save(self, consumer, category, bucket, checkpoint: Checkpoint):
        self.offset_log.append(checkpoint.offset)
        super().save(consumer, category, bucket, checkpoint)


class _Recorder:
    """Per-message Swift client; optionally crashes once after N calls."""

    def __init__(self, sink, crash_at=None):
        self.sink = sink
        self.countdown = crash_at

    def _maybe_crash(self, weight):
        if self.countdown is None:
            return
        self.countdown -= weight
        if self.countdown <= 0:
            self.countdown = None
            raise ProcessCrashed("swift-client", 0.0)

    def __call__(self, message):
        self._maybe_crash(1)
        self.sink.append((message.offset, message.payload))


class _BatchRecorder(_Recorder):
    """Batch Swift client; a crash drops the whole in-flight segment."""

    def on_batch(self, messages):
        self._maybe_crash(len(messages))
        self.sink.extend((m.offset, m.payload) for m in messages)


def _run_swift(payloads, batch_plan, every_messages, every_bytes,
               use_batch_client, crash_at=None):
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("in", num_buckets=1)
    for payload in payloads:
        scribe.write("in", payload)

    checkpoints = _LoggingCheckpointStore()
    delivered = []
    client_cls = _BatchRecorder if use_batch_client else _Recorder
    client = client_cls(delivered, crash_at)
    app = SwiftApp("app", scribe, "in", 0, client, checkpoints,
                   checkpoint_every_messages=every_messages,
                   checkpoint_every_bytes=every_bytes)

    plan_index = 0
    while True:
        if app.crashed:
            app.restart()
        size = batch_plan[plan_index % len(batch_plan)]
        plan_index += 1
        if app.pump(size) == 0 and not app.crashed:
            break
    return delivered, checkpoints


swift_payloads = st.lists(st.binary(min_size=0, max_size=30),
                          min_size=1, max_size=40)


@settings(max_examples=40, deadline=None)
@given(payloads=swift_payloads, batch_plan=batch_plans,
       every_messages=st.one_of(st.none(), st.integers(1, 9)),
       every_bytes=st.one_of(st.none(), st.integers(1, 120)))
def test_swift_batch_client_matches_per_message(payloads, batch_plan,
                                                every_messages, every_bytes):
    if every_messages is None and every_bytes is None:
        every_messages = 3
    runs = [
        _run_swift(payloads, batch_plan, every_messages, every_bytes,
                   use_batch_client=flag)
        for flag in (True, False)
    ]
    (batched_seen, batched_ckpt), (single_seen, single_ckpt) = runs
    assert batched_seen == single_seen
    assert batched_ckpt.offset_log == single_ckpt.offset_log
    assert (batched_ckpt.load("app", "in", 0)
            == single_ckpt.load("app", "in", 0))


@settings(max_examples=25, deadline=None)
@given(payloads=swift_payloads, batch_plan=batch_plans,
       every_messages=st.integers(1, 9), crash_at=st.integers(1, 20))
def test_swift_crash_recovery_is_semantically_equivalent(
        payloads, batch_plan, every_messages, crash_at):
    """A batch client loses the whole crashed segment instead of a
    suffix, so the replayed duplicates differ — but at-least-once
    delivery of everything, and the final checkpoint, must hold on both
    paths."""
    runs = [
        _run_swift(payloads, batch_plan, every_messages, None,
                   use_batch_client=flag, crash_at=crash_at)
        for flag in (True, False)
    ]
    all_offsets = set(range(len(payloads)))
    finals = []
    for delivered, checkpoints in runs:
        assert {offset for offset, _ in delivered} == all_offsets
        saved = checkpoints.load("app", "in", 0)
        finals.append(saved.offset if saved is not None else None)
    assert finals[0] == finals[1]


# -- Scuba ----------------------------------------------------------------------


def _run_scuba(items, batch_plan, sample_rate, batched):
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("events", num_buckets=1)
    for item in items:
        if item == POISON:
            scribe.write("events", b"\xff{not json")
        else:
            scribe.write_record("events", item, key="k")

    table = ScubaTable("t")
    metrics = MetricsRegistry()
    ingester = ScubaIngester(scribe, "events", table,
                             sample_rate=sample_rate, seed=7,
                             metrics=metrics, batched=batched)
    plan_index = 0
    while True:
        size = batch_plan[plan_index % len(batch_plan)]
        plan_index += 1
        if ingester.pump(size) == 0 and ingester.lag_messages() == 0:
            break
    name = ingester.name
    return {
        "times": list(table._times),
        "rows": list(table._rows),
        "rows_counter": metrics.counter(f"{name}.rows").value,
        "poison": metrics.counter(f"{name}.poison").value,
        "sampled_out": metrics.counter(f"{name}.sampled_out").value,
    }


@settings(max_examples=40, deadline=None)
@given(items=streams, batch_plan=batch_plans,
       sample_rate=st.sampled_from([1.0, 0.7, 0.3]))
def test_scuba_batched_matches_per_message(items, batch_plan, sample_rate):
    batched = _run_scuba(items, batch_plan, sample_rate, batched=True)
    single = _run_scuba(items, batch_plan, sample_rate, batched=False)
    assert batched == single


# -- incremental compaction ------------------------------------------------------

_LSM_KEYS = [f"k{i:02d}" for i in range(12)]

lsm_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(_LSM_KEYS),
                  st.integers(0, 100)),
        st.tuples(st.just("delete"), st.sampled_from(_LSM_KEYS)),
        st.tuples(st.just("merge"), st.sampled_from(_LSM_KEYS),
                  st.integers(-3, 3)),
    ),
    min_size=1, max_size=80,
)


def _apply_ops(store, ops, flush_every):
    for index, op in enumerate(ops, start=1):
        if op[0] == "put":
            store.put(op[1], op[2])
        elif op[0] == "delete":
            store.delete(op[1])
        else:
            store.merge(op[1], op[2])
        if index % flush_every == 0:
            store.flush()
    store.flush()


def _snapshot(store):
    return {
        "gets": {key: store.get(key) for key in _LSM_KEYS},
        "multi_get": store.multi_get(_LSM_KEYS),
        "scan": list(store.scan()),
    }


@settings(max_examples=40, deadline=None)
@given(ops=lsm_ops, flush_every=st.integers(1, 7),
       trigger=st.integers(2, 5), max_runs=st.integers(2, 5))
def test_compact_step_preserves_reads(ops, flush_every, trigger, max_runs):
    """Bounded steps, scheduled steps, and the full merge all resolve
    every key exactly like an uncompacted store."""
    def build(**kwargs):
        store = LsmStore(merge_operator=CounterMergeOperator(),
                         memtable_flush_bytes=1 << 30, **kwargs)
        _apply_ops(store, ops, flush_every)
        return store

    # compaction_trigger doubles as the tier fanout, so a huge trigger
    # with no flush pressure never compacts: the uncompacted baseline.
    baseline = build(compaction_trigger=10_000)
    expected = _snapshot(baseline)

    stepped = build(compaction_trigger=trigger, max_compact_runs=max_runs)
    while stepped.compact_step():
        levels = stepped.levels
        assert levels == sorted(levels, reverse=True), \
            "levels must stay non-increasing oldest-to-newest"
    assert _snapshot(stepped) == expected

    scheduled = build(compaction_trigger=trigger, max_compact_runs=max_runs)
    scheduler = Scheduler()
    scheduled.schedule_compaction(scheduler, interval=1.0)
    scheduler.run_until(200.0)
    assert _snapshot(scheduled) == expected

    full = build(compaction_trigger=trigger, max_compact_runs=max_runs)
    full.compact()
    assert full.num_sstables <= 1
    assert _snapshot(full) == expected
