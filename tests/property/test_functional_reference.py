"""Property test: functional pipelines vs a plain-Python reference.

Random chains of map/filter/flat_map operators compiled onto Stylus over
Scribe must produce exactly the records a direct in-memory application
of the same chain produces — regardless of bucket counts or chain shape.
"""

from hypothesis import given, settings, strategies as st

from repro.functional.streams import StreamBuilder
from repro.runtime.clock import SimClock
from repro.scribe.reader import CategoryReader
from repro.scribe.store import ScribeStore

OPS = {
    "double": ("map", lambda r: {**r, "v": r["v"] * 2}),
    "inc": ("map", lambda r: {**r, "v": r["v"] + 1}),
    "keep_even": ("filter", lambda r: r["v"] % 2 == 0),
    "keep_small": ("filter", lambda r: r["v"] < 40),
    "dup": ("flat_map", lambda r: [r, r]),
    "tag": ("map", lambda r: {**r, "tag": str(r["v"] % 3)}),
}

chains = st.lists(st.sampled_from(sorted(OPS)), min_size=1, max_size=5)
value_lists = st.lists(st.integers(0, 50), min_size=1, max_size=40)
bucket_counts = st.integers(1, 4)


def reference(values, chain):
    records = [{"event_time": float(i), "v": v}
               for i, v in enumerate(values)]
    for op_name in chain:
        kind, fn = OPS[op_name]
        if kind == "map":
            records = [fn(r) for r in records]
        elif kind == "filter":
            records = [r for r in records if fn(r)]
        else:
            records = [out for r in records for out in fn(r)]
    return records


@settings(max_examples=40, deadline=None)
@given(values=value_lists, chain=chains, buckets=bucket_counts)
def test_functional_pipeline_matches_reference(values, chain, buckets):
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    builder = StreamBuilder(scribe, clock=clock, num_buckets=buckets)
    stream = builder.source("events")
    for op_name in chain:
        kind, fn = OPS[op_name]
        stream = getattr(stream, kind)(fn)
    pipeline = stream.build("prop")
    for i, v in enumerate(values):
        scribe.write_record("events", {"event_time": float(i), "v": v},
                            key=str(i))
    pipeline.run_until_quiescent()
    produced = [m.decode()
                for m in CategoryReader(scribe, "prop.out").read_all()]

    expected = reference(values, chain)
    key = lambda r: sorted(r.items())  # noqa: E731 - order-insensitive
    assert sorted(map(key, produced)) == sorted(map(key, expected))
