"""Property tests: the compiled executor is a pure optimization.

Randomized PQL programs — every aggregate, filters, UDFs in aggregate
arguments and predicates, windowed and global tables — run through all
three Puma executors over the same randomized stream (out-of-order
event times, poison mixed in, randomized pump sizes and checkpoint
cadence). The compiled ``ExecutablePlan`` path, the interpreted batch
path, and the per-message oracle must produce identical query results,
identical durable HBase state, byte-identical filter output, and
identical counters.

Crash injection at the checkpoint fault point (between the state-flush
and offset-save phases) extends the claim to recovery under all three
``StateSemantics`` policies: the executors stay identical to each
other, and the totals sit where the semantics lattice says —
at-least-once ≥ the no-crash reference, at-most-once ≤ it,
exactly-once == it (its two phases have no fault point between them).

Float caveat: ``stddev``'s Chan merge is exact in expectation but not
bit-exact against an update fold, so it is excluded from the exact
suites and checked separately under ``math.isclose``.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.semantics import StateSemantics
from repro.errors import ProcessCrashed
from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.clock import SimClock
from repro.runtime.metrics import MetricsRegistry
from repro.scribe.reader import CategoryReader
from repro.scribe.store import ScribeStore
from repro.storage.hbase import HBaseTable

POISON = "<poison>"

EXECUTORS = ("compiled", "batch", "row")

# Every aggregate except stddev (float-exactness; see module docstring),
# including UDFs inside aggregate arguments and shared argument
# expressions (sum/avg/max all read ms).
AGGREGATE_CLAUSES = (
    "count(*) AS n",
    "sum(ms) AS total",
    "avg(ms) AS mean",
    "min(ms) AS lo",
    "max(ms) AS hi",
    "sum(ms + weight) AS shifted",
    "max(abs(weight)) AS magnitude",
    "topk(ms, 3) AS top3",
    "approx_distinct(user) AS users",
    "approx_percentile(ms, 90) AS p90",
)

WHERE_CLAUSES = (
    None,
    "page != 'spam'",
    "ms >= 40",
    "contains(page, 'o')",
    "mod(ms, 2) = 0 AND weight > -3",
)

FILTER_CLAUSES = (
    "SELECT user, page FROM events WHERE page = 'home'",
    "SELECT upper(page) AS loud, ms FROM events WHERE ms > 50",
)


def build_source(agg_indices, where_index, windowed, grouped, filter_index):
    where = WHERE_CLAUSES[where_index]
    projections = (["page"] if grouped else []) + [
        AGGREGATE_CLAUSES[i] for i in agg_indices
    ]
    agg_sql = "SELECT " + ", ".join(projections) + " FROM events"
    if windowed:
        agg_sql += " [1 minute]"
    if where is not None:
        agg_sql += f" WHERE {where}"
    return f"""
CREATE APPLICATION equivalence;
CREATE INPUT TABLE events(event_time, page, user, ms, weight)
FROM SCRIBE("events") TIME event_time;
CREATE TABLE agg AS {agg_sql};
CREATE TABLE filt AS {FILTER_CLAUSES[filter_index]};
"""


puma_records = st.fixed_dictionaries({
    "event_time": st.floats(min_value=0, max_value=300,
                            allow_nan=False, allow_infinity=False),
    "page": st.sampled_from(["home", "about", "spam", "shop"]),
    "user": st.sampled_from(["u1", "u2", "u3", "u4"]),
    "ms": st.integers(0, 100),
    "weight": st.integers(-5, 5),
})

puma_streams = st.lists(st.one_of(puma_records, st.just(POISON)),
                        min_size=1, max_size=40)

programs = st.builds(
    build_source,
    agg_indices=st.lists(
        st.integers(0, len(AGGREGATE_CLAUSES) - 1),
        min_size=1, max_size=4, unique=True),
    where_index=st.integers(0, len(WHERE_CLAUSES) - 1),
    windowed=st.booleans(),
    grouped=st.booleans(),
    filter_index=st.integers(0, len(FILTER_CLAUSES) - 1),
)

batch_plans = st.lists(st.integers(1, 13), min_size=1, max_size=4)


def _run(source, items, batch_plan, checkpoint_every, executor,
         retain=None, semantics=StateSemantics.AT_LEAST_ONCE,
         crash_at_checkpoint=None):
    scribe = ScribeStore(clock=SimClock())
    scribe.create_category("events", num_buckets=1)
    for i, item in enumerate(items):
        if item == POISON:
            scribe.write("events", b"\xff{not json")
        else:
            scribe.write_record("events", item, key=str(i))

    hbase = HBaseTable("state")
    metrics = MetricsRegistry()
    app = PumaApp(plan(parse(source)), scribe, hbase,
                  checkpoint_every_events=checkpoint_every,
                  retain_windows=retain, clock=scribe.clock,
                  metrics=metrics, executor=executor, semantics=semantics)
    if crash_at_checkpoint is not None:
        calls = [0]

        def fault_hook():
            calls[0] += 1
            if calls[0] == crash_at_checkpoint:
                raise ProcessCrashed("puma-checkpoint", 0.0)

        app.checkpoint_fault_hook = fault_hook

    plan_index = 0
    while True:
        if app.crashed:
            app.restart()
        size = batch_plan[plan_index % len(batch_plan)]
        plan_index += 1
        if app.pump(size) == 0 and not app.crashed:
            break
    while True:
        try:
            app.checkpoint()
            break
        except ProcessCrashed:
            app.crash()
            app.restart()
            while app.pump(100) or app.crashed:
                if app.crashed:
                    app.restart()

    emitted = [(m.bucket, m.offset, m.payload)
               for m in CategoryReader(scribe, "filt").read_all()]
    return {
        "query": app.query("agg"),
        "hbase": sorted(((key, dict(cols))
                         for key, cols in hbase.scan("", "￿")),
                        key=lambda kv: kv[0]),
        "emitted": emitted,
        "events": app._events_counter.value,
        "poison": app._poison_counter.value,
        "checkpoints": app._checkpoints_counter.value,
        "out": app._out_counters["filt"].value,
    }


@settings(max_examples=40, deadline=None)
@given(source=programs, items=puma_streams, batch_plan=batch_plans,
       checkpoint_every=st.integers(1, 9),
       retain=st.one_of(st.none(), st.integers(1, 3)))
def test_compiled_matches_interpreted_and_oracle(source, items, batch_plan,
                                                 checkpoint_every, retain):
    compiled, interpreted, oracle = (
        _run(source, items, batch_plan, checkpoint_every, executor,
             retain=retain)
        for executor in EXECUTORS
    )
    assert compiled == interpreted
    assert compiled == oracle


@settings(max_examples=15, deadline=None)
@given(items=puma_streams, batch_plan=batch_plans,
       checkpoint_every=st.integers(1, 6),
       crash_at_checkpoint=st.integers(1, 6),
       semantics=st.sampled_from(list(StateSemantics)))
def test_checkpoint_crash_equivalence_under_all_semantics(
        items, batch_plan, checkpoint_every, crash_at_checkpoint,
        semantics):
    """A crash between the checkpoint phases hits every executor at the
    same event offset, so the executors must stay *identical* — and the
    surviving counts must respect the semantics lattice."""
    source = build_source((0, 1), 0, windowed=True, grouped=True,
                          filter_index=0)
    crashed_runs = [
        _run(source, items, batch_plan, checkpoint_every, executor,
             semantics=semantics, crash_at_checkpoint=crash_at_checkpoint)
        for executor in EXECUTORS
    ]
    assert crashed_runs[0] == crashed_runs[1]
    assert crashed_runs[0] == crashed_runs[2]

    reference = _run(source, items, batch_plan, checkpoint_every, "row",
                     semantics=semantics)
    total = sum(row["n"] for row in crashed_runs[0]["query"])
    expected = sum(row["n"] for row in reference["query"])
    if semantics is StateSemantics.AT_LEAST_ONCE:
        assert total >= expected
    elif semantics is StateSemantics.AT_MOST_ONCE:
        assert total <= expected
    else:
        # EXACTLY_ONCE has no fault point between the phases: the hook
        # never fires, nothing crashes, and the run matches exactly.
        assert crashed_runs[0] == reference


@settings(max_examples=20, deadline=None)
@given(items=st.lists(puma_records, min_size=2, max_size=30),
       batch_plan=batch_plans, checkpoint_every=st.integers(1, 9))
def test_stddev_matches_oracle_within_float_tolerance(items, batch_plan,
                                                      checkpoint_every):
    source = """
CREATE APPLICATION spread;
CREATE INPUT TABLE events(event_time, page, user, ms, weight)
FROM SCRIBE("events") TIME event_time;
CREATE TABLE agg AS
SELECT page, stddev(ms) AS spread, count(*) AS n FROM events [1 minute];
CREATE TABLE filt AS SELECT user, page FROM events WHERE page = 'home';
"""
    compiled, oracle = (
        _run(source, items, batch_plan, checkpoint_every, executor)
        for executor in ("compiled", "row"))
    assert len(compiled["query"]) == len(oracle["query"])
    for left, right in zip(compiled["query"], oracle["query"]):
        assert (left["window_start"], left["page"], left["n"]) == \
            (right["window_start"], right["page"], right["n"])
        if left["spread"] is None:
            assert right["spread"] is None
        else:
            assert math.isclose(left["spread"], right["spread"],
                                rel_tol=1e-9, abs_tol=1e-9)
