"""Tests for payload serialization."""

import pytest

from repro import serde


class TestEncodeDecode:
    def test_round_trip(self):
        record = {"event_time": 1.5, "text": "héllo", "n": 3,
                  "nested": {"a": [1, 2]}}
        assert serde.decode(serde.encode(record)) == record

    def test_tuples_become_lists(self):
        decoded = serde.decode(serde.encode({"pair": (1, 2)}))
        assert decoded["pair"] == [1, 2]

    def test_deterministic_key_order(self):
        a = serde.encode({"b": 1, "a": 2})
        b = serde.encode({"a": 2, "b": 1})
        assert a == b

    def test_unencodable_raises(self):
        with pytest.raises(serde.SerdeError):
            serde.encode({"bad": object()})

    def test_bad_bytes_raise(self):
        with pytest.raises(serde.SerdeError):
            serde.decode(b"\xff\xfe not json")

    def test_non_record_payload_raises(self):
        with pytest.raises(serde.SerdeError):
            serde.decode(b"[1, 2, 3]")

    def test_encoded_size(self):
        record = {"a": 1}
        assert serde.encoded_size(record) == len(serde.encode(record))
