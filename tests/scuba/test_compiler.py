"""Tests for the compiled Scuba engine: plans, zone maps, pruning."""

from repro.runtime.metrics import MetricsRegistry
from repro.scuba.columns import Segment
from repro.scuba.compiler import ScubaPlan, _zone_may_match
from repro.scuba.query import ColumnFilter, ScubaQuery
from repro.scuba.table import ScubaTable


def sealed_table(rows, segment_rows=8, name="t"):
    table = ScubaTable(name, segment_rows=segment_rows)
    table.add_rows(rows)
    table.seal_tail()
    return table


def monotonic_rows(n, start=0.0):
    """Time-correlated float metric: later segments hold larger values,
    which is what makes per-segment min/max ranges selective."""
    return [{"event_time": start + i, "value": float(i),
             "page": f"p{i % 3}"} for i in range(n)]


def all_engines_agree(table, **kwargs):
    results = [
        ScubaQuery(table, engine=engine, **kwargs).run()
        for engine in ("rows", "columnar", "compiled")
    ]
    assert results[0] == results[1] == results[2]
    return results[0]


class TestMissingColumnSemantics:
    """A missing column fails the filter unless the op is negative —
    uniformly across engines and both entry points (the bugfix)."""

    def rows(self):
        # Segment 0 has "region" everywhere, segment 1 nowhere, and the
        # tail mixes presence, absence, and explicit None.
        sealed = [{"event_time": float(i), "region": "us"} for i in range(8)]
        sealed += [{"event_time": 8.0 + i} for i in range(8)]
        tail = [{"event_time": 16.0, "region": "eu"},
                {"event_time": 17.0},
                {"event_time": 18.0, "region": None}]
        return sealed, tail

    def build(self):
        sealed, tail = self.rows()
        table = ScubaTable("t", segment_rows=8)
        table.add_rows(sealed)
        table.seal_tail()
        table.add_rows(tail)
        return table

    def test_positive_ops_fail_missing_in_run(self):
        table = self.build()
        result = all_engines_agree(
            table, start=0.0, end=20.0,
            filters=(ColumnFilter("region", "==", "us"),))
        assert result == [{"value": 8}]

    def test_negative_ops_pass_missing_in_run(self):
        table = self.build()
        # != "us": the 8 region-less sealed rows, the "eu"/None/absent
        # tail rows — everything but the 8 "us" rows.
        result = all_engines_agree(
            table, start=0.0, end=20.0,
            filters=(ColumnFilter("region", "!=", "us"),))
        assert result == [{"value": 11}]

    def test_not_in_passes_missing_in_run(self):
        table = self.build()
        result = all_engines_agree(
            table, start=0.0, end=20.0,
            filters=(ColumnFilter("region", "not in", ("us", "eu")),))
        assert result == [{"value": 10}]

    def test_semantics_agree_in_time_series(self):
        table = self.build()
        for op, operand in (("==", "us"), ("!=", "us"),
                            ("not in", ("us",)), ("in", ("us", "eu"))):
            points = [
                ScubaQuery(table, start=0.0, end=20.0, bucket_seconds=4.0,
                           engine=engine,
                           filters=(ColumnFilter("region", op, operand),)
                           ).run_time_series()
                for engine in ("rows", "columnar", "compiled")
            ]
            assert points[0] == points[1] == points[2], (op, operand)
        # And the negative op genuinely counts the region-less buckets.
        series = ScubaQuery(
            table, start=0.0, end=20.0, bucket_seconds=4.0, engine="rows",
            filters=(ColumnFilter("region", "!=", "us"),)).run_time_series()
        by_bucket = {p.bucket_start: p.value for p in series}
        assert by_bucket[8.0] == 4 and by_bucket[12.0] == 4
        assert 0.0 not in by_bucket  # all-"us" buckets filtered out


class TestPlanCache:
    def test_repeat_runs_hit_the_plan_cache(self):
        table = sealed_table(monotonic_rows(64))
        metrics = MetricsRegistry()
        query = ScubaQuery(table, 0.0, 64.0, group_by=("page",),
                           metrics=metrics, engine="compiled")
        query.run()
        assert metrics.counter("scuba.t.plan_cache.misses").value == 1
        query.run()
        query.shifted(1.0).run()  # same shape, different window
        assert metrics.counter("scuba.t.plan_cache.hits").value == 2
        assert table.query_cache.plans.stats()["size"] == 1

    def test_run_and_time_series_share_one_plan(self):
        table = sealed_table(monotonic_rows(64))
        metrics = MetricsRegistry()
        query = ScubaQuery(table, 0.0, 64.0, group_by=("page",),
                           bucket_seconds=16.0, metrics=metrics,
                           engine="compiled")
        query.run()
        query.run_time_series()
        assert metrics.counter("scuba.t.plan_cache.misses").value == 1
        assert metrics.counter("scuba.t.plan_cache.hits").value == 1

    def test_plans_survive_use_cache_false(self):
        # Plans are pure functions of the shape: result caching off must
        # not force re-lowering (the bench arms rely on this).
        table = sealed_table(monotonic_rows(64))
        query = ScubaQuery(table, 0.0, 64.0, group_by=("page",),
                           engine="compiled", use_cache=False)
        query.run()
        query.run()
        assert table.query_cache.plans.stats()["hits"] == 1
        # ... while the result cache stays genuinely empty.
        assert len(table.query_cache) == 0

    def test_opaque_where_falls_back_to_interpreter(self):
        table = sealed_table(monotonic_rows(64))
        query = ScubaQuery(table, 0.0, 64.0, group_by=("page",),
                           engine="compiled",
                           where=lambda row: row["value"] < 10.0)
        assert {r["page"]: r["value"] for r in query.run()} == \
               {"p0": 4, "p1": 3, "p2": 3}
        assert table.query_cache.plans.stats()["misses"] == 0

    def test_clear_drops_plans_with_partials(self):
        table = sealed_table(monotonic_rows(64))
        ScubaQuery(table, 0.0, 64.0, engine="compiled").run()
        assert len(table.query_cache.plans) == 1
        table.query_cache.clear()
        assert len(table.query_cache.plans) == 0

    def test_plan_cache_is_bounded_lru(self):
        table = sealed_table(monotonic_rows(16))
        cache = table.query_cache.plans
        cache.max_plans = 4
        for i in range(8):
            ScubaQuery(table, 0.0, 16.0, engine="compiled",
                       filters=(ColumnFilter("value", ">", float(i)),)).run()
        assert len(cache) == 4


class TestZonePruning:
    def test_selective_filter_prunes_segments(self):
        # 64 rows in 8 segments; values 0..63 track time, so value > 55
        # can only live in the last segment.
        table = sealed_table(monotonic_rows(64))
        metrics = MetricsRegistry()
        query = ScubaQuery(table, 0.0, 64.0, metrics=metrics,
                           engine="compiled",
                           filters=(ColumnFilter("value", ">", 55.0),))
        assert query.run() == [{"value": 8}]
        assert metrics.counter("scuba.t.segments_pruned").value == 7
        assert metrics.counter("scuba.t.rows_pruned").value == 56
        assert metrics.counter("scuba.t.rows_scanned").value == 8

    def test_pruned_equals_row_engine(self):
        table = sealed_table(monotonic_rows(64))
        for filters in (
            (ColumnFilter("value", ">=", 60.0),),
            (ColumnFilter("value", "<", 4.0),),
            (ColumnFilter("value", "==", 31.0),),
            (ColumnFilter("value", "in", (3.0, 59.0)),),
            (ColumnFilter("value", ">", 100.0),),  # prunes everything
            (ColumnFilter("page", "==", "nope"),),  # dict-domain prune
        ):
            all_engines_agree(table, start=0.0, end=64.0,
                              group_by=("page",), filters=filters)

    def test_dictionary_domain_prunes(self):
        rows = [{"event_time": float(i), "kind": "a" if i < 8 else "b"}
                for i in range(16)]
        table = sealed_table(rows, segment_rows=8)
        metrics = MetricsRegistry()
        query = ScubaQuery(table, 0.0, 16.0, metrics=metrics,
                           engine="compiled",
                           filters=(ColumnFilter("kind", "==", "b"),))
        assert query.run() == [{"value": 8}]
        assert metrics.counter("scuba.t.segments_pruned").value == 1

    def test_absent_column_pruning_respects_negative_ops(self):
        # Segment 0 lacks "flag" entirely: positive ops prune it,
        # negative ops must NOT (missing passes them).
        rows = [{"event_time": float(i)} for i in range(8)]
        rows += [{"event_time": 8.0 + i, "flag": "on"} for i in range(8)]
        table = sealed_table(rows, segment_rows=8)
        metrics = MetricsRegistry()
        positive = ScubaQuery(table, 0.0, 16.0, metrics=metrics,
                              engine="compiled",
                              filters=(ColumnFilter("flag", "==", "on"),))
        assert positive.run() == [{"value": 8}]
        assert metrics.counter("scuba.t.segments_pruned").value == 1
        negative = ScubaQuery(table, 0.0, 16.0, engine="compiled",
                              filters=(ColumnFilter("flag", "!=", "off"),))
        assert negative.run() == [{"value": 16}]

    def test_time_series_bucket_invalidated_by_pruned_segment_replacement(
            self):
        # A cached bucket must be stamped with pruned segments' seg_ids:
        # a deep insert into a pruned segment can add a passing row.
        table = sealed_table(monotonic_rows(64))
        query = ScubaQuery(table, 0.0, 64.0, bucket_seconds=32.0,
                           engine="compiled",
                           filters=(ColumnFilter("value", ">", 55.0),))
        assert [p.value for p in query.run_time_series()] == [8]
        # Deep out-of-order insert into the (pruned) first segment.
        table.add({"event_time": 0.5, "value": 99.0})
        assert sorted(p.value for p in query.run_time_series()) == [1, 8]

    def test_run_pruning_survives_segment_replacement(self):
        table = sealed_table(monotonic_rows(64))
        query = ScubaQuery(table, 0.0, 64.0, engine="compiled",
                           filters=(ColumnFilter("value", ">", 55.0),))
        assert query.run() == [{"value": 8}]
        table.add({"event_time": 0.5, "value": 99.0})
        assert query.run() == [{"value": 9}]

    def test_partial_coverage_still_prunes(self):
        # Zones summarize the whole segment, so a query overlapping only
        # part of it can still use them.
        table = sealed_table(monotonic_rows(64))
        metrics = MetricsRegistry()
        query = ScubaQuery(table, 3.0, 61.0, metrics=metrics,
                           engine="compiled",
                           filters=(ColumnFilter("value", "<", 2.0),))
        assert query.run() == []
        assert metrics.counter("scuba.t.segments_pruned").value >= 7


class TestZoneMaps:
    def test_float_zone_has_min_max(self):
        segment = Segment.seal(0, [0.0, 1.0, 2.0],
                               [{"v": 5.0}, {"v": -1.5}, {"v": 3.0}])
        zone = segment.zone("v")
        assert (zone.min_value, zone.max_value) == (-1.5, 5.0)
        assert not zone.has_missing and zone.domain is None

    def test_dict_zone_has_domain_and_missing(self):
        segment = Segment.seal(0, [0.0, 1.0, 2.0],
                               [{"k": "a"}, {"k": None}, {}])
        zone = segment.zone("k")
        assert zone.has_missing
        assert set(zone.domain) == {"a", None}

    def test_absent_column_zone_is_none(self):
        segment = Segment.seal(0, [0.0], [{"v": 1.0}])
        assert segment.zone("other") is None

    def test_mixed_object_zone_claims_no_range(self):
        segment = Segment.seal(
            0, [float(i) for i in range(5)],
            [{"v": [i]} for i in range(5)])  # unhashable -> ObjectColumn
        zone = segment.zone("v")
        assert zone.min_value is None and zone.domain is None
        # With no sound claim, nothing may be pruned.
        assert _zone_may_match(ColumnFilter("v", "==", [2]), zone)

    def test_sliced_dict_domain_is_conservative_superset(self):
        rows = [{"event_time": float(i), "k": "old" if i < 4 else "new"}
                for i in range(8)]
        table = ScubaTable("t", retention_seconds=4.0, segment_rows=8)
        table.add_rows(rows)
        table.seal_tail()
        table.trim(now=8.0)  # slices the segment; "old" rows are gone
        [segment] = table._segments
        # The superset domain keeps "old" (sound: may only over-keep) ...
        assert "old" in segment.zone("k").domain
        plan = ScubaPlan(("count", None, (), (ColumnFilter("k", "==", "old"),)))
        assert not plan.prunes(segment)
        # ... and the scan itself returns the true (empty) answer.
        assert ScubaQuery(table, 0.0, 8.0, engine="compiled",
                          filters=(ColumnFilter("k", "==", "old"),)
                          ).run() == []


class TestQueryStatsPanel:
    def test_panel_surfaces_pruning_and_plan_counters(self):
        from repro.monitoring.dashboards import DashboardPanel

        table = sealed_table(monotonic_rows(64))
        metrics = MetricsRegistry()
        query = ScubaQuery(table, 0.0, 64.0, metrics=metrics,
                           engine="compiled",
                           filters=(ColumnFilter("value", ">", 55.0),))
        query.run()
        query.run()
        panel = DashboardPanel.from_query_stats("query-cost", query)
        stats = {row["metric"]: row["value"] for row in panel.runner(0, 64)}
        assert stats["segments_pruned"] == 14
        assert stats["rows_pruned"] == 112
        assert stats["plan_cache.hits"] == 1
        assert stats["plan_cache.misses"] == 1
        assert "rows_scanned" in stats and "queries" in stats
