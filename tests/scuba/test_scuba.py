"""Tests for the Scuba store, query engine, and ingestion tier."""

import pytest

from repro.errors import ConfigError, ScubaError
from repro.runtime.metrics import MetricsRegistry
from repro.scuba.ingest import ScubaIngester
from repro.scuba.query import ScubaQuery
from repro.scuba.table import ScubaTable


def loaded_table(rows=100):
    table = ScubaTable("t")
    for i in range(rows):
        table.add({"event_time": float(i), "page": "home" if i % 2 else "about",
                   "ms": i % 10})
    return table


class TestScubaTable:
    def test_rows_between_is_half_open(self):
        table = loaded_table(10)
        rows = table.rows_between(2.0, 5.0)
        assert [r["event_time"] for r in rows] == [2.0, 3.0, 4.0]

    def test_out_of_order_insert_keeps_sort(self):
        table = ScubaTable("t")
        table.add({"event_time": 5.0})
        table.add({"event_time": 1.0})
        table.add({"event_time": 3.0})
        assert [r["event_time"] for r in table.rows_between(0, 10)] == \
               [1.0, 3.0, 5.0]

    def test_row_without_time_rejected(self):
        with pytest.raises(ScubaError):
            ScubaTable("t").add({"page": "home"})

    def test_trim_retention(self):
        table = ScubaTable("t", retention_seconds=50.0)
        for i in range(100):
            table.add({"event_time": float(i)})
        dropped = table.trim(now=100.0)
        assert dropped == 50
        assert table.min_time() == 50.0

    def test_min_max_time(self):
        table = loaded_table(10)
        assert table.min_time() == 0.0
        assert table.max_time() == 9.0
        assert ScubaTable("t").min_time() is None


class TestScubaQuery:
    def test_count_group_by(self):
        query = ScubaQuery(loaded_table(), start=0.0, end=100.0,
                           group_by=("page",))
        results = {r["page"]: r["value"] for r in query.run()}
        assert results == {"home": 50, "about": 50}

    def test_limit_defaults_to_seven(self):
        table = ScubaTable("t")
        for i in range(20):
            table.add({"event_time": float(i), "k": f"g{i}"})
        query = ScubaQuery(table, 0.0, 100.0, group_by=("k",))
        assert len(query.run()) == 7

    def test_where_filter(self):
        query = ScubaQuery(loaded_table(), 0.0, 100.0,
                           where=lambda r: r["ms"] >= 5)
        [row] = query.run()
        assert row["value"] == 50

    def test_aggregation_over_value_column(self):
        query = ScubaQuery(loaded_table(10), 0.0, 100.0,
                           aggregation="sum", value_column="ms")
        [row] = query.run()
        assert row["value"] == sum(i % 10 for i in range(10))

    def test_every_run_scans_and_charges_cpu(self):
        metrics = MetricsRegistry()
        query = ScubaQuery(loaded_table(), 0.0, 100.0, metrics=metrics)
        query.run()
        query.run()
        assert metrics.counter("scuba.t.rows_scanned").value == 200
        assert metrics.counter("scuba.t.queries").value == 2

    def test_shifted_models_dashboard_refresh(self):
        query = ScubaQuery(loaded_table(), start=0.0, end=50.0)
        slid = query.shifted(25.0)
        assert (slid.start, slid.end) == (25.0, 75.0)
        assert slid.table is query.table

    def test_time_series_buckets(self):
        query = ScubaQuery(loaded_table(100), 0.0, 100.0,
                           bucket_seconds=25.0)
        points = query.run_time_series()
        assert [p.bucket_start for p in points] == [0.0, 25.0, 50.0, 75.0]
        assert all(p.value == 25 for p in points)

    def test_time_series_requires_bucket(self):
        with pytest.raises(ScubaError):
            ScubaQuery(loaded_table(), 0.0, 1.0).run_time_series()

    def test_empty_range_rejected(self):
        with pytest.raises(ScubaError):
            ScubaQuery(loaded_table(), 5.0, 5.0).run()


class TestScubaIngester:
    def test_full_rate_ingests_everything(self, scribe):
        scribe.create_category("raw", 2)
        table = ScubaTable("t")
        ingester = ScubaIngester(scribe, "raw", table)
        for i in range(50):
            scribe.write_record("raw", {"event_time": float(i)}, key=str(i))
        assert ingester.pump(1000) == 50
        assert table.row_count() == 50

    def test_sampling_keeps_roughly_the_rate(self, scribe):
        scribe.create_category("raw", 1)
        table = ScubaTable("t")
        ingester = ScubaIngester(scribe, "raw", table, sample_rate=0.1,
                                 seed=5)
        for i in range(2000):
            scribe.write_record("raw", {"event_time": float(i)})
        ingester.pump(5000)
        assert 120 <= table.row_count() <= 280  # ~200 expected

    def test_sampling_is_deterministic(self, scribe):
        scribe.create_category("raw", 1)
        for i in range(100):
            scribe.write_record("raw", {"event_time": float(i)})
        counts = []
        for _ in range(2):
            table = ScubaTable("t")
            ingester = ScubaIngester(scribe, "raw", table, sample_rate=0.5,
                                     seed=7)
            ingester.pump(1000)
            counts.append(table.row_count())
        assert counts[0] == counts[1]

    def test_invalid_sample_rate(self, scribe):
        scribe.create_category("raw", 1)
        with pytest.raises(ConfigError):
            ScubaIngester(scribe, "raw", ScubaTable("t"), sample_rate=0.0)

    def test_at_most_once_never_redelivers(self, scribe):
        """Section 4.3.2: loss preferred to duplication."""
        scribe.create_category("raw", 1)
        table = ScubaTable("t")
        ingester = ScubaIngester(scribe, "raw", table)
        for i in range(10):
            scribe.write_record("raw", {"event_time": float(i)})
        ingester.pump(1000)
        ingester.pump(1000)  # nothing new: no duplicates
        assert table.row_count() == 10
