"""Tests for the Scuba store, query engine, and ingestion tier."""

import pytest

from repro.errors import ConfigError, ScubaError
from repro.runtime.metrics import MetricsRegistry
from repro.scribe.store import ScribeStore
from repro.scuba.ingest import ScubaIngester
from repro.scuba.query import ColumnFilter, ScubaQuery
from repro.scuba.table import ScubaTable


def loaded_table(rows=100):
    table = ScubaTable("t")
    for i in range(rows):
        table.add({"event_time": float(i), "page": "home" if i % 2 else "about",
                   "ms": i % 10})
    return table


class TestScubaTable:
    def test_rows_between_is_half_open(self):
        table = loaded_table(10)
        rows = table.rows_between(2.0, 5.0)
        assert [r["event_time"] for r in rows] == [2.0, 3.0, 4.0]

    def test_out_of_order_insert_keeps_sort(self):
        table = ScubaTable("t")
        table.add({"event_time": 5.0})
        table.add({"event_time": 1.0})
        table.add({"event_time": 3.0})
        assert [r["event_time"] for r in table.rows_between(0, 10)] == \
               [1.0, 3.0, 5.0]

    def test_row_without_time_rejected(self):
        with pytest.raises(ScubaError):
            ScubaTable("t").add({"page": "home"})

    def test_trim_retention(self):
        table = ScubaTable("t", retention_seconds=50.0)
        for i in range(100):
            table.add({"event_time": float(i)})
        dropped = table.trim(now=100.0)
        assert dropped == 50
        assert table.min_time() == 50.0

    def test_min_max_time(self):
        table = loaded_table(10)
        assert table.min_time() == 0.0
        assert table.max_time() == 9.0
        assert ScubaTable("t").min_time() is None


class TestScubaQuery:
    def test_count_group_by(self):
        query = ScubaQuery(loaded_table(), start=0.0, end=100.0,
                           group_by=("page",))
        results = {r["page"]: r["value"] for r in query.run()}
        assert results == {"home": 50, "about": 50}

    def test_limit_defaults_to_seven(self):
        table = ScubaTable("t")
        for i in range(20):
            table.add({"event_time": float(i), "k": f"g{i}"})
        query = ScubaQuery(table, 0.0, 100.0, group_by=("k",))
        assert len(query.run()) == 7

    def test_where_filter(self):
        query = ScubaQuery(loaded_table(), 0.0, 100.0,
                           where=lambda r: r["ms"] >= 5)
        [row] = query.run()
        assert row["value"] == 50

    def test_aggregation_over_value_column(self):
        query = ScubaQuery(loaded_table(10), 0.0, 100.0,
                           aggregation="sum", value_column="ms")
        [row] = query.run()
        assert row["value"] == sum(i % 10 for i in range(10))

    def test_every_run_scans_and_charges_cpu(self):
        metrics = MetricsRegistry()
        query = ScubaQuery(loaded_table(), 0.0, 100.0, metrics=metrics)
        query.run()
        query.run()
        assert metrics.counter("scuba.t.rows_scanned").value == 200
        assert metrics.counter("scuba.t.queries").value == 2

    def test_shifted_models_dashboard_refresh(self):
        query = ScubaQuery(loaded_table(), start=0.0, end=50.0)
        slid = query.shifted(25.0)
        assert (slid.start, slid.end) == (25.0, 75.0)
        assert slid.table is query.table

    def test_time_series_buckets(self):
        query = ScubaQuery(loaded_table(100), 0.0, 100.0,
                           bucket_seconds=25.0)
        points = query.run_time_series()
        assert [p.bucket_start for p in points] == [0.0, 25.0, 50.0, 75.0]
        assert all(p.value == 25 for p in points)

    def test_time_series_requires_bucket(self):
        with pytest.raises(ScubaError):
            ScubaQuery(loaded_table(), 0.0, 1.0).run_time_series()

    def test_empty_range_rejected(self):
        with pytest.raises(ScubaError):
            ScubaQuery(loaded_table(), 5.0, 5.0).run()


class TestScubaIngester:
    def test_full_rate_ingests_everything(self, scribe):
        scribe.create_category("raw", 2)
        table = ScubaTable("t")
        ingester = ScubaIngester(scribe, "raw", table)
        for i in range(50):
            scribe.write_record("raw", {"event_time": float(i)}, key=str(i))
        assert ingester.pump(1000) == 50
        assert table.row_count() == 50

    def test_sampling_keeps_roughly_the_rate(self, scribe):
        scribe.create_category("raw", 1)
        table = ScubaTable("t")
        ingester = ScubaIngester(scribe, "raw", table, sample_rate=0.1,
                                 seed=5)
        for i in range(2000):
            scribe.write_record("raw", {"event_time": float(i)})
        ingester.pump(5000)
        assert 120 <= table.row_count() <= 280  # ~200 expected

    def test_sampling_is_deterministic(self, scribe):
        scribe.create_category("raw", 1)
        for i in range(100):
            scribe.write_record("raw", {"event_time": float(i)})
        counts = []
        for _ in range(2):
            table = ScubaTable("t")
            ingester = ScubaIngester(scribe, "raw", table, sample_rate=0.5,
                                     seed=7)
            ingester.pump(1000)
            counts.append(table.row_count())
        assert counts[0] == counts[1]

    def test_invalid_sample_rate(self, scribe):
        scribe.create_category("raw", 1)
        with pytest.raises(ConfigError):
            ScubaIngester(scribe, "raw", ScubaTable("t"), sample_rate=0.0)

    def test_at_most_once_never_redelivers(self, scribe):
        """Section 4.3.2: loss preferred to duplication."""
        scribe.create_category("raw", 1)
        table = ScubaTable("t")
        ingester = ScubaIngester(scribe, "raw", table)
        for i in range(10):
            scribe.write_record("raw", {"event_time": float(i)})
        ingester.pump(1000)
        ingester.pump(1000)  # nothing new: no duplicates
        assert table.row_count() == 10

    def test_ingest_health_metrics(self, scribe):
        """Lag gauge + rows counter + rows/sec gauge for dashboards."""
        scribe.create_category("raw", 1)
        metrics = MetricsRegistry()
        table = ScubaTable("t")
        ingester = ScubaIngester(scribe, "raw", table, metrics=metrics)
        for i in range(30):
            scribe.write_record("raw", {"event_time": float(i)})
        ingester.pump(10)  # partial drain: lag stays nonzero
        name = ingester.name
        assert metrics.counter(f"{name}.rows").value == 10
        assert metrics.gauge(f"{name}.ingest_lag").value == 20
        # On a SimClock the pump consumes zero modeled time, so the
        # rows/sec gauge must stay untouched (a rate over zero time is
        # undefined) — and, per R001, the ingester must not fall back to
        # the wall clock to fake one.
        assert metrics.gauge(f"{name}.rows_per_sec").value == 0
        ingester.pump(1000)
        assert metrics.gauge(f"{name}.ingest_lag").value == 0
        assert metrics.counter(f"{name}.rows").value == 30

    def test_rows_per_sec_on_wall_clock(self):
        """Under a real clock (the production-style default) the rate
        gauge reports rows over elapsed seconds."""
        scribe = ScribeStore()  # default WallClock
        scribe.create_category("raw", 1)
        metrics = MetricsRegistry()
        table = ScubaTable("t")
        ingester = ScubaIngester(scribe, "raw", table, metrics=metrics)
        for i in range(50):
            scribe.write_record("raw", {"event_time": float(i)})
        ingester.pump(1000)
        assert metrics.gauge(f"{ingester.name}.rows_per_sec").value > 0


class TestResultOrdering:
    def test_topk_ties_order_by_group_key(self):
        """Equal-valued groups must order deterministically, not by
        dict-insertion (== ingest) order."""
        for insertion_order in (range(12), reversed(range(12))):
            table = ScubaTable("t")
            for i in insertion_order:
                table.add({"event_time": float(i), "k": f"g{i % 4}"})
            query = ScubaQuery(table, 0.0, 100.0, group_by=("k",), limit=3)
            results = query.run()
            # All four groups count 3; the limit-3 cut must be stable.
            assert [r["k"] for r in results] == ["g0", "g1", "g2"]
            assert all(r["value"] == 3 for r in results)

    def test_topk_tie_order_same_under_both_engines(self):
        table = ScubaTable("t", segment_rows=4)
        for i in range(32):
            table.add({"event_time": float(i), "k": f"g{i % 8}"})
        table.seal_tail()
        rows = ScubaQuery(table, 0.0, 100.0, group_by=("k",),
                          engine="rows").run()
        cols = ScubaQuery(table, 0.0, 100.0, group_by=("k",),
                          engine="columnar").run()
        assert rows == cols

    def test_sortable_handles_mixed_type_aggregates(self):
        """min over a column holding strings in one group and numbers in
        another used to crash the result sort with TypeError."""
        table = ScubaTable("t")
        table.add({"event_time": 0.0, "g": "a", "v": "zebra"})
        table.add({"event_time": 1.0, "g": "b", "v": 3})
        table.add({"event_time": 2.0, "g": "c", "v": None})
        query = ScubaQuery(table, 0.0, 10.0, aggregation="min",
                           value_column="v", group_by=("g",))
        results = query.run()
        assert len(results) == 3
        # Deterministic: strings rank above numbers, None sorts last.
        assert [r["value"] for r in results] == ["zebra", 3, None]
        again = ScubaQuery(table, 0.0, 10.0, aggregation="min",
                           value_column="v", group_by=("g",),
                           engine="rows").run()
        assert results == again


class TestColumnarStorage:
    def test_tail_seals_into_segments(self):
        table = ScubaTable("t", segment_rows=8)
        for i in range(40):
            table.add({"event_time": float(i), "v": i})
        assert table.segment_count() >= 2
        assert table.row_count() == 40
        assert [r["v"] for r in table.rows_between(0.0, 100.0)] == \
            list(range(40))

    def test_materialized_rows_preserve_missing_keys_and_values(self):
        table = ScubaTable("t", segment_rows=2)
        rows = [
            {"event_time": 0.0, "a": 1, "b": "x"},
            {"event_time": 1.0, "a": None},          # explicit None kept
            {"event_time": 2.0, "b": "y", "c": 2.5},  # missing keys omitted
            {"event_time": 3.0, "a": 7},
        ]
        table.add_rows([dict(r) for r in rows])
        table.seal_tail()
        assert table.rows_between(0.0, 10.0) == rows

    def test_deep_out_of_order_insert_rebuilds_segment(self):
        table = ScubaTable("t", segment_rows=4)
        for i in range(20):
            table.add({"event_time": float(i * 2), "v": i * 2})
        table.seal_tail()
        ids_before = set(table.live_segment_ids())
        table.add({"event_time": 3.0, "v": 3})  # lands inside a sealed run
        assert set(table.live_segment_ids()) != ids_before
        times = [r["event_time"] for r in table.rows_between(0.0, 100.0)]
        assert times == sorted(times)
        assert 3.0 in times and table.row_count() == 21

    def test_trim_slices_boundary_segment(self):
        table = ScubaTable("t", retention_seconds=10.0, segment_rows=8)
        for i in range(32):
            table.add({"event_time": float(i)})
        table.seal_tail()
        dropped = table.trim(now=25.0)  # cutoff at t=15, mid-segment
        assert dropped == 15
        assert table.min_time() == 15.0
        assert table.row_count() == 17

    def test_non_columnar_table_never_seals(self):
        table = ScubaTable("t", columnar=False, segment_rows=2)
        for i in range(50):
            table.add({"event_time": float(i)})
        assert table.segment_count() == 0
        assert table.seal_tail() == 0


class TestColumnFilter:
    def test_unknown_op_rejected(self):
        with pytest.raises(ScubaError):
            ColumnFilter("x", "~=", 1)

    def test_filters_match_where_lambda(self):
        table = loaded_table()
        by_filter = ScubaQuery(table, 0.0, 100.0,
                               filters=(ColumnFilter("ms", ">=", 5),)).run()
        by_where = ScubaQuery(table, 0.0, 100.0,
                              where=lambda r: r["ms"] >= 5).run()
        assert by_filter == by_where

    def test_null_and_missing_never_pass(self):
        table = ScubaTable("t", segment_rows=2)
        table.add({"event_time": 0.0, "v": None})
        table.add({"event_time": 1.0})
        table.add({"event_time": 2.0, "v": 5})
        table.seal_tail()
        for engine in ("rows", "columnar"):
            [row] = ScubaQuery(table, 0.0, 10.0,
                               filters=(ColumnFilter("v", ">=", 0),),
                               engine=engine).run()
            assert row["value"] == 1

    def test_incomparable_operand_never_passes(self):
        table = loaded_table(10)
        assert ScubaQuery(table, 0.0, 100.0,
                          filters=(ColumnFilter("page", ">=", 5),)).run() == []


class TestQueryCache:
    def sealed_table(self, rows=64, segment_rows=8):
        table = ScubaTable("t", segment_rows=segment_rows)
        for i in range(rows):
            table.add({"event_time": float(i), "page": f"p{i % 3}",
                       "ms": float(i % 5)})
        table.seal_tail()
        return table

    def test_repeat_run_hits_segment_partials(self):
        table = self.sealed_table()
        metrics = MetricsRegistry()
        query = ScubaQuery(table, 0.0, 64.0, group_by=("page",),
                           metrics=metrics)
        first = query.run()
        assert metrics.counter("scuba.t.cache.misses").value > 0
        assert metrics.counter("scuba.t.cache.hits").value == 0
        scanned = metrics.counter("scuba.t.rows_scanned").value
        assert first == query.run()
        assert metrics.counter("scuba.t.cache.hits").value > 0
        # The repeat scanned nothing: every segment came from the cache.
        assert metrics.counter("scuba.t.rows_scanned").value == scanned
        assert metrics.counter("scuba.t.rows_cached").value == 64

    def test_shifted_window_reuses_overlap(self):
        table = self.sealed_table(rows=80)
        metrics = MetricsRegistry()
        query = ScubaQuery(table, 0.0, 64.0, group_by=("page",),
                           metrics=metrics)
        query.run()
        shifted = query.shifted(8.0)
        shifted.run()
        assert metrics.counter("scuba.t.cache.hits").value > 0
        assert metrics.counter("scuba.t.cache.partial_reuse").value >= 1

    def test_trim_invalidates_only_affected_segments(self):
        table = self.sealed_table()
        query = ScubaQuery(table, 0.0, 64.0, group_by=("page",), limit=100)
        before = query.run()
        table.trim(now=20.0 + table.retention_seconds)  # drop t < 20
        after = query.run()
        fresh = ScubaQuery(table, 0.0, 64.0, group_by=("page",),
                           engine="rows", limit=100).run()
        assert after == fresh
        assert after != before

    def test_closed_buckets_cached_and_tail_appends_ignored(self):
        table = self.sealed_table()
        metrics = MetricsRegistry()
        query = ScubaQuery(table, 0.0, 64.0, bucket_seconds=8.0,
                           metrics=metrics)
        first = query.run_time_series()
        # Tail appends are newer than every closed bucket: no invalidation.
        table.add({"event_time": 100.0, "page": "p0", "ms": 1.0})
        assert query.run_time_series() == first
        assert metrics.counter("scuba.t.cache.hits").value > 0

    def test_where_lambda_disables_caching(self):
        table = self.sealed_table()
        metrics = MetricsRegistry()
        query = ScubaQuery(table, 0.0, 64.0, group_by=("page",),
                           where=lambda r: True, metrics=metrics)
        query.run()
        query.run()
        assert metrics.counter("scuba.t.cache.hits").value == 0
        assert metrics.counter("scuba.t.cache.misses").value == 0

    def test_use_cache_false_disables_caching(self):
        table = self.sealed_table()
        metrics = MetricsRegistry()
        query = ScubaQuery(table, 0.0, 64.0, group_by=("page",),
                           metrics=metrics, use_cache=False)
        assert query.run() == query.run()
        assert metrics.counter("scuba.t.cache.hits").value == 0
        assert len(table.query_cache) == 0
