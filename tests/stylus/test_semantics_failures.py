"""The Figure 7 experiment as tests: semantics under injected failures.

The counter node runs over a fixed input; a crash is injected at the
vulnerable point between the two checkpoint saves. The final counter
value must land on the correct side of the true count for each policy.
"""

import pytest

from repro.core.semantics import SemanticsPolicy
from repro.scribe.reader import CategoryReader
from repro.stylus.checkpointing import CheckpointPolicy, CrashInjector, CrashPoint
from repro.stylus.engine import StylusTask

from tests.conftest import write_events
from tests.stylus.helpers import CountingProcessor

TOTAL_EVENTS = 100
CHECKPOINT_EVERY = 10


def run_counter(scribe, semantics, crash_point=None, crash_checkpoint=4):
    scribe.ensure_category("in", 1)
    scribe.ensure_category("out", 1)
    injector = CrashInjector()
    if crash_point is not None:
        injector.arm(crash_point, crash_checkpoint)
    task = StylusTask("counter", scribe, "in", 0, CountingProcessor(),
                      semantics=semantics,
                      checkpoint_policy=CheckpointPolicy(
                          every_n_events=CHECKPOINT_EVERY),
                      output_category="out", clock=scribe.clock,
                      crash_injector=injector)
    write_events(scribe, "in", TOTAL_EVENTS)
    restarts = 0
    while True:
        task.pump()
        if task.crashed:
            task.restart()
            restarts += 1
            continue
        if task.lag_messages() == 0:
            break
    # TOTAL_EVENTS is a multiple of CHECKPOINT_EVERY, so the final
    # checkpoint (and its periodic output) fired inside the last pump.
    return task, restarts


def final_count(scribe, task):
    if task.semantics.output.value == "exactly-once":
        outputs = task.state_backend.committed_outputs()
    else:
        outputs = [m.decode() for m in CategoryReader(scribe, "out").read_all()]
    return outputs[-1]["count"]


class TestNoFailure:
    @pytest.mark.parametrize("semantics", [
        SemanticsPolicy.at_least_once(),
        SemanticsPolicy.at_most_once(),
        SemanticsPolicy.exactly_once(),
    ], ids=lambda s: s.describe())
    def test_all_semantics_exact_without_failures(self, scribe, semantics):
        task, restarts = run_counter(scribe, semantics)
        assert restarts == 0
        assert final_count(scribe, task) == TOTAL_EVENTS


class TestFigure7Shapes:
    def test_at_least_once_overcounts_after_crash(self, scribe):
        task, restarts = run_counter(
            scribe, SemanticsPolicy.at_least_once(),
            CrashPoint.AFTER_FIRST_SAVE,
        )
        assert restarts == 1
        # state was saved, offset was not: the replayed events count twice
        assert final_count(scribe, task) == TOTAL_EVENTS + CHECKPOINT_EVERY

    def test_at_most_once_undercounts_after_crash(self, scribe):
        task, restarts = run_counter(
            scribe, SemanticsPolicy.at_most_once(),
            CrashPoint.AFTER_FIRST_SAVE,
        )
        assert restarts == 1
        # offset was saved, state was not: those events are lost
        assert final_count(scribe, task) == TOTAL_EVENTS - CHECKPOINT_EVERY

    @pytest.mark.parametrize("point", [
        CrashPoint.BEFORE_CHECKPOINT,
        CrashPoint.DURING_PROCESSING,
        CrashPoint.AFTER_CHECKPOINT,
    ], ids=lambda p: p.value)
    def test_exactly_once_is_exact_under_any_crash(self, scribe, point):
        task, restarts = run_counter(
            scribe, SemanticsPolicy.exactly_once(), point,
        )
        assert restarts == 1
        assert final_count(scribe, task) == TOTAL_EVENTS

    def test_exactly_once_output_has_no_duplicates(self, scribe):
        task, _ = run_counter(scribe, SemanticsPolicy.exactly_once(),
                              CrashPoint.BEFORE_CHECKPOINT)
        outputs = task.state_backend.committed_outputs()
        counts = [o["count"] for o in outputs]
        assert counts == sorted(counts)
        assert len(counts) == len(set(counts))


class TestOutputSemantics:
    def test_at_most_once_crash_after_checkpoint_loses_output(self, scribe):
        """Crash between the checkpoint save and the emit: output gone,
        but never duplicated."""
        task, restarts = run_counter(
            scribe, SemanticsPolicy.at_most_once(),
            CrashPoint.AFTER_CHECKPOINT,
        )
        assert restarts == 1
        counts = [m.decode()["count"]
                  for m in CategoryReader(scribe, "out").read_all()]
        assert len(counts) == len(set(counts))  # no duplicates
        assert TOTAL_EVENTS in counts  # final value still arrives later

    def test_at_least_once_crash_after_emit_duplicates_output(self, scribe):
        """Crash after emitting but before the saves complete: the
        emission happens again after replay — duplicates allowed."""
        task, restarts = run_counter(
            scribe, SemanticsPolicy.at_least_once(),
            CrashPoint.BEFORE_CHECKPOINT, crash_checkpoint=3,
        )
        assert restarts == 1
        counts = [m.decode()["count"]
                  for m in CategoryReader(scribe, "out").read_all()]
        assert counts[-1] == TOTAL_EVENTS
