"""Tests: the buffered (Swift-style) strategy is result-equivalent.

Figure 9's two implementations differ only in *when* work happens; the
outputs and state must be identical. These tests run the same processors
under both strategies and compare everything observable.
"""

import pytest

from repro.core.costs import CostModel
from repro.core.semantics import SemanticsPolicy
from repro.runtime.clock import SimClock
from repro.scribe.reader import CategoryReader
from repro.scribe.store import ScribeStore
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import Strategy, StylusTask

from tests.stylus.helpers import CountingProcessor, DropEvens


def run(strategy, processor_factory, semantics, events=60):
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    scribe.create_category("out", 1)
    task = StylusTask("t", scribe, "in", 0, processor_factory(),
                      semantics=semantics,
                      checkpoint_policy=CheckpointPolicy(every_n_events=10),
                      output_category="out", clock=clock)
    task.strategy = strategy
    for i in range(events):
        scribe.write_record("in", {"event_time": float(i), "seq": i})
    task.pump(events)
    task.checkpoint_now()
    outputs = [m.decode() for m in CategoryReader(scribe, "out").read_all()]
    return task, outputs


class TestStrategyEquivalence:
    @pytest.mark.parametrize("semantics", [
        SemanticsPolicy.at_least_once(),
        SemanticsPolicy.at_most_once(),
    ], ids=lambda s: s.describe())
    def test_stateless_outputs_identical(self, semantics):
        _, overlapped = run(Strategy.OVERLAPPED, DropEvens, semantics)
        _, buffered = run(Strategy.BUFFERED, DropEvens, semantics)
        assert overlapped == buffered

    @pytest.mark.parametrize("semantics", [
        SemanticsPolicy.at_least_once(),
        SemanticsPolicy.at_most_once(),
    ], ids=lambda s: s.describe())
    def test_stateful_state_identical(self, semantics):
        task_a, out_a = run(Strategy.OVERLAPPED, CountingProcessor, semantics)
        task_b, out_b = run(Strategy.BUFFERED, CountingProcessor, semantics)
        assert task_a.state == task_b.state
        assert out_a == out_b

    def test_buffered_checkpoint_offset_covers_buffer(self):
        """The buffered drain happens before the offset save, so the
        checkpoint never skips buffered-but-unprocessed events."""
        task, _ = run(Strategy.BUFFERED, CountingProcessor,
                      SemanticsPolicy.at_most_once())
        _, offset = task.state_backend.load()
        assert offset == 60
        assert task.state == {"count": 60}


class TestModeledTimelines:
    def test_buffered_is_never_faster(self):
        """Whatever the costs, serializing phases cannot beat overlap."""
        costs = CostModel(receive_per_event=5e-6, deserialize_per_event=5e-6,
                          process_per_event=1e-6, checkpoint_sync=0.01)

        def run_with_costs(strategy):
            clock = SimClock()
            scribe = ScribeStore(clock=clock)
            scribe.create_category("in", 1)
            for i in range(5000):
                scribe.write_record("in", {"event_time": float(i), "seq": i})
            task = StylusTask("t", scribe, "in", 0, DropEvens(),
                              semantics=SemanticsPolicy.at_most_once(),
                              checkpoint_policy=CheckpointPolicy(
                                  interval_seconds=0.01),
                              clock=clock, cost_model=costs,
                              strategy=strategy)
            task.pump(5000)
            task.checkpoint_now()
            return task.timeline.elapsed()

        assert run_with_costs(Strategy.OVERLAPPED) <= \
            run_with_costs(Strategy.BUFFERED)
