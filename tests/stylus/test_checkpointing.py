"""Tests for checkpoint policies and the crash injector."""

import pytest

from repro.errors import ConfigError, ProcessCrashed
from repro.stylus.checkpointing import (
    CheckpointPolicy,
    CrashInjector,
    CrashPoint,
    NoCrashes,
)


class TestCheckpointPolicy:
    def test_requires_some_trigger(self):
        with pytest.raises(ConfigError):
            CheckpointPolicy()

    def test_event_trigger(self):
        policy = CheckpointPolicy(every_n_events=10)
        assert not policy.due(now=0.0, last_checkpoint_at=0.0, events_since=9)
        assert policy.due(now=0.0, last_checkpoint_at=0.0, events_since=10)

    def test_time_trigger(self):
        policy = CheckpointPolicy(interval_seconds=2.0)
        assert not policy.due(now=1.9, last_checkpoint_at=0.0, events_since=0)
        assert policy.due(now=2.0, last_checkpoint_at=0.0, events_since=0)

    def test_either_trigger_fires(self):
        policy = CheckpointPolicy(interval_seconds=10.0, every_n_events=5)
        assert policy.due(now=1.0, last_checkpoint_at=0.0, events_since=5)
        assert policy.due(now=11.0, last_checkpoint_at=0.0, events_since=0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            CheckpointPolicy(interval_seconds=0.0)
        with pytest.raises(ConfigError):
            CheckpointPolicy(every_n_events=0)


class TestCrashInjector:
    def test_fires_only_at_armed_point_and_index(self):
        injector = CrashInjector()
        injector.arm(CrashPoint.AFTER_FIRST_SAVE, 3)
        injector.fire(CrashPoint.AFTER_FIRST_SAVE, 2, "t", 0.0)  # wrong index
        injector.fire(CrashPoint.BEFORE_CHECKPOINT, 3, "t", 0.0)  # wrong point
        with pytest.raises(ProcessCrashed):
            injector.fire(CrashPoint.AFTER_FIRST_SAVE, 3, "t", 1.5)
        assert injector.crashes_fired == 1

    def test_armed_crash_fires_once(self):
        injector = CrashInjector()
        injector.arm(CrashPoint.AFTER_CHECKPOINT, 1)
        with pytest.raises(ProcessCrashed):
            injector.fire(CrashPoint.AFTER_CHECKPOINT, 1, "t", 0.0)
        injector.fire(CrashPoint.AFTER_CHECKPOINT, 1, "t", 0.0)  # disarmed

    def test_crash_carries_context(self):
        injector = CrashInjector()
        injector.arm(CrashPoint.DURING_PROCESSING, 1)
        with pytest.raises(ProcessCrashed) as exc:
            injector.fire(CrashPoint.DURING_PROCESSING, 1, "scorer", 7.5)
        assert "scorer" in str(exc.value)
        assert exc.value.at_time == 7.5

    def test_no_crashes_never_fires(self):
        injector = NoCrashes()
        injector.arm(CrashPoint.AFTER_FIRST_SAVE, 1)
        injector.fire(CrashPoint.AFTER_FIRST_SAVE, 1, "t", 0.0)  # no raise

    def test_armed_count(self):
        injector = CrashInjector()
        injector.arm(CrashPoint.AFTER_FIRST_SAVE, 1)
        injector.arm(CrashPoint.AFTER_FIRST_SAVE, 2)
        assert injector.armed_count() == 2
