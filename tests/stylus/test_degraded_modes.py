"""Degraded-mode behavior when the remote state store misbehaves.

A checkpoint that cannot reach its store must never crash the task or
silently vanish: it is retried under the configured policy, and when
the budget runs out the task defers (queue-and-drain) or — for
at-most-once monoid partials, where a retry could double-count — drops
with a counter.
"""

import pytest

from repro.core.semantics import SemanticsPolicy
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.retry import RetryPolicy
from repro.storage.zippydb import ZippyDb, ZippyDbLatencyModel
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusTask

from tests.conftest import write_events
from tests.stylus.helpers import CountingProcessor, DimensionCounter

FREE = ZippyDbLatencyModel(read=0.0, write=0.0, batch_overhead=0.0,
                           per_item=0.0, transaction_round=0.0)


def make_task(scribe, db, processor, semantics, metrics,
              retry=None, every=10):
    from repro.stylus.state import RemoteDbStateBackend

    scribe.ensure_category("in", 1)
    return StylusTask("t", scribe, "in", 0, processor,
                      semantics=semantics,
                      state_backend=RemoteDbStateBackend("t", db),
                      checkpoint_policy=CheckpointPolicy(every_n_events=every),
                      clock=scribe.clock, metrics=metrics,
                      retry_policy=retry)


class TestDeferredCheckpoints:
    def test_checkpoint_defers_while_store_is_down_then_drains(self, scribe,
                                                               clock):
        metrics = MetricsRegistry()
        db = ZippyDb(clock=clock, latency=FREE,
                     merge_operator=None)
        task = make_task(scribe, db, CountingProcessor(),
                         SemanticsPolicy.at_least_once(), metrics)
        write_events(scribe, "in", 30)
        db.set_available(False)
        assert task.pump(20) == 20        # two checkpoints both defer
        assert metrics.counter("stylus.t.checkpoints_deferred").value == 2
        assert metrics.counter("stylus.t.checkpoints").value == 0
        # Nothing was lost: the store heals and the next checkpoint
        # drains the full state and offset.
        db.set_available(True)
        task.pump(10)
        assert metrics.counter("stylus.t.checkpoints").value == 1
        _, offset = task.state_backend.load()
        assert offset == 30

    def test_deferral_survives_a_crash_without_losing_data(self, scribe,
                                                           clock):
        metrics = MetricsRegistry()
        db = ZippyDb(clock=clock, latency=FREE)
        task = make_task(scribe, db, CountingProcessor(),
                         SemanticsPolicy.at_least_once(), metrics)
        write_events(scribe, "in", 20)
        task.pump(10)                      # checkpoint 0 lands
        db.set_available(False)
        task.pump(10)                      # checkpoint 1 defers
        assert metrics.counter("stylus.t.checkpoints_deferred").value == 1
        db.set_available(True)
        task.crash()
        task.restart()                     # resumes from checkpoint 0
        task.pump()
        while task.lag_messages() > 0:
            task.pump()
        task.checkpoint_now()
        state, offset = task.state_backend.load()
        assert offset == 20
        assert state["count"] >= 20        # at-least-once: no loss

    def test_checkpoint_retries_through_a_transient_outage(self, scribe,
                                                           clock):
        metrics = MetricsRegistry()
        db = ZippyDb(clock=clock, latency=FREE)
        task = make_task(scribe, db, CountingProcessor(),
                         SemanticsPolicy.at_least_once(), metrics,
                         retry=RetryPolicy(max_attempts=4, base_delay=1.0,
                                           multiplier=2.0, jitter=0.0))
        write_events(scribe, "in", 10)
        db.add_outage(clock.now(), clock.now() + 2.5)
        task.pump(10)                      # backoff carries past the outage
        assert metrics.counter("stylus.t.state.retry.recoveries").value >= 1
        assert metrics.counter("stylus.t.checkpoints_deferred").value == 0
        _, offset = task.state_backend.load()
        assert offset == 10


class TestAtMostOncePartials:
    def test_partials_dropped_not_retried_when_store_is_down(self, scribe,
                                                             clock):
        from repro.storage.merge import DictSumMergeOperator

        metrics = MetricsRegistry()
        db = ZippyDb(clock=clock, latency=FREE,
                     merge_operator=DictSumMergeOperator())
        task = make_task(scribe, db, DimensionCounter(),
                         SemanticsPolicy.at_most_once(), metrics,
                         retry=RetryPolicy(max_attempts=5, base_delay=0.1,
                                           jitter=0.0))
        write_events(scribe, "in", 20)
        db.set_available(False)
        task.pump(10)
        # The offset save already failed under at-most-once ordering, so
        # the checkpoint deferred before partials were touched. Latch the
        # offset path open but keep merges failing via a fresh window on
        # the flush: simplest honest check is the healed run below.
        assert metrics.counter("stylus.t.checkpoints_deferred").value == 1
        db.set_available(True)
        task.pump(10)
        assert metrics.counter("stylus.t.checkpoints").value == 1
        # At-most-once may undercount, never overcount.
        total = sum((db.get(f"t:v:dim{i}") or {}).get("count", 0)
                    for i in range(10))
        assert total <= 20

    def test_partial_flush_failure_drops_and_counts(self, scribe, clock,
                                                    monkeypatch):
        from repro.errors import StoreUnavailable
        from repro.storage.merge import DictSumMergeOperator

        metrics = MetricsRegistry()
        db = ZippyDb(clock=clock, latency=FREE,
                     merge_operator=DictSumMergeOperator())
        task = make_task(scribe, db, DimensionCounter(),
                         SemanticsPolicy.at_most_once(), metrics)
        write_events(scribe, "in", 20)
        # The offset save succeeds; the flush itself hits a dead store.
        real_flush = task.state_backend.flush_partials
        state = {"fail": True}

        def flaky_flush(partials, op):
            if state["fail"]:
                raise StoreUnavailable("injected")
            return real_flush(partials, op)

        monkeypatch.setattr(task.state_backend, "flush_partials",
                            flaky_flush)
        task.pump(10)
        # One attempt only — a retry could double-apply a partially
        # merged batch — then the partials are dropped, visibly.
        assert metrics.counter("stylus.t.partials_dropped").value == 1
        assert metrics.counter("stylus.t.checkpoints").value == 1
        state["fail"] = False
        task.pump(10)
        total = sum((db.get(f"t:v:dim{i}") or {}).get("count", 0)
                    for i in range(10))
        # The first batch's counts are gone (undercount is allowed under
        # at-most-once); the second batch landed.
        assert total == 10


class TestRestart:
    def test_restart_retries_state_load(self, scribe, clock):
        metrics = MetricsRegistry()
        db = ZippyDb(clock=clock, latency=FREE)
        task = make_task(scribe, db, CountingProcessor(),
                         SemanticsPolicy.at_least_once(), metrics,
                         retry=RetryPolicy(max_attempts=4, base_delay=1.0,
                                           multiplier=2.0, jitter=0.0))
        write_events(scribe, "in", 10)
        task.pump(10)                      # checkpoint at offset 10
        task.crash()
        db.add_outage(clock.now(), clock.now() + 2.5)
        task.restart()                     # load retried across the outage
        assert not task.crashed
        assert metrics.counter("stylus.t.state.retry.recoveries").value >= 1
        _, offset = task.state_backend.load()
        assert offset == 10
