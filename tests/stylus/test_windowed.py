"""Tests for the watermark-driven windowed aggregator."""

import pytest

from repro.core.semantics import SemanticsPolicy
from repro.errors import ConfigError
from repro.runtime.rng import make_rng
from repro.scribe.reader import CategoryReader
from repro.storage.merge import CounterMergeOperator
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusTask
from repro.stylus.windowed import WindowedAggregator


def make_aggregator(confidence=0.99, window=10.0):
    return WindowedAggregator(
        window_seconds=window,
        operator=CounterMergeOperator(),
        extract=lambda event: [(str(event.get("k", "all")), 1)],
        confidence=confidence,
    )


def wire_task(scribe, aggregator, checkpoint_every=50):
    scribe.ensure_category("in", 1)
    scribe.ensure_category("out", 1)
    return StylusTask("win", scribe, "in", 0, aggregator,
                      semantics=SemanticsPolicy.at_least_once(),
                      checkpoint_policy=CheckpointPolicy(
                          every_n_events=checkpoint_every),
                      output_category="out", clock=scribe.clock)


def emitted(scribe):
    return [m.decode() for m in CategoryReader(scribe, "out").read_all()]


class TestWindowClosing:
    def test_windows_close_once_watermark_passes(self, scribe):
        aggregator = make_aggregator()
        task = wire_task(scribe, aggregator)
        # 100 in-order events, 1/s: windows [0,10) .. [90,100).
        for i in range(100):
            scribe.write_record("in", {"event_time": float(i), "k": "a"})
        task.pump()
        task.checkpoint_now()
        rows = emitted(scribe)
        assert rows, "closed windows must emit"
        # Every emitted row is a complete window of 10 events.
        assert all(row["value"] == 10 for row in rows)
        assert all(row["final"] for row in rows)
        # The newest windows stay open (the watermark hasn't passed them).
        open_windows = WindowedAggregator.open_windows(task.state)
        assert open_windows
        assert max(row["window_start"] for row in rows) < min(open_windows)

    def test_each_window_emitted_exactly_once(self, scribe):
        task = wire_task(scribe, make_aggregator(), checkpoint_every=20)
        for i in range(200):
            scribe.write_record("in", {"event_time": float(i), "k": "a"})
        task.pump()
        task.checkpoint_now()
        starts = [row["window_start"] for row in emitted(scribe)]
        assert len(starts) == len(set(starts))

    def test_out_of_order_events_land_in_their_window(self, scribe):
        task = wire_task(scribe, make_aggregator(confidence=0.99))
        rng = make_rng(5, "windowed")
        times = [i * 0.5 for i in range(200)]
        # bounded disorder: swap nearby events
        for i in range(0, 198, 2):
            if rng.random() < 0.5:
                times[i], times[i + 1] = times[i + 1], times[i]
        for t in times:
            scribe.write_record("in", {"event_time": t, "k": "a"})
        task.pump()
        task.checkpoint_now()
        rows = emitted(scribe)
        assert rows
        # Windows are 10s of 0.5s-spaced events: exactly 20 per window.
        assert all(row["value"] == 20 for row in rows)
        assert WindowedAggregator.late_events(task.state) == 0

    def test_very_late_events_are_counted_and_dropped(self, scribe):
        task = wire_task(scribe, make_aggregator(), checkpoint_every=10)
        for i in range(100):
            scribe.write_record("in", {"event_time": float(i), "k": "a"})
        task.pump()
        task.checkpoint_now()
        closed_before = task.state["closed_before"]
        assert closed_before is not None
        # An event far older than every closed window arrives now.
        scribe.write_record("in", {"event_time": 0.5, "k": "a"})
        task.pump()
        assert WindowedAggregator.late_events(task.state) == 1

    def test_keys_aggregate_independently(self, scribe):
        task = wire_task(scribe, make_aggregator())
        for i in range(100):
            scribe.write_record("in", {"event_time": float(i),
                                       "k": "a" if i % 2 else "b"})
        task.pump()
        task.checkpoint_now()
        rows = emitted(scribe)
        by_key = {}
        for row in rows:
            by_key.setdefault(row["key"], 0)
            by_key[row["key"]] += row["value"]
        assert by_key["a"] == by_key["b"]

    def test_lower_confidence_closes_windows_sooner(self, scribe):
        """The confidence knob trades emission latency for stragglers."""
        def closed_count(confidence):
            clock_events = 100
            from repro.runtime.clock import SimClock
            from repro.scribe.store import ScribeStore
            local = ScribeStore(clock=SimClock())
            task = wire_task(local, make_aggregator(confidence=confidence),
                             checkpoint_every=clock_events)
            rng = make_rng(9, "conf")
            for i in range(clock_events):
                local.write_record("in", {
                    "event_time": max(0.0, i - rng.uniform(0, 8)),
                    "k": "a",
                })
            task.pump()
            task.checkpoint_now()
            return len(emitted(local))

        assert closed_count(0.5) >= closed_count(0.999)


class TestValidation:
    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            make_aggregator(window=0.0)
        with pytest.raises(ConfigError):
            make_aggregator(confidence=0.0)


class TestRecovery:
    def test_state_survives_crash_restart(self, scribe):
        task = wire_task(scribe, make_aggregator(), checkpoint_every=25)
        for i in range(50):
            scribe.write_record("in", {"event_time": float(i), "k": "a"})
        task.pump()
        before_open = WindowedAggregator.open_windows(task.state)
        task.checkpoint_now()
        task._die()
        task.restart()
        after_open = WindowedAggregator.open_windows(task.state)
        assert after_open == before_open
