"""Tests for the Stylus task/job engine: processing, output, watermarks."""

import pytest

from repro.core.semantics import SemanticsPolicy
from repro.scribe.reader import CategoryReader
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusJob, StylusTask

from tests.conftest import write_events
from tests.stylus.helpers import CountingProcessor, DimensionCounter, DropEvens, EchoProcessor


@pytest.fixture
def wired(scribe):
    scribe.create_category("in", 1)
    scribe.create_category("out", 1)
    return scribe


def make_task(scribe, processor, **kwargs):
    kwargs.setdefault("checkpoint_policy", CheckpointPolicy(every_n_events=10))
    kwargs.setdefault("output_category", "out")
    return StylusTask("t", scribe, "in", 0, processor,
                      clock=scribe.clock, **kwargs)


class TestStatelessProcessing:
    def test_filter_drops_events(self, wired):
        write_events(wired, "in", 10)
        task = make_task(wired, DropEvens())
        assert task.pump() == 10
        out = CategoryReader(wired, "out").read_all()
        assert [m.decode()["seq"] for m in out] == [1, 3, 5, 7, 9]

    def test_pump_on_empty_input_is_zero(self, wired):
        task = make_task(wired, DropEvens())
        assert task.pump() == 0

    def test_pump_respects_max_messages(self, wired):
        write_events(wired, "in", 50)
        task = make_task(wired, EchoProcessor())
        assert task.pump(max_messages=20) == 20
        assert task.lag_messages() == 30


class TestStatefulProcessing:
    def test_counter_accumulates(self, wired):
        write_events(wired, "in", 25)
        task = make_task(wired, CountingProcessor())
        task.pump()
        assert task.state == {"count": 25}

    def test_periodic_output_at_checkpoints(self, wired):
        write_events(wired, "in", 25)
        task = make_task(wired, CountingProcessor())
        task.pump()
        counts = [m.decode()["count"]
                  for m in CategoryReader(wired, "out").read_all()]
        assert counts == [10, 20]  # two checkpoints at 10-event intervals


class TestMonoidProcessing:
    def test_partials_accumulate_in_memory(self, wired):
        write_events(wired, "in", 10)
        task = make_task(wired, DimensionCounter(),
                         checkpoint_policy=CheckpointPolicy(
                             every_n_events=1000))
        task.pump()
        assert task.partials["dim0"]["count"] == 1
        assert len(task.partials) == 10

    def test_checkpoint_flushes_partials_to_backend(self, wired):
        write_events(wired, "in", 20)
        task = make_task(wired, DimensionCounter(),
                         checkpoint_policy=CheckpointPolicy(every_n_events=5))
        task.pump()
        assert task.partials == {}  # flushed
        assert task.state_backend.read_value("dim0")["count"] == 2


class TestCheckpointPolicy:
    def test_event_count_trigger(self, wired):
        write_events(wired, "in", 30)
        task = make_task(wired, CountingProcessor(),
                         checkpoint_policy=CheckpointPolicy(every_n_events=7))
        task.pump()
        assert task.metrics.counter("stylus.t.checkpoints").value == 4

    def test_time_trigger(self, wired):
        task = make_task(wired, CountingProcessor(),
                         checkpoint_policy=CheckpointPolicy(
                             interval_seconds=5.0))
        write_events(wired, "in", 3)
        task.pump()
        assert task.metrics.counter("stylus.t.checkpoints").value == 0
        wired.clock.advance(6.0)
        write_events(wired, "in", 1, start_time=100.0)
        task.pump()
        assert task.metrics.counter("stylus.t.checkpoints").value == 1

    def test_checkpoint_now_forces(self, wired):
        write_events(wired, "in", 3)
        task = make_task(wired, CountingProcessor())
        task.pump()
        task.checkpoint_now()
        state, offset = task.state_backend.load()
        assert state == {"count": 3}
        assert offset == 3


class TestWatermarks:
    def test_task_watermark_tracks_event_times(self, wired):
        for i in range(100):
            wired.write_record("in", {"event_time": float(i), "seq": i})
        task = make_task(wired, EchoProcessor())
        task.pump()
        mark = task.low_watermark(0.9)
        assert mark is not None
        assert mark <= 99.0

    def test_job_watermark_is_min_over_tasks(self, scribe):
        scribe.create_category("multi", 2)
        scribe.create_category("out", 1)
        scribe.write_record("multi", {"event_time": 5.0, "seq": 0}, bucket=0)
        scribe.write_record("multi", {"event_time": 50.0, "seq": 1}, bucket=1)
        job = StylusJob.create("j", scribe, "multi", EchoProcessor,
                               output_category="out", clock=scribe.clock)
        job.pump()
        assert job.low_watermark(0.99) == 5.0


class TestStylusJob:
    def test_one_task_per_bucket(self, scribe):
        scribe.create_category("multi", 4)
        scribe.create_category("out", 1)
        job = StylusJob.create("j", scribe, "multi", CountingProcessor,
                               output_category="out", clock=scribe.clock)
        assert len(job.tasks) == 4
        write_events(scribe, "multi", 40)
        assert job.pump() == 40
        total = sum(task.state["count"] for task in job.tasks)
        assert total == 40

    def test_job_lag(self, scribe):
        scribe.create_category("multi", 2)
        scribe.create_category("out", 1)
        job = StylusJob.create("j", scribe, "multi", EchoProcessor,
                               output_category="out", clock=scribe.clock)
        write_events(scribe, "multi", 10)
        assert job.lag_messages() == 10
        job.pump()
        assert job.lag_messages() == 0


class TestPoisonMessages:
    def test_undecodable_message_skipped_and_counted(self, wired):
        write_events(wired, "in", 3)
        wired.write("in", b"\xff\xfegarbage", bucket=0)
        wired.write("in", b'{"no_event_time": true}', bucket=0)
        write_events(wired, "in", 3, start_time=50.0)
        task = make_task(wired, CountingProcessor())
        assert task.pump() == 8
        assert task.state == {"count": 6}
        assert task.metrics.counter("stylus.t.poison").value == 2

    def test_poison_messages_advance_the_checkpoint_offset(self, wired):
        """A skipped message must not be replayed forever."""
        wired.write("in", b"\xff\xfegarbage", bucket=0)
        task = make_task(wired, CountingProcessor(),
                         checkpoint_policy=CheckpointPolicy(every_n_events=1))
        task.pump()
        _, offset = task.state_backend.load()
        assert offset == 1
