"""Tests for the three state backends and their recovery paths."""

import pytest

from repro.errors import CheckpointError
from repro.runtime.clock import SimClock
from repro.storage.backup import BackupEngine
from repro.storage.hdfs import HdfsBlobStore
from repro.storage.merge import DictSumMergeOperator
from repro.storage.zippydb import ZippyDb
from repro.stylus.processor import Output
from repro.stylus.state import (
    InMemoryStateBackend,
    LocalDbStateBackend,
    RemoteDbStateBackend,
    RemoteWriteMode,
)

OPERATOR = DictSumMergeOperator()


def make_local(disk=None, hdfs=None):
    engine = BackupEngine(hdfs) if hdfs is not None else None
    return LocalDbStateBackend("task", disk if disk is not None else {},
                               backup_engine=engine,
                               merge_operator=OPERATOR)


def make_remote(mode=RemoteWriteMode.APPEND_ONLY, clock=None):
    db = ZippyDb(num_shards=3, merge_operator=OPERATOR,
                 clock=clock or SimClock())
    return RemoteDbStateBackend("task", db, mode)


BACKEND_FACTORIES = [
    ("in-memory", lambda: InMemoryStateBackend("task")),
    ("local-db", make_local),
    ("remote-append", make_remote),
    ("remote-rmw", lambda: make_remote(RemoteWriteMode.READ_MODIFY_WRITE)),
]


@pytest.mark.parametrize("name,factory", BACKEND_FACTORIES,
                         ids=[n for n, _ in BACKEND_FACTORIES])
class TestBackendContract:
    def test_fresh_backend_loads_nothing(self, name, factory):
        assert factory().load() == (None, None)

    def test_two_phase_saves_round_trip(self, name, factory):
        backend = factory()
        backend.save_state({"count": 5})
        backend.save_offset(42)
        state, offset = backend.load()
        assert state == {"count": 5}
        assert offset == 42

    def test_atomic_save_round_trips(self, name, factory):
        backend = factory()
        backend.save_atomic({"count": 9}, 99)
        assert backend.load() == ({"count": 9}, 99)

    def test_saved_state_is_isolated_from_live_state(self, name, factory):
        backend = factory()
        live = {"count": 1}
        backend.save_state(live)
        live["count"] = 999
        state, _ = backend.load()
        assert state == {"count": 1}

    def test_flush_partials_merges(self, name, factory):
        backend = factory()
        backend.flush_partials({"k1": {"n": 1}}, OPERATOR)
        backend.flush_partials({"k1": {"n": 2}, "k2": {"n": 5}}, OPERATOR)
        assert backend.read_value("k1") == {"n": 3}
        assert backend.read_value("k2") == {"n": 5}

    def test_transactional_output_is_idempotent_by_index(self, name, factory):
        backend = factory()
        outputs = [Output({"count": 10})]
        backend.save_atomic_with_outputs({"c": 10}, 10, outputs, 1)
        backend.save_atomic_with_outputs({"c": 10}, 10, outputs, 1)  # replay
        assert backend.committed_outputs() == [{"count": 10}]

    def test_last_checkpoint_index_tracks_commits(self, name, factory):
        backend = factory()
        assert backend.last_checkpoint_index() == 0
        backend.save_atomic_with_outputs({"c": 1}, 1, [Output({"seq": 0})], 1)
        backend.save_atomic_with_outputs({"c": 2}, 2, [Output({"seq": 1})], 2)
        assert backend.last_checkpoint_index() == 2


class TestLocalDbRecovery:
    def test_process_crash_recovery_replays_wal(self):
        disk = {}
        backend = make_local(disk)
        backend.save_state({"count": 3})
        backend.save_offset(3)
        backend.store.drop_memory()  # the crash
        cost = backend.recover_after_process_crash()
        assert cost.source == "local-wal"
        assert backend.load() == ({"count": 3}, 3)

    def test_machine_failure_restores_from_hdfs(self, clock):
        hdfs = HdfsBlobStore(clock=clock)
        disk = {}
        backend = make_local(disk, hdfs)
        backend.save_state({"count": 7})
        backend.save_offset(7)
        assert backend.maybe_backup()
        disk.clear()  # the machine dies
        cost = backend.recover_after_machine_failure(new_disk={})
        assert cost.source == "hdfs-backup"
        assert backend.load() == ({"count": 7}, 7)

    def test_machine_failure_without_backup_engine_raises(self):
        backend = make_local()
        with pytest.raises(CheckpointError):
            backend.recover_after_machine_failure(new_disk={})

    def test_machine_failure_loses_delta_since_backup(self, clock):
        hdfs = HdfsBlobStore(clock=clock)
        backend = make_local({}, hdfs)
        backend.save_state({"count": 5})
        backend.save_offset(5)
        backend.maybe_backup()
        backend.save_state({"count": 9})  # newer than the snapshot
        backend.save_offset(9)
        backend.recover_after_machine_failure(new_disk={})
        state, offset = backend.load()
        assert state == {"count": 5}  # the replay from Scribe fills the gap
        assert offset == 5

    def test_backup_during_outage_is_skipped(self, clock):
        hdfs = HdfsBlobStore(clock=clock)
        hdfs.add_outage(0.0, 100.0)
        backend = make_local({}, hdfs)
        backend.save_state({"count": 1})
        assert not backend.maybe_backup()

    def test_no_backup_engine_maybe_backup_false(self):
        assert not make_local().maybe_backup()


class TestRemoteDbBackend:
    def test_failover_is_constant_and_lossless(self):
        backend = make_remote()
        backend.save_state({"count": 11})
        backend.save_offset(11)
        cost = backend.recover_failover()
        assert cost.entries == 0
        assert cost.source == "remote-db"
        assert backend.load() == ({"count": 11}, 11)

    def test_append_only_issues_no_reads(self):
        backend = make_remote(RemoteWriteMode.APPEND_ONLY)
        backend.flush_partials({"k": {"n": 1}}, OPERATOR)
        snapshot = backend.db.metrics.snapshot()
        assert snapshot.get("zippydb.batch_reads", 0) == 0

    def test_read_modify_write_issues_reads(self):
        backend = make_remote(RemoteWriteMode.READ_MODIFY_WRITE)
        backend.flush_partials({"k": {"n": 1}}, OPERATOR)
        snapshot = backend.db.metrics.snapshot()
        assert snapshot["zippydb.batch_reads"] == 1

    def test_both_modes_agree_on_values(self):
        append = make_remote(RemoteWriteMode.APPEND_ONLY)
        rmw = make_remote(RemoteWriteMode.READ_MODIFY_WRITE)
        for backend in (append, rmw):
            backend.flush_partials({"k": {"n": 2}}, OPERATOR)
            backend.flush_partials({"k": {"n": 3}, "j": {"m": 1}}, OPERATOR)
        assert append.read_value("k") == rmw.read_value("k") == {"n": 5}
        assert append.read_value("j") == rmw.read_value("j") == {"m": 1}

    def test_empty_flush_is_noop(self):
        backend = make_remote()
        backend.flush_partials({}, OPERATOR)
        assert backend.db.metrics.snapshot().get("zippydb.batch_merge_writes",
                                                 0) == 0

    def test_monoid_exactly_once_flush(self):
        backend = make_remote()
        backend.flush_partials_atomic({"k": {"n": 4}}, OPERATOR, 17,
                                      [Output({"v": 1})], 1)
        assert backend.read_value("k") == {"n": 4}
        _, offset = backend.load()
        assert offset == 17
        assert backend.committed_outputs() == [{"v": 1}]


class TestCheckpointIndexSurvivesHandoff:
    """The numbering must be derivable from durable data alone: a task
    re-created on another machine (shard adoption, remote failover) that
    restarted at index 0 would overwrite the committed output rows its
    predecessor wrote — exactly-once output silently losing entries."""

    def test_local_db_adopter_resumes_numbering(self, clock):
        engine = BackupEngine(HdfsBlobStore(clock=clock))
        backend = LocalDbStateBackend("task", {}, backup_engine=engine,
                                      merge_operator=OPERATOR)
        backend.save_atomic_with_outputs({"c": 1}, 1, [Output({"seq": 0})], 1)
        backend.maybe_backup()
        adopted = LocalDbStateBackend.adopt("task", {}, engine,
                                            merge_operator=OPERATOR)
        assert adopted.last_checkpoint_index() == 1
        adopted.save_atomic_with_outputs({"c": 2}, 2, [Output({"seq": 1})], 2)
        assert adopted.committed_outputs() == [{"seq": 0}, {"seq": 1}]

    def test_remote_db_takeover_sees_predecessor_history(self):
        db = ZippyDb(num_shards=3, merge_operator=OPERATOR, clock=SimClock())
        first = RemoteDbStateBackend("task", db)
        first.save_atomic_with_outputs({"c": 1}, 1, [Output({"seq": 0})], 1)
        takeover = RemoteDbStateBackend("task", db)
        assert takeover.last_checkpoint_index() == 1
        assert takeover.committed_outputs() == [{"seq": 0}]
