"""Tests for the watermark-bounded stream-stream join processor."""

import pytest

from repro.core.event import Event
from repro.errors import ConfigError, ProcessingError
from repro.scribe.reader import CategoryReader
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusTask
from repro.stylus.join import StreamStreamJoinProcessor


def make_join(**kwargs) -> StreamStreamJoinProcessor:
    kwargs.setdefault("window_seconds", 10.0)
    return StreamStreamJoinProcessor("impressions", "clicks", "ad_id",
                                     **kwargs)


def impression(t: float, ad: str, **fields) -> Event:
    return Event(t, {"stream": "impressions", "ad_id": ad, **fields})


def click(t: float, ad: str, **fields) -> Event:
    return Event(t, {"stream": "clicks", "ad_id": ad, **fields})


class TestMatching:
    def test_click_joins_in_window_impression(self):
        join = make_join()
        state = join.initial_state()
        assert join.process(impression(100.0, "a", user="u1"), state) == []
        [out] = join.process(click(105.0, "a", user="u1"), state)
        assert out.key == "a"
        assert out.record["ad_id"] == "a"
        assert out.record["event_time"] == 105.0
        assert out.record["left_event_time"] == 100.0
        assert out.record["right_event_time"] == 105.0
        assert out.record["left_user"] == "u1"
        assert out.record["right_user"] == "u1"

    def test_arrival_order_does_not_matter(self):
        # The click can arrive first: the join output is identical.
        join = make_join()
        state = join.initial_state()
        assert join.process(click(105.0, "a"), state) == []
        [out] = join.process(impression(100.0, "a"), state)
        assert out.record["left_event_time"] == 100.0
        assert out.record["right_event_time"] == 105.0

    def test_out_of_window_pair_does_not_join(self):
        join = make_join(window_seconds=10.0)
        state = join.initial_state()
        join.process(impression(100.0, "a"), state)
        assert join.process(click(111.0, "a"), state) == []

    def test_keys_are_independent(self):
        join = make_join()
        state = join.initial_state()
        join.process(impression(100.0, "a"), state)
        assert join.process(click(101.0, "b"), state) == []

    def test_one_impression_matches_many_clicks(self):
        join = make_join()
        state = join.initial_state()
        join.process(impression(100.0, "a"), state)
        assert len(join.process(click(101.0, "a"), state)) == 1
        assert len(join.process(click(102.0, "a"), state)) == 1

    def test_unknown_stream_rejected(self):
        join = make_join()
        state = join.initial_state()
        with pytest.raises(ProcessingError):
            join.process(Event(1.0, {"stream": "views", "ad_id": "a"}), state)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            make_join(window_seconds=0.0)
        with pytest.raises(ConfigError):
            StreamStreamJoinProcessor("x", "x", "ad_id", window_seconds=1.0)


class TestEviction:
    def test_checkpoint_evicts_expired_entries(self):
        join = make_join(window_seconds=10.0)
        state = join.initial_state()
        join.process(impression(100.0, "a"), state)
        join.process(click(102.0, "b"), state)
        join.process(impression(200.0, "c"), state)  # advances the watermark
        assert join.buffered_entries(state) == 3
        assert join.on_checkpoint(state, now=0.0) == []
        # Only the entry newer than 200 - 10 survives.
        assert join.buffered_entries(state) == 1
        assert list(state["left"]) == ["c"]
        assert state["right"] == {}

    def test_unmatched_left_entries_are_emitted_on_eviction(self):
        join = make_join(window_seconds=10.0, emit_unmatched_left=True)
        state = join.initial_state()
        join.process(impression(100.0, "a", user="u1"), state)
        join.process(impression(101.0, "b"), state)
        join.process(click(102.0, "b"), state)  # b matches, a never does
        join.process(impression(300.0, "c"), state)
        outputs = join.on_checkpoint(state, now=0.0)
        [unmatched] = [out for out in outputs if out.record.get("unmatched")]
        assert unmatched.record["ad_id"] == "a"
        assert unmatched.record["user"] == "u1"
        assert unmatched.record["event_time"] == 100.0

    def test_empty_state_checkpoint_is_a_no_op(self):
        join = make_join()
        assert join.on_checkpoint(join.initial_state(), now=5.0) == []


class TestEndToEnd:
    def test_joins_flow_through_a_stylus_task(self, scribe):
        scribe.create_category("ad_events", 1)
        scribe.create_category("joined", 1)
        for i in range(20):
            scribe.write_record("ad_events", {
                "event_time": float(i), "stream": "impressions",
                "ad_id": f"ad{i}", "slot": i % 3,
            }, key=f"ad{i}")
            if i % 2 == 0:
                scribe.write_record("ad_events", {
                    "event_time": float(i) + 1.5, "stream": "clicks",
                    "ad_id": f"ad{i}", "user": f"u{i}",
                }, key=f"ad{i}")
        task = StylusTask(
            "join", scribe, "ad_events", 0,
            StreamStreamJoinProcessor("impressions", "clicks", "ad_id",
                                      window_seconds=5.0),
            output_category="joined", clock=scribe.clock,
            checkpoint_policy=CheckpointPolicy(every_n_events=100),
        )
        assert task.pump() == 30
        joined = [m.decode() for m in
                  CategoryReader(scribe, "joined").read_all()]
        assert sorted(r["ad_id"] for r in joined) == sorted(
            f"ad{i}" for i in range(0, 20, 2))
        for record in joined:
            assert record["right_event_time"] - \
                record["left_event_time"] == pytest.approx(1.5)

    def test_state_survives_checkpoint_and_restart(self, scribe):
        scribe.create_category("ad_events", 1)
        scribe.create_category("joined", 1)
        scribe.write_record("ad_events", {
            "event_time": 100.0, "stream": "impressions", "ad_id": "a",
        }, key="a")
        task = StylusTask(
            "join", scribe, "ad_events", 0,
            StreamStreamJoinProcessor("impressions", "clicks", "ad_id",
                                      window_seconds=60.0),
            output_category="joined", clock=scribe.clock,
            checkpoint_policy=CheckpointPolicy(every_n_events=1000),
        )
        task.pump()
        task.checkpoint_now()
        task.crash()
        task.restart()
        # The buffered impression survived the crash: the late click
        # still joins.
        scribe.write_record("ad_events", {
            "event_time": 130.0, "stream": "clicks", "ad_id": "a",
        }, key="a")
        task.pump()
        joined = [m.decode() for m in
                  CategoryReader(scribe, "joined").read_all()]
        assert len(joined) == 1
        assert joined[0]["left_event_time"] == 100.0
