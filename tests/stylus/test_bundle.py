"""Tests for the dual-binary bundle (paper Section 4.5.2)."""

import pytest

from repro.errors import ConfigError
from repro.stylus.bundle import StylusAppBundle

from tests.conftest import write_events
from tests.stylus.helpers import CountingProcessor, DimensionCounter, DropEvens


def rows(count=40):
    return [{"event_time": float(i), "seq": i} for i in range(count)]


class TestKindDetection:
    def test_detects_all_three_kinds(self):
        assert StylusAppBundle("a", DropEvens).kind == "stateless"
        assert StylusAppBundle("b", DimensionCounter).kind == "monoid"
        assert StylusAppBundle("c", CountingProcessor,
                               reduce_key=lambda r: 0).kind == "stateful"

    def test_stateful_requires_reduce_key(self):
        with pytest.raises(ConfigError):
            StylusAppBundle("c", CountingProcessor)

    def test_unknown_runtime_rejected(self):
        bundle = StylusAppBundle("a", DropEvens)
        with pytest.raises(ConfigError):
            bundle.run_batch([], runtime="flink")


class TestBothBinaries:
    def test_stream_and_batch_agree_for_monoid(self, scribe, clock):
        bundle = StylusAppBundle("agg", DimensionCounter)
        scribe.create_category("in", 2)
        job = bundle.streaming_job(scribe, "in", clock=clock)
        write_events(scribe, "in", 40)
        job.pump(1000)
        job.checkpoint_now()
        streaming = {}
        for task in job.tasks:
            for key in [f"dim{i}" for i in range(10)]:
                value = task.state_backend.read_value(key)
                if value:
                    entry = streaming.setdefault(key, {"count": 0,
                                                       "score": 0})
                    entry["count"] += value["count"]
                    entry["score"] += value["score"]
        batch = bundle.run_batch(rows(40))
        assert streaming == batch

    def test_batch_runtimes_agree(self):
        bundle = StylusAppBundle("agg", DimensionCounter)
        data = rows(40)
        assert bundle.run_batch(data, "mapreduce") == \
               bundle.run_batch(data, "dataset")

    def test_stateless_batch(self):
        bundle = StylusAppBundle("f", DropEvens)
        output = bundle.run_batch(rows(10))
        assert sorted(o["seq"] for o in output) == [1, 3, 5, 7, 9]

    def test_stateful_batch(self):
        bundle = StylusAppBundle("s", CountingProcessor,
                                 reduce_key=lambda r: r["seq"] % 2)
        states = bundle.run_batch(rows(10))
        assert {k: s["count"] for k, s in states.items()} == {0: 5, 1: 5}

    def test_stream_kwargs_flow_through(self, scribe, clock):
        from repro.stylus.checkpointing import CheckpointPolicy

        bundle = StylusAppBundle(
            "agg", DimensionCounter,
            checkpoint_policy=CheckpointPolicy(every_n_events=5))
        scribe.create_category("in", 1)
        job = bundle.streaming_job(scribe, "in", clock=clock)
        write_events(scribe, "in", 20)
        job.pump(1000)
        cp = job.tasks[0].metrics.counter("stylus.agg[0].checkpoints").value
        assert cp == 4
