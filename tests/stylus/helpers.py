"""Shared processors and harnesses for Stylus tests."""

from __future__ import annotations

from repro.core.event import Event
from repro.storage.merge import DictSumMergeOperator
from repro.stylus.processor import (
    MonoidProcessor,
    Output,
    StatefulProcessor,
    StatelessProcessor,
)


class CountingProcessor(StatefulProcessor):
    """The paper's Figure 6 Counter Node."""

    def initial_state(self):
        return {"count": 0}

    def process(self, event: Event, state) -> list[Output]:
        state["count"] += 1
        return []

    def on_checkpoint(self, state, now: float) -> list[Output]:
        return [Output({"event_time": now, "count": state["count"]})]


class ForwardingProcessor(StatefulProcessor):
    """Count per bucket and forward every event downstream."""

    def initial_state(self):
        return {"count": 0}

    def process(self, event: Event, state) -> list[Output]:
        state["count"] += 1
        return [Output(event.to_record(), key=str(event["seq"]))]


class EchoProcessor(StatelessProcessor):
    """Stateless pass-through that re-keys by a field."""

    def __init__(self, key_field: str = "seq"):
        self.key_field = key_field

    def process(self, event: Event) -> list[Output]:
        return [Output(event.to_record(), key=str(event.get(self.key_field)))]


class DropEvens(StatelessProcessor):
    def process(self, event: Event) -> list[Output]:
        if event["seq"] % 2 == 0:
            return []
        return [Output(event.to_record())]


class DimensionCounter(MonoidProcessor):
    """Counts events per dimension — the Figure 12 workload shape."""

    def __init__(self, dims_per_event: int = 1):
        self.dims_per_event = dims_per_event

    def merge_operator(self):
        return DictSumMergeOperator()

    def extract(self, event: Event):
        base = int(event["seq"])
        return [
            (f"dim{(base + i) % 10}", {"count": 1, "score": base % 5})
            for i in range(self.dims_per_event)
        ]
