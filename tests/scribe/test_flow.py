"""Tests for credit-based flow control between writers and readers."""

import pytest

from repro.errors import Backpressure, ConfigError
from repro.runtime.metrics import MetricsRegistry
from repro.scribe.flow import CreditGate
from repro.scribe.reader import ScribeReader
from repro.scribe.writer import ScribeWriter


def make_gate(max_outstanding: int = 4) -> tuple[CreditGate, MetricsRegistry]:
    metrics = MetricsRegistry()
    gate = CreditGate("e", max_outstanding,
                      granted=metrics.counter("scribe.credits.granted"),
                      blocked=metrics.counter("scribe.credits.blocked"),
                      reconciled=metrics.counter("scribe.credits.reconciled"))
    return gate, metrics


class TestCreditGate:
    def test_acquire_until_exhausted(self):
        gate, metrics = make_gate(max_outstanding=3)
        assert [gate.try_acquire(0) for _ in range(4)] == [
            True, True, True, False]
        assert gate.outstanding(0) == 3
        assert gate.available(0) == 0
        assert metrics.snapshot()["scribe.credits.blocked"] == 1

    def test_grant_replenishes(self):
        gate, metrics = make_gate(max_outstanding=2)
        gate.try_acquire(0)
        gate.try_acquire(0)
        gate.grant(0, 1)
        assert gate.available(0) == 1
        assert gate.try_acquire(0)
        assert metrics.snapshot()["scribe.credits.granted"] == 1

    def test_buckets_are_independent(self):
        gate, _ = make_gate(max_outstanding=1)
        assert gate.try_acquire(0)
        assert gate.try_acquire(1)
        assert not gate.try_acquire(0)
        assert gate.outstanding(1) == 1

    def test_overgrant_clamps_at_zero(self):
        # Replay after a crash can re-deliver a batch, granting credits
        # twice; outstanding must not go negative and blow the cap.
        gate, _ = make_gate(max_outstanding=2)
        gate.try_acquire(0)
        gate.grant(0, 5)
        assert gate.outstanding(0) == 0
        assert gate.available(0) == 2

    def test_invalid_limit_rejected(self):
        with pytest.raises(ConfigError):
            make_gate(max_outstanding=0)

    def test_zero_grant_is_a_no_op(self):
        gate, metrics = make_gate()
        gate.try_acquire(0)
        gate.grant(0, 0)
        assert gate.outstanding(0) == 1
        assert metrics.snapshot().get("scribe.credits.granted", 0) == 0

    def test_reconcile_frees_orphaned_credits(self):
        # Retention trimmed two unread messages: no future read grants
        # them, so reconcile must hand the credits back.
        gate, metrics = make_gate(max_outstanding=3)
        for _ in range(3):
            gate.try_acquire(0)
        assert gate.reconcile(0, 1) == 2
        assert gate.outstanding(0) == 1
        assert metrics.snapshot()["scribe.credits.reconciled"] == 2

    def test_reconcile_restores_credits_after_a_rewind(self):
        # An adopter resuming behind the old owner re-reads (and
        # re-grants) history: reconcile raises outstanding back to the
        # true tail so the limit is not quietly doubled.
        gate, metrics = make_gate(max_outstanding=4)
        gate.try_acquire(0)
        assert gate.reconcile(0, 3) == -2
        assert gate.outstanding(0) == 3
        assert metrics.snapshot()["scribe.credits.reconciled"] == 2

    def test_reconcile_in_agreement_is_a_no_op(self):
        gate, metrics = make_gate()
        gate.try_acquire(0)
        assert gate.reconcile(0, 1) == 0
        assert metrics.snapshot().get("scribe.credits.reconciled", 0) == 0

    def test_reconcile_rejects_negative_unread(self):
        gate, _ = make_gate()
        with pytest.raises(ConfigError):
            gate.reconcile(0, -1)


class TestStoreBackpressure:
    def test_write_blocks_at_limit(self, scribe):
        scribe.create_category("e", 1)
        scribe.enable_backpressure("e", max_outstanding=2)
        scribe.write("e", b"a")
        scribe.write("e", b"b")
        with pytest.raises(Backpressure) as excinfo:
            scribe.write("e", b"c")
        assert excinfo.value.bucket == 0
        assert excinfo.value.outstanding == 2
        assert scribe.metrics.snapshot()["scribe.credits.blocked"] == 1
        # The blocked write was not appended.
        assert scribe.end_offset("e", 0) == 2

    def test_read_grants_credits_and_unblocks(self, scribe):
        scribe.create_category("e", 1)
        scribe.enable_backpressure("e", max_outstanding=2)
        scribe.write("e", b"a")
        scribe.write("e", b"b")
        reader = ScribeReader(scribe, "e", 0)
        assert len(reader.read_batch(10)) == 2
        assert scribe.metrics.snapshot()["scribe.credits.granted"] == 2
        scribe.write("e", b"c")  # no longer blocked

    def test_peek_does_not_grant(self, scribe):
        scribe.create_category("e", 1)
        gate = scribe.enable_backpressure("e", max_outstanding=1)
        scribe.write("e", b"a")
        reader = ScribeReader(scribe, "e", 0)
        assert reader.peek() is not None
        assert gate.outstanding(0) == 1

    def test_gate_for_unconfigured_category(self, scribe):
        scribe.create_category("e", 1)
        assert scribe.gate_for("e") is None
        scribe.write("e", b"a")  # no gate, no backpressure

    def test_reconfigure_limit_in_place(self, scribe):
        scribe.create_category("e", 1)
        first = scribe.enable_backpressure("e", max_outstanding=1)
        second = scribe.enable_backpressure("e", max_outstanding=5)
        assert first is second
        assert second.max_outstanding == 5
        with pytest.raises(ConfigError):
            scribe.enable_backpressure("e", max_outstanding=0)

    def test_writer_try_write_returns_none_when_blocked(self, scribe):
        scribe.create_category("e", 1)
        scribe.enable_backpressure("e", max_outstanding=1)
        writer = ScribeWriter(scribe, "e")
        assert writer.try_write({"seq": 0}) == 0
        assert writer.try_write({"seq": 1}) is None

    def test_retention_skip_unwedges_a_blocked_producer(self, scribe, clock):
        # Credits are spent at write time; retention can trim messages no
        # consumer ever read, so their credits would leak forever. The
        # reader's skip-forward path must reconcile the gate or the
        # producer stays blocked on an empty bucket.
        scribe.create_category("e", 1, retention_seconds=10.0)
        scribe.enable_backpressure("e", max_outstanding=2)
        reader = ScribeReader(scribe, "e", 0)
        scribe.write("e", b"a")
        scribe.write("e", b"b")
        with pytest.raises(Backpressure):
            scribe.write("e", b"c")
        clock.advance(60.0)
        assert scribe.run_retention() == 2
        # Still wedged: nothing will ever read the trimmed pair.
        with pytest.raises(Backpressure):
            scribe.write("e", b"c")
        # The lagged reader skips forward past the trim — and frees them.
        assert reader.read_batch(10) == []
        assert reader.position == 2
        assert scribe.metrics.snapshot()["scribe.credits.reconciled"] == 2
        scribe.write("e", b"c")  # unblocked

    def test_fast_producer_depth_stays_bounded(self, scribe):
        # A producer 10x faster than its consumer must not grow the
        # bucket beyond the credit limit: depth is capped, not memory.
        scribe.create_category("e", 1)
        limit = 8
        scribe.enable_backpressure("e", max_outstanding=limit)
        writer = ScribeWriter(scribe, "e")
        reader = ScribeReader(scribe, "e", 0)
        max_depth = 0
        for round_no in range(50):
            for i in range(10):
                writer.try_write({"round": round_no, "i": i})
            reader.read_batch(1)
            depth = scribe.end_offset("e", 0) - reader.position
            max_depth = max(max_depth, depth)
        assert max_depth <= limit
        assert scribe.metrics.snapshot()["scribe.credits.blocked"] > 0
