"""Tests for reader clients: tailing, replay, lag, decoupling."""

import pytest

from repro.errors import OffsetOutOfRange
from repro.runtime.clock import SimClock
from repro.scribe.reader import CategoryReader, ScribeReader
from repro.scribe.store import ScribeStore

from tests.conftest import write_events


@pytest.fixture
def loaded(scribe):
    scribe.create_category("e", 1)
    write_events(scribe, "e", 20)
    return scribe


class TestScribeReader:
    def test_read_batch_advances_position(self, loaded):
        reader = ScribeReader(loaded, "e", 0)
        batch = reader.read_batch(5)
        assert [m.offset for m in batch] == [0, 1, 2, 3, 4]
        assert reader.position == 5

    def test_peek_does_not_advance(self, loaded):
        reader = ScribeReader(loaded, "e", 0)
        reader.peek(3)
        assert reader.position == 0

    def test_seek_replays_history(self, loaded):
        reader = ScribeReader(loaded, "e", 0)
        first = reader.read_batch(20)
        reader.seek(0)
        second = reader.read_batch(20)
        assert [m.payload for m in first] == [m.payload for m in second]

    def test_two_readers_are_independent(self, loaded):
        fast = ScribeReader(loaded, "e", 0)
        slow = ScribeReader(loaded, "e", 0)
        fast.read_batch(20)
        assert slow.position == 0
        assert len(slow.read_batch(20)) == 20

    def test_lag_counts_unread_visible_messages(self, loaded):
        reader = ScribeReader(loaded, "e", 0)
        assert reader.lag_messages() == 20
        reader.read_batch(15)
        assert reader.lag_messages() == 5
        assert not reader.caught_up()
        reader.read_batch(5)
        assert reader.caught_up()

    def test_seek_to_end_skips_backlog(self, loaded):
        reader = ScribeReader(loaded, "e", 0)
        reader.seek_to_end()
        assert reader.read_batch(10) == []
        loaded.write_record("e", {"event_time": 99.0})
        assert len(reader.read_batch(10)) == 1

    def test_lagging_past_retention_skips_forward(self, loaded):
        reader = ScribeReader(loaded, "e", 0)
        loaded.category("e").bucket(0).trim_to_offset(10)
        batch = reader.read_batch(5)
        assert [m.offset for m in batch] == [10, 11, 12, 13, 14]

    def test_position_beyond_end_still_raises(self, loaded):
        reader = ScribeReader(loaded, "e", 0)
        reader.seek(1000)
        with pytest.raises(OffsetOutOfRange):
            reader.read_batch(1)


class TestCategoryReader:
    def test_reads_across_buckets(self, scribe):
        scribe.create_category("multi", 4)
        write_events(scribe, "multi", 40)
        reader = CategoryReader(scribe, "multi")
        messages = reader.read_all()
        assert len(messages) == 40
        assert {m.bucket for m in messages} == {0, 1, 2, 3}

    def test_from_start_false_tails_only_new_data(self, scribe):
        scribe.create_category("multi", 2)
        write_events(scribe, "multi", 10)
        reader = CategoryReader(scribe, "multi", from_start=False)
        assert reader.read_all() == []
        write_events(scribe, "multi", 3, start_time=100.0)
        assert len(reader.read_all()) == 3

    def test_follows_category_resize(self, scribe):
        scribe.create_category("grow", 1)
        write_events(scribe, "grow", 5)
        reader = CategoryReader(scribe, "grow")
        assert len(reader.read_all()) == 5
        scribe.category("grow").resize(3)
        scribe.write("grow", b"x", bucket=2)
        assert len(reader.read_all()) == 1

    def test_tail_reader_skips_backlog_in_new_buckets(self, scribe):
        # A from_start=False reader is a *tail* reader; a bucket that
        # appears via resize must start at its end, not replay whatever
        # was written to it before the reader noticed it exists.
        scribe.create_category("grow", 1)
        write_events(scribe, "grow", 5)
        reader = CategoryReader(scribe, "grow", from_start=False)
        assert reader.read_all() == []
        scribe.category("grow").resize(3)
        scribe.write("grow", b"pre-discovery", bucket=2)
        assert reader.read_all() == []
        scribe.write("grow", b"post-discovery", bucket=2)
        messages = reader.read_all()
        assert [m.payload for m in messages] == [b"post-discovery"]

    def test_lag_sums_buckets(self, scribe):
        scribe.create_category("multi", 4)
        write_events(scribe, "multi", 12)
        reader = CategoryReader(scribe, "multi")
        assert reader.lag_messages() == 12


class TestDecoupling:
    """Section 4.2.2: readers at different speeds never interfere."""

    def test_slow_reader_does_not_backpressure_writer(self):
        clock = SimClock()
        store = ScribeStore(clock=clock)
        store.create_category("e", 1)
        slow = ScribeReader(store, "e", 0)
        # The writer streams far ahead of the stalled reader with no error.
        for i in range(10_000):
            store.write_record("e", {"event_time": float(i)})
        assert slow.lag_messages() == 10_000
        # The reader catches up later, from where it left off.
        total = 0
        while True:
            batch = slow.read_batch(1000)
            if not batch:
                break
            total += len(batch)
        assert total == 10_000


class TestTimeBasedReplay:
    """Section 6.2: replay a stream from a given (recent) time period."""

    def test_seek_to_time(self):
        from repro.runtime.clock import SimClock
        from repro.scribe.store import ScribeStore

        clock = SimClock()
        store = ScribeStore(clock=clock)
        store.create_category("e", 1)
        for i in range(10):
            clock.advance_to(float(i * 10))
            store.write_record("e", {"event_time": float(i), "i": i})
        reader = ScribeReader(store, "e", 0)
        reader.seek_to_time(45.0)  # between message 4 (t=40) and 5 (t=50)
        batch = reader.read_batch(100)
        assert [m.decode()["i"] for m in batch] == [5, 6, 7, 8, 9]

    def test_seek_to_time_past_end(self):
        from repro.runtime.clock import SimClock
        from repro.scribe.store import ScribeStore

        clock = SimClock()
        store = ScribeStore(clock=clock)
        store.create_category("e", 1)
        store.write_record("e", {"event_time": 0.0})
        reader = ScribeReader(store, "e", 0)
        reader.seek_to_time(1e9)
        assert reader.read_batch(10) == []

    def test_seek_to_time_respects_retention(self):
        from repro.runtime.clock import SimClock
        from repro.scribe.store import ScribeStore

        clock = SimClock()
        store = ScribeStore(clock=clock)
        store.create_category("e", 1)
        for i in range(10):
            clock.advance_to(float(i))
            store.write_record("e", {"i": i})
        store.category("e").bucket(0).trim_to_offset(5)
        reader = ScribeReader(store, "e", 0)
        reader.seek_to_time(0.0)  # older than anything retained
        batch = reader.read_batch(100)
        assert [m.decode()["i"] for m in batch] == [5, 6, 7, 8, 9]
