"""Tests for the Scribe store: categories, writes, delivery delay."""

import pytest

from repro.errors import ConfigError, UnknownCategory
from repro.runtime.clock import SimClock
from repro.scribe.store import ScribeStore, default_bucketer


class TestCategories:
    def test_create_and_lookup(self, scribe):
        scribe.create_category("events", num_buckets=4)
        assert scribe.category("events").num_buckets == 4
        assert scribe.has_category("events")
        assert scribe.categories() == ["events"]

    def test_duplicate_create_rejected(self, scribe):
        scribe.create_category("events")
        with pytest.raises(ConfigError):
            scribe.create_category("events")

    def test_ensure_category_is_idempotent(self, scribe):
        first = scribe.ensure_category("e", 2)
        second = scribe.ensure_category("e", 2)
        assert first is second
        assert second.num_buckets == 2
        # Not asking for a bucket count accepts whatever exists.
        assert scribe.ensure_category("e") is first

    def test_ensure_category_rejects_conflicting_buckets(self, scribe):
        scribe.ensure_category("e", 2)
        with pytest.raises(ConfigError):
            scribe.ensure_category("e", 99)

    def test_unknown_category_raises(self, scribe):
        with pytest.raises(UnknownCategory):
            scribe.category("nope")

    def test_resize_grows_only(self, scribe):
        category = scribe.create_category("e", 2)
        category.resize(5)
        assert category.num_buckets == 5
        with pytest.raises(ConfigError):
            category.resize(3)


class TestWrites:
    def test_write_assigns_offsets_per_bucket(self, scribe):
        scribe.create_category("e", 2)
        assert scribe.write("e", b"a", bucket=0) == 0
        assert scribe.write("e", b"b", bucket=0) == 1
        assert scribe.write("e", b"c", bucket=1) == 0

    def test_write_by_key_is_stable(self, scribe):
        scribe.create_category("e", 8)
        scribe.write("e", b"x", key="user42")
        expected = default_bucketer("user42", 8)
        assert scribe.end_offset("e", expected) == 1

    def test_write_without_key_goes_to_bucket_zero(self, scribe):
        scribe.create_category("e", 4)
        scribe.write("e", b"x")
        assert scribe.end_offset("e", 0) == 1

    def test_write_record_round_trips(self, scribe):
        scribe.create_category("e", 1)
        scribe.write_record("e", {"a": 1, "b": "two"})
        [message] = scribe.read("e", 0, 0)
        assert message.decode() == {"a": 1, "b": "two"}

    def test_metrics_count_writes(self, scribe):
        scribe.create_category("e", 1)
        scribe.write("e", b"abcd")
        snapshot = scribe.metrics.snapshot()
        assert snapshot["scribe.e.messages"] == 1
        assert snapshot["scribe.e.bytes"] == 4


class TestDeliveryDelay:
    def test_messages_invisible_until_delay_elapses(self):
        clock = SimClock()
        store = ScribeStore(clock=clock, delivery_delay=1.0)
        store.create_category("e", 1)
        store.write("e", b"x")
        assert store.read("e", 0, 0, 10) == []
        assert store.visible_end_offset("e", 0) == 0
        clock.advance(1.0)
        assert len(store.read("e", 0, 0, 10)) == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError):
            ScribeStore(delivery_delay=-1.0)


class TestRetention:
    def test_run_retention_trims_old_messages(self):
        clock = SimClock()
        store = ScribeStore(clock=clock)
        store.create_category("e", 1, retention_seconds=10.0)
        store.write("e", b"old")
        clock.advance(20.0)
        store.write("e", b"new")
        assert store.run_retention() == 1
        assert store.first_retained_offset("e", 0) == 1


class TestBucketer:
    def test_stable_across_calls(self):
        assert default_bucketer("k", 16) == default_bucketer("k", 16)

    def test_spreads_keys(self):
        buckets = {default_bucketer(f"key{i}", 8) for i in range(100)}
        assert len(buckets) == 8


class TestDurability:
    """Section 2.1: Scribe stores data in HDFS for durability."""

    def test_snapshot_restore_round_trip(self, clock):
        from repro.storage.hdfs import HdfsBlobStore

        store = ScribeStore(clock=clock)
        store.create_category("e", 2, retention_seconds=500.0)
        for i in range(20):
            store.write_record("e", {"event_time": float(i), "i": i},
                               key=str(i))
        count = store.snapshot_to(HdfsBlobStore(clock=clock), "snap")
        assert count == 20

    def test_restore_preserves_offsets_and_payloads(self, clock):
        from repro.storage.hdfs import HdfsBlobStore

        hdfs = HdfsBlobStore(clock=clock)
        original = ScribeStore(clock=clock)
        original.create_category("e", 2)
        for i in range(30):
            original.write_record("e", {"i": i}, key=str(i))
        # Trim some history so base offsets are non-trivial.
        original.category("e").bucket(0).trim_to_offset(3)
        original.snapshot_to(hdfs)

        restored = ScribeStore.restore_from(hdfs, clock=clock)
        for bucket in range(2):
            assert restored.end_offset("e", bucket) == \
                original.end_offset("e", bucket)
            assert restored.first_retained_offset("e", bucket) == \
                original.first_retained_offset("e", bucket)
        start = restored.first_retained_offset("e", 0)
        original_msgs = original.read("e", 0, start, 100)
        restored_msgs = restored.read("e", 0, start, 100)
        assert [m.payload for m in restored_msgs] == \
            [m.payload for m in original_msgs]

    def test_snapshot_blocked_by_hdfs_outage(self, clock):
        from repro.errors import StoreUnavailable
        from repro.storage.hdfs import HdfsBlobStore

        hdfs = HdfsBlobStore(clock=clock)
        hdfs.add_outage(0.0, 10.0)
        store = ScribeStore(clock=clock)
        store.create_category("e", 1)
        with pytest.raises(StoreUnavailable):
            store.snapshot_to(hdfs)

    def test_snapshot_retries_across_a_short_outage(self, clock):
        from repro.runtime.metrics import MetricsRegistry
        from repro.runtime.retry import RetryPolicy
        from repro.storage.hdfs import HdfsBlobStore

        registry = MetricsRegistry()
        store = ScribeStore(clock=clock, metrics=registry)
        store.create_category("e", 1)
        store.write("e", b"x")
        hdfs = HdfsBlobStore(clock=clock)
        hdfs.add_outage(0.0, 1.5)
        # Backoff (1s, then 2s) carries the clock past the outage end.
        count = store.snapshot_to(
            hdfs, retry=RetryPolicy(max_attempts=4, base_delay=1.0,
                                    multiplier=2.0, jitter=0.0))
        assert count == 1
        assert registry.counter("scribe.snapshot.retry.recoveries").value == 1
        assert registry.counter("scribe.snapshot.skipped").value == 0

    def test_snapshot_skip_is_counted_when_outage_outlasts_budget(self, clock):
        from repro.runtime.metrics import MetricsRegistry
        from repro.runtime.retry import RetryPolicy
        from repro.storage.hdfs import HdfsBlobStore

        registry = MetricsRegistry()
        store = ScribeStore(clock=clock, metrics=registry)
        store.create_category("e", 1)
        hdfs = HdfsBlobStore(clock=clock)
        hdfs.set_available(False)  # latched: no retry budget can save us
        count = store.snapshot_to(
            hdfs, retry=RetryPolicy(max_attempts=3, base_delay=0.1,
                                    jitter=0.0))
        assert count is None
        assert registry.counter("scribe.snapshot.skipped").value == 1
        assert registry.counter("scribe.snapshot.retry.give_ups").value == 1
