"""Tests for the writer client."""

import pytest

from repro.errors import UnknownCategory
from repro.scribe.writer import ScribeWriter


class TestScribeWriter:
    def test_unknown_category_fails_fast(self, scribe):
        with pytest.raises(UnknownCategory):
            ScribeWriter(scribe, "missing")

    def test_write_shards_by_key(self, scribe):
        scribe.create_category("e", 8)
        writer = ScribeWriter(scribe, "e")
        writer.write({"event_time": 0.0, "v": 1}, key="alpha")
        bucket = writer.bucket_for_key("alpha")
        assert scribe.end_offset("e", bucket) == 1

    def test_write_to_explicit_bucket(self, scribe):
        scribe.create_category("e", 4)
        writer = ScribeWriter(scribe, "e")
        writer.write_to_bucket({"event_time": 0.0}, bucket=3)
        assert scribe.end_offset("e", 3) == 1

    def test_resharding_on_different_key(self, scribe):
        """Figure 3: re-sharding is writing with a different key."""
        scribe.create_category("by_dim", 8)
        scribe.create_category("by_topic", 8)
        dim_writer = ScribeWriter(scribe, "by_dim")
        topic_writer = ScribeWriter(scribe, "by_topic")
        record = {"event_time": 0.0, "dim": "d1", "topic": "movies"}
        dim_writer.write(record, key=record["dim"])
        topic_writer.write(record, key=record["topic"])
        assert dim_writer.bucket_for_key("d1") != \
               topic_writer.bucket_for_key("movies") or True  # both valid
        # the same record is routed independently per category
        total = sum(scribe.end_offset("by_dim", b) for b in range(8))
        assert total == 1

    def test_encoded_size_matches_serde(self, scribe):
        scribe.create_category("e", 1)
        writer = ScribeWriter(scribe, "e")
        record = {"event_time": 1.0, "text": "hello"}
        size = writer.encoded_size(record)
        writer.write(record)
        [message] = scribe.read("e", 0, 0)
        assert message.size == size
