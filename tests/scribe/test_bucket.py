"""Tests for the append-only bucket log."""

import pytest

from repro.errors import OffsetOutOfRange
from repro.scribe.bucket import Bucket


@pytest.fixture
def bucket():
    b = Bucket("cat", 0)
    for i in range(10):
        b.append(f"m{i}".encode(), write_time=float(i), visible_at=float(i))
    return b


class TestAppend:
    def test_offsets_are_dense_from_zero(self, bucket):
        assert bucket.end_offset == 10
        assert bucket.first_retained_offset == 0

    def test_bytes_appended_accumulates(self):
        b = Bucket("cat", 0)
        b.append(b"abc", 0.0, 0.0)
        b.append(b"de", 0.0, 0.0)
        assert b.bytes_appended == 5


class TestRead:
    def test_read_returns_requested_range(self, bucket):
        messages = bucket.read(3, max_messages=4, now=100.0)
        assert [m.offset for m in messages] == [3, 4, 5, 6]
        assert messages[0].payload == b"m3"

    def test_read_at_end_offset_is_empty(self, bucket):
        assert bucket.read(10, 5, now=100.0) == []

    def test_read_beyond_end_raises(self, bucket):
        with pytest.raises(OffsetOutOfRange):
            bucket.read(11, 5, now=100.0)

    def test_read_respects_visibility(self, bucket):
        messages = bucket.read(0, 100, now=4.5)
        assert [m.offset for m in messages] == [0, 1, 2, 3, 4]

    def test_read_max_bytes_limits_batch(self, bucket):
        # each payload is 2 bytes ("m0".."m9")
        messages = bucket.read(0, 100, now=100.0, max_bytes=5)
        assert len(messages) == 2  # first always included, then budget

    def test_first_message_always_returned_even_if_large(self):
        b = Bucket("cat", 0)
        b.append(b"x" * 1000, 0.0, 0.0)
        messages = b.read(0, 10, now=1.0, max_bytes=10)
        assert len(messages) == 1

    def test_zero_max_messages(self, bucket):
        assert bucket.read(0, 0, now=100.0) == []


class TestVisibility:
    def test_visible_end_offset_tracks_now(self, bucket):
        assert bucket.visible_end_offset(now=4.0) == 5
        assert bucket.visible_end_offset(now=100.0) == 10
        assert bucket.visible_end_offset(now=-1.0) == 0


class TestTrim:
    def test_trim_older_than_moves_base(self, bucket):
        dropped = bucket.trim_older_than(cutoff_time=5.0)
        assert dropped == 5
        assert bucket.first_retained_offset == 5
        assert bucket.end_offset == 10  # numbering is stable

    def test_read_below_retained_raises(self, bucket):
        bucket.trim_older_than(5.0)
        with pytest.raises(OffsetOutOfRange) as exc:
            bucket.read(2, 5, now=100.0)
        assert exc.value.first_retained == 5

    def test_offsets_survive_trim(self, bucket):
        bucket.trim_older_than(3.0)
        messages = bucket.read(3, 2, now=100.0)
        assert [m.payload for m in messages] == [b"m3", b"m4"]

    def test_trim_to_offset(self, bucket):
        assert bucket.trim_to_offset(7) == 7
        assert bucket.first_retained_offset == 7
        assert bucket.trim_to_offset(3) == 0  # already past

    def test_append_after_trim_continues_numbering(self, bucket):
        bucket.trim_older_than(10.0)
        offset = bucket.append(b"new", 11.0, 11.0)
        assert offset == 10
