"""Tests for the consumer checkpoint store."""

from repro.scribe.checkpoints import Checkpoint, CheckpointStore


class TestCheckpointStore:
    def test_save_and_load(self):
        store = CheckpointStore()
        store.save("app", "cat", 0, Checkpoint(offset=42, state={"n": 1}))
        loaded = store.load("app", "cat", 0)
        assert loaded.offset == 42
        assert loaded.state == {"n": 1}

    def test_load_missing_returns_none(self):
        assert CheckpointStore().load("app", "cat", 0) is None

    def test_save_replaces(self):
        store = CheckpointStore()
        store.save("app", "cat", 0, Checkpoint(offset=1))
        store.save("app", "cat", 0, Checkpoint(offset=2))
        assert store.load("app", "cat", 0).offset == 2

    def test_keys_are_independent(self):
        store = CheckpointStore()
        store.save("a", "cat", 0, Checkpoint(offset=1))
        store.save("a", "cat", 1, Checkpoint(offset=2))
        store.save("b", "cat", 0, Checkpoint(offset=3))
        assert store.load("a", "cat", 0).offset == 1
        assert store.load("a", "cat", 1).offset == 2
        assert store.load("b", "cat", 0).offset == 3

    def test_delete(self):
        store = CheckpointStore()
        store.save("a", "cat", 0, Checkpoint(offset=1))
        store.delete("a", "cat", 0)
        assert store.load("a", "cat", 0) is None
        store.delete("a", "cat", 0)  # idempotent

    def test_consumers_listing(self):
        store = CheckpointStore()
        store.save("b", "cat", 0, Checkpoint(offset=1))
        store.save("a", "cat", 0, Checkpoint(offset=1))
        assert store.consumers() == ["a", "b"]
