"""Integration: the Figure 10 recovery ladder on a simulated cluster.

A stateful Stylus task keeps its state in a local LSM on a machine's
disk, with periodic HDFS backups. We verify each recovery path end to
end: process crash -> WAL, machine failure -> HDFS snapshot + replay,
remote-DB state -> instant failover.
"""

import pytest

from repro.core.semantics import SemanticsPolicy
from repro.runtime.cluster import Cluster
from repro.storage.backup import BackupEngine
from repro.storage.hdfs import HdfsBlobStore
from repro.storage.merge import DictSumMergeOperator
from repro.storage.zippydb import ZippyDb
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusTask
from repro.stylus.state import (
    LocalDbStateBackend,
    RemoteDbStateBackend,
)

from tests.conftest import write_events
from tests.stylus.helpers import DimensionCounter


@pytest.fixture
def world(scribe, clock):
    cluster = Cluster()
    cluster.add_machine("m1")
    cluster.add_machine("m2")
    hdfs = HdfsBlobStore(clock=clock)
    scribe.create_category("in", 1)
    return cluster, hdfs


def make_task(scribe, backend, injector=None):
    return StylusTask("agg", scribe, "in", 0, DimensionCounter(),
                      semantics=SemanticsPolicy.at_least_once(),
                      state_backend=backend,
                      checkpoint_policy=CheckpointPolicy(every_n_events=10),
                      clock=scribe.clock)


class TestLocalDbRecoveryLadder:
    def test_process_crash_recovers_from_local_wal(self, scribe, world):
        cluster, hdfs = world
        machine = cluster.machine("m1")
        backend = LocalDbStateBackend(
            "agg", machine.disk, backup_engine=BackupEngine(hdfs),
            merge_operator=DictSumMergeOperator(),
        )
        task = make_task(scribe, backend)
        write_events(scribe, "in", 40)
        task.pump()
        # Crash the process: memory (memtable) gone, disk stays.
        backend.store.drop_memory()
        cost = backend.recover_after_process_crash()
        task.restart()
        assert cost.source == "local-wal"
        assert backend.read_value("dim0")["count"] == 4

    def test_machine_failure_restores_snapshot_then_replays(self, scribe,
                                                            world):
        cluster, hdfs = world
        machine = cluster.machine("m1")
        backend = LocalDbStateBackend(
            "agg", machine.disk, backup_engine=BackupEngine(hdfs),
            merge_operator=DictSumMergeOperator(),
        )
        task = make_task(scribe, backend)
        write_events(scribe, "in", 20)
        task.pump()
        assert backend.maybe_backup()
        write_events(scribe, "in", 20, start_time=100.0)
        task.pump()  # 40 processed, snapshot holds 20

        cluster.fail_machine("m1")  # wipes the disk
        assert machine.disk == {}
        new_machine = cluster.machine("m2")
        cost = backend.recover_after_machine_failure(new_machine.disk)
        assert cost.source == "hdfs-backup"
        task.restart()
        # The snapshot had offset 20; at-least-once replay re-processes
        # the remaining 20 events from Scribe.
        task.pump()
        task.checkpoint_now()
        assert backend.read_value("dim0")["count"] == 4

    def test_local_recovery_is_cheaper_than_hdfs_restore(self, scribe,
                                                         world):
        cluster, hdfs = world
        backend = LocalDbStateBackend(
            "agg", cluster.machine("m1").disk,
            backup_engine=BackupEngine(hdfs),
            merge_operator=DictSumMergeOperator(),
        )
        task = make_task(scribe, backend)
        write_events(scribe, "in", 50)
        task.pump()
        backend.maybe_backup()
        local_cost = backend.recover_after_process_crash()
        hdfs_cost = backend.recover_after_machine_failure(
            cluster.machine("m2").disk)
        assert local_cost.seconds < hdfs_cost.seconds


class TestRemoteDbFailover:
    def test_failover_needs_no_state_transfer(self, scribe, clock):
        scribe.create_category("in", 1)
        db = ZippyDb(num_shards=3, merge_operator=DictSumMergeOperator(),
                     clock=clock)
        backend = RemoteDbStateBackend("agg", db)
        task = make_task(scribe, backend)
        write_events(scribe, "in", 40)
        task.pump()
        cost = backend.recover_failover()
        assert cost.entries == 0
        task.restart()
        task.pump()
        assert backend.read_value("dim0")["count"] == 4
