"""Integration tests: heterogeneous DAGs across all three engines and
the data stores, wired only through Scribe (paper Sections 2 and 6.1)."""

import pytest

from repro.core.dag import Dag
from repro.core.event import Event
from repro.hive.warehouse import HiveWarehouse
from repro.laser.service import LaserTable
from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.scribe.checkpoints import CheckpointStore
from repro.scribe.writer import ScribeWriter
from repro.scuba.ingest import ScubaIngester
from repro.scuba.table import ScubaTable
from repro.storage.hbase import HBaseTable
from repro.stylus.engine import StylusJob
from repro.stylus.processor import Output, StatelessProcessor
from repro.swift.engine import SwiftApp

PUMA_FILTER = """
CREATE APPLICATION actions_filter;
CREATE INPUT TABLE actions(event_time, kind, user, amount)
FROM SCRIBE("actions") TIME event_time;
CREATE TABLE purchases AS
SELECT user, amount FROM actions WHERE kind = 'purchase';
"""


class Doubler(StatelessProcessor):
    """A Stylus node downstream of a Puma node."""

    def process(self, event: Event) -> list[Output]:
        record = event.to_record()
        record["amount"] = record["amount"] * 2
        return [Output(record, key=str(record["user"]))]


@pytest.fixture
def world(scribe):
    scribe.create_category("actions", 2)
    return scribe


def write_actions(scribe, count=30):
    writer = ScribeWriter(scribe, "actions")
    for i in range(count):
        writer.write({
            "event_time": float(i),
            "kind": "purchase" if i % 3 == 0 else "view",
            "user": f"u{i % 5}",
            "amount": 10,
        }, key=str(i))


class TestMixedEngineDag:
    def test_puma_feeds_stylus_feeds_stores(self, world, clock):
        """Puma filter -> Stylus transform -> Scuba + Laser + Hive sinks:
        the Figure 1 topology in miniature."""
        puma_app = PumaApp(plan(parse(PUMA_FILTER)), world, HBaseTable("s"),
                           clock=clock)
        world.ensure_category("doubled", 2)
        stylus_job = StylusJob.create("doubler", world, "purchases", Doubler,
                                      output_category="doubled", clock=clock)
        scuba_table = ScubaTable("doubled")
        scuba = ScubaIngester(world, "doubled", scuba_table)
        laser = LaserTable("doubled", ["user"], ["amount"], clock=clock)
        laser.tail_scribe(world, "doubled")
        hive = HiveWarehouse(world)
        hive.ingest_from_scribe("doubled", "doubled_events")

        dag = Dag("fig1")
        dag.add(puma_app, reads=["actions"], writes=["purchases"])
        dag.add(stylus_job, reads=["purchases"], writes=["doubled"])
        dag.add(scuba, reads=["doubled"])
        dag.add(laser, reads=["doubled"])
        dag.add(hive, reads=["doubled"])

        write_actions(world, 30)
        dag.run_until_quiescent()

        assert scuba_table.row_count() == 10  # every third action
        assert laser.get("u0")["amount"] == 20
        assert hive.table("doubled_events").row_count() == 10

    def test_swift_consumes_stylus_output(self, world, clock):
        """Swift as the low-throughput tail of a Stylus stage."""
        world.ensure_category("doubled", 1)
        writer = ScribeWriter(world, "actions")
        stylus_job = StylusJob.create("doubler", world, "actions", Doubler,
                                      output_category="doubled", clock=clock)
        seen = []
        swift = SwiftApp("tail", world, "doubled", 0,
                         lambda m: seen.append(m.decode()["amount"]),
                         CheckpointStore(), checkpoint_every_messages=5)
        for i in range(10):
            writer.write({"event_time": float(i), "kind": "view",
                          "user": "u", "amount": 1}, key="u")
        stylus_job.pump()
        swift.pump()
        assert seen == [2] * 10

    def test_fan_out_one_stream_two_consumers(self, world, clock):
        """Automatic multiplexing: duplicate downstream tiers each read
        all of the data (Section 4.2.2, disaster recovery)."""
        write_actions(world, 12)
        tier_a = ScubaTable("a")
        tier_b = ScubaTable("b")
        ingest_a = ScubaIngester(world, "actions", tier_a)
        ingest_b = ScubaIngester(world, "actions", tier_b)
        ingest_a.pump(1000)
        ingest_b.pump(1000)
        assert tier_a.row_count() == tier_b.row_count() == 12

    def test_node_replacement_by_replay(self, world, clock):
        """Section 6.2: reproduce a problem by reading the same input
        stream from a new node."""
        write_actions(world, 9)
        first = StylusJob.create("v1", world, "actions", Doubler,
                                 output_category=None, clock=clock)
        first.pump()
        # A second, new job replays the identical input from the start.
        second = StylusJob.create("v2", world, "actions", Doubler,
                                  output_category=None, clock=clock)
        assert second.pump() == 9
