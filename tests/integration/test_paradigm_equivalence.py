"""Integration: the three language paradigms agree (paper Section 4.1).

The same filtering-and-projection app written three ways — declarative
(Puma SQL), functional (operator chain), and procedural (a Stylus
processor) — must produce the same output stream from the same input.
That is the premise behind "we can and do create stream processing DAGs
that contain a mix of Puma, Swift, and Stylus applications" (Section
6.1): a node's paradigm is an implementation detail.
"""

import pytest

from repro.core.event import Event
from repro.functional.streams import StreamBuilder
from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.rng import make_rng
from repro.scribe.reader import CategoryReader
from repro.storage.hbase import HBaseTable
from repro.stylus.engine import StylusJob
from repro.stylus.processor import Output, StatelessProcessor

PQL = """
CREATE APPLICATION declarative;
CREATE INPUT TABLE actions(event_time, kind, user, amount)
FROM SCRIBE("actions") TIME event_time;
CREATE TABLE puma_out AS
SELECT user, amount FROM actions WHERE kind = 'purchase' AND amount > 20;
"""


class ProceduralFilter(StatelessProcessor):
    def process(self, event: Event) -> list[Output]:
        if event["kind"] == "purchase" and event["amount"] > 20:
            return [Output({"event_time": event.event_time,
                            "user": event["user"],
                            "amount": event["amount"]})]
        return []


def canonical(records):
    return sorted(
        (r["event_time"], r["user"], r["amount"]) for r in records
    )


@pytest.fixture
def fed(scribe):
    scribe.create_category("actions", 2)
    rng = make_rng(61, "paradigms")
    for i in range(200):
        scribe.write_record("actions", {
            "event_time": float(i),
            "kind": rng.choice(["purchase", "view", "like"]),
            "user": f"u{rng.randrange(10)}",
            "amount": rng.randrange(50),
        }, key=str(i))
    return scribe


def test_three_paradigms_one_answer(fed, clock):
    # Declarative: Puma.
    puma = PumaApp(plan(parse(PQL)), fed, HBaseTable("s"), clock=clock)
    puma.pump(10_000)

    # Functional: an operator chain compiled onto Stylus.
    functional = (StreamBuilder(fed, clock=clock, num_buckets=2)
                  .source("actions")
                  .filter(lambda r: r["kind"] == "purchase"
                          and r["amount"] > 20)
                  .map(lambda r: {"event_time": r["event_time"],
                                  "user": r["user"], "amount": r["amount"]})
                  .to("functional_out")
                  .build("functional"))
    functional.run_until_quiescent()

    # Procedural: a hand-written Stylus processor.
    fed.ensure_category("stylus_out", 2)
    job = StylusJob.create("procedural", fed, "actions", ProceduralFilter,
                           output_category="stylus_out", clock=clock)
    job.pump(10_000)

    puma_rows = [m.decode()
                 for m in CategoryReader(fed, "puma_out").read_all()]
    functional_rows = [m.decode()
                       for m in CategoryReader(fed, "functional_out")
                       .read_all()]
    stylus_rows = [m.decode()
                   for m in CategoryReader(fed, "stylus_out").read_all()]

    assert canonical(puma_rows) == canonical(functional_rows) \
        == canonical(stylus_rows)
    assert puma_rows  # the filter actually selected something


def test_paradigm_outputs_compose_downstream(fed, clock):
    """Any paradigm's output can feed any other's input (Section 6.1)."""
    puma = PumaApp(plan(parse(PQL)), fed, HBaseTable("s"), clock=clock)
    puma.pump(10_000)

    downstream = (StreamBuilder(fed, clock=clock, num_buckets=2)
                  .source("puma_out")
                  .map(lambda r: {**r, "doubled": r["amount"] * 2})
                  .build("chained"))
    downstream.run_until_quiescent()
    rows = [m.decode()
            for m in CategoryReader(fed, "chained.out").read_all()]
    assert rows
    assert all(r["doubled"] == r["amount"] * 2 for r in rows)
