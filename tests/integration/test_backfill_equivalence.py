"""Integration: stream results equal batch results on the same data.

Section 4.5's whole point — one codebase, two runtimes, one answer.
"""

import pytest

from repro.backfill.runner import run_monoid_backfill
from repro.hive.warehouse import HiveWarehouse
from repro.scribe.writer import ScribeWriter
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusJob
from repro.workloads.events import TrendingEventsWorkload

from tests.stylus.helpers import DimensionCounter


@pytest.fixture
def events():
    workload = TrendingEventsWorkload(rate_per_second=40.0)
    rows = []
    for index, record in enumerate(workload.generate(30.0)):
        record["seq"] = index
        rows.append(record)
    return rows


class TestStreamBatchEquivalence:
    def test_monoid_processor_same_totals_both_runtimes(self, scribe, clock,
                                                        events):
        # Streaming run.
        scribe.create_category("raw", 4)
        writer = ScribeWriter(scribe, "raw")
        for record in events:
            writer.write(record, key=record["dim_id"])
        job = StylusJob.create(
            "agg", scribe, "raw", DimensionCounter, clock=clock,
            checkpoint_policy=CheckpointPolicy(every_n_events=17),
        )
        job.pump(100_000)
        job.checkpoint_now()
        streaming = {}
        for task in job.tasks:
            for key in [f"dim{i}" for i in range(10)]:
                value = task.state_backend.read_value(key)
                if value:
                    streaming[key] = {
                        "count": streaming.get(key, {}).get("count", 0)
                        + value["count"],
                        "score": streaming.get(key, {}).get("score", 0)
                        + value["score"],
                    }

        # Batch run over the same rows (as Hive would hold them).
        batch = run_monoid_backfill(DimensionCounter(), events,
                                    num_map_tasks=4)

        assert streaming == batch

    def test_hive_roundtrip_preserves_rows(self, scribe, clock, events):
        """Scribe -> Hive ingestion loses nothing within a partition."""
        scribe.create_category("raw", 2)
        writer = ScribeWriter(scribe, "raw")
        for record in events:
            writer.write(record, key=record["dim_id"])
        warehouse = HiveWarehouse(scribe)
        warehouse.ingest_from_scribe("raw", "raw_events")
        warehouse.pump(100_000)
        table = warehouse.table("raw_events")
        assert table.row_count() == len(events)
        stored = sorted(r["seq"] for r in
                        table.partition(0, allow_unlanded=True).rows)
        assert stored == sorted(r["seq"] for r in events)
