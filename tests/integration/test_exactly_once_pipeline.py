"""Integration: an exactly-once pipeline into a transactional store.

Section 4.3.2: "Exactly-once output semantics require transaction
support from the receiver of the output. In practice, this means that
the receiver must be a data store" — here ZippyDB. The pipeline crashes
repeatedly at every vulnerable point; the committed results in the store
must be exactly right, with no duplicated output rows.
"""

import pytest

from repro.core.semantics import SemanticsPolicy
from repro.runtime.clock import SimClock
from repro.scribe.store import ScribeStore
from repro.storage.merge import DictSumMergeOperator
from repro.storage.zippydb import ZippyDb
from repro.stylus.checkpointing import CheckpointPolicy, CrashInjector, CrashPoint
from repro.stylus.engine import StylusTask
from repro.stylus.state import RemoteDbStateBackend

from tests.conftest import write_events
from tests.stylus.helpers import CountingProcessor, DimensionCounter

TOTAL = 120


def run_to_completion(task):
    for _ in range(200):
        if task.crashed:
            task.restart()
            continue
        task.pump()
        if task.crashed or task.lag_messages() > 0:
            continue
        # A checkpoint with no new events would just re-emit the same
        # counter value (a normal, distinct emission — but it would make
        # the duplicate-detection assertions meaningless). TOTAL is a
        # multiple of the interval, so the final checkpoint fires inside
        # pump; force one only if work is still pending.
        if task._events_since_checkpoint > 0:
            task.checkpoint_now()
        if not task.crashed:
            return
    raise AssertionError("never drained")


@pytest.fixture
def world(clock):
    scribe = ScribeStore(clock=clock)
    scribe.create_category("in", 1)
    db = ZippyDb(num_shards=3, merge_operator=DictSumMergeOperator(),
                 clock=clock)
    return scribe, db


class TestExactlyOnceIntoZippyDb:
    def arm_everything(self, injector):
        for index in (2, 5, 9):
            injector.arm(CrashPoint.BEFORE_CHECKPOINT, index)
        injector.arm(CrashPoint.DURING_PROCESSING, 7)
        injector.arm(CrashPoint.AFTER_CHECKPOINT, 11)

    def test_stateful_counts_and_outputs_exact(self, clock, world):
        scribe, db = world
        injector = CrashInjector()
        self.arm_everything(injector)
        backend = RemoteDbStateBackend("counter", db)
        task = StylusTask("counter", scribe, "in", 0, CountingProcessor(),
                          semantics=SemanticsPolicy.exactly_once(),
                          state_backend=backend,
                          checkpoint_policy=CheckpointPolicy(
                              every_n_events=10),
                          clock=clock, crash_injector=injector)
        write_events(scribe, "in", TOTAL)
        run_to_completion(task)

        assert injector.crashes_fired == 5
        state, offset = backend.load()
        assert state == {"count": TOTAL}
        assert offset == TOTAL
        counts = [o["count"] for o in backend.committed_outputs()]
        assert counts[-1] == TOTAL
        assert counts == sorted(counts)
        assert len(counts) == len(set(counts))  # no duplicated output rows

    def test_monoid_flushes_exact_through_transactions(self, clock, world):
        scribe, db = world
        injector = CrashInjector()
        self.arm_everything(injector)
        backend = RemoteDbStateBackend("agg", db)
        task = StylusTask("agg", scribe, "in", 0, DimensionCounter(),
                          semantics=SemanticsPolicy.exactly_once(),
                          state_backend=backend,
                          checkpoint_policy=CheckpointPolicy(
                              every_n_events=10),
                          clock=clock, crash_injector=injector)
        write_events(scribe, "in", TOTAL)
        run_to_completion(task)

        totals = {f"dim{i}": (backend.read_value(f"dim{i}") or {})
                  .get("count", 0) for i in range(10)}
        assert totals == {f"dim{i}": TOTAL // 10 for i in range(10)}

    def test_transactions_charged_to_the_clock(self, clock, world):
        """The paper's 'pay for them with extra latency': every
        exactly-once checkpoint is a distributed transaction."""
        scribe, db = world
        backend = RemoteDbStateBackend("counter", db)
        task = StylusTask("counter", scribe, "in", 0, CountingProcessor(),
                          semantics=SemanticsPolicy.exactly_once(),
                          state_backend=backend,
                          checkpoint_policy=CheckpointPolicy(
                              every_n_events=10),
                          clock=clock)
        write_events(scribe, "in", TOTAL)
        run_to_completion(task)
        transactions = db.metrics.counter("zippydb.transactions").value
        assert transactions >= TOTAL // 10
