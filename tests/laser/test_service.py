"""Tests for the Laser key-value serving layer."""

import pytest

from repro.errors import ConfigError, LaserError
from repro.hive.warehouse import HiveTable
from repro.laser.service import LaserService, LaserTable


@pytest.fixture
def service(scribe):
    return LaserService(scribe, clock=scribe.clock)


class TestLaserTable:
    def test_point_lookup(self, clock):
        table = LaserTable("dims", ["dim_id"], ["language"], clock=clock)
        table.put_row({"dim_id": "d1", "language": "en", "noise": 1})
        assert table.get("d1") == {"language": "en"}
        assert table.get("missing") is None

    def test_composite_keys(self, clock):
        table = LaserTable("t", ["a", "b"], ["v"], clock=clock)
        table.put_row({"a": 1, "b": 2, "v": "x"})
        assert table.get(1, 2) == {"v": "x"}
        assert table.get(2, 1) is None

    def test_wrong_key_arity_raises(self, clock):
        table = LaserTable("t", ["a", "b"], ["v"], clock=clock)
        with pytest.raises(LaserError):
            table.get("only-one")

    def test_row_missing_key_column_raises(self, clock):
        table = LaserTable("t", ["a"], ["v"], clock=clock)
        with pytest.raises(LaserError):
            table.put_row({"v": 1})

    def test_lifetime_expiry(self, clock):
        table = LaserTable("t", ["k"], ["v"], lifetime_seconds=10.0,
                           clock=clock)
        table.put_row({"k": "a", "v": 1})
        assert table.get("a") == {"v": 1}
        clock.advance(11.0)
        assert table.get("a") is None

    def test_rewrite_refreshes_lifetime(self, clock):
        table = LaserTable("t", ["k"], ["v"], lifetime_seconds=10.0,
                           clock=clock)
        table.put_row({"k": "a", "v": 1})
        clock.advance(8.0)
        table.put_row({"k": "a", "v": 2})
        clock.advance(8.0)
        assert table.get("a") == {"v": 2}

    def test_config_validation(self, clock):
        with pytest.raises(ConfigError):
            LaserTable("t", [], ["v"], clock=clock)
        with pytest.raises(ConfigError):
            LaserTable("t", ["k"], [], clock=clock)
        with pytest.raises(ConfigError):
            LaserTable("t", ["k"], ["v"], lifetime_seconds=0, clock=clock)

    def test_multi_get(self, clock):
        table = LaserTable("t", ["k"], ["v"], clock=clock)
        table.put_row({"k": "a", "v": 1})
        result = table.multi_get([("a",), ("b",)])
        assert result == {("a",): {"v": 1}, ("b",): None}


class TestSources:
    def test_tail_scribe_realtime(self, scribe, clock):
        """Use case 1: a Puma/Stylus output stream served to products."""
        scribe.create_category("scores", 2)
        table = LaserTable("scores", ["topic"], ["score"], clock=clock)
        table.tail_scribe(scribe, "scores")
        scribe.write_record("scores", {"topic": "movies", "score": 9.5},
                            key="movies")
        assert table.pump() == 1
        assert table.get("movies") == {"score": 9.5}

    def test_load_from_hive_daily(self, clock):
        """Use case 2: a Hive result loaded for lookup joins."""
        hive_table = HiveTable("dims")
        for i in range(5):
            hive_table.append({"event_time": float(i), "dim_id": f"d{i}",
                               "lang": "en"})
        hive_table.land_partitions_before(now=90_000.0)
        table = LaserTable("dims", ["dim_id"], ["lang"], clock=clock)
        assert table.load_from_hive(hive_table) == 5
        assert table.get("d3") == {"lang": "en"}


class TestLaserService:
    def test_one_command_create_and_delete(self, service):
        service.create_table("t", ["k"], ["v"])
        assert service.tables() == ["t"]
        service.delete_table("t")
        assert service.tables() == []

    def test_duplicate_create_rejected(self, service):
        service.create_table("t", ["k"], ["v"])
        with pytest.raises(ConfigError):
            service.create_table("t", ["k"], ["v"])

    def test_unknown_table_raises(self, service):
        with pytest.raises(ConfigError):
            service.table("ghost")
        with pytest.raises(ConfigError):
            service.delete_table("ghost")

    def test_create_with_scribe_source_pumps(self, service, scribe):
        scribe.create_category("src", 1)
        service.create_table("t", ["k"], ["v"], scribe_category="src")
        scribe.write_record("src", {"k": "a", "v": 7})
        assert service.pump() == 1
        assert service.table("t").get("a") == {"v": 7}


class TestReplicatedTables:
    """Sections 4.2.2 / 6.3: one app in several data centers, each tier
    reading all of the stream's data for disaster recovery."""

    def make(self, service, scribe):
        scribe.create_category("scores", 2)
        table = service.create_replicated_table(
            "scores", ["topic"], ["score"],
            data_centers=["dc-east", "dc-west"],
            scribe_category="scores",
        )
        scribe.write_record("scores", {"topic": "movies", "score": 9.0},
                            key="movies")
        table.pump()
        return table

    def test_every_tier_ingests_all_data(self, service, scribe):
        table = self.make(service, scribe)
        assert table.get("movies", datacenter="dc-east") == {"score": 9.0}
        assert table.get("movies", datacenter="dc-west") == {"score": 9.0}

    def test_failover_between_datacenters(self, service, scribe):
        table = self.make(service, scribe)
        table.fail_datacenter("dc-east")
        # Reads preferring the dead DC silently fail over.
        assert table.get("movies", datacenter="dc-east") == {"score": 9.0}
        assert service.metrics.counter(
            f"laser.{table.name}.failover_reads").value == 1
        table.fail_datacenter("dc-west")
        # Every DC down: a key served before comes from the stale cache...
        assert table.get("movies") == {"score": 9.0}
        assert service.metrics.counter(
            f"laser.{table.name}.stale_reads").value == 1
        # ...and a key never served raises, visibly counted.
        with pytest.raises(LaserError):
            table.get("never-seen")
        assert service.metrics.counter(
            f"laser.{table.name}.unavailable_reads").value == 1
        table.restore_datacenter("dc-west")
        assert table.get("movies") == {"score": 9.0}

    def test_recovering_tier_catches_up_from_the_bus(self, service, scribe):
        table = self.make(service, scribe)
        table.fail_datacenter("dc-east")
        scribe.write_record("scores", {"topic": "sports", "score": 3.0},
                            key="sports")
        table.pump()  # both tiers keep tailing; "down" only affects reads
        table.restore_datacenter("dc-east")
        assert table.get("sports", datacenter="dc-east") == {"score": 3.0}

    def test_duplicate_names_rejected(self, service, scribe):
        self.make(service, scribe)
        with pytest.raises(ConfigError):
            service.create_replicated_table(
                "scores", ["k"], ["v"], ["dc"], scribe_category="scores")

    def test_service_pump_covers_replicated(self, service, scribe):
        table = self.make(service, scribe)
        scribe.write_record("scores", {"topic": "news", "score": 1.0},
                            key="news")
        assert service.pump() == 2  # both tiers ingested the new record


class TestFaultInjection:
    """Outages, latches, and retries on the serving tiers themselves."""

    def test_outage_window_blocks_reads_and_is_counted(self, clock):
        from repro.errors import StoreUnavailable

        table = LaserTable("t", ["k"], ["v"], clock=clock)
        table.put_row({"k": "a", "v": 1})
        table.add_outage(5.0, 10.0)
        clock.advance(6.0)
        with pytest.raises(StoreUnavailable):
            table.get("a")
        with pytest.raises(StoreUnavailable):
            table.multi_get([("a",)])
        assert table.metrics.counter(
            "laser.t.unavailable_errors").value == 2
        clock.advance(5.0)
        assert table.get("a") == {"v": 1}

    def test_latched_outage_until_restored(self, clock):
        from repro.errors import StoreUnavailable

        table = LaserTable("t", ["k"], ["v"], clock=clock)
        table.put_row({"k": "a", "v": 1})
        table.set_available(False)
        with pytest.raises(StoreUnavailable):
            table.get("a")
        table.set_available(True)
        assert table.get("a") == {"v": 1}

    def test_replicated_read_retries_through_transient_outage(self, service,
                                                              scribe, clock):
        from repro.runtime.retry import RetryPolicy

        scribe.create_category("scores", 1)
        table = service.create_replicated_table(
            "scores", ["topic"], ["score"],
            data_centers=["dc-east", "dc-west"],
            scribe_category="scores",
            retry=RetryPolicy(max_attempts=4, base_delay=1.0,
                              multiplier=2.0, jitter=0.0))
        scribe.write_record("scores", {"topic": "movies", "score": 9.0},
                            key="movies")
        table.pump()
        # Both tiers go dark briefly; the backoff (1s + 2s) outlives it.
        for tier in table.tiers.values():
            tier.add_outage(clock.now(), clock.now() + 2.5)
        assert table.get("movies") == {"score": 9.0}
        assert service.metrics.counter(
            "laser.scores.retry.recoveries").value >= 1
        assert service.metrics.counter(
            f"laser.{table.name}.stale_reads").value == 0
