"""Tests for the backpressure comparison models (Section 4.2.2)."""

import pytest

from repro.baselines.rpc_engine import (
    DecoupledPipelineModel,
    RpcPipelineModel,
    StageSpec,
)
from repro.errors import ConfigError


def stages(slow_middle=False, outage=None):
    middle_outages = (outage,) if outage else ()
    return [
        StageSpec("filterer", 0.001),
        StageSpec("joiner", 0.005 if slow_middle else 0.001,
                  outages=middle_outages),
        StageSpec("ranker", 0.001),
    ]


class TestRpcBackpressure:
    def test_throughput_capped_by_slowest_stage(self):
        result = RpcPipelineModel(stages(slow_middle=True),
                                  queue_capacity=10).run(
            events=2000, arrival_rate=10_000.0)
        assert result.pipeline_throughput == pytest.approx(200.0, rel=0.05)

    def test_backpressure_holds_the_source(self):
        """The upstream stage cannot finish early: the full queue blocks it."""
        result = RpcPipelineModel(stages(slow_middle=True),
                                  queue_capacity=10).run(
            events=2000, arrival_rate=10_000.0)
        # the fast filterer is dragged down to ~the slow stage's pace
        assert result.source_drain_seconds() > 2000 * 0.005 * 0.8

    def test_outage_stalls_the_whole_chain(self):
        result = RpcPipelineModel(
            stages(outage=(0.5, 5.5)), queue_capacity=10,
        ).run(events=1000, arrival_rate=10_000.0)
        assert result.end_to_end_seconds > 5.0

    def test_no_bottleneck_runs_at_stage_speed(self):
        result = RpcPipelineModel(stages(), queue_capacity=100).run(
            events=1000, arrival_rate=100_000.0)
        assert result.pipeline_throughput == pytest.approx(1000.0, rel=0.1)


class TestDecoupledPipeline:
    def test_source_never_held_back(self):
        model = DecoupledPipelineModel(stages(slow_middle=True),
                                       bus_delay=0.0)
        result = model.run(events=2000, arrival_rate=10_000.0)
        # filterer finishes at its own service speed (2000 x 1ms = 2s),
        # not at the slow joiner's pace (10s) as under back pressure.
        assert result.source_drain_seconds() == pytest.approx(2.0, rel=0.05)

    def test_slow_stage_lags_but_others_keep_throughput(self):
        model = DecoupledPipelineModel(stages(slow_middle=True),
                                       bus_delay=0.0)
        result = model.run(events=2000, arrival_rate=10_000.0)
        assert result.stage_throughput["filterer"] > \
            4 * result.stage_throughput["joiner"]

    def test_outage_only_delays_downstream(self):
        model = DecoupledPipelineModel(stages(outage=(0.5, 5.5)),
                                       bus_delay=0.0)
        result = model.run(events=1000, arrival_rate=10_000.0)
        assert result.stage_finish["filterer"] < 1.5  # its own 1s of work
        assert result.stage_finish["ranker"] > 5.5

    def test_bus_delay_adds_per_hop_latency(self):
        fast = DecoupledPipelineModel(stages(), bus_delay=0.0).run(10, 1000.0)
        slow = DecoupledPipelineModel(stages(), bus_delay=1.0).run(10, 1000.0)
        added = slow.end_to_end_seconds - fast.end_to_end_seconds
        assert added == pytest.approx(3.0, rel=0.01)  # one per hop


class TestComparison:
    def test_decoupled_beats_rpc_when_one_stage_is_slow(self):
        """The paper's core data-transfer claim, end to end."""
        rpc = RpcPipelineModel(stages(slow_middle=True), queue_capacity=10)
        bus = DecoupledPipelineModel(stages(slow_middle=True), bus_delay=1.0)
        rpc_result = rpc.run(events=2000, arrival_rate=10_000.0)
        bus_result = bus.run(events=2000, arrival_rate=10_000.0)
        # upstream throughput: decoupled keeps it, RPC loses it
        assert bus_result.stage_throughput["filterer"] > \
            3 * rpc_result.stage_throughput["filterer"]

    def test_equal_stages_rpc_has_lower_latency(self):
        """The flip side: direct transfer wins on per-event latency."""
        rpc = RpcPipelineModel(stages(), queue_capacity=100)
        bus = DecoupledPipelineModel(stages(), bus_delay=1.0)
        assert rpc.run(10, 100.0).end_to_end_seconds < \
            bus.run(10, 100.0).end_to_end_seconds


class TestValidation:
    def test_config_errors(self):
        with pytest.raises(ConfigError):
            StageSpec("s", 0.0)
        with pytest.raises(ConfigError):
            StageSpec("s", 1.0, outages=((5.0, 5.0),))
        with pytest.raises(ConfigError):
            RpcPipelineModel([], queue_capacity=1)
        with pytest.raises(ConfigError):
            RpcPipelineModel(stages(), queue_capacity=0)
        with pytest.raises(ConfigError):
            DecoupledPipelineModel(stages(), bus_delay=-1.0)
        with pytest.raises(ConfigError):
            DecoupledPipelineModel(stages()).run(10, arrival_rate=0.0)

    def test_stage_next_available_skips_outages(self):
        stage = StageSpec("s", 1.0, outages=((2.0, 4.0), (4.0, 5.0)))
        assert stage.next_available(1.0) == 1.0
        assert stage.next_available(3.0) == 5.0  # chained outages
