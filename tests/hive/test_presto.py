"""Tests for the Presto stand-in (paper Section 2.7)."""

import pytest

from repro.errors import HiveError
from repro.hive.presto import PrestoEngine
from repro.hive.warehouse import SECONDS_PER_DAY, HiveWarehouse
from repro.laser.service import LaserTable


@pytest.fixture
def warehouse(scribe):
    warehouse = HiveWarehouse(scribe)
    table = warehouse.create_table("requests")
    for day in range(2):
        for i in range(100):
            table.append({
                "event_time": day * SECONDS_PER_DAY + i * 60.0,
                "endpoint": "/home" if i % 2 else "/feed",
                "ms": i % 10,
            })
    table.land_partitions_before(now=2 * SECONDS_PER_DAY + 1)
    return warehouse


@pytest.fixture
def presto(warehouse):
    return PrestoEngine(warehouse)


class TestQueries:
    def test_aggregation_query(self, presto):
        rows = presto.query(
            "requests",
            "SELECT endpoint, count(*) AS n, avg(ms) AS mean_ms "
            "FROM requests [1 day]",
        )
        by_key = {(r["window_start"], r["endpoint"]): r["n"] for r in rows}
        assert by_key[(0.0, "/home")] == 50
        assert by_key[(SECONDS_PER_DAY, "/feed")] == 50

    def test_filter_query(self, presto):
        rows = presto.query(
            "requests",
            "SELECT endpoint, ms FROM requests WHERE ms >= 8",
        )
        assert rows
        assert all(r["ms"] >= 8 for r in rows)

    def test_partition_scoping(self, presto):
        day0 = presto.query("requests",
                            "SELECT count(*) AS n FROM requests", days=[0])
        assert day0[0]["n"] == 100

    def test_unlanded_partitions_invisible(self, scribe):
        warehouse = HiveWarehouse(scribe)
        table = warehouse.create_table("fresh")
        table.append({"event_time": 10.0, "v": 1})  # today: not landed
        presto = PrestoEngine(warehouse)
        with pytest.raises(HiveError):
            presto.query("fresh", "SELECT count(*) AS n FROM fresh")

    def test_udfs_available(self, presto):
        rows = presto.query(
            "requests",
            "SELECT hour_of_day(event_time) AS hour, count(*) AS n "
            "FROM requests WHERE day_bucket(event_time) = 0",
        )
        assert sum(r["n"] for r in rows) == 100


class TestLaserPublication:
    def test_results_served_by_laser(self, presto, clock):
        """Section 2.7: daily results 'can then be sent to Laser'."""
        rows = presto.query(
            "requests",
            "SELECT endpoint, count(*) AS n FROM requests [1 day]",
        )
        laser = LaserTable("daily_counts", ["window_start", "endpoint"],
                           ["n"], clock=clock)
        published = presto.publish_to_laser(rows, laser)
        assert published == len(rows)
        assert laser.get(0.0, "/home") == {"n": 50}
