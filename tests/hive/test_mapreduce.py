"""Tests for the MapReduce mini-framework."""

from repro.hive.mapreduce import MapReduceJob, run_map_reduce


def word_count_job(combiner=False, tasks=4):
    return MapReduceJob(
        mapper=lambda row: [(w, 1) for w in row["text"].split()],
        reducer=lambda key, values: [{"word": key, "n": sum(values)}],
        combiner=(lambda key, values: sum(values)) if combiner else None,
        num_map_tasks=tasks,
    )


ROWS = [{"text": "a b a"}, {"text": "b c"}, {"text": "a"}]


class TestRunMapReduce:
    def test_word_count(self):
        output = run_map_reduce(word_count_job(), ROWS)
        assert output == [
            {"word": "a", "n": 3}, {"word": "b", "n": 2}, {"word": "c", "n": 1},
        ]

    def test_combiner_preserves_results(self):
        with_combiner = run_map_reduce(word_count_job(combiner=True), ROWS)
        without = run_map_reduce(word_count_job(combiner=False), ROWS)
        assert with_combiner == without

    def test_split_count_does_not_change_results(self):
        one = run_map_reduce(word_count_job(combiner=True, tasks=1), ROWS)
        many = run_map_reduce(word_count_job(combiner=True, tasks=16), ROWS)
        assert one == many

    def test_empty_input(self):
        assert run_map_reduce(word_count_job(), []) == []

    def test_output_is_key_sorted_deterministic(self):
        output = run_map_reduce(word_count_job(), list(reversed(ROWS)))
        assert [o["word"] for o in output] == ["a", "b", "c"]

    def test_mapper_can_emit_nothing(self):
        job = MapReduceJob(
            mapper=lambda row: [],
            reducer=lambda key, values: [{"k": key}],
        )
        assert run_map_reduce(job, ROWS) == []

    def test_reducer_sees_all_values_for_key(self):
        seen = {}
        job = MapReduceJob(
            mapper=lambda row: [(row["text"][0], row["text"])],
            reducer=lambda key, values: seen.setdefault(key, values) or [],
        )
        run_map_reduce(job, ROWS)
        assert sorted(seen["a"]) == ["a", "a b a"]
