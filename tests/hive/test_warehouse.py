"""Tests for the Hive warehouse."""

import pytest

from repro.errors import HiveError, PartitionNotReady
from repro.hive.warehouse import (
    SECONDS_PER_DAY,
    HiveTable,
    HiveWarehouse,
    day_of,
)


class TestDayPartitioning:
    def test_day_of(self):
        assert day_of(0.0) == 0
        assert day_of(SECONDS_PER_DAY - 1) == 0
        assert day_of(SECONDS_PER_DAY) == 1

    def test_rows_land_in_their_day(self):
        table = HiveTable("t")
        table.append({"event_time": 100.0, "v": 1})
        table.append({"event_time": SECONDS_PER_DAY + 5, "v": 2})
        assert table.days(landed_only=False) == [0, 1]

    def test_row_without_time_rejected(self):
        with pytest.raises(HiveError):
            HiveTable("t").append({"v": 1})


class TestLanding:
    def test_partition_unavailable_until_midnight(self):
        table = HiveTable("t")
        table.append({"event_time": 100.0})
        with pytest.raises(PartitionNotReady):
            table.partition(0)
        table.land_partitions_before(now=SECONDS_PER_DAY + 1)
        assert table.partition(0).row_count == 1

    def test_current_day_never_lands(self):
        table = HiveTable("t")
        table.append({"event_time": SECONDS_PER_DAY + 10})
        landed = table.land_partitions_before(now=SECONDS_PER_DAY + 20)
        assert landed == []

    def test_late_row_into_landed_partition_rejected(self):
        table = HiveTable("t")
        table.append({"event_time": 100.0})
        table.land_partitions_before(now=2 * SECONDS_PER_DAY)
        with pytest.raises(HiveError):
            table.append({"event_time": 200.0})

    def test_missing_partition_raises(self):
        with pytest.raises(PartitionNotReady):
            HiveTable("t").partition(7)

    def test_scan_reads_landed_partitions(self):
        table = HiveTable("t")
        for day in range(3):
            table.append({"event_time": day * SECONDS_PER_DAY + 1.0,
                          "day": day})
        table.land_partitions_before(now=2.5 * SECONDS_PER_DAY)
        assert [r["day"] for r in table.scan()] == [0, 1]
        assert [r["day"] for r in table.scan([1])] == [1]


class TestWarehouse:
    def test_ingest_from_scribe(self, scribe):
        scribe.create_category("raw", 2)
        warehouse = HiveWarehouse(scribe)
        warehouse.ingest_from_scribe("raw", "raw_events")
        for i in range(10):
            scribe.write_record("raw", {"event_time": float(i)}, key=str(i))
        assert warehouse.pump() == 10
        assert warehouse.table("raw_events").row_count() == 10

    def test_land_partitions_runs_midnight(self, scribe, clock):
        scribe.create_category("raw", 1)
        warehouse = HiveWarehouse(scribe)
        warehouse.ingest_from_scribe("raw", "raw_events")
        scribe.write_record("raw", {"event_time": 10.0})
        warehouse.pump()
        clock.advance(2 * SECONDS_PER_DAY)
        landed = warehouse.land_partitions()
        assert landed["raw_events"] == [0]

    def test_duplicate_table_rejected(self, scribe):
        warehouse = HiveWarehouse(scribe)
        warehouse.create_table("t")
        with pytest.raises(HiveError):
            warehouse.create_table("t")

    def test_aggregate_query(self, scribe):
        warehouse = HiveWarehouse(scribe)
        table = warehouse.create_table("t")
        for i in range(10):
            table.append({"event_time": float(i), "k": "a" if i < 7 else "b"})
        table.land_partitions_before(now=SECONDS_PER_DAY + 1)
        totals = warehouse.aggregate("t", [0], key_fn=lambda r: r["k"])
        assert totals == {"a": 7, "b": 3}
