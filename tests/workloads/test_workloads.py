"""Tests for the synthetic workload generators."""

import pytest

from repro.errors import ConfigError
from repro.runtime.rng import make_rng
from repro.workloads.events import (
    EventStreamWorkload,
    TrendBurst,
    TrendingEventsWorkload,
)
from repro.workloads.posts import AdMoment, PostsWorkload
from repro.workloads.zipf import ZipfSampler


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(100, 1.1)
        total = sum(sampler.probability(i) for i in range(100))
        assert total == pytest.approx(1.0)

    def test_head_is_heavier_than_tail(self):
        sampler = ZipfSampler(1000, 1.1, rng=make_rng(1, "zipf"))
        samples = [sampler.sample() for _ in range(10_000)]
        head = sum(1 for s in samples if s < 10)
        assert head > len(samples) * 0.3

    def test_samples_in_range(self):
        sampler = ZipfSampler(5, 1.0, rng=make_rng(2, "zipf"))
        assert all(0 <= sampler.sample() < 5 for _ in range(1000))

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            ZipfSampler(0)
        with pytest.raises(ConfigError):
            ZipfSampler(10, exponent=0)


class TestTrendingEventsWorkload:
    def test_deterministic_for_seed(self):
        a = list(TrendingEventsWorkload(seed=3).generate(10.0))
        b = list(TrendingEventsWorkload(seed=3).generate(10.0))
        assert a == b

    def test_rate_controls_volume(self):
        events = list(TrendingEventsWorkload(rate_per_second=50.0)
                      .generate(10.0))
        assert len(events) == 500

    def test_events_have_required_fields(self):
        for event in TrendingEventsWorkload().generate(2.0):
            assert set(event) == {"event_time", "event_type", "dim_id",
                                  "text"}

    def test_disorder_is_bounded(self):
        workload = TrendingEventsWorkload(max_disorder_seconds=2.0,
                                          rate_per_second=100.0)
        events = list(workload.generate(10.0))
        previous_arrival = 0.0
        for index, event in enumerate(events):
            arrival = index / 100.0
            assert event["event_time"] <= arrival + 0.011
            assert event["event_time"] >= arrival - 2.0 - 0.011
            previous_arrival = arrival

    def test_burst_boosts_topic(self):
        burst = TrendBurst("science", 0.0, 10.0, multiplier=50.0)
        workload = TrendingEventsWorkload(bursts=(burst,),
                                          rate_per_second=200.0)
        events = list(workload.generate(10.0))
        science = sum(1 for e in events if "science" in e["text"])
        assert science > len(events) * 0.5
        assert workload.ground_truth_topics() == ["science"]

    def test_dimension_rows_cover_ids(self):
        workload = TrendingEventsWorkload(num_dimensions=50)
        rows = workload.dimension_rows()
        assert len(rows) == 50
        assert {row["dim_id"] for row in rows} == {f"dim{i}" for i in range(50)}


class TestEventStreamWorkload:
    def test_fields_and_determinism(self):
        events_a = list(EventStreamWorkload(seed=1).generate(5.0))
        events_b = list(EventStreamWorkload(seed=1).generate(5.0))
        assert events_a == events_b
        assert set(events_a[0]) == {"event_time", "event", "category",
                                    "score"}

    def test_scores_are_non_negative(self):
        assert all(e["score"] >= 0
                   for e in EventStreamWorkload().generate(5.0))


class TestPostsWorkload:
    def test_ad_moment_spikes_hashtag(self):
        workload = PostsWorkload(
            ad_moment=AdMoment("#likeagirl", start=10.0, duration=20.0,
                               multiplier=50.0),
            rate_per_second=100.0,
        )
        posts = list(workload.generate(40.0))
        inside = [p for p in posts if 10.0 <= p["event_time"] < 30.0]
        outside = [p for p in posts if p["event_time"] < 10.0]
        rate_inside = sum(p["hashtag"] == "#likeagirl" for p in inside) \
            / len(inside)
        rate_outside = (sum(p["hashtag"] == "#likeagirl" for p in outside)
                        / len(outside))
        assert rate_inside > 10 * max(rate_outside, 0.01)
        assert workload.spike_window() == (10.0, 30.0)

    def test_no_ad_moment(self):
        workload = PostsWorkload(ad_moment=None)
        assert workload.spike_window() is None
        posts = list(workload.generate(5.0))
        assert len(posts) == 250
