"""Tests for the dashboard framework (Section 5.2)."""

import pytest

from repro.errors import ConfigError
from repro.monitoring.dashboards import Dashboard, DashboardPanel
from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.scuba.query import ScubaQuery
from repro.scuba.table import ScubaTable
from repro.storage.hbase import HBaseTable

PQL = """
CREATE APPLICATION dash;
CREATE INPUT TABLE clicks(event_time, page) FROM SCRIBE("clicks")
TIME event_time;
CREATE TABLE per_page AS
SELECT page, count(*) AS n FROM clicks [1 minute];
"""


def loaded_scuba():
    table = ScubaTable("clicks")
    for i in range(120):
        table.add({"event_time": float(i),
                   "page": "home" if i % 3 else "about"})
    return table


class TestScubaPanels:
    def test_panel_runs_over_window(self, clock):
        table = loaded_scuba()
        query = ScubaQuery(table, 0.0, 60.0, group_by=("page",))
        panel = DashboardPanel.from_scuba("clicks", query)
        rows = panel.runner(0.0, 60.0)
        assert sum(r["value"] for r in rows) == 60

    def test_refresh_slides_the_window(self, clock):
        table = loaded_scuba()
        dashboard = Dashboard("ops", window_seconds=60.0, clock=clock)
        dashboard.add_panel(DashboardPanel.from_scuba(
            "clicks", ScubaQuery(table, 0.0, 60.0, group_by=("page",))))
        clock.advance(60.0)
        first = dashboard.refresh()
        clock.advance(60.0)
        second = dashboard.refresh()
        assert sum(r["value"] for r in first["clicks"]) == 60
        assert sum(r["value"] for r in second["clicks"]) == 60


class TestPumaPanels:
    def test_puma_panel_serves_precomputed_windows(self, scribe, clock):
        scribe.create_category("clicks", 1)
        app = PumaApp(plan(parse(PQL)), scribe, HBaseTable("s"), clock=clock)
        for i in range(120):
            scribe.write_record("clicks", {
                "event_time": float(i), "page": "home" if i % 3 else "about",
            })
        app.pump(1000)
        panel = DashboardPanel.from_puma("clicks", app, "per_page", "n")
        rows = panel.runner(0.0, 120.0)
        assert rows
        assert rows[0]["n"] >= rows[-1]["n"]


class TestDashboard:
    def test_duplicate_panel_rejected(self, clock):
        dashboard = Dashboard("d", 60.0, clock=clock)
        panel = DashboardPanel("p", lambda s, e: [], backend="scuba")
        dashboard.add_panel(panel)
        with pytest.raises(ConfigError):
            dashboard.add_panel(panel)

    def test_dead_panel_detection(self, clock):
        dashboard = Dashboard("d", 60.0, clock=clock)
        dashboard.add_panel(DashboardPanel("hot", lambda s, e: [],
                                           backend="scuba"))
        dashboard.add_panel(DashboardPanel("cold", lambda s, e: [],
                                           backend="scuba"))
        clock.advance(1000.0)
        dashboard.view("hot")
        assert dashboard.dead_panels(idle_seconds=500.0) == ["cold"]

    def test_view_unknown_panel_raises(self, clock):
        dashboard = Dashboard("d", 60.0, clock=clock)
        with pytest.raises(ConfigError):
            dashboard.view("ghost")

    def test_refresh_counts(self, clock):
        dashboard = Dashboard("d", 60.0, clock=clock)
        panel = DashboardPanel("p", lambda s, e: [], backend="scuba")
        dashboard.add_panel(panel)
        dashboard.refresh()
        dashboard.refresh()
        assert panel.refresh_count == 2

    def test_invalid_window(self, clock):
        with pytest.raises(ConfigError):
            Dashboard("d", 0.0, clock=clock)
