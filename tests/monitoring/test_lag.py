"""Tests for processing-lag monitoring."""

import pytest

from repro.errors import ConfigError
from repro.monitoring.lag import LagMonitor
from repro.runtime.clock import SimClock
from repro.runtime.scheduler import Scheduler


class FakeConsumer:
    def __init__(self, name, lag=0):
        self.name = name
        self.lag = lag

    def lag_messages(self):
        return self.lag


class TestLagMonitor:
    def test_alert_raised_above_threshold(self, clock):
        monitor = LagMonitor(clock=clock, default_threshold=100)
        consumer = FakeConsumer("app", lag=500)
        monitor.watch(consumer)
        alerts = monitor.sample()
        assert [a.consumer for a in alerts] == ["app"]
        assert monitor.active_alerts() == ["app"]

    def test_no_alert_below_threshold(self, clock):
        monitor = LagMonitor(clock=clock, default_threshold=100)
        monitor.watch(FakeConsumer("app", lag=50))
        assert monitor.sample() == []

    def test_alert_raised_once_until_cleared(self, clock):
        monitor = LagMonitor(clock=clock, default_threshold=100)
        consumer = FakeConsumer("app", lag=500)
        monitor.watch(consumer)
        assert len(monitor.sample()) == 1
        assert monitor.sample() == []  # still alerting, not re-raised

    def test_hysteresis_on_clear(self, clock):
        monitor = LagMonitor(clock=clock, default_threshold=100)
        consumer = FakeConsumer("app", lag=500)
        monitor.watch(consumer)
        monitor.sample()
        consumer.lag = 80  # below threshold but above clear fraction
        monitor.sample()
        assert monitor.active_alerts() == ["app"]
        consumer.lag = 10
        monitor.sample()
        assert monitor.active_alerts() == []

    def test_per_consumer_threshold(self, clock):
        monitor = LagMonitor(clock=clock, default_threshold=100)
        monitor.watch(FakeConsumer("strict", lag=50), threshold=10)
        monitor.watch(FakeConsumer("lenient", lag=50), threshold=1000)
        monitor.sample()
        assert monitor.active_alerts() == ["strict"]

    def test_history_recorded(self, clock):
        monitor = LagMonitor(clock=clock)
        consumer = FakeConsumer("app", lag=5)
        monitor.watch(consumer)
        monitor.sample()
        clock.advance(60.0)
        consumer.lag = 9
        monitor.sample()
        assert monitor.lag_history("app") == [(0.0, 5), (60.0, 9)]
        assert monitor.current_lags() == {"app": 9}

    def test_unwatch(self, clock):
        monitor = LagMonitor(clock=clock)
        monitor.watch(FakeConsumer("app"))
        monitor.unwatch("app")
        assert monitor.current_lags() == {}
        with pytest.raises(ConfigError):
            monitor.lag_history("app")

    def test_scheduled_sampling(self):
        scheduler = Scheduler()
        monitor = LagMonitor(clock=scheduler.clock, default_threshold=10)
        consumer = FakeConsumer("app", lag=100)
        monitor.watch(consumer)
        monitor.schedule_on(scheduler, interval=60.0)
        scheduler.run_until(200.0)
        assert len(monitor.lag_history("app")) == 3

    def test_invalid_threshold(self):
        with pytest.raises(ConfigError):
            LagMonitor(default_threshold=0)
