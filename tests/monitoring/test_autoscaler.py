"""Tests for the lag-driven autoscaler (paper Section 6.4)."""

import pytest

from repro.errors import ConfigError
from repro.monitoring.autoscaler import AutoScaler
from repro.stylus.engine import StylusJob

from tests.stylus.helpers import CountingProcessor


@pytest.fixture
def world(scribe, clock):
    scribe.create_category("in", 2)
    job = StylusJob.create("counter", scribe, "in", CountingProcessor,
                           clock=clock)
    scaler = AutoScaler(scribe, clock=clock, high_lag=100,
                        sustain_samples=2, idle_samples_for_downscale=3,
                        cooldown_seconds=60.0)
    scaler.watch(job)
    return scribe, clock, job, scaler


def backlog(scribe, count):
    for i in range(count):
        scribe.write_record("in", {"event_time": float(i), "seq": i},
                            key=str(i))


class TestScaleUp:
    def test_sustained_lag_doubles_buckets(self, world):
        scribe, clock, job, scaler = world
        backlog(scribe, 1000)
        assert scaler.sample() == []   # first high sample: not sustained
        clock.advance(30.0)
        actions = scaler.sample()      # second: scale up
        assert len(actions) == 1
        assert actions[0].kind == "scale_up"
        assert scribe.category("in").num_buckets == 4
        assert len(job.tasks) == 4

    def test_new_tasks_consume_new_buckets(self, world):
        scribe, clock, job, scaler = world
        backlog(scribe, 1000)
        scaler.sample()
        scaler.sample()
        # New writes spread over 4 buckets; all tasks make progress.
        backlog(scribe, 400)
        assert job.pump(100_000) == 1400
        assert job.lag_messages() == 0

    def test_cooldown_blocks_rapid_rescaling(self, world):
        scribe, clock, job, scaler = world
        backlog(scribe, 1000)
        scaler.sample()
        scaler.sample()  # scaled to 4
        scaler.sample()
        scaler.sample()  # still within cooldown
        assert scribe.category("in").num_buckets == 4
        clock.advance(120.0)
        scaler.sample()
        scaler.sample()
        assert scribe.category("in").num_buckets == 8

    def test_max_buckets_cap(self, scribe, clock):
        scribe.create_category("capped", 4)
        job = StylusJob.create("j", scribe, "capped", CountingProcessor,
                               clock=clock)
        scaler = AutoScaler(scribe, clock=clock, high_lag=1,
                            sustain_samples=1, cooldown_seconds=0.0,
                            max_buckets=4)
        scaler.watch(job)
        for i in range(10):
            scribe.write_record("capped", {"event_time": float(i)})
        assert scaler.sample() == []  # already at the cap
        assert scribe.category("capped").num_buckets == 4


class TestScaleDownRecommendation:
    def test_sustained_idle_recommends_downscale(self, world):
        scribe, clock, job, scaler = world
        for _ in range(3):
            clock.advance(30.0)
            actions = scaler.sample()
        assert actions
        assert actions[0].kind == "recommend_scale_down"
        # Recommendation only: the bucket count is untouched.
        assert scribe.category("in").num_buckets == 2
        assert scaler.recommendations()

    def test_single_bucket_never_recommended_down(self, scribe, clock):
        scribe.create_category("tiny", 1)
        job = StylusJob.create("j", scribe, "tiny", CountingProcessor,
                               clock=clock)
        scaler = AutoScaler(scribe, clock=clock,
                            idle_samples_for_downscale=1,
                            cooldown_seconds=0.0)
        scaler.watch(job)
        assert scaler.sample() == []


class TestHysteresis:
    def test_moderate_lag_resets_both_counters(self, world):
        scribe, clock, job, scaler = world
        backlog(scribe, 1000)
        scaler.sample()                   # high sample 1
        job.pump(950)                     # lag drops to 50: moderate
        clock.advance(30.0)
        scaler.sample()                   # resets the high counter
        backlog(scribe, 1000)
        clock.advance(30.0)
        assert scaler.sample() == []      # needs 2 sustained again

    def test_invalid_config(self, scribe):
        with pytest.raises(ConfigError):
            AutoScaler(scribe, high_lag=0)


class TestPumaAppScaling:
    """Section 6.4's wish covers 'both Puma and Stylus apps'."""

    def test_puma_app_scales_up(self, scribe, clock):
        from repro.puma.app import PumaApp
        from repro.puma.parser import parse
        from repro.puma.planner import plan
        from repro.storage.hbase import HBaseTable

        source = """
        CREATE APPLICATION scaled;
        CREATE INPUT TABLE t(event_time, x) FROM SCRIBE("wide")
        TIME event_time;
        CREATE TABLE c AS SELECT count(*) AS n FROM t [1 minute];
        """
        scribe.create_category("wide", 2)
        app = PumaApp(plan(parse(source)), scribe, HBaseTable("s"),
                      clock=clock)
        scaler = AutoScaler(scribe, clock=clock, high_lag=100,
                            sustain_samples=1, cooldown_seconds=0.0)
        scaler.watch(app)
        for i in range(500):
            scribe.write_record("wide", {"event_time": float(i), "x": i},
                                key=str(i))
        actions = scaler.sample()
        assert actions and actions[0].kind == "scale_up"
        assert scribe.category("wide").num_buckets == 4
        # New writes spread over 4 buckets; the app consumes all of them.
        for i in range(100):
            scribe.write_record("wide", {"event_time": 600.0 + i, "x": i},
                                key=f"n{i}")
        assert app.pump(10_000) == 600
        assert app.lag_messages() == 0
        rows = app.query("c")
        assert sum(r["n"] for r in rows) == 600


class TestTopologyMode:
    """Watched with a topology, decisions drive the shard count live."""

    @pytest.fixture
    def sharded(self, scribe, clock):
        from repro.runtime.cluster import Cluster
        from repro.runtime.metrics import MetricsRegistry
        from repro.runtime.topology import (ShardedTopology,
                                            stylus_worker_factory)
        from repro.storage.backup import BackupEngine
        from repro.storage.hdfs import HdfsBlobStore

        scribe.create_category("sharded", 8)
        cluster = Cluster()
        for i in range(4):
            cluster.add_machine(f"m{i}")
        factory = stylus_worker_factory(
            scribe, "sharded", CountingProcessor,
            BackupEngine(HdfsBlobStore(clock=clock)),
            state_prefix="t", clock=clock)
        topology = ShardedTopology("t", cluster, scribe, "sharded", 2,
                                   factory)
        metrics = MetricsRegistry()
        scaler = AutoScaler(scribe, clock=clock, high_lag=100,
                            sustain_samples=2, idle_samples_for_downscale=3,
                            cooldown_seconds=60.0, metrics=metrics)
        scaler.watch(topology, topology=topology)
        return topology, scaler, metrics

    def feed(self, scribe, count):
        for i in range(count):
            scribe.write_record("sharded", {"event_time": float(i),
                                            "seq": i}, key=str(i))

    def test_sustained_lag_splits_shards(self, sharded, scribe, clock):
        topology, scaler, metrics = sharded
        self.feed(scribe, 1000)
        assert scaler.sample() == []
        clock.advance(30.0)
        actions = scaler.sample()
        assert [a.kind for a in actions] == ["scale_up"]
        assert (actions[0].old_buckets, actions[0].new_buckets) == (2, 4)
        assert topology.num_shards == 4
        # The Scribe bucket count is the fixed substrate in this mode.
        assert scribe.category("sharded").num_buckets == 8
        topology.drain()
        assert topology.lag_messages() == 0

    def test_sustained_idle_actually_merges(self, sharded, scribe, clock):
        topology, scaler, metrics = sharded
        topology.rebalance(4)
        for _ in range(3):
            clock.advance(30.0)
            actions = scaler.sample()
        assert [a.kind for a in actions] == ["scale_down"]
        assert topology.num_shards == 2

    def test_scale_up_caps_at_bucket_count(self, sharded, scribe, clock):
        topology, scaler, metrics = sharded
        topology.rebalance(8)  # == num_buckets
        self.feed(scribe, 1000)
        scaler.sample()
        clock.advance(30.0)
        assert scaler.sample() == []  # nowhere to grow
        assert topology.num_shards == 8

    def test_decision_mid_rebalance_is_deferred_not_dropped(
            self, sharded, scribe, clock):
        topology, scaler, metrics = sharded
        self.feed(scribe, 1000)
        scaler.sample()
        clock.advance(30.0)
        mid_actions = []

        def hook(phase):
            # A scheduler tick lands while the handoff is in flight: the
            # second sustained-high sample decides to scale up but the
            # topology is busy.
            mid_actions.extend(scaler.sample())

        topology.rebalance_fault_hook = hook
        topology.rebalance(4)  # operator-initiated split
        topology.rebalance_fault_hook = None
        assert mid_actions == []
        assert metrics.snapshot()["autoscaler.deferred"] == 1
        assert topology.num_shards == 4
        # The parked decision applies on the first free sample, before
        # any fresh lag reading.
        actions = scaler.sample()
        assert [a.kind for a in actions] == ["scale_up"]
        assert topology.num_shards == 8

    def test_deferred_merge_is_a_no_op_at_one_shard(
            self, sharded, scribe, clock):
        topology, scaler, metrics = sharded
        # Two idle samples: one short of the downscale decision.
        for _ in range(2):
            clock.advance(30.0)
            assert scaler.sample() == []

        def hook(phase):
            # The third idle sample fires mid-merge: the scale_down
            # decision is due but the topology is busy, so it parks.
            assert scaler.sample() == []

        topology.rebalance_fault_hook = hook
        topology.rebalance(1)  # operator merges to 1 shard meanwhile
        topology.rebalance_fault_hook = None
        assert metrics.snapshot()["autoscaler.deferred"] == 1
        # Applying the parked merge would halve 1 -> max(1, 0): nothing
        # to do, so the deferral dissolves without an action.
        assert scaler.sample() == []
        assert topology.num_shards == 1

    def test_stale_deferred_split_is_discarded_once_lag_drains(
            self, sharded, scribe, clock):
        """Regression: a scale_up parked during a rebalance used to be
        applied on the first free sample even when the backlog that
        justified it had been fully drained in the meantime — splitting
        an idle topology and immediately queueing the merge back."""
        topology, scaler, metrics = sharded
        self.feed(scribe, 1000)
        scaler.sample()
        clock.advance(30.0)

        def hook(phase):
            scaler.sample()  # the sustained-high sample lands mid-handoff

        topology.rebalance_fault_hook = hook
        topology.rebalance(4)
        topology.rebalance_fault_hook = None
        assert metrics.snapshot()["autoscaler.deferred"] == 1
        # The 4-shard topology drains the whole backlog before the next
        # autoscaler tick: the parked split is now pointless.
        topology.drain()
        assert topology.lag_messages() == 0
        assert scaler.sample() == []
        assert topology.num_shards == 4
        assert metrics.snapshot()["autoscaler.deferred_stale"] == 1

    def test_stale_deferred_merge_is_discarded_once_traffic_returns(
            self, sharded, scribe, clock):
        topology, scaler, metrics = sharded
        # Two idle samples, then the third (deciding) one lands mid-merge.
        for _ in range(2):
            clock.advance(30.0)
            assert scaler.sample() == []

        def hook(phase):
            assert scaler.sample() == []

        topology.rebalance_fault_hook = hook
        topology.rebalance(4)  # operator-initiated reshape
        topology.rebalance_fault_hook = None
        assert metrics.snapshot()["autoscaler.deferred"] == 1
        # Traffic comes back before the next sample: merging now would
        # shrink a topology that is busy again.
        self.feed(scribe, 50)
        assert scaler.sample() == []
        assert topology.num_shards == 4
        assert metrics.snapshot()["autoscaler.deferred_stale"] == 1


class TestRecommendationDoesNotConsumeCooldown:
    def test_scale_up_right_after_a_recommendation(self, world):
        scribe, clock, job, scaler = world
        # Three idle samples produce a no-op scale-down recommendation.
        for _ in range(3):
            clock.advance(30.0)
            actions = scaler.sample()
        assert actions[0].kind == "recommend_scale_down"
        # Traffic spikes immediately afterwards. The recommendation
        # changed nothing, so it must not have started the cooldown:
        # the real scale-up fires as soon as the lag is sustained.
        backlog(scribe, 1000)
        clock.advance(20.0)
        scaler.sample()                  # high sample 1 (not sustained)
        clock.advance(20.0)              # still inside a would-be cooldown
        actions = scaler.sample()        # high sample 2: scale up
        assert [a.kind for a in actions] == ["scale_up"]
        assert scribe.category("in").num_buckets == 4
