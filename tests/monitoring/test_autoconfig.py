"""Tests for auto-configured monitoring (paper Section 6.4)."""

from repro.monitoring.autoconfig import auto_monitor
from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.storage.hbase import HBaseTable
from repro.stylus.engine import StylusJob

from tests.stylus.helpers import CountingProcessor

PQL = """
CREATE APPLICATION puma_app;
CREATE INPUT TABLE t(event_time, x) FROM SCRIBE("cat") TIME event_time;
CREATE TABLE c AS SELECT count(*) AS n FROM t [1 minute];
"""


def build_apps(scribe, clock):
    scribe.create_category("cat", 2)
    puma = PumaApp(plan(parse(PQL)), scribe, HBaseTable("s"), clock=clock)
    stylus = StylusJob.create("stylus_job", scribe, "cat", CountingProcessor,
                              clock=clock)
    return puma, stylus


class TestAutoMonitor:
    def test_watches_both_puma_and_stylus(self, scribe, clock):
        puma, stylus = build_apps(scribe, clock)
        monitor, dashboard = auto_monitor([puma, stylus], clock,
                                          lag_threshold=5)
        assert set(monitor.current_lags()) == {"puma_app", "stylus_job"}
        assert sorted(p.name for p in dashboard.panels()) == [
            "lag:puma_app", "lag:stylus_job",
        ]

    def test_alerts_fire_for_lagging_apps(self, scribe, clock):
        puma, stylus = build_apps(scribe, clock)
        monitor, _ = auto_monitor([puma, stylus], clock, lag_threshold=5)
        for i in range(20):
            scribe.write_record("cat", {"event_time": float(i), "x": i},
                                key=str(i))
        alerts = monitor.sample()
        assert sorted(a.consumer for a in alerts) == ["puma_app",
                                                      "stylus_job"]
        puma.pump()
        stylus.pump()
        monitor.sample()
        assert monitor.active_alerts() == []

    def test_dashboard_panels_serve_lag_history(self, scribe, clock):
        puma, stylus = build_apps(scribe, clock)
        monitor, dashboard = auto_monitor([puma, stylus], clock)
        for i in range(3):
            scribe.write_record("cat", {"event_time": float(i), "x": i})
        monitor.sample()
        clock.advance(60.0)
        monitor.sample()
        results = dashboard.refresh()
        history = results["lag:puma_app"]
        assert len(history) == 2
        assert history[0]["lag"] == 3
