"""Shared fixtures: a simulated clock, a Scribe store, and helpers."""

from __future__ import annotations

import pytest

from repro.runtime.clock import SimClock
from repro.runtime.metrics import MetricsRegistry
from repro.scribe.store import ScribeStore


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def scribe(clock: SimClock) -> ScribeStore:
    """A Scribe deployment on the simulated clock, zero delivery delay."""
    return ScribeStore(clock=clock)


@pytest.fixture
def metrics() -> MetricsRegistry:
    return MetricsRegistry()


def write_events(scribe: ScribeStore, category: str, count: int,
                 start_time: float = 0.0, spacing: float = 1.0,
                 **extra) -> None:
    """Write ``count`` simple records with increasing event times."""
    for i in range(count):
        record = {"event_time": start_time + i * spacing, "seq": i}
        record.update(extra)
        scribe.write_record(category, record, key=str(i))
