"""Tests for HyperLogLog and SpaceSaving sketches."""

import pytest

from repro.analysis.hll import HyperLogLog
from repro.analysis.topk import SpaceSaving
from repro.errors import ConfigError


class TestHyperLogLog:
    def test_empty_estimates_zero(self):
        assert HyperLogLog().cardinality() == pytest.approx(0.0, abs=1.0)

    def test_small_cardinalities_are_near_exact(self):
        sketch = HyperLogLog()
        for i in range(100):
            sketch.add(f"user{i}")
        assert abs(len(sketch) - 100) <= 2

    def test_large_cardinality_within_error_bound(self):
        sketch = HyperLogLog(precision=12)
        true_count = 50_000
        sketch.add_all(f"item-{i}" for i in range(true_count))
        estimate = sketch.cardinality()
        assert abs(estimate - true_count) / true_count < 4 * sketch.relative_error()

    def test_duplicates_do_not_inflate(self):
        sketch = HyperLogLog()
        for _ in range(10):
            sketch.add_all(f"u{i}" for i in range(500))
        assert abs(len(sketch) - 500) / 500 < 0.1

    def test_merge_is_union(self):
        left, right = HyperLogLog(), HyperLogLog()
        left.add_all(f"a{i}" for i in range(1000))
        right.add_all(f"a{i}" for i in range(500, 1500))
        merged = left.merge(right)
        assert abs(merged.cardinality() - 1500) / 1500 < 0.1

    def test_merge_requires_same_precision(self):
        with pytest.raises(ConfigError):
            HyperLogLog(10).merge(HyperLogLog(12))

    def test_state_round_trip(self):
        sketch = HyperLogLog()
        sketch.add_all(range(100))
        restored = HyperLogLog.from_state(sketch.to_state())
        assert restored.cardinality() == sketch.cardinality()

    def test_invalid_precision(self):
        with pytest.raises(ConfigError):
            HyperLogLog(precision=3)

    def test_copy_is_independent(self):
        sketch = HyperLogLog()
        sketch.add("a")
        clone = sketch.copy()
        clone.add_all(range(100))
        assert sketch.cardinality() < clone.cardinality()


class TestSpaceSaving:
    def test_exact_below_capacity(self):
        sketch = SpaceSaving(capacity=10)
        for key, count in [("a", 5), ("b", 3), ("c", 1)]:
            for _ in range(count):
                sketch.add(key)
        assert sketch.top(2) == [("a", 5.0), ("b", 3.0)]
        assert sketch.count("a") == 5.0
        assert sketch.guaranteed("a") == 5.0

    def test_heavy_hitters_survive_eviction(self):
        sketch = SpaceSaving(capacity=10)
        for i in range(1000):
            sketch.add(f"noise{i}")     # unique noise
            if i % 2 == 0:
                sketch.add("heavy")       # 500 occurrences
        top_keys = [k for k, _ in sketch.top(3)]
        assert "heavy" in top_keys
        assert sketch.count("heavy") >= 500

    def test_counts_are_upper_bounds(self):
        sketch = SpaceSaving(capacity=2)
        for key in ["a", "b", "c", "d"]:
            sketch.add(key)
        for key, estimate in sketch.top(2):
            assert estimate >= 1.0
            assert sketch.guaranteed(key) <= estimate

    def test_total_counts_everything(self):
        sketch = SpaceSaving(capacity=2)
        for key in ["a", "b", "c", "d"]:
            sketch.add(key, weight=2.0)
        assert sketch.total == 8.0

    def test_merge_sums_shared_keys(self):
        left, right = SpaceSaving(10), SpaceSaving(10)
        for _ in range(5):
            left.add("x")
        for _ in range(3):
            right.add("x")
            right.add("y")
        merged = left.merge(right)
        assert merged.count("x") == 8.0
        assert merged.count("y") == 3.0
        assert merged.total == 11.0

    def test_state_round_trip(self):
        sketch = SpaceSaving(5)
        for key in ["a", "a", "b"]:
            sketch.add(key)
        restored = SpaceSaving.from_state(sketch.to_state())
        assert restored.top(2) == sketch.top(2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)
        with pytest.raises(ValueError):
            SpaceSaving(1).add("a", weight=-1.0)
