"""Tests for the resource cost model."""

import pytest

from repro.core.costs import CostModel, ResourceTimeline
from repro.errors import ConfigError


class TestCostModel:
    def test_defaults_are_valid(self):
        model = CostModel()
        assert model.cpu_per_event == (model.deserialize_per_event
                                       + model.process_per_event)

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(receive_per_event=-1.0)
        with pytest.raises(ConfigError):
            CostModel(event_bytes=0)


class TestResourceTimeline:
    def test_charges_accumulate_serially_per_resource(self):
        timeline = ResourceTimeline()
        assert timeline.charge("cpu", 1.0) == 1.0
        assert timeline.charge("cpu", 2.0) == 3.0
        assert timeline.elapsed() == 3.0

    def test_resources_run_concurrently(self):
        timeline = ResourceTimeline()
        timeline.charge("receive", 5.0)
        timeline.charge("cpu", 2.0)
        assert timeline.elapsed() == 5.0  # max, not sum

    def test_not_before_models_dependencies(self):
        timeline = ResourceTimeline()
        received_at = timeline.charge("receive", 2.0)
        finished = timeline.charge("cpu", 1.0, not_before=received_at)
        assert finished == 3.0

    def test_barrier_synchronizes(self):
        timeline = ResourceTimeline()
        timeline.charge("receive", 4.0)
        timeline.charge("cpu", 1.0)
        frontier = timeline.barrier("receive", "cpu")
        assert frontier == 4.0
        assert timeline.charge("cpu", 1.0) == 5.0

    def test_utilization(self):
        timeline = ResourceTimeline()
        timeline.charge("receive", 10.0)
        timeline.charge("cpu", 5.0)
        assert timeline.utilization("cpu") == pytest.approx(0.5)
        assert timeline.utilization("receive") == pytest.approx(1.0)

    def test_empty_timeline(self):
        timeline = ResourceTimeline()
        assert timeline.elapsed() == 0.0
        assert timeline.utilization("cpu") == 0.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ConfigError):
            ResourceTimeline().charge("cpu", -1.0)


class TestOverlapVersusPhased:
    """The mechanism behind Figure 9, in miniature."""

    def test_overlap_beats_phased(self):
        events = 1000
        receive, cpu = 2e-6, 3e-6

        overlapped = ResourceTimeline()
        for _ in range(events):
            done = overlapped.charge("receive", receive)
            overlapped.charge("cpu", cpu, not_before=done)

        phased = ResourceTimeline()
        for _ in range(events):
            phased.charge("receive", receive)
        phased.barrier("receive", "cpu")
        for _ in range(events):
            phased.charge("cpu", cpu)

        assert overlapped.elapsed() < phased.elapsed()
        # overlapped is bounded by the slower resource, phased by the sum
        assert overlapped.elapsed() == pytest.approx(
            receive + events * cpu, rel=0.01
        )
        assert phased.elapsed() == pytest.approx(
            events * (receive + cpu), rel=0.01
        )
