"""Tests for DAG composition and execution."""

import pytest

from repro.core.dag import Dag
from repro.errors import DagError


class WorkNode:
    """A fake node that does a fixed amount of work then stops."""

    def __init__(self, name, work=1):
        self.name = name
        self.work = work
        self.pumps = 0

    def pump(self, max_messages=1000):
        self.pumps += 1
        done, self.work = self.work, 0
        return done


class TestStructure:
    def test_topological_order_respects_categories(self):
        dag = Dag()
        dag.add(WorkNode("sink"), reads=["s2"])
        dag.add(WorkNode("source"), writes=["s1"])
        dag.add(WorkNode("middle"), reads=["s1"], writes=["s2"])
        order = [n.name for n in dag.topological_order()]
        assert order.index("source") < order.index("middle") < order.index("sink")

    def test_duplicate_node_rejected(self):
        dag = Dag()
        dag.add(WorkNode("a"))
        with pytest.raises(DagError):
            dag.add(WorkNode("a"))

    def test_cycle_rejected_and_rolled_back(self):
        dag = Dag()
        dag.add(WorkNode("a"), reads=["s2"], writes=["s1"])
        with pytest.raises(DagError):
            dag.add(WorkNode("b"), reads=["s1"], writes=["s2"])
        assert [n.name for n in dag.nodes()] == ["a"]

    def test_fan_out_edges(self):
        dag = Dag()
        dag.add(WorkNode("producer"), writes=["s"])
        dag.add(WorkNode("consumer1"), reads=["s"])
        dag.add(WorkNode("consumer2"), reads=["s"])
        edges = set(dag.edges())
        assert edges == {("producer", "consumer1"), ("producer", "consumer2")}

    def test_disconnected_nodes_allowed(self):
        dag = Dag()
        dag.add(WorkNode("a"))
        dag.add(WorkNode("b"))
        assert len(dag.topological_order()) == 2


class TestExecution:
    def test_run_until_quiescent_sums_work(self):
        dag = Dag()
        dag.add(WorkNode("a", work=3), writes=["s"])
        dag.add(WorkNode("b", work=2), reads=["s"])
        assert dag.run_until_quiescent() == 5

    def test_runaway_dag_detected(self):
        class Forever(WorkNode):
            def pump(self, max_messages=1000):
                return 1

        dag = Dag()
        dag.add(Forever("loop"))
        with pytest.raises(DagError):
            dag.run_until_quiescent(max_rounds=10)

    def test_schedule_on_pumps_periodically(self):
        from repro.runtime.scheduler import Scheduler

        scheduler = Scheduler()
        node = WorkNode("a", work=1)
        dag = Dag()
        dag.add(node)
        dag.schedule_on(scheduler, interval=5.0)
        scheduler.run_until(16.0)
        assert node.pumps == 3
