"""Tests for window assignment."""

import pytest

from repro.core.windows import SlidingWindow, TumblingWindow, Window
from repro.errors import ConfigError


class TestTumblingWindow:
    def test_alignment(self):
        assigner = TumblingWindow(300.0)
        window = assigner.window_containing(601.0)
        assert window.start == 600.0
        assert window.end == 900.0
        assert window.contains(601.0)

    def test_boundaries_are_half_open(self):
        assigner = TumblingWindow(10.0)
        assert assigner.window_containing(10.0).start == 10.0
        assert assigner.window_containing(9.999).start == 0.0

    def test_assign_returns_exactly_one(self):
        assert len(TumblingWindow(5.0).assign(7.3)) == 1

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigError):
            TumblingWindow(0)


class TestSlidingWindow:
    def test_event_in_all_overlapping_windows(self):
        assigner = SlidingWindow(size=300.0, slide=60.0)
        windows = assigner.assign(601.0)
        assert len(windows) == 5
        assert all(w.contains(601.0) for w in windows)
        starts = [w.start for w in windows]
        assert starts == sorted(starts)

    def test_slide_equal_to_size_is_tumbling(self):
        assigner = SlidingWindow(size=10.0, slide=10.0)
        assert len(assigner.assign(25.0)) == 1

    def test_slide_larger_than_size_rejected(self):
        with pytest.raises(ConfigError):
            SlidingWindow(size=10.0, slide=20.0)

    def test_window_containing_is_newest(self):
        assigner = SlidingWindow(size=300.0, slide=60.0)
        assert assigner.window_containing(601.0).start == 600.0


class TestWindow:
    def test_length(self):
        assert Window(10.0, 25.0).length == 15.0
