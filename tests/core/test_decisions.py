"""Tests for the Tables 4 & 5 registries."""

from repro.core.decisions import (
    DECISION_MATRIX,
    SYSTEM_DECISIONS,
    DesignDecision,
    Quality,
    decision_matrix_rows,
    system_decision_rows,
    systems_using,
)


class TestDecisionMatrix:
    def test_every_decision_present(self):
        assert set(DECISION_MATRIX) == set(DesignDecision)

    def test_paper_row_state_saving_affects_everything(self):
        affected = DECISION_MATRIX[DesignDecision.STATE_SAVING_MECHANISM]
        assert affected == frozenset(Quality)

    def test_paper_row_language_paradigm(self):
        affected = DECISION_MATRIX[DesignDecision.LANGUAGE_PARADIGM]
        assert affected == {Quality.EASE_OF_USE, Quality.PERFORMANCE}

    def test_rows_render_in_paper_order(self):
        rows = decision_matrix_rows()
        assert [r[0] for r in rows] == [
            "Language paradigm", "Data transfer", "Processing semantics",
            "State-saving mechanism", "Reprocessing",
        ]


class TestSystemDecisions:
    def test_all_nine_systems(self):
        assert len(SYSTEM_DECISIONS) == 9

    def test_facebook_systems_use_scribe(self):
        assert systems_using("Scribe") == ["Puma", "Stylus", "Swift"]

    def test_samza_uses_kafka(self):
        assert SYSTEM_DECISIONS["Samza"].data_transfer == "Kafka"

    def test_stylus_supports_all_three_semantics(self):
        assert set(SYSTEM_DECISIONS["Stylus"].processing_semantics) == {
            "at least", "at most", "exactly",
        }

    def test_rows_render_in_paper_column_order(self):
        names = [row[0] for row in system_decision_rows()]
        assert names == ["Puma", "Stylus", "Swift", "Storm", "Heron",
                         "Spark Streaming", "Millwheel", "Flink", "Samza"]

    def test_puma_row_matches_paper(self):
        row = system_decision_rows()[0]
        assert row == ("Puma", "SQL", "Scribe", "at least",
                       "remote DB", "same code")
