"""Tests for the event model."""

import pytest

from repro.core.event import Event
from repro.errors import ProcessingError
from repro.scribe.message import Message
from repro import serde


class TestEvent:
    def test_field_access(self):
        event = Event(1.5, {"a": 1})
        assert event["a"] == 1
        assert event.get("b") is None
        assert event.get("b", 7) == 7
        assert "a" in event and "b" not in event

    def test_missing_field_raises(self):
        with pytest.raises(ProcessingError):
            Event(0.0, {})["missing"]

    def test_with_fields_is_a_copy(self):
        original = Event(1.0, {"a": 1})
        updated = original.with_fields(b=2, a=9)
        assert updated.fields == {"a": 9, "b": 2}
        assert original.fields == {"a": 1}
        assert updated.event_time == 1.0

    def test_record_round_trip(self):
        event = Event(2.5, {"x": "y"})
        assert Event.from_record(event.to_record()) == event

    def test_from_record_requires_time_field(self):
        with pytest.raises(ProcessingError):
            Event.from_record({"x": 1})

    def test_custom_time_field(self):
        event = Event.from_record({"ts": 9.0, "v": 1}, time_field="ts")
        assert event.event_time == 9.0
        assert event.fields == {"v": 1}

    def test_from_message(self):
        payload = serde.encode({"event_time": 3.0, "v": 2})
        message = Message("cat", 0, 0, 10.0, payload)
        event = Event.from_message(message)
        assert event.event_time == 3.0  # event time, not write time
        assert event["v"] == 2
