"""Tests for sharding and reshard planning."""

import pytest

from repro.core.sharding import Resharder, ShardAssignment, shard_for_key
from repro.errors import ConfigError


class TestShardForKey:
    def test_stable_and_in_range(self):
        for i in range(100):
            shard = shard_for_key(f"k{i}", 16)
            assert shard == shard_for_key(f"k{i}", 16)
            assert 0 <= shard < 16

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigError):
            shard_for_key("k", 0)


class TestShardAssignment:
    def test_partition_of_buckets(self):
        assignment = ShardAssignment(num_buckets=16, num_processes=5)
        all_buckets = []
        for process in range(5):
            all_buckets.extend(assignment.buckets_for(process))
        assert sorted(all_buckets) == list(range(16))

    def test_balance_within_one(self):
        assignment = ShardAssignment(num_buckets=16, num_processes=5)
        low, high = assignment.balance()
        assert high - low <= 1

    def test_process_for_is_inverse(self):
        assignment = ShardAssignment(num_buckets=12, num_processes=4)
        for bucket in range(12):
            process = assignment.process_for(bucket)
            assert bucket in assignment.buckets_for(process)

    def test_out_of_range_rejected(self):
        assignment = ShardAssignment(4, 2)
        with pytest.raises(ConfigError):
            assignment.buckets_for(2)
        with pytest.raises(ConfigError):
            assignment.process_for(4)


class TestResharder:
    def test_plan_lists_only_moved_keys(self):
        resharder = Resharder(4, 8)
        keys = [f"k{i}" for i in range(200)]
        plan = resharder.plan(keys)
        for key, (old, new) in plan.items():
            assert old != new
            assert shard_for_key(key, 4) == old
            assert shard_for_key(key, 8) == new

    def test_doubling_moves_about_half(self):
        resharder = Resharder(4, 8)
        keys = [f"key{i}" for i in range(2000)]
        fraction = resharder.moved_fraction(keys)
        assert 0.4 < fraction < 0.6

    def test_same_count_moves_nothing(self):
        resharder = Resharder(8, 8)
        assert resharder.moved_fraction([f"k{i}" for i in range(50)]) == 0.0

    def test_empty_keys(self):
        assert Resharder(2, 4).moved_fraction([]) == 0.0
