"""Tests for sharding and reshard planning."""

import pytest

from repro.core.sharding import (HashRing, Resharder, ShardAssignment,
                                 shard_for_key, shards_for_keys)
from repro.errors import ConfigError


class TestShardForKey:
    def test_stable_and_in_range(self):
        for i in range(100):
            shard = shard_for_key(f"k{i}", 16)
            assert shard == shard_for_key(f"k{i}", 16)
            assert 0 <= shard < 16

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigError):
            shard_for_key("k", 0)


class TestShardAssignment:
    def test_partition_of_buckets(self):
        assignment = ShardAssignment(num_buckets=16, num_processes=5)
        all_buckets = []
        for process in range(5):
            all_buckets.extend(assignment.buckets_for(process))
        assert sorted(all_buckets) == list(range(16))

    def test_balance_within_one(self):
        assignment = ShardAssignment(num_buckets=16, num_processes=5)
        low, high = assignment.balance()
        assert high - low <= 1

    def test_process_for_is_inverse(self):
        assignment = ShardAssignment(num_buckets=12, num_processes=4)
        for bucket in range(12):
            process = assignment.process_for(bucket)
            assert bucket in assignment.buckets_for(process)

    def test_out_of_range_rejected(self):
        assignment = ShardAssignment(4, 2)
        with pytest.raises(ConfigError):
            assignment.buckets_for(2)
        with pytest.raises(ConfigError):
            assignment.process_for(4)


class TestShardsForKeys:
    def test_matches_scalar_helper(self):
        keys = [f"user{i}" for i in range(500)]
        assert shards_for_keys(keys, 16) == \
            [shard_for_key(key, 16) for key in keys]

    def test_empty_batch(self):
        assert shards_for_keys([], 4) == []

    def test_invalid_count_rejected_once(self):
        with pytest.raises(ConfigError):
            shards_for_keys(["k"], 0)


class TestShardAssignmentEdgeCases:
    def test_fewer_buckets_than_processes(self):
        # 3 buckets over 5 processes: two processes legitimately idle.
        assignment = ShardAssignment(num_buckets=3, num_processes=5)
        owned = [assignment.buckets_for(p) for p in range(5)]
        assert sorted(b for buckets in owned for b in buckets) == [0, 1, 2]
        assert sum(1 for buckets in owned if not buckets) == 2
        low, high = assignment.balance()
        assert (low, high) == (0, 1)

    def test_single_bucket_single_process(self):
        assignment = ShardAssignment(1, 1)
        assert assignment.buckets_for(0) == [0]
        assert assignment.process_for(0) == 0

    def test_assignment_stable_under_process_restart(self):
        # An assignment is a pure function of (buckets, processes): a
        # process that restarts recomputes it and gets its old buckets.
        before = ShardAssignment(16, 5)
        after = ShardAssignment(16, 5)
        for process in range(5):
            assert before.buckets_for(process) == after.buckets_for(process)


class TestHashRing:
    def test_assignment_covers_every_bucket(self):
        ring = HashRing(["s0", "s1", "s2"])
        assignment = ring.assign_buckets(64)
        assert sorted(assignment) == list(range(64))
        assert set(assignment.values()) <= {"s0", "s1", "s2"}

    def test_deterministic_across_instances(self):
        first = HashRing(["a", "b", "c"], replicas=32).assign_buckets(40)
        second = HashRing(["c", "a", "b"], replicas=32).assign_buckets(40)
        assert first == second  # node *set* decides, not insertion order

    def test_remove_moves_only_the_removed_nodes_buckets(self):
        ring = HashRing(["a", "b", "c"])
        with_c = ring.assign_buckets(64)
        ring.remove_node("c")
        without_c = ring.assign_buckets(64)
        for bucket in range(64):
            if with_c[bucket] != "c":
                assert without_c[bucket] == with_c[bucket]
            else:
                assert without_c[bucket] in {"a", "b"}

    def test_stable_under_node_restart(self):
        # A node that leaves and rejoins gets exactly its old buckets —
        # the property that makes shard-process restarts cheap.
        ring = HashRing(["a", "b", "c", "d"])
        before = ring.assign_buckets(64)
        ring.remove_node("b")
        ring.add_node("b")
        assert ring.assign_buckets(64) == before

    def test_add_moves_roughly_one_over_n(self):
        ring = HashRing([f"s{i}" for i in range(4)], replicas=128)
        before = ring.assign_buckets(256)
        ring.add_node("s4")
        after = ring.assign_buckets(256)
        moved = sum(1 for b in range(256) if before[b] != after[b])
        # The newcomer should take ~1/5 of the buckets; far less means it
        # is starved, far more means unrelated buckets churned.
        assert 256 * 0.08 < moved < 256 * 0.40
        for bucket in range(256):
            if before[bucket] != after[bucket]:
                assert after[bucket] == "s4"  # only moves *to* the new node

    def test_duplicate_and_missing_nodes_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ConfigError):
            ring.add_node("a")
        with pytest.raises(ConfigError):
            ring.remove_node("zz")

    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(ConfigError):
            HashRing().node_for_key("k")

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            HashRing(replicas=0)
        with pytest.raises(ConfigError):
            HashRing(["a"]).assign_buckets(0)


class TestResharder:
    def test_plan_lists_only_moved_keys(self):
        resharder = Resharder(4, 8)
        keys = [f"k{i}" for i in range(200)]
        plan = resharder.plan(keys)
        for key, (old, new) in plan.items():
            assert old != new
            assert shard_for_key(key, 4) == old
            assert shard_for_key(key, 8) == new

    def test_doubling_moves_about_half(self):
        resharder = Resharder(4, 8)
        keys = [f"key{i}" for i in range(2000)]
        fraction = resharder.moved_fraction(keys)
        assert 0.4 < fraction < 0.6

    def test_same_count_moves_nothing(self):
        resharder = Resharder(8, 8)
        assert resharder.moved_fraction([f"k{i}" for i in range(50)]) == 0.0

    def test_empty_keys(self):
        assert Resharder(2, 4).moved_fraction([]) == 0.0
