"""Tests for the semantics lattice (paper Table 8)."""

import pytest

from repro.core.semantics import (
    OutputSemantics,
    SemanticsPolicy,
    StateSemantics,
    common_combinations,
    is_common_combination,
)
from repro.errors import SemanticsError


class TestTable8:
    def test_exactly_five_common_combinations(self):
        assert len(common_combinations()) == 5

    def test_the_paper_grid(self):
        """Reproduce Figure 8 cell by cell."""
        grid = {
            (StateSemantics.AT_LEAST_ONCE, OutputSemantics.AT_LEAST_ONCE): True,
            (StateSemantics.AT_MOST_ONCE, OutputSemantics.AT_LEAST_ONCE): True,
            (StateSemantics.EXACTLY_ONCE, OutputSemantics.AT_LEAST_ONCE): False,
            (StateSemantics.AT_LEAST_ONCE, OutputSemantics.AT_MOST_ONCE): True,
            (StateSemantics.AT_MOST_ONCE, OutputSemantics.AT_MOST_ONCE): True,
            (StateSemantics.EXACTLY_ONCE, OutputSemantics.AT_MOST_ONCE): False,
            (StateSemantics.AT_LEAST_ONCE, OutputSemantics.EXACTLY_ONCE): False,
            (StateSemantics.AT_MOST_ONCE, OutputSemantics.EXACTLY_ONCE): False,
            (StateSemantics.EXACTLY_ONCE, OutputSemantics.EXACTLY_ONCE): True,
        }
        for (state, output), expected in grid.items():
            assert is_common_combination(state, output) == expected


class TestSemanticsPolicy:
    def test_valid_policies_construct(self):
        SemanticsPolicy.at_least_once()
        SemanticsPolicy.at_most_once()
        SemanticsPolicy.exactly_once()

    @pytest.mark.parametrize("state,output", [
        (StateSemantics.EXACTLY_ONCE, OutputSemantics.AT_LEAST_ONCE),
        (StateSemantics.EXACTLY_ONCE, OutputSemantics.AT_MOST_ONCE),
        (StateSemantics.AT_LEAST_ONCE, OutputSemantics.EXACTLY_ONCE),
        (StateSemantics.AT_MOST_ONCE, OutputSemantics.EXACTLY_ONCE),
    ])
    def test_uncommon_combinations_rejected(self, state, output):
        with pytest.raises(SemanticsError):
            SemanticsPolicy(state, output)

    def test_mixed_valid_combination(self):
        policy = SemanticsPolicy(StateSemantics.AT_MOST_ONCE,
                                 OutputSemantics.AT_LEAST_ONCE)
        assert policy.emits_before_checkpoint
        assert not policy.transactional

    def test_emission_timing_flags(self):
        assert SemanticsPolicy.at_least_once().emits_before_checkpoint
        assert SemanticsPolicy.at_most_once().emits_after_checkpoint
        exactly = SemanticsPolicy.exactly_once()
        assert not exactly.emits_before_checkpoint
        assert not exactly.emits_after_checkpoint
        assert exactly.transactional

    def test_describe(self):
        text = SemanticsPolicy.at_most_once().describe()
        assert "at-most-once" in text
