"""Tests for the low-watermark estimators."""

import pytest

from repro.core.watermark import LatenessWatermarkEstimator, WatermarkEstimator
from repro.errors import ConfigError
from repro.runtime.rng import make_rng


class TestWatermarkEstimator:
    def test_empty_estimator_returns_none(self):
        assert WatermarkEstimator().low_watermark() is None
        assert WatermarkEstimator().max_event_time() is None

    def test_watermark_below_max_for_disordered_stream(self):
        estimator = WatermarkEstimator(sample_size=200)
        rng = make_rng(3, "wm")
        for i in range(1000):
            estimator.observe(i - rng.uniform(0, 10))
        assert estimator.low_watermark(0.99) < estimator.max_event_time()

    def test_higher_confidence_gives_lower_watermark(self):
        estimator = WatermarkEstimator(sample_size=500)
        rng = make_rng(4, "wm")
        for i in range(1000):
            estimator.observe(i - rng.uniform(0, 20))
        conservative = estimator.low_watermark(0.99)
        aggressive = estimator.low_watermark(0.5)
        assert conservative <= aggressive

    def test_watermark_is_monotone(self):
        estimator = WatermarkEstimator(sample_size=50)
        rng = make_rng(5, "wm")
        previous = None
        for i in range(500):
            estimator.observe(i - rng.uniform(0, 5))
            mark = estimator.low_watermark(0.95)
            if previous is not None:
                assert mark >= previous
            previous = mark

    def test_sliding_sample_forgets_old_events(self):
        estimator = WatermarkEstimator(sample_size=10)
        for i in range(100):
            estimator.observe(float(i))
        # sample holds [90..99]; the 0.99-confidence mark is near 90.
        assert estimator.low_watermark(0.99) >= 90.0

    def test_observed_counts_everything(self):
        estimator = WatermarkEstimator(sample_size=5)
        for i in range(20):
            estimator.observe(float(i))
        assert estimator.observed == 20

    def test_invalid_confidence_rejected(self):
        estimator = WatermarkEstimator()
        estimator.observe(1.0)
        with pytest.raises(ConfigError):
            estimator.low_watermark(0.0)
        with pytest.raises(ConfigError):
            estimator.low_watermark(1.5)

    def test_invalid_sample_size_rejected(self):
        with pytest.raises(ConfigError):
            WatermarkEstimator(sample_size=0)


class TestLatenessWatermarkEstimator:
    def test_ordered_stream_watermark_is_newest(self):
        estimator = LatenessWatermarkEstimator()
        for i in range(50):
            estimator.observe(float(i))
        assert estimator.low_watermark(0.99) == 49.0

    def test_disordered_stream_subtracts_lateness(self):
        estimator = LatenessWatermarkEstimator()
        rng = make_rng(8, "lateness")
        for i in range(500):
            estimator.observe(i - rng.uniform(0, 10))
        mark = estimator.low_watermark(0.99)
        assert mark < estimator.max_event_time
        assert mark > estimator.max_event_time - 12.0

    def test_higher_confidence_gives_lower_watermark(self):
        estimator = LatenessWatermarkEstimator()
        rng = make_rng(9, "lateness")
        for i in range(500):
            estimator.observe(i - rng.uniform(0, 10))
        assert estimator.low_watermark(0.99) <= estimator.low_watermark(0.5)

    def test_monotone(self):
        estimator = LatenessWatermarkEstimator(sample_size=50)
        rng = make_rng(10, "lateness")
        previous = None
        for i in range(300):
            estimator.observe(i - rng.uniform(0, 5))
            mark = estimator.low_watermark(0.9)
            if previous is not None:
                assert mark >= previous
            previous = mark

    def test_empty_returns_none(self):
        assert LatenessWatermarkEstimator().low_watermark() is None

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            LatenessWatermarkEstimator(sample_size=0)
        estimator = LatenessWatermarkEstimator()
        estimator.observe(1.0)
        with pytest.raises(ConfigError):
            estimator.low_watermark(0.0)
