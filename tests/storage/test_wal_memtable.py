"""Tests for the write-ahead log and the memtable."""

from repro.storage.memtable import EntryKind, Memtable
from repro.storage.wal import WalOp, WriteAheadLog


class TestWriteAheadLog:
    def test_sequence_numbers_are_dense(self):
        wal = WriteAheadLog()
        records = [wal.append(WalOp.PUT, f"k{i}", i) for i in range(5)]
        assert [r.sequence for r in records] == [0, 1, 2, 3, 4]
        assert wal.next_sequence == 5

    def test_records_since(self):
        wal = WriteAheadLog()
        for i in range(6):
            wal.append(WalOp.PUT, f"k{i}", i)
        tail = list(wal.records_since(4))
        assert [r.key for r in tail] == ["k4", "k5"]

    def test_truncate_keeps_sequence_numbering(self):
        wal = WriteAheadLog()
        for i in range(5):
            wal.append(WalOp.PUT, f"k{i}", i)
        assert wal.truncate_before(3) == 3
        assert len(wal) == 2
        record = wal.append(WalOp.DELETE, "x")
        assert record.sequence == 5

    def test_truncate_is_idempotent(self):
        wal = WriteAheadLog()
        wal.append(WalOp.PUT, "a", 1)
        wal.truncate_before(1)
        assert wal.truncate_before(1) == 0


class TestMemtable:
    def test_put_then_get(self):
        table = Memtable()
        table.put("a", 1)
        entry = table.get("a")
        assert entry.kind == EntryKind.PUT
        assert entry.value == 1

    def test_put_overwrites(self):
        table = Memtable()
        table.put("a", 1)
        table.put("a", 2)
        assert table.get("a").value == 2
        assert len(table) == 1

    def test_delete_leaves_tombstone(self):
        table = Memtable()
        table.put("a", 1)
        table.delete("a")
        assert table.get("a").kind == EntryKind.TOMBSTONE

    def test_merge_chains_accumulate(self):
        table = Memtable()
        table.merge("a", 1)
        table.merge("a", 2)
        entry = table.get("a")
        assert entry.kind == EntryKind.MERGE
        assert entry.operands == [1, 2]
        assert not entry.is_terminal()

    def test_merge_after_put_appends_to_put(self):
        table = Memtable()
        table.put("a", 10)
        table.merge("a", 1)
        entry = table.get("a")
        assert entry.kind == EntryKind.PUT
        assert entry.value == 10
        assert entry.operands == [1]
        assert entry.is_terminal()

    def test_merge_after_delete_starts_fresh_chain(self):
        table = Memtable()
        table.put("a", 10)
        table.delete("a")
        table.merge("a", 3)
        entry = table.get("a")
        assert entry.is_terminal()  # must not fall through to older runs
        assert entry.value is None
        assert entry.operands == [3]

    def test_items_sorted_by_key(self):
        table = Memtable()
        for key in ["c", "a", "b"]:
            table.put(key, key)
        assert [k for k, _ in table.items()] == ["a", "b", "c"]

    def test_approximate_bytes_grows(self):
        table = Memtable()
        before = table.approximate_bytes
        table.put("key", "value" * 100)
        assert table.approximate_bytes > before
