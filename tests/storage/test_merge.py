"""Tests for the merge operators (associativity is the contract)."""

import pytest

from repro.storage.merge import (
    CounterMergeOperator,
    DictSumMergeOperator,
    ListAppendMergeOperator,
    MaxMergeOperator,
    MinMergeOperator,
    SetUnionMergeOperator,
)

ALL_OPERATORS = [
    (CounterMergeOperator(), [1, 2, 3]),
    (MaxMergeOperator(), [5, 1, 9]),
    (MinMergeOperator(), [5, 1, 9]),
    (ListAppendMergeOperator(), [[1], [2, 3], [4]]),
    (DictSumMergeOperator(), [{"a": 1}, {"a": 2, "b": 1}, {"b": 4}]),
    (SetUnionMergeOperator(), [{1}, {2, 3}, {1, 4}]),
]


class TestMonoidLaws:
    @pytest.mark.parametrize("operator,operands", ALL_OPERATORS,
                             ids=lambda x: type(x).__name__
                             if hasattr(x, "merge") else "")
    def test_identity_is_neutral(self, operator, operands):
        for operand in operands:
            assert operator.merge(operator.identity(), operand) == operand
            assert operator.merge(operand, operator.identity()) == operand

    @pytest.mark.parametrize("operator,operands", ALL_OPERATORS,
                             ids=lambda x: type(x).__name__
                             if hasattr(x, "merge") else "")
    def test_associativity(self, operator, operands):
        a, b, c = operands
        left = operator.merge(operator.merge(a, b), c)
        right = operator.merge(a, operator.merge(b, c))
        assert left == right


class TestFullMerge:
    def test_none_base_uses_identity(self):
        operator = CounterMergeOperator()
        assert operator.full_merge(None, [1, 2, 3]) == 6

    def test_base_is_folded_first(self):
        operator = ListAppendMergeOperator()
        assert operator.full_merge([0], [[1], [2]]) == [0, 1, 2]

    def test_partial_merge_collapses_operands(self):
        operator = DictSumMergeOperator()
        assert operator.partial_merge([{"a": 1}, {"a": 4}]) == {"a": 5}

    def test_dict_sum_does_not_mutate_inputs(self):
        operator = DictSumMergeOperator()
        left = {"a": 1}
        operator.merge(left, {"a": 2})
        assert left == {"a": 1}
