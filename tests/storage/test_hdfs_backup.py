"""Tests for the HDFS blob store and the backup engine."""

import pytest

from repro.errors import BackupNotFound, StoreUnavailable
from repro.runtime.clock import SimClock
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.retry import RetryPolicy
from repro.storage.backup import BackupEngine
from repro.storage.hdfs import HdfsBlobStore
from repro.storage.lsm import LsmStore
from repro.storage.merge import CounterMergeOperator


@pytest.fixture
def hdfs(clock):
    return HdfsBlobStore(clock=clock)


class TestHdfsBlobStore:
    def test_put_get_delete(self, hdfs):
        hdfs.put("x", {"data": 1})
        assert hdfs.get("x") == {"data": 1}
        hdfs.delete("x")
        assert not hdfs.exists("x")

    def test_missing_blob_raises_key_error(self, hdfs):
        # The blob store itself knows nothing about backups; the backup
        # layers map KeyError to BackupNotFound.
        with pytest.raises(KeyError):
            hdfs.get("nope")

    def test_outage_blocks_operations(self, clock, hdfs):
        hdfs.add_outage(5.0, 10.0)
        hdfs.put("ok", 1)
        clock.advance(6.0)
        assert not hdfs.available()
        with pytest.raises(StoreUnavailable):
            hdfs.put("fail", 2)
        with pytest.raises(StoreUnavailable):
            hdfs.get("ok")
        clock.advance(5.0)
        assert hdfs.available()
        assert hdfs.get("ok") == 1

    def test_list_with_prefix(self, hdfs):
        hdfs.put("backups/a/1", 1)
        hdfs.put("backups/b/1", 2)
        hdfs.put("other", 3)
        assert hdfs.list("backups/") == ["backups/a/1", "backups/b/1"]

    def test_empty_outage_rejected(self, hdfs):
        with pytest.raises(ValueError):
            hdfs.add_outage(5.0, 5.0)


class TestBackupEngine:
    def make_store(self, disk=None):
        store = LsmStore(disk=disk if disk is not None else {},
                         name="app", merge_operator=CounterMergeOperator())
        store.put("a", 1)
        store.merge("count", 10)
        return store

    def test_backup_and_restore_round_trip(self, hdfs):
        engine = BackupEngine(hdfs)
        store = self.make_store()
        info = engine.create_backup(store)
        assert info.backup_id == 0
        restored = engine.restore("app", {}, merge_operator=CounterMergeOperator())
        assert restored.get("a") == 1
        assert restored.get("count") == 10

    def test_restore_is_a_snapshot_not_a_link(self, hdfs):
        engine = BackupEngine(hdfs)
        store = self.make_store()
        engine.create_backup(store)
        store.put("a", 999)
        restored = engine.restore("app", {},
                                  merge_operator=CounterMergeOperator())
        assert restored.get("a") == 1

    def test_backup_during_outage_is_skipped(self, clock, hdfs):
        hdfs.add_outage(0.0, 100.0)
        engine = BackupEngine(hdfs)
        store = self.make_store()
        assert engine.create_backup(store) is None
        assert engine.latest_backup("app") is None

    def test_recovery_uses_older_snapshot_after_outage(self, clock, hdfs):
        """Paper: 'If there is a failure, then recovery uses an older
        snapshot.'"""
        engine = BackupEngine(hdfs)
        store = self.make_store()
        engine.create_backup(store)          # snapshot 0: a=1
        hdfs.add_outage(clock.now(), clock.now() + 50.0)
        store.put("a", 2)
        assert engine.create_backup(store) is None  # snapshot skipped
        clock.advance(60.0)  # HDFS is back; the failure happens now
        restored = engine.restore("app", {},
                                  merge_operator=CounterMergeOperator())
        assert restored.get("a") == 1  # the older snapshot

    def test_restore_without_backups_raises(self, hdfs):
        engine = BackupEngine(hdfs)
        with pytest.raises(BackupNotFound):
            engine.restore("ghost", {})

    def test_multiple_backups_latest_wins(self, hdfs):
        engine = BackupEngine(hdfs)
        store = self.make_store()
        engine.create_backup(store)
        store.put("a", 2)
        engine.create_backup(store)
        assert engine.latest_backup("app").backup_id == 1
        restored = engine.restore("app", {},
                                  merge_operator=CounterMergeOperator())
        assert restored.get("a") == 2
        assert len(engine.backups("app")) == 2


class TestBackupEngineFailurePaths:
    def make_store(self, disk=None):
        store = LsmStore(disk=disk if disk is not None else {},
                         name="app", merge_operator=CounterMergeOperator())
        store.put("a", 1)
        return store

    def test_explicit_missing_backup_id_raises_backup_not_found(self, hdfs):
        engine = BackupEngine(hdfs)
        engine.create_backup(self.make_store())
        with pytest.raises(BackupNotFound):
            engine.restore("app", {}, backup_id=77)

    def test_restore_during_outage_raises_and_leaves_no_store(self, clock,
                                                              hdfs):
        engine = BackupEngine(hdfs)
        engine.create_backup(self.make_store())
        hdfs.add_outage(clock.now(), clock.now() + 50.0)
        new_disk = {}
        with pytest.raises(StoreUnavailable):
            engine.restore("app", new_disk,
                           merge_operator=CounterMergeOperator())
        # The blob fetch failed before the new store was created, so the
        # target namespace is untouched — no half-initialized store.
        assert new_disk == {}
        clock.advance(60.0)
        restored = engine.restore("app", new_disk,
                                  merge_operator=CounterMergeOperator())
        assert restored.get("a") == 1

    def test_backup_retries_through_a_short_outage(self, clock, hdfs):
        registry = MetricsRegistry()
        engine = BackupEngine(
            hdfs, retry=RetryPolicy(max_attempts=5, base_delay=1.0,
                                    multiplier=2.0, jitter=0.0),
            metrics=registry)
        hdfs.add_outage(0.0, 2.5)  # heals while the engine is backing off
        assert engine.create_backup(self.make_store()) is not None
        assert registry.counter("backup.retry.recoveries").value == 1
        assert registry.counter("backup.snapshot.skipped").value == 0

    def test_backup_exhausting_retries_is_counted_not_silent(self, clock,
                                                             hdfs):
        registry = MetricsRegistry()
        engine = BackupEngine(
            hdfs, retry=RetryPolicy(max_attempts=3, base_delay=0.1,
                                    jitter=0.0),
            metrics=registry)
        hdfs.add_outage(0.0, 1000.0)
        assert engine.create_backup(self.make_store()) is None
        assert registry.counter("backup.retry.give_ups").value == 1
        assert registry.counter("backup.snapshot.skipped").value == 1
        # Every StoreUnavailable the store raised is accounted for by the
        # retry layer: nothing was silently dropped.
        assert registry.counter("hdfs.unavailable_errors").value == 0  # separate registry
