"""Tests for the ZippyDB stand-in."""

import pytest

from repro.errors import ConfigError, StoreUnavailable, TransactionAborted
from repro.runtime.clock import SimClock
from repro.storage.merge import DictSumMergeOperator
from repro.storage.zippydb import ZippyDb, ZippyDbLatencyModel


@pytest.fixture
def db(clock):
    return ZippyDb(num_shards=3, replication_factor=3,
                   merge_operator=DictSumMergeOperator(), clock=clock)


class TestBasicOps:
    def test_put_get_delete(self, db):
        db.put("a", {"v": 1})
        assert db.get("a") == {"v": 1}
        db.delete("a")
        assert db.get("a") is None

    def test_sharding_is_stable(self, db):
        assert db.shard_for("key") == db.shard_for("key")
        assert 0 <= db.shard_for("key") < db.num_shards

    def test_merge_folds_server_side(self, db):
        db.merge("k", {"a": 1})
        db.merge("k", {"a": 2, "b": 5})
        assert db.get("k") == {"a": 3, "b": 5}

    def test_merge_over_put(self, db):
        db.put("k", {"a": 10})
        db.merge("k", {"a": 1})
        assert db.get("k") == {"a": 11}

    def test_merge_without_operator_rejected(self, clock):
        db = ZippyDb(clock=clock)
        with pytest.raises(ConfigError):
            db.merge("k", 1)


class TestBatches:
    def test_multi_get_put(self, db):
        db.multi_put({"a": 1, "b": 2})
        assert db.multi_get(["a", "b", "c"]) == {"a": 1, "b": 2, "c": None}

    def test_multi_merge(self, db):
        db.multi_merge([("k", {"x": 1}), ("k", {"x": 2}), ("j", {"y": 1})])
        assert db.get("k") == {"x": 3}
        assert db.get("j") == {"y": 1}

    def test_batching_is_cheaper_than_singles(self, clock):
        latency = ZippyDbLatencyModel()
        db_single = ZippyDb(num_shards=3, clock=SimClock(), latency=latency)
        db_batch = ZippyDb(num_shards=3, clock=SimClock(), latency=latency)
        items = {f"k{i}": i for i in range(50)}
        for key, value in items.items():
            db_single.put(key, value)
        db_batch.multi_put(items)
        assert db_batch.clock.now() < db_single.clock.now()


class TestLatencyAccounting:
    def test_reads_and_writes_advance_clock(self, clock, db):
        db.put("a", 1)
        db.get("a")
        expected = db.latency.write + db.latency.read
        assert clock.now() == pytest.approx(expected)

    def test_transaction_costs_two_rounds(self, clock, db):
        db.commit_transaction(puts={"a": 1})
        assert clock.now() >= 2 * db.latency.transaction_round

    def test_metrics_count_ops(self, db):
        db.put("a", 1)
        db.get("a")
        db.merge("m", {"x": 1})
        snapshot = db.metrics.snapshot()
        assert snapshot["zippydb.writes"] == 1
        assert snapshot["zippydb.reads"] == 1
        assert snapshot["zippydb.merge_writes"] == 1


class TestTransactions:
    def test_commit_applies_all(self, db):
        db.put("doomed", 1)
        db.commit_transaction(puts={"a": 1, "b": 2}, deletes=["doomed"])
        assert db.get("a") == 1
        assert db.get("b") == 2
        assert db.get("doomed") is None

    def test_empty_transaction_is_noop(self, clock, db):
        db.commit_transaction()
        assert clock.now() == 0.0

    def test_aborts_when_shard_unwritable(self, db):
        key = "victim"
        shard = db.shard_for(key)
        db.kill_replica(shard, 0)
        db.kill_replica(shard, 1)
        with pytest.raises(TransactionAborted):
            db.commit_transaction(puts={key: 1})

    def test_participant_checks_run_in_shard_order(self, db, monkeypatch):
        # Regression for an R005 finding: the participant loop iterated a
        # set of shard indices, so which shard aborted first depended on
        # hash order. The loop must visit shards in sorted index order.
        keys = {}
        for i in range(1000):
            key = f"t{i}"
            keys.setdefault(db.shard_for(key), key)
            if len(keys) == db.num_shards:
                break
        assert len(keys) == db.num_shards
        visited = []
        original = db._writable

        def spy(shard):
            visited.append(shard.index)
            return original(shard)

        monkeypatch.setattr(db, "_writable", spy)
        db.commit_transaction(puts={key: 1 for key in keys.values()})
        assert visited == sorted(visited)
        assert len(visited) == db.num_shards


class TestReplication:
    def find_key_on_shard(self, db, shard):
        return next(f"p{i}" for i in range(1000)
                    if db.shard_for(f"p{i}") == shard)

    def test_writes_need_quorum(self, db):
        key = self.find_key_on_shard(db, 0)
        db.kill_replica(0, 0)
        db.put(key, 1)  # 2 of 3 alive: still a quorum
        db.kill_replica(0, 1)
        with pytest.raises(StoreUnavailable):
            db.put(key, 2)

    def test_reads_survive_minority_failure(self, db):
        key = self.find_key_on_shard(db, 0)
        db.put(key, 42)
        db.kill_replica(0, 0)
        assert db.get(key) == 42

    def test_revived_replica_catches_up(self, db):
        key = self.find_key_on_shard(db, 0)
        db.kill_replica(0, 0)
        db.put(key, 7)
        db.revive_replica(0, 0)
        db.kill_replica(0, 1)
        db.kill_replica(0, 2)
        # Only the revived replica is alive; it must have caught up.
        assert db.get(key) == 7

    def test_other_shards_unaffected_by_dead_shard(self, db):
        db.kill_replica(0, 0)
        db.kill_replica(0, 1)
        db.kill_replica(0, 2)
        key = self.find_key_on_shard(db, 1)
        db.put(key, 1)
        assert db.get(key) == 1


class TestConfig:
    def test_invalid_shape_rejected(self):
        with pytest.raises(ConfigError):
            ZippyDb(num_shards=0)
        with pytest.raises(ConfigError):
            ZippyDb(replication_factor=0)
