"""Tests for immutable sorted runs."""

import pytest

from repro.storage.memtable import Entry
from repro.storage.sstable import SSTable


def make(entries):
    return SSTable([(k, Entry.put(v)) for k, v in entries])


class TestSSTable:
    def test_get_found_and_missing(self):
        table = make([("a", 1), ("c", 3), ("e", 5)])
        assert table.get("c").value == 3
        assert table.get("b") is None
        assert table.get("z") is None

    def test_requires_sorted_keys(self):
        with pytest.raises(ValueError):
            make([("b", 1), ("a", 2)])

    def test_requires_unique_keys(self):
        with pytest.raises(ValueError):
            make([("a", 1), ("a", 2)])

    def test_scan_range_is_half_open(self):
        table = make([("a", 1), ("b", 2), ("c", 3), ("d", 4)])
        assert [k for k, _ in table.scan("b", "d")] == ["b", "c"]

    def test_scan_unbounded(self):
        table = make([("a", 1), ("b", 2)])
        assert [k for k, _ in table.scan()] == ["a", "b"]

    def test_scan_with_only_start(self):
        table = make([("a", 1), ("b", 2), ("c", 3)])
        assert [k for k, _ in table.scan(start="b")] == ["b", "c"]

    def test_min_max_keys(self):
        table = make([("b", 1), ("x", 2)])
        assert table.min_key == "b"
        assert table.max_key == "x"
        empty = SSTable([])
        assert empty.min_key is None and empty.max_key is None

    def test_len(self):
        assert len(make([("a", 1), ("b", 2)])) == 2
