"""Tests for the LSM store: reads, merges, flush, compaction, recovery."""

import pytest

from repro.errors import StoreClosed
from repro.storage.lsm import LsmStore
from repro.storage.merge import CounterMergeOperator, DictSumMergeOperator


@pytest.fixture
def store():
    return LsmStore(merge_operator=CounterMergeOperator(),
                    memtable_flush_bytes=1 << 30)  # manual flushing


class TestBasicOps:
    def test_put_get_delete(self, store):
        store.put("a", 1)
        assert store.get("a") == 1
        store.delete("a")
        assert store.get("a") is None

    def test_missing_key_is_none(self, store):
        assert store.get("never") is None

    def test_none_values_are_reserved(self, store):
        with pytest.raises(ValueError):
            store.put("a", None)

    def test_multi_get(self, store):
        store.put("a", 1)
        store.put("b", 2)
        assert store.multi_get(["a", "b", "c"]) == {"a": 1, "b": 2, "c": None}

    def test_closed_store_rejects_ops(self, store):
        store.close()
        with pytest.raises(StoreClosed):
            store.get("a")


class TestMergeResolution:
    def test_merge_without_base_uses_identity(self, store):
        store.merge("c", 5)
        store.merge("c", 3)
        assert store.get("c") == 8

    def test_merge_over_put(self, store):
        store.put("c", 100)
        store.merge("c", 1)
        assert store.get("c") == 101

    def test_merge_over_delete_restarts(self, store):
        store.put("c", 100)
        store.delete("c")
        store.merge("c", 1)
        assert store.get("c") == 1

    def test_merge_chain_across_flushes(self, store):
        store.merge("c", 1)
        store.flush()
        store.merge("c", 2)
        store.flush()
        store.merge("c", 3)
        assert store.get("c") == 6

    def test_put_in_old_run_merge_in_new(self, store):
        store.put("c", 10)
        store.flush()
        store.merge("c", 5)
        assert store.get("c") == 15

    def test_delete_shadows_older_put_across_runs(self, store):
        store.put("c", 10)
        store.flush()
        store.delete("c")
        store.flush()
        assert store.get("c") is None

    def test_merge_requires_operator(self):
        plain = LsmStore()
        with pytest.raises(ValueError):
            plain.merge("a", 1)

    def test_dict_sum_operator(self):
        store = LsmStore(merge_operator=DictSumMergeOperator())
        store.merge("k", {"a": 1})
        store.merge("k", {"a": 2, "b": 1})
        assert store.get("k") == {"a": 3, "b": 1}


class TestFlushAndCompaction:
    def test_flush_moves_memtable_to_sstable(self, store):
        store.put("a", 1)
        assert store.memtable_size == 1
        store.flush()
        assert store.memtable_size == 0
        assert store.num_sstables == 1
        assert store.get("a") == 1

    def test_flush_empty_memtable_is_noop(self, store):
        store.flush()
        assert store.num_sstables == 0

    def test_auto_flush_on_size(self):
        store = LsmStore(memtable_flush_bytes=100)
        for i in range(50):
            store.put(f"key{i}", "v" * 20)
        assert store.num_sstables >= 1

    def test_compaction_folds_everything(self, store):
        for round_number in range(6):
            store.merge("counter", 1)
            store.put(f"k{round_number}", round_number)
            store.flush()
        store.compact()
        assert store.num_sstables == 1
        assert store.get("counter") == 6
        assert store.get("k3") == 3

    def test_compaction_drops_tombstones(self, store):
        store.put("dead", 1)
        store.flush()
        store.delete("dead")
        store.flush()
        store.compact()
        assert store.get("dead") is None
        assert store.approximate_key_count() == 0

    def test_auto_compaction_trigger(self):
        store = LsmStore(compaction_trigger=2,
                         memtable_flush_bytes=1 << 30)
        for i in range(5):
            store.put(f"k{i}", i)
            store.flush()
        assert store.num_sstables <= 2


class TestScan:
    def test_scan_merges_all_levels(self, store):
        store.put("a", 1)
        store.flush()
        store.put("b", 2)
        store.delete("a")
        assert list(store.scan()) == [("b", 2)]

    def test_scan_range(self, store):
        for key in ["a", "b", "c", "d"]:
            store.put(key, key)
        assert [k for k, _ in store.scan("b", "d")] == ["b", "c"]


class TestRecovery:
    def test_process_crash_recovers_from_wal(self):
        disk = {}
        store = LsmStore(disk=disk, merge_operator=CounterMergeOperator())
        store.put("a", 1)
        store.merge("a", 4)
        store.delete("gone")
        store.drop_memory()  # crash: memtable lost
        assert store.get("a") is None
        replayed = store.recover()
        assert replayed == 3
        assert store.get("a") == 5

    def test_recovery_after_flush_replays_only_tail(self):
        disk = {}
        store = LsmStore(disk=disk, merge_operator=CounterMergeOperator())
        store.put("a", 1)
        store.flush()
        store.put("b", 2)
        store.drop_memory()
        assert store.recover() == 1  # only "b" was unflushed
        assert store.get("a") == 1
        assert store.get("b") == 2

    def test_fresh_store_on_same_disk_sees_data(self):
        disk = {}
        first = LsmStore(disk=disk, name="app")
        first.put("a", 1)
        first.flush()
        second = LsmStore(disk=disk, name="app")
        assert second.get("a") == 1

    def test_write_batch_is_atomic_unit(self, store):
        store.write_batch(puts={"a": 1, "b": 2}, merges=[("c", 3)])
        assert store.get("a") == 1
        assert store.get("c") == 3


class TestIncrementalCompaction:
    def make(self, **kwargs):
        kwargs.setdefault("merge_operator", CounterMergeOperator())
        kwargs.setdefault("memtable_flush_bytes", 1 << 30)
        return LsmStore(**kwargs)

    def fill(self, store, runs, keys_per_run=4):
        for run in range(runs):
            for i in range(keys_per_run):
                store.put(f"k{run:02d}-{i}", run)
            store.flush()

    def test_step_merges_bounded_group(self):
        store = self.make(compaction_trigger=4, max_compact_runs=2)
        self.fill(store, 4)  # a full level-0 tier, no auto step yet
        merged = store.compact_step()
        # The tier reached its fanout (= compaction_trigger), but a step
        # only eats max_compact_runs of it, promoted one level up.
        assert merged == 2
        assert store.levels == [1, 0, 0]

    def test_step_is_noop_when_no_tier_is_full(self):
        store = self.make(compaction_trigger=4)
        self.fill(store, 3)
        assert store.compact_step() == 0
        assert store.num_sstables == 3

    def test_levels_stay_nonincreasing_under_steps(self):
        store = self.make(compaction_trigger=2, max_compact_runs=2)
        self.fill(store, 12)
        while store.compact_step():
            levels = store.levels
            assert levels == sorted(levels, reverse=True)

    def test_step_bound_caps_single_call_work(self):
        store = self.make(compaction_trigger=4, max_compact_runs=4,
                          row_cache_size=0)
        self.fill(store, 8, keys_per_run=8)  # 64 distinct keys
        total = sum(len(run) for run in store._sstables)
        while store.compact_step():
            pass
        # No single call (auto or manual) touched anything close to the
        # whole store — the point of incremental compaction.
        assert store.stats.compact_steps > 0
        assert store.stats.max_step_entries <= 4 * 8 < total

    def test_step_collapses_merge_operands(self):
        store = self.make(compaction_trigger=4, max_compact_runs=4)
        for _ in range(4):
            store.merge("c", 1)
            store.flush()
        assert store.compact_step() == 4
        [run] = store._sstables
        entry = run.get("c")
        assert len(entry.operands) == 1  # collapsed via partial_merge
        assert store.get("c") == 4

    def test_tombstones_survive_non_bottom_steps(self):
        store = self.make(compaction_trigger=2, max_compact_runs=2)
        store.put("a", 1)
        store.flush()
        store.put("pad", 0)
        store.flush()
        assert store.compact_step() == 2  # "a" now lives in a level-1 run
        store.delete("a")
        store.flush()
        store.put("y", 2)
        store.flush()  # run-count pressure auto-steps the two newest runs
        assert store.levels == [1, 1]
        # That merge excluded the oldest run, so the tombstone had to
        # survive it — otherwise the old "a" would resurrect here.
        assert store.get("a") is None
        store.compact()
        assert store.get("a") is None

    def test_scheduled_compaction_converges(self):
        from repro.runtime.scheduler import Scheduler

        store = self.make(compaction_trigger=2, max_compact_runs=4)
        self.fill(store, 9)
        scheduler = Scheduler()
        handle = store.schedule_compaction(scheduler, interval=5.0)
        scheduler.run_until(500.0)
        assert store.num_sstables <= 2
        assert store.stats.compact_steps > 0
        handle.cancel()

    def test_multi_get_walks_each_run_once(self):
        store = self.make(compaction_trigger=10_000, row_cache_size=0)
        self.fill(store, 5, keys_per_run=6)
        store.stats.multi_get_run_walks = 0
        keys = [f"k{run:02d}-{i}" for run in range(5) for i in range(6)]
        result = store.multi_get(keys)
        assert all(result[key] is not None for key in keys)
        # One monotone walk per run, not one probe-sequence per key.
        assert store.stats.multi_get_run_walks <= store.num_sstables
