"""Tests for the HBase-style table store."""

import pytest

from repro.errors import StorageError
from repro.storage.hbase import HBaseTable


@pytest.fixture
def table():
    return HBaseTable("t")


class TestRows:
    def test_put_merges_columns(self, table):
        table.put("r", {"a": 1})
        table.put("r", {"b": 2})
        assert table.get("r") == {"a": 1, "b": 2}

    def test_get_returns_copy(self, table):
        table.put("r", {"a": 1})
        row = table.get("r")
        row["a"] = 999
        assert table.get_column("r", "a") == 1

    def test_missing_row_is_none(self, table):
        assert table.get("nope") is None
        assert table.get_column("nope", "c", default=7) == 7

    def test_empty_put_rejected(self, table):
        with pytest.raises(StorageError):
            table.put("r", {})

    def test_delete_row(self, table):
        table.put("r", {"a": 1})
        table.delete_row("r")
        assert table.get("r") is None
        assert table.row_count() == 0


class TestAtomics:
    def test_increment(self, table):
        assert table.increment("r", "count") == 1
        assert table.increment("r", "count", 4) == 5

    def test_check_and_put_applies_on_match(self, table):
        table.put("r", {"v": 1})
        assert table.check_and_put("r", "v", 1, {"v": 2})
        assert table.get_column("r", "v") == 2

    def test_check_and_put_rejects_on_mismatch(self, table):
        table.put("r", {"v": 1})
        assert not table.check_and_put("r", "v", 99, {"v": 2})
        assert table.get_column("r", "v") == 1

    def test_check_and_put_against_absent_column(self, table):
        assert table.check_and_put("new", "v", None, {"v": 1})
        assert table.get_column("new", "v") == 1


class TestScan:
    def test_scan_is_key_ordered(self, table):
        for key in ["b", "a", "c"]:
            table.put(key, {"k": key})
        assert [k for k, _ in table.scan()] == ["a", "b", "c"]

    def test_scan_range_half_open(self, table):
        for key in ["a", "b", "c", "d"]:
            table.put(key, {"x": 1})
        assert [k for k, _ in table.scan("b", "d")] == ["b", "c"]

    def test_scan_limit(self, table):
        for i in range(10):
            table.put(f"r{i}", {"x": i})
        assert len(list(table.scan(limit=3))) == 3

    def test_scan_sees_increment_created_rows(self, table):
        table.increment("r1", "c")
        table.put("r0", {"c": 0})
        assert [k for k, _ in table.scan()] == ["r0", "r1"]
