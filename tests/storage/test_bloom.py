"""Bloom filter + read-path tests: no false negatives, scan skipping,
and row-cache behavior (the hot-path structures behind Figure 12)."""

import random

import pytest

from repro.storage.bloom import BloomFilter, hash_pair
from repro.storage.lsm import LsmStore
from repro.storage.merge import CounterMergeOperator
from repro.storage.sstable import SSTable
from repro.storage.memtable import Entry


class TestBloomFilter:
    def test_no_false_negatives(self):
        keys = [f"key:{i}" for i in range(2000)]
        bloom = BloomFilter(keys)
        assert all(bloom.may_contain(key) for key in keys)

    def test_false_positive_rate_is_low(self):
        rng = random.Random(7)
        keys = [f"key:{rng.getrandbits(64):016x}" for _ in range(2000)]
        bloom = BloomFilter(keys)
        absent = [f"other:{i}" for i in range(2000)]
        positives = sum(bloom.may_contain(key) for key in absent)
        # 10 bits/key targets ~1%; allow generous slack.
        assert positives / len(absent) < 0.05

    def test_deterministic_across_instances(self):
        keys = [f"key:{i}" for i in range(100)]
        probes = [f"probe:{i}" for i in range(500)]
        first = [BloomFilter(keys).may_contain(p) for p in probes]
        second = [BloomFilter(keys).may_contain(p) for p in probes]
        assert first == second

    def test_hash_pair_shared_with_may_contain_hashed(self):
        bloom = BloomFilter(["a", "b", "c"])
        for key in ["a", "b", "c", "nope"]:
            assert (bloom.may_contain(key)
                    == bloom.may_contain_hashed(*hash_pair(key)))

    def test_empty_key_set(self):
        bloom = BloomFilter([])
        assert not bloom.may_contain("anything")


class TestSSTableFiltering:
    def _table(self, count=200):
        entries = [(f"k:{i:05d}", Entry.put(i)) for i in range(count)]
        return SSTable(entries)

    def test_every_present_key_found(self):
        table = self._table()
        for i in range(200):
            entry = table.get(f"k:{i:05d}")
            assert entry is not None and entry.value == i

    def test_may_contain_never_false_negative(self):
        table = self._table()
        assert all(table.may_contain(f"k:{i:05d}") for i in range(200))

    def test_out_of_range_keys_rejected_without_bloom(self):
        table = self._table()
        assert not table.may_contain("a")        # below min_key
        assert not table.may_contain("zzz")      # above max_key

    def test_sparse_index_agrees_with_full_search(self):
        # Sizes around the index interval boundary are the risky ones.
        for count in [1, 15, 16, 17, 31, 32, 33, 100]:
            entries = [(f"k:{i:05d}", Entry.put(i)) for i in range(count)]
            table = SSTable(entries)
            for i in range(count):
                assert table.get(f"k:{i:05d}").value == i
            assert table.get("k:99999") is None
            assert table.get("a") is None


def _flushed_store(**kwargs) -> LsmStore:
    store = LsmStore(memtable_flush_bytes=1 << 30, compaction_trigger=64,
                     **kwargs)
    for chunk in range(4):
        for i in range(chunk * 100, (chunk + 1) * 100):
            store.put(f"key:{i:05d}", i)
        store.flush()
    return store


class TestLsmScanSkipping:
    def test_no_false_negatives_across_flush(self):
        store = _flushed_store()
        assert store.num_sstables == 4
        for i in range(400):
            assert store.get(f"key:{i:05d}") == i

    def test_no_false_negatives_across_compaction(self):
        store = _flushed_store()
        store.compact()
        assert store.num_sstables == 1
        for i in range(400):
            assert store.get(f"key:{i:05d}") == i

    def test_no_false_negatives_across_recovery(self):
        disk = {}
        store = LsmStore(disk=disk, memtable_flush_bytes=1 << 30)
        for i in range(100):
            store.put(f"key:{i:05d}", i)
        store.flush()
        for i in range(100, 150):
            store.put(f"key:{i:05d}", i)  # unflushed: lives in the WAL
        store.drop_memory()
        store.recover()
        for i in range(150):
            assert store.get(f"key:{i:05d}") == i

    def test_merge_chains_survive_filtered_reads(self):
        store = LsmStore(merge_operator=CounterMergeOperator(),
                         memtable_flush_bytes=1 << 30, compaction_trigger=64)
        for _ in range(3):
            store.merge("hits", 2)
            store.flush()
        assert store.get("hits") == 6

    def test_absent_key_reads_skip_sstable_scans(self):
        """The counter-based assertion: absent keys probe (almost) no runs."""
        store = _flushed_store(row_cache_size=0)
        runs = store.num_sstables
        before = store.stats.sstable_probes
        absent_reads = 500
        # Keys interleaved *inside* the stored key range, so the bloom
        # filters (not just the min/max check) do the rejecting.
        for i in range(absent_reads):
            assert store.get(f"key:{i:05d}x") is None
        probes = store.stats.sstable_probes - before
        naive = absent_reads * runs  # what the seed implementation scanned
        assert probes * 5 <= naive, (
            f"absent-key reads probed {probes} runs; the naive path "
            f"would have probed {naive}"
        )
        assert store.stats.bloom_skips > 0

    def test_present_key_reads_probe_only_the_owning_run(self):
        store = _flushed_store(row_cache_size=0)
        probes_before = store.stats.sstable_probes
        range_before = store.stats.range_skips
        assert store.get("key:00000") == 0  # lives in the oldest run
        # The per-chunk key ranges are disjoint, so the min/max check
        # rejects the 3 younger runs; only the owning run is searched.
        assert store.stats.sstable_probes - probes_before == 1
        assert store.stats.range_skips - range_before == 3


class TestRowCache:
    def test_repeat_reads_hit_cache(self):
        store = _flushed_store()
        store.get("key:00042")
        hits_before = store.stats.cache_hits
        store.get("key:00042")
        assert store.stats.cache_hits == hits_before + 1

    def test_absent_keys_are_cached_too(self):
        store = _flushed_store()
        assert store.get("missing") is None
        hits_before = store.stats.cache_hits
        assert store.get("missing") is None
        assert store.stats.cache_hits == hits_before + 1

    @pytest.mark.parametrize("mutate", ["put", "delete", "merge"])
    def test_writes_invalidate_cached_key(self, mutate):
        store = LsmStore(merge_operator=CounterMergeOperator(),
                         memtable_flush_bytes=1 << 30)
        store.put("k", 1)
        assert store.get("k") == 1  # now cached
        if mutate == "put":
            store.put("k", 2)
            assert store.get("k") == 2
        elif mutate == "delete":
            store.delete("k")
            assert store.get("k") is None
        else:
            store.merge("k", 10)
            assert store.get("k") == 11

    def test_write_batch_invalidates_cached_keys(self):
        store = LsmStore(memtable_flush_bytes=1 << 30)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1 and store.get("b") == 2
        store.write_batch(puts={"a": 10}, deletes=["b"])
        assert store.get("a") == 10
        assert store.get("b") is None

    def test_crash_clears_cache(self):
        store = LsmStore(memtable_flush_bytes=1 << 30)
        store.put("k", 1)
        assert store.get("k") == 1
        store.drop_memory()  # unflushed write lost with the memtable
        assert store.get("k") is None
        store.recover()
        assert store.get("k") == 1

    def test_cache_is_bounded(self):
        store = LsmStore(memtable_flush_bytes=1 << 30, row_cache_size=10)
        for i in range(50):
            store.put(f"k:{i}", i)
        for i in range(50):
            store.get(f"k:{i}")
        assert store.row_cache_len <= 10

    def test_cache_can_be_disabled(self):
        store = LsmStore(memtable_flush_bytes=1 << 30, row_cache_size=0)
        store.put("k", 1)
        store.get("k")
        store.get("k")
        assert store.stats.cache_hits == 0
        assert store.row_cache_len == 0

    def test_scans_bypass_the_cache(self):
        store = _flushed_store(row_cache_size=4)
        list(store.scan())
        # A full scan of 400 keys through a 4-entry cache would have
        # evicted everything; bypassing it leaves the cache untouched.
        assert store.row_cache_len == 0
