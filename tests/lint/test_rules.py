"""Per-rule unit tests: each checker over small good/bad snippets."""

from tests.lint.conftest import rules_hit


class TestNoWallClockR001:
    def test_time_time_flagged(self, lint):
        report = lint("""\
            import time
            t = time.time()
            """, select=["R001"])
        assert rules_hit(report) == ["R001"]
        assert report.findings[0].line == 2

    def test_datetime_now_and_from_import_flagged(self, lint):
        report = lint("""\
            import datetime
            from time import monotonic
            stamp = datetime.datetime.now()
            """, select=["R001"])
        assert len(report.findings) == 2

    def test_clock_api_is_clean(self, lint):
        report = lint("""\
            def tick(clock):
                return clock.now()
            """, select=["R001"])
        assert report.findings == []

    def test_clock_module_is_exempt(self, lint):
        report = lint("""\
            import time
            t = time.monotonic()
            """, filename="src/repro/runtime/clock.py", select=["R001"])
        assert report.findings == []

    def test_benchmarks_are_exempt(self, lint):
        report = lint("""\
            import time
            t = time.perf_counter()
            """, filename="benchmarks/bench_x.py", select=["R001"])
        assert report.findings == []


class TestNoUnseededRandomnessR002:
    def test_module_level_random_flagged(self, lint):
        report = lint("""\
            import random
            x = random.random()
            random.shuffle([1, 2])
            """, select=["R002"])
        assert len(report.findings) == 2

    def test_unseeded_random_instance_flagged(self, lint):
        report = lint("""\
            import random
            rng = random.Random()
            """, select=["R002"])
        assert rules_hit(report) == ["R002"]

    def test_seeded_instance_and_make_rng_clean(self, lint):
        report = lint("""\
            import random
            from repro.runtime.rng import make_rng

            rng = random.Random(42)
            other = make_rng(7, "stream")
            """, select=["R002"])
        assert report.findings == []

    def test_rng_module_is_exempt(self, lint):
        report = lint("""\
            import random
            x = random.getrandbits(32)
            """, filename="src/repro/runtime/rng.py", select=["R002"])
        assert report.findings == []


class TestMetricNameDisciplineR003:
    def test_good_dotted_literal_clean(self, lint):
        report = lint("""\
            def wire(metrics):
                metrics.counter("scribe.records.written")
                metrics.gauge("scuba.ingest.rows_per_sec")
            """, select=["R003"])
        assert report.findings == []

    def test_bad_shapes_flagged(self, lint):
        report = lint("""\
            def wire(metrics):
                metrics.counter("BadName")
                metrics.counter("justonesegment")
                metrics.gauge("scribe..reads")
            """, select=["R003"])
        assert len(report.findings) == 3

    def test_dynamic_name_flagged(self, lint):
        report = lint("""\
            def wire(metrics, name):
                metrics.counter(name + ".reads")
            """, select=["R003"])
        assert rules_hit(report) == ["R003"]

    def test_fstring_with_placeholder_prefix_clean(self, lint):
        report = lint("""\
            def wire(metrics, name):
                metrics.counter(f"{name}.unavailable_errors")
            """, select=["R003"])
        assert report.findings == []

    def test_near_duplicates_flagged_in_finalize(self, lint):
        report = lint("""\
            def wire(metrics):
                metrics.counter("scribe.reads")
                metrics.counter("scribe.read")
            """, select=["R003"])
        assert any("one edit away" in finding.message
                   for finding in report.findings)


class TestExceptionDisciplineR004:
    def test_bare_and_broad_except_flagged(self, lint):
        report = lint("""\
            def f():
                try:
                    g()
                except:
                    pass

            def h():
                try:
                    g()
                except Exception:
                    pass
            """, select=["R004"])
        assert len(report.findings) == 2

    def test_silent_store_unavailable_flagged(self, lint):
        report = lint("""\
            from repro.errors import StoreUnavailable

            def f(store):
                try:
                    store.get("k")
                except StoreUnavailable:
                    pass
            """, select=["R004"])
        assert rules_hit(report) == ["R004"]

    def test_counted_store_unavailable_clean(self, lint):
        report = lint("""\
            from repro.errors import StoreUnavailable

            def f(self, store):
                try:
                    store.get("k")
                except StoreUnavailable:
                    self.metrics.counter("laser.failover_reads").increment()
            """, select=["R004"])
        assert report.findings == []

    def test_reraise_and_narrow_except_clean(self, lint):
        report = lint("""\
            from repro.errors import StoreUnavailable

            def f(store):
                try:
                    store.get("k")
                except KeyError:
                    return None
                except StoreUnavailable:
                    raise
            """, select=["R004"])
        assert report.findings == []


class TestIterationOrderR005:
    def test_for_over_set_literal_flagged(self, lint):
        report = lint("""\
            def f(out):
                names = {"b", "a"}
                for name in names:
                    out.append(name)
            """, select=["R005"])
        assert rules_hit(report) == ["R005"]

    def test_list_of_set_and_join_flagged(self, lint):
        report = lint("""\
            def f(keys):
                pending = set(keys)
                ordered = list(pending)
                return ",".join(pending)
            """, select=["R005"])
        assert len(report.findings) == 2

    def test_self_attribute_set_flagged(self, lint):
        report = lint("""\
            class Router:
                def __init__(self):
                    self.targets = set()

                def dump(self):
                    return [t for t in self.targets]
            """, select=["R005"])
        assert rules_hit(report) == ["R005"]

    def test_sorted_wrapper_is_clean(self, lint):
        report = lint("""\
            def f(keys):
                pending = set(keys)
                for key in sorted(pending):
                    yield key
                return sum(1 for k in pending)
            """, select=["R005"])
        assert report.findings == []

    def test_order_insensitive_consumers_clean(self, lint):
        report = lint("""\
            def f(keys):
                pending = set(keys)
                return len(pending), max(pending), min(pending)
            """, select=["R005"])
        assert report.findings == []

    def test_plain_list_iteration_clean(self, lint):
        report = lint("""\
            def f(rows):
                items = [r for r in rows]
                for item in items:
                    yield item
            """, select=["R005"])
        assert report.findings == []


class TestMutableDefaultsR006:
    def test_mutable_defaults_flagged(self, lint):
        report = lint("""\
            def f(items=[]):
                return items

            def g(index={}):
                return index

            def h(seen=set()):
                return seen
            """, select=["R006"])
        assert len(report.findings) == 3

    def test_none_default_clean(self, lint):
        report = lint("""\
            def f(items=None, name="x", count=0):
                return items or []
            """, select=["R006"])
        assert report.findings == []
