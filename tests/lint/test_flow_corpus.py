"""The regression corpus: four chaos-found bugs, re-encoded statically.

Each fixture under ``tests/lint/corpus/`` preserves the exact broken
shape a chaos campaign once caught dynamically (PRs 3, 6, and 8), opted
into the flow pass with ``# lint: effect[watch]``. The checker must
flag each with exactly one finding of the expected rule — and the fixed
real tree must stay flow-clean, proving the rules encode the contract
and not the bugs' incidental syntax.
"""

from pathlib import Path

from repro.lint.engine import (diff_against_baseline, load_baseline,
                               run_lint)

CORPUS = Path(__file__).resolve().parent / "corpus"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: fixture -> (expected rule, substring of the expected message)
EXPECTED = {
    "pr3_swift_restart_offset.py": ("R010", "seek(0)"),
    "pr6_readahead_checkpoint.py": ("R008", "at-least-once"),
    "pr8_at_most_once_replay.py": ("R008", "at-most-once output"),
    "pr8_checkpoint_index_zero.py": ("R010", "_checkpoint_index"),
}


class TestCorpusFixtures:
    def test_corpus_is_complete(self):
        found = sorted(p.name for p in CORPUS.glob("*.py"))
        assert found == sorted(EXPECTED)

    def test_each_fixture_yields_exactly_one_expected_finding(self):
        for name, (rule, needle) in sorted(EXPECTED.items()):
            report = run_lint(REPO_ROOT, paths=[CORPUS / name], flow=True)
            assert report.parse_errors == [], name
            assert len(report.findings) == 1, (
                f"{name}: expected exactly one finding, got "
                f"{[(f.rule, f.line, f.message) for f in report.findings]}")
            finding = report.findings[0]
            assert finding.rule == rule, (name, finding)
            assert needle in finding.message, (name, finding)
            assert finding.path.endswith(name)

    def test_fixtures_are_clean_without_the_flow_pass(self):
        # The bugs are ordering bugs: the per-file rules cannot see them.
        report = run_lint(REPO_ROOT, paths=sorted(CORPUS.glob("*.py")),
                          flow=False)
        assert report.findings == []


class TestTheFixedTreeIsFlowClean:
    def test_full_tree_has_no_new_flow_findings(self):
        report = run_lint(REPO_ROOT, flow=True)
        assert report.parse_errors == []
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        diff = diff_against_baseline(report, baseline)
        assert diff.new == [], [
            (f.rule, f.path, f.line, f.message) for f in diff.new]

    def test_committed_baseline_is_minimal(self):
        report = run_lint(REPO_ROOT, flow=True)
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        diff = diff_against_baseline(report, baseline)
        assert diff.stale == []
