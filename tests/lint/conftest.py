"""Shared fixture: lint a source snippet as if it lived in the repo."""

import textwrap

import pytest

from repro.lint.engine import run_lint


@pytest.fixture
def lint(tmp_path):
    """lint(source, filename=..., select=[...], flow=...) -> LintReport.

    Writes the (dedented) snippet under ``tmp_path`` so per-rule path
    exemptions (``repro/runtime/clock.py``, ``benchmarks/`` ...) and the
    flow pass's watched-module scoping (``src/repro/stylus/...``) can be
    exercised by choosing ``filename``.
    """

    def _lint(source, filename="src/repro/mod.py", select=None, flow=False):
        file = tmp_path / filename
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(source), encoding="utf-8")
        return run_lint(tmp_path, paths=[file], select=select, flow=flow)

    return _lint


def rules_hit(report):
    return sorted({finding.rule for finding in report.findings})
