"""Engine behaviour: pragmas, baselines, fingerprints, CLI exit codes."""

import json
import textwrap

from repro.lint.__main__ import main as lint_main
from repro.lint.engine import (diff_against_baseline, load_baseline,
                               prune_baseline, run_lint, write_baseline)

DIRTY = """\
import time

def stamp():
    return time.time()
"""


def write(tmp_path, source, filename="src/repro/mod.py"):
    file = tmp_path / filename
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(source), encoding="utf-8")
    return file


class TestPragmas:
    def test_pragma_suppresses_exactly_one_finding(self, tmp_path):
        file = write(tmp_path, """\
            import time

            def stamp():
                return time.time()  # lint: ignore[R001]

            def stamp2():
                return time.time()
            """)
        report = run_lint(tmp_path, paths=[file], select=["R001"])
        assert report.suppressed == 1
        assert len(report.findings) == 1
        assert report.findings[0].line == 7

    def test_pragma_is_rule_specific(self, tmp_path):
        # An R006 pragma does not excuse the R001 violation on the line.
        file = write(tmp_path, """\
            import time
            t = time.time()  # lint: ignore[R006]
            """)
        report = run_lint(tmp_path, paths=[file], select=["R001"])
        assert report.suppressed == 0
        assert len(report.findings) == 1

    def test_pragma_takes_a_rule_list(self, tmp_path):
        file = write(tmp_path, """\
            import time

            def f(items=[]):
                return time.time()  # lint: ignore[R001, R006]
            """)
        report = run_lint(tmp_path, paths=[file])
        # R006 anchors on the def line, so only R001 is suppressed here —
        # but the list form must parse and match.
        assert report.suppressed == 1
        assert all(f.rule != "R001" for f in report.findings)


class TestPragmaHygiene:
    def p001(self, report):
        return [f for f in report.findings if f.rule == "P001"]

    def test_unused_pragma_is_flagged(self, tmp_path):
        file = write(tmp_path, """\
            def f(clock):
                return clock.now()  # lint: ignore[R001] no wall clock here
            """)
        report = run_lint(tmp_path, paths=[file])
        findings = self.p001(report)
        assert len(findings) == 1
        assert "suppresses nothing" in findings[0].message
        assert "R001" in findings[0].message

    def test_used_pragma_with_rationale_is_clean(self, tmp_path):
        file = write(tmp_path, """\
            import time

            def stamp():
                return time.time()  # lint: ignore[R001] test scaffolding
            """)
        report = run_lint(tmp_path, paths=[file])
        assert self.p001(report) == []
        assert report.suppressed == 1

    def test_missing_rationale_is_flagged_even_when_used(self, tmp_path):
        file = write(tmp_path, """\
            import time

            def stamp():
                return time.time()  # lint: ignore[R001]
            """)
        report = run_lint(tmp_path, paths=[file])
        findings = self.p001(report)
        assert len(findings) == 1
        assert "rationale" in findings[0].message

    def test_inactive_rules_are_not_condemned(self, tmp_path):
        # Under --select R001, an unused ignore[R004] must not be
        # flagged: R004 never ran, so "unused" is unknowable.
        file = write(tmp_path, """\
            def f(x):
                return x  # lint: ignore[R004] handled by caller
            """)
        report = run_lint(tmp_path, paths=[file],
                          select=["R001", "P001"])
        assert self.p001(report) == []

    def test_pragma_in_docstring_is_not_a_pragma(self, tmp_path):
        # The rule table in repro/lint/__init__.py shows a pragma
        # example inside its docstring; tokenizing must not parse it.
        file = write(tmp_path, '''\
            """Example: suppress with  # lint: ignore[R004] reason."""

            def f(clock):
                return clock.now()
            ''')
        report = run_lint(tmp_path, paths=[file])
        assert report.findings == []
        assert report.suppressed == 0

    def test_cross_file_finalize_findings_honour_pragmas(self, tmp_path):
        # R003's near-duplicate detection is a finalize (cross-file)
        # finding; a pragma on its anchor line must now suppress it.
        file = write(tmp_path, """\
            def f(metrics):
                metrics.counter("scribe.read")
                metrics.counter("scribe.reads")  # lint: ignore[R003] plural twin is real
            """)
        report = run_lint(tmp_path, paths=[file])
        assert [f for f in report.findings if f.rule == "R003"] == []
        assert report.suppressed == 1


class TestBaseline:
    def test_round_trip_grandfathers_everything(self, tmp_path):
        file = write(tmp_path, DIRTY)
        report = run_lint(tmp_path, paths=[file])
        assert report.findings
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, report)
        baseline = load_baseline(baseline_path)
        diff = diff_against_baseline(report, baseline)
        assert diff.new == []
        assert len(diff.grandfathered) == len(report.findings)
        assert diff.stale == []

    def test_new_violation_not_covered_by_baseline(self, tmp_path):
        file = write(tmp_path, DIRTY)
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, run_lint(tmp_path, paths=[file]))
        write(tmp_path, DIRTY + "\nx = time.monotonic()\n")
        diff = diff_against_baseline(
            run_lint(tmp_path, paths=[file]), load_baseline(baseline_path))
        assert len(diff.new) == 1
        assert "monotonic" in diff.new[0].snippet

    def test_fixed_finding_reported_stale(self, tmp_path):
        file = write(tmp_path, DIRTY)
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, run_lint(tmp_path, paths=[file]))
        write(tmp_path, "def stamp(clock):\n    return clock.now()\n")
        diff = diff_against_baseline(
            run_lint(tmp_path, paths=[file]), load_baseline(baseline_path))
        assert diff.new == []
        assert len(diff.stale) == 1

    def test_fingerprints_survive_unrelated_line_shifts(self, tmp_path):
        file = write(tmp_path, DIRTY)
        before = run_lint(tmp_path, paths=[file]).fingerprints()
        write(tmp_path, "# a new comment\n\n" + DIRTY)
        after = run_lint(tmp_path, paths=[file]).fingerprints()
        assert set(before) == set(after)

    def test_repo_baseline_matches_format(self, tmp_path):
        # The committed baseline must stay loadable (version pinned).
        write_baseline(tmp_path / "b.json", run_lint(tmp_path, paths=[]))
        payload = json.loads((tmp_path / "b.json").read_text())
        assert payload["version"] == 1
        assert payload["findings"] == []


class TestPruneBaseline:
    def test_prune_drops_only_stale_fingerprints(self, tmp_path):
        file = write(tmp_path, DIRTY + "\nx = time.monotonic()\n")
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, run_lint(tmp_path, paths=[file]))
        assert len(load_baseline(baseline_path)) == 2
        # Fix one of the two violations; its fingerprint goes stale.
        write(tmp_path, DIRTY)
        stale = prune_baseline(baseline_path,
                               run_lint(tmp_path, paths=[file]))
        assert len(stale) == 1
        assert "monotonic" in stale[0]["snippet"]
        kept = load_baseline(baseline_path)
        assert len(kept) == 1
        # The pruned file still grandfathers the remaining finding.
        diff = diff_against_baseline(run_lint(tmp_path, paths=[file]), kept)
        assert diff.new == []
        assert diff.stale == []

    def test_dry_run_reports_without_rewriting(self, tmp_path):
        file = write(tmp_path, DIRTY)
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, run_lint(tmp_path, paths=[file]))
        write(tmp_path, "def f(clock):\n    return clock.now()\n")
        before = baseline_path.read_text()
        stale = prune_baseline(baseline_path,
                               run_lint(tmp_path, paths=[file]),
                               dry_run=True)
        assert len(stale) == 1
        assert baseline_path.read_text() == before

    def test_cli_check_fails_on_stale_then_prune_fixes(self, tmp_path,
                                                       capsys):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        file = write(tmp_path, DIRTY)
        assert lint_main(["--root", str(tmp_path), "--write-baseline"]) == 0
        write(tmp_path, "def f(clock):\n    return clock.now()\n")
        assert lint_main(["--root", str(tmp_path), "--prune-baseline",
                          "--check"]) == 1
        assert lint_main(["--root", str(tmp_path), "--prune-baseline"]) == 0
        assert lint_main(["--root", str(tmp_path), "--prune-baseline",
                          "--check"]) == 0
        capsys.readouterr()
        assert load_baseline(tmp_path / "lint-baseline.json") == {}


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "def f(clock):\n    return clock.now()\n")
        code = lint_main(["--root", str(tmp_path), "--no-baseline"])
        capsys.readouterr()
        assert code == 0

    def test_synthetic_violation_exits_nonzero(self, tmp_path, capsys):
        write(tmp_path, DIRTY)
        code = lint_main(["--root", str(tmp_path), "--no-baseline",
                          "--check"])
        out = capsys.readouterr().out
        assert code == 1
        assert "R001" in out

    def test_write_baseline_then_check_exits_zero(self, tmp_path, capsys):
        write(tmp_path, DIRTY)
        assert lint_main(["--root", str(tmp_path), "--write-baseline"]) == 0
        assert lint_main(["--root", str(tmp_path), "--check"]) == 0
        capsys.readouterr()

    def test_json_output_lists_new_findings(self, tmp_path, capsys):
        write(tmp_path, DIRTY)
        code = lint_main(["--root", str(tmp_path), "--no-baseline",
                          "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["new"][0]["rule"] == "R001"

    def test_unknown_rule_select_exits_two(self, tmp_path, capsys):
        write(tmp_path, "x = 1\n")
        code = lint_main(["--root", str(tmp_path), "--select", "R999"])
        capsys.readouterr()
        assert code == 2

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        write(tmp_path, "def broken(:\n")
        code = lint_main(["--root", str(tmp_path), "--no-baseline"])
        capsys.readouterr()
        assert code == 2

    def test_rules_flag_is_an_alias_of_select(self, tmp_path, capsys):
        write(tmp_path, DIRTY)
        code = lint_main(["--root", str(tmp_path), "--no-baseline",
                          "--rules", "R002", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0  # R001 violation is out of the scoped rule set
        assert payload["new"] == []

    def test_flow_flag_runs_the_flow_rules(self, tmp_path, capsys):
        write(tmp_path, """\
            class T:
                def restart(self):
                    self._checkpoint_index = 0
            """, filename="src/repro/stylus/mod.py")
        assert lint_main(["--root", str(tmp_path), "--no-baseline"]) == 0
        capsys.readouterr()
        code = lint_main(["--root", str(tmp_path), "--no-baseline",
                          "--flow", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["new"][0]["rule"] == "R010"
