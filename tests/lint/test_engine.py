"""Engine behaviour: pragmas, baselines, fingerprints, CLI exit codes."""

import json
import textwrap

from repro.lint.__main__ import main as lint_main
from repro.lint.engine import (diff_against_baseline, load_baseline, run_lint,
                               write_baseline)

DIRTY = """\
import time

def stamp():
    return time.time()
"""


def write(tmp_path, source, filename="src/repro/mod.py"):
    file = tmp_path / filename
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(source), encoding="utf-8")
    return file


class TestPragmas:
    def test_pragma_suppresses_exactly_one_finding(self, tmp_path):
        file = write(tmp_path, """\
            import time

            def stamp():
                return time.time()  # lint: ignore[R001]

            def stamp2():
                return time.time()
            """)
        report = run_lint(tmp_path, paths=[file], select=["R001"])
        assert report.suppressed == 1
        assert len(report.findings) == 1
        assert report.findings[0].line == 7

    def test_pragma_is_rule_specific(self, tmp_path):
        # An R006 pragma does not excuse the R001 violation on the line.
        file = write(tmp_path, """\
            import time
            t = time.time()  # lint: ignore[R006]
            """)
        report = run_lint(tmp_path, paths=[file], select=["R001"])
        assert report.suppressed == 0
        assert len(report.findings) == 1

    def test_pragma_takes_a_rule_list(self, tmp_path):
        file = write(tmp_path, """\
            import time

            def f(items=[]):
                return time.time()  # lint: ignore[R001, R006]
            """)
        report = run_lint(tmp_path, paths=[file])
        # R006 anchors on the def line, so only R001 is suppressed here —
        # but the list form must parse and match.
        assert report.suppressed == 1
        assert all(f.rule != "R001" for f in report.findings)


class TestBaseline:
    def test_round_trip_grandfathers_everything(self, tmp_path):
        file = write(tmp_path, DIRTY)
        report = run_lint(tmp_path, paths=[file])
        assert report.findings
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, report)
        baseline = load_baseline(baseline_path)
        diff = diff_against_baseline(report, baseline)
        assert diff.new == []
        assert len(diff.grandfathered) == len(report.findings)
        assert diff.stale == []

    def test_new_violation_not_covered_by_baseline(self, tmp_path):
        file = write(tmp_path, DIRTY)
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, run_lint(tmp_path, paths=[file]))
        write(tmp_path, DIRTY + "\nx = time.monotonic()\n")
        diff = diff_against_baseline(
            run_lint(tmp_path, paths=[file]), load_baseline(baseline_path))
        assert len(diff.new) == 1
        assert "monotonic" in diff.new[0].snippet

    def test_fixed_finding_reported_stale(self, tmp_path):
        file = write(tmp_path, DIRTY)
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, run_lint(tmp_path, paths=[file]))
        write(tmp_path, "def stamp(clock):\n    return clock.now()\n")
        diff = diff_against_baseline(
            run_lint(tmp_path, paths=[file]), load_baseline(baseline_path))
        assert diff.new == []
        assert len(diff.stale) == 1

    def test_fingerprints_survive_unrelated_line_shifts(self, tmp_path):
        file = write(tmp_path, DIRTY)
        before = run_lint(tmp_path, paths=[file]).fingerprints()
        write(tmp_path, "# a new comment\n\n" + DIRTY)
        after = run_lint(tmp_path, paths=[file]).fingerprints()
        assert set(before) == set(after)

    def test_repo_baseline_matches_format(self, tmp_path):
        # The committed baseline must stay loadable (version pinned).
        write_baseline(tmp_path / "b.json", run_lint(tmp_path, paths=[]))
        payload = json.loads((tmp_path / "b.json").read_text())
        assert payload["version"] == 1
        assert payload["findings"] == []


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "def f(clock):\n    return clock.now()\n")
        code = lint_main(["--root", str(tmp_path), "--no-baseline"])
        capsys.readouterr()
        assert code == 0

    def test_synthetic_violation_exits_nonzero(self, tmp_path, capsys):
        write(tmp_path, DIRTY)
        code = lint_main(["--root", str(tmp_path), "--no-baseline",
                          "--check"])
        out = capsys.readouterr().out
        assert code == 1
        assert "R001" in out

    def test_write_baseline_then_check_exits_zero(self, tmp_path, capsys):
        write(tmp_path, DIRTY)
        assert lint_main(["--root", str(tmp_path), "--write-baseline"]) == 0
        assert lint_main(["--root", str(tmp_path), "--check"]) == 0
        capsys.readouterr()

    def test_json_output_lists_new_findings(self, tmp_path, capsys):
        write(tmp_path, DIRTY)
        code = lint_main(["--root", str(tmp_path), "--no-baseline",
                          "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["new"][0]["rule"] == "R001"

    def test_unknown_rule_select_exits_two(self, tmp_path, capsys):
        write(tmp_path, "x = 1\n")
        code = lint_main(["--root", str(tmp_path), "--select", "R999"])
        capsys.readouterr()
        assert code == 2

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        write(tmp_path, "def broken(:\n")
        code = lint_main(["--root", str(tmp_path), "--no-baseline"])
        capsys.readouterr()
        assert code == 2
