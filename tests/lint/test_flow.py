"""reproflow unit tests: classification, guards, splicing, R007–R010.

Snippets are written under ``src/repro/stylus/`` (a watched directory)
unless a test is specifically about scoping. Each rule gets a broken
shape and its fixed counterpart — the checker must flag the first and
stay silent on the second.
"""

from tests.lint.conftest import rules_hit

STYLUS = "src/repro/stylus/mod.py"


def flow_rules(report):
    return [f for f in report.findings if f.rule in ("R007", "R008",
                                                     "R009", "R010")]


class TestScopingAndGating:
    def test_flow_rules_off_by_default(self, lint):
        report = lint("""\
            class T:
                def restart(self):
                    self._checkpoint_index = 0
            """, filename=STYLUS)
        assert flow_rules(report) == []

    def test_flow_flag_enables_them(self, lint):
        report = lint("""\
            class T:
                def restart(self):
                    self._checkpoint_index = 0
            """, filename=STYLUS, flow=True)
        assert rules_hit(report) == ["R010"]

    def test_select_enables_a_flow_rule_without_the_flag(self, lint):
        report = lint("""\
            class T:
                def restart(self):
                    self._checkpoint_index = 0
            """, filename=STYLUS, select=["R010"])
        assert rules_hit(report) == ["R010"]

    def test_unwatched_modules_are_skipped(self, lint):
        report = lint("""\
            class T:
                def restart(self):
                    self._checkpoint_index = 0
            """, filename="src/repro/laser/mod.py", flow=True)
        assert flow_rules(report) == []

    def test_watch_marker_opts_a_file_in(self, lint):
        report = lint("""\
            # lint: effect[watch]
            class T:
                def restart(self):
                    self._checkpoint_index = 0
            """, filename="src/other/mod.py", flow=True)
        assert rules_hit(report) == ["R010"]


class TestR007ExactlyOncePublishOrder:
    BROKEN = """\
        from repro.core.semantics import StateSemantics

        class T:
            def _checkpoint(self):
                if self.semantics.state == StateSemantics.EXACTLY_ONCE:
                    self._writer.write(self._pending)
                    self.state_backend.save_atomic_with_outputs(
                        self._state, self._offset, [])
        """

    def test_publish_before_commit_is_flagged(self, lint):
        report = lint(self.BROKEN, filename=STYLUS, flow=True)
        assert rules_hit(report) == ["R007"]

    def test_publish_after_commit_is_clean(self, lint):
        report = lint("""\
            from repro.core.semantics import StateSemantics

            class T:
                def _checkpoint(self):
                    if self.semantics.state == StateSemantics.EXACTLY_ONCE:
                        self.state_backend.save_atomic_with_outputs(
                            self._state, self._offset, [])
                        self._writer.write(self._pending)
            """, filename=STYLUS, flow=True)
        assert flow_rules(report) == []

    def test_at_least_once_guard_does_not_trip_it(self, lint):
        report = lint("""\
            from repro.core.semantics import StateSemantics

            class T:
                def _checkpoint(self):
                    if self.semantics.state == StateSemantics.AT_LEAST_ONCE:
                        self._writer.write(self._pending)
                        self.state_backend.save_state(self._state)
                        self.state_backend.save_offset(self._offset)
            """, filename=STYLUS, flow=True)
        assert flow_rules(report) == []

    def test_interprocedural_publish_is_seen_through_helpers(self, lint):
        # The publish lives two calls away from the commit.
        report = lint("""\
            from repro.core.semantics import StateSemantics

            class T:
                def _flush(self):
                    self._emit_pending()

                def _emit_pending(self):
                    self._writer.write(self._pending)

                def _checkpoint(self):
                    if self.semantics.state == StateSemantics.EXACTLY_ONCE:
                        self._flush()
                        self.state_backend.save_atomic_with_outputs(
                            self._state, self._offset, [])
            """, filename=STYLUS, flow=True)
        assert "R007" in rules_hit(report)

    def test_pragma_suppresses_a_flow_finding(self, lint):
        source = self.BROKEN.replace(
            "self._writer.write(self._pending)",
            "self._writer.write(self._pending)"
            "  # lint: ignore[R007] transaction is simulated here")
        report = lint(source, filename=STYLUS, flow=True)
        assert flow_rules(report) == []
        assert report.suppressed == 1


class TestR008SaveOrder:
    def test_alo_offset_before_state_is_flagged(self, lint):
        report = lint("""\
            from repro.core.semantics import StateSemantics

            class T:
                def _checkpoint(self):
                    if self.semantics.state == StateSemantics.AT_LEAST_ONCE:
                        self.state_backend.save_offset(self._offset)
                        self.state_backend.save_state(self._state)
            """, filename=STYLUS, flow=True)
        assert rules_hit(report) == ["R008"]

    def test_alo_state_before_offset_is_clean(self, lint):
        report = lint("""\
            from repro.core.semantics import StateSemantics

            class T:
                def _checkpoint(self):
                    if self.semantics.state == StateSemantics.AT_LEAST_ONCE:
                        self.state_backend.save_state(self._state)
                        self.state_backend.save_offset(self._offset)
            """, filename=STYLUS, flow=True)
        assert flow_rules(report) == []

    def test_amo_state_before_offset_is_flagged(self, lint):
        report = lint("""\
            from repro.core.semantics import StateSemantics

            class T:
                def _checkpoint(self):
                    if self.semantics.state == StateSemantics.AT_MOST_ONCE:
                        self.state_backend.save_state(self._state)
                        self.state_backend.save_offset(self._offset)
            """, filename=STYLUS, flow=True)
        assert rules_hit(report) == ["R008"]

    def test_amo_publish_without_offset_advance_is_flagged(self, lint):
        report = lint("""\
            from repro.core.semantics import OutputSemantics

            class T:
                def adopt(self, task):
                    if task.semantics.output is OutputSemantics.AT_MOST_ONCE:
                        self._writer.write(self._history)
            """, filename=STYLUS, flow=True)
        assert rules_hit(report) == ["R008"]

    def test_amo_publish_after_offset_advance_is_clean(self, lint):
        report = lint("""\
            from repro.core.semantics import OutputSemantics

            class T:
                def adopt(self, task):
                    if task.semantics.output is OutputSemantics.AT_MOST_ONCE:
                        self.state_backend.save_offset(self._tail)
                        self._writer.write(self._fresh)
            """, filename=STYLUS, flow=True)
        assert flow_rules(report) == []

    def test_sibling_branch_saves_do_not_shadow(self, lint):
        # The at-most-once branch's offset advance must not satisfy the
        # at-least-once branch's ordering: environments are disjoint.
        report = lint("""\
            from repro.core.semantics import StateSemantics

            class T:
                def _checkpoint(self):
                    if self.semantics.state == StateSemantics.AT_MOST_ONCE:
                        self.state_backend.save_offset(self._offset)
                    elif self.semantics.state == StateSemantics.AT_LEAST_ONCE:
                        self.state_backend.save_offset(self._offset)
                        self.state_backend.save_state(self._state)
            """, filename=STYLUS, flow=True)
        assert rules_hit(report) == ["R008"]
        assert len(flow_rules(report)) == 1

    def test_retrier_indirection_is_unwrapped(self, lint):
        report = lint("""\
            from repro.core.semantics import StateSemantics

            class T:
                def _checkpoint(self):
                    if self.semantics.state == StateSemantics.AT_LEAST_ONCE:
                        self._retrier.call(self.state_backend.save_offset,
                                           self._offset)
                        self._retrier.call(self.state_backend.save_state,
                                           self._state)
            """, filename=STYLUS, flow=True)
        assert rules_hit(report) == ["R008"]

    def test_class_level_assumption_narrows_every_method(self, lint):
        report = lint("""\
            class T:  # lint: effect[state=at_least_once]
                def _checkpoint(self):
                    self.state_backend.save_offset(self._offset)
                    self.state_backend.save_state(self._state)
            """, filename=STYLUS, flow=True)
        assert rules_hit(report) == ["R008"]

    def test_effect_none_annotation_exempts_a_line(self, lint):
        report = lint("""\
            class T:  # lint: effect[state=at_least_once]
                def _checkpoint(self):
                    self.state_backend.save_offset(self._offset)  # lint: effect[none]
                    self.state_backend.save_state(self._state)
            """, filename=STYLUS, flow=True)
        assert flow_rules(report) == []


class TestR009Counters:
    def test_granted_without_partner_is_flagged(self, lint):
        report = lint("""\
            class Gate:
                def __init__(self, metrics):
                    self._granted = metrics.counter("scribe.credits.granted")
            """, filename="src/repro/scribe/mod.py", flow=True)
        assert rules_hit(report) == ["R009"]

    def test_granted_with_blocked_partner_is_clean(self, lint):
        report = lint("""\
            class Gate:
                def __init__(self, metrics):
                    self._granted = metrics.counter("scribe.credits.granted")
                    self._blocked = metrics.counter("scribe.credits.blocked")
            """, filename="src/repro/scribe/mod.py", flow=True)
        assert flow_rules(report) == []

    def test_degraded_handler_without_counter_is_flagged(self, lint):
        report = lint("""\
            class T:
                def _defer_checkpoint(self):
                    self._events_since_checkpoint = 0
            """, filename=STYLUS, flow=True)
        assert rules_hit(report) == ["R009"]

    def test_degraded_handler_with_counter_is_clean(self, lint):
        report = lint("""\
            class T:
                def _defer_checkpoint(self):
                    self._deferred_counter.increment()
                    self._events_since_checkpoint = 0
            """, filename=STYLUS, flow=True)
        assert flow_rules(report) == []

    def test_degraded_marker_annotation(self, lint):
        report = lint("""\
            class T:
                def _quiesce(self):  # lint: effect[degraded]
                    self._events_since_checkpoint = 0
            """, filename=STYLUS, flow=True)
        assert rules_hit(report) == ["R009"]

    def test_counter_reached_through_a_helper_counts(self, lint):
        report = lint("""\
            class T:
                def _count_it(self):
                    self._deferred_counter.increment()

                def _defer_checkpoint(self):
                    self._count_it()
            """, filename=STYLUS, flow=True)
        assert flow_rules(report) == []


class TestR010RestartPaths:
    def test_seek_zero_in_restart_is_flagged(self, lint):
        report = lint("""\
            class T:
                def restart(self):
                    self._reader.seek(0)
            """, filename=STYLUS, flow=True)
        assert rules_hit(report) == ["R010"]

    def test_restart_from_durable_state_is_clean(self, lint):
        report = lint("""\
            class T:
                def restart(self):
                    state, offset = self.state_backend.load()
                    self._checkpoint_index = (
                        self.state_backend.last_checkpoint_index())
                    self._reader.seek(offset)
                    self._next_offset = offset
            """, filename=STYLUS, flow=True)
        assert flow_rules(report) == []

    def test_zero_index_outside_restart_paths_is_fine(self, lint):
        # __init__ legitimately starts numbering at zero.
        report = lint("""\
            class T:
                def __init__(self):
                    self._checkpoint_index = 0
            """, filename=STYLUS, flow=True)
        assert flow_rules(report) == []

    def test_restart_marker_annotation(self, lint):
        report = lint("""\
            class T:
                def rebuild(self):  # lint: effect[restart]
                    self._next_offset = 0
            """, filename=STYLUS, flow=True)
        assert rules_hit(report) == ["R010"]

    def test_adopt_and_recover_names_are_restart_like(self, lint):
        report = lint("""\
            class T:
                def adopt_bucket(self, bucket):
                    self._checkpoint_index = 0

                def _recover(self):
                    self._next_offset = 0
            """, filename=STYLUS, flow=True)
        assert len(flow_rules(report)) == 2


class TestAgainstTheRealTree:
    def test_list_rules_includes_flow_rules(self):
        from repro.lint.engine import registered_rules
        ids = set(registered_rules())
        assert {"R007", "R008", "R009", "R010", "P001"} <= ids

    def test_flow_summary_sees_the_stylus_checkpoint_protocol(self):
        # The real Stylus checkpoint must summarise to guarded events:
        # a commit only under exactly-once, offset/state saves under the
        # two other modes — proof the guard recognition matches the code
        # this analysis was built for.
        import ast
        from pathlib import Path

        from repro.lint import flow
        from repro.lint.engine import FileContext

        path = Path(__file__).resolve().parents[2] / "src/repro/stylus/engine.py"
        source = path.read_text(encoding="utf-8")
        ctx = FileContext("src/repro/stylus/engine.py", source,
                          ast.parse(source))
        index, summarizer = flow._module_state(ctx)
        events = summarizer.summary("StylusTask._checkpoint")
        kinds = {event.kind for event in events}
        assert flow.CHECKPOINT_COMMIT in kinds
        assert flow.OFFSET_ADVANCE in kinds
        assert flow.STATE_SAVE in kinds
        assert flow.PUBLISH in kinds
        commits = [e for e in events if e.kind == flow.CHECKPOINT_COMMIT]
        assert all(e.states == frozenset({"exactly_once"}) for e in commits)
