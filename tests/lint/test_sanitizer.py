"""Determinism sanitizer: double-run digests must be byte-identical."""

import pytest

from repro.lint.sanitizer import format_report, run_once, run_sanitizer

pytestmark = pytest.mark.determinism


class TestSanitizer:
    def test_double_run_is_deterministic(self):
        report = run_sanitizer(seed=0, runs=2)
        assert report.deterministic, format_report(report)
        assert report.differences == []

    def test_digest_covers_metrics_offsets_and_state(self):
        run = run_once(seed=0)
        assert run.metrics_snapshot
        assert run.scribe_offsets
        assert run.state_digests
        assert len(run.combined_digest()) == 64

    def test_different_seeds_diverge(self):
        # The campaign must actually depend on the seed — otherwise a
        # "deterministic" verdict would be vacuous.
        assert run_once(seed=0).combined_digest() \
            != run_once(seed=1).combined_digest()

    def test_chaos_is_accounted(self):
        # The sanitizer campaign injects HDFS outages; every give-up must
        # surface in the degraded-mode counter chain (the R004 invariant).
        snapshot = run_once(seed=0).metrics_snapshot
        assert snapshot.get("hdfs.unavailable_errors", 0) > 0
        give_ups = snapshot.get("backup.retry.give_ups", 0)
        assert snapshot.get("backup.snapshot.skipped", 0) == give_ups
