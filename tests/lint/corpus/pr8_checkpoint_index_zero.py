# lint: effect[watch]
"""Regression corpus: the PR 8 checkpoint-numbering restart bug
(expects R010).

Also from PR 8's macro chaos campaign: an adopted exactly-once task
restarted its transactional checkpoint numbering at index 0, overwriting
the previous owner's committed output rows. The fixed tree derives the
index from ``state_backend.last_checkpoint_index()`` (the durable
``out:`` rows are the source of truth); this fixture preserves the
literal-zero restart.
"""


class TaskWithPr8IndexBug:

    def __init__(self, state_backend):
        self.state_backend = state_backend
        self.crashed = False

    def restart(self):
        state, offset = self.state_backend.load()
        self._state = state
        # BUG: restarts transactional checkpoint numbering at zero; an
        # adopted task overwrites the previous owner's committed rows.
        self._checkpoint_index = 0
        self.crashed = False
