# lint: effect[watch]
"""Regression corpus: the PR 3 Swift restart-offset bug (expects R010).

The chaos campaign of PR 3 found ``SwiftApp.restart`` re-seeking the
reader to absolute offset 0 when no checkpoint existed, instead of the
first *retained* offset — overstating lag and replaying trimmed history
on an at-least-once consumer. The fixed tree resumes from the saved
checkpoint or ``seek_to_start()``; this fixture preserves the broken
shape so the flow checker must keep flagging it.
"""


class SwiftAppWithPr3Bug:  # lint: effect[state=at_least_once, output=at_least_once]

    def __init__(self, reader, checkpoints):
        self._reader = reader
        self.checkpoints = checkpoints
        self.crashed = False

    def restart(self):
        self.crashed = False
        # BUG: ignores the saved checkpoint and retention trimming.
        self._reader.seek(0)
