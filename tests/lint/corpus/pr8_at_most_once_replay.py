# lint: effect[watch]
"""Regression corpus: the PR 8 at-most-once adoption replay bug
(expects R008).

The macro chaos campaign of PR 8 caught bucket adoption replaying — and
re-publishing — history the previous shard owner had already emitted
under at-most-once output. The fixed ``StylusShardWorker.adopt_bucket``
seals the offset at the bucket tail (advancing it *before* any side
effect) and counts the skipped span; this fixture preserves the broken
publish-without-offset-advance shape.
"""

from repro.core.semantics import OutputSemantics


class ShardWorkerWithPr8ReplayBug:

    def __init__(self, scribe, writer):
        self.scribe = scribe
        self._writer = writer

    def adopt_bucket(self, bucket, task):
        if task.semantics.output is OutputSemantics.AT_MOST_ONCE:
            # BUG: replays and re-emits history the old owner already
            # published instead of sealing the offset at the tail.
            for record in self.scribe.replay(bucket):
                self._writer.write(record)
