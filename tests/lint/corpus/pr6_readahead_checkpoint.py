# lint: effect[watch]
"""Regression corpus: the PR 6 read-ahead mid-batch checkpoint bug
(expects R008).

PR 6's compiled Puma path checkpointed the *reader's* read-ahead
position instead of the last fully-processed offset, and did so before
the state rows were flushed: under at-least-once semantics a crash
between the offset ack and the state save lost input the offset had
already acknowledged. The fixed tree tracks ``_next_offset`` explicitly
and saves state first; this fixture preserves the broken order.
"""

from repro.core.semantics import StateSemantics


class TaskWithPr6Bug:

    def __init__(self, semantics, state_backend, reader):
        self.semantics = semantics
        self.state_backend = state_backend
        self._reader = reader
        self._state = {}

    def _checkpoint(self):
        if self.semantics.state == StateSemantics.AT_LEAST_ONCE:
            # BUG: acks the reader's read-ahead position before the
            # state save; a crash between the two loses acked input.
            self.state_backend.save_offset(self._reader.position)
            self.state_backend.save_state(self._state)
