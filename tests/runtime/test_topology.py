"""Tests for the sharded multi-process topology and live rebalancing."""

import pytest

from repro.core.costs import CostModel
from repro.core.semantics import SemanticsPolicy
from repro.errors import ConfigError, SimulationError
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.cluster import Cluster
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.scheduler import Scheduler
from repro.runtime.topology import (ShardedTopology, puma_worker_factory,
                                    stylus_worker_factory)
from repro.scribe.reader import CategoryReader
from repro.storage.backup import BackupEngine
from repro.storage.hbase import HBaseTable
from repro.storage.hdfs import HdfsBlobStore
from tests.conftest import write_events
from tests.stylus.helpers import CountingProcessor, ForwardingProcessor

NUM_BUCKETS = 8


@pytest.fixture
def cluster() -> Cluster:
    cluster = Cluster()
    for i in range(4):
        cluster.add_machine(f"m{i}")
    return cluster


def make_topology(cluster, scribe, num_shards=2, name="t",
                  num_buckets=NUM_BUCKETS, **kwargs):
    scribe.ensure_category("events", num_buckets)
    hdfs = HdfsBlobStore(clock=scribe.clock)
    factory = stylus_worker_factory(
        scribe, "events", CountingProcessor, BackupEngine(hdfs),
        state_prefix=name, clock=scribe.clock,
    )
    return ShardedTopology(name, cluster, scribe, "events", num_shards,
                           factory, **kwargs)


def total_count(topology) -> int:
    """Durable event count summed over every bucket's state store."""
    topology.checkpoint_all()
    total = 0
    for shard_name in topology.shard_names():
        worker = topology.worker(shard_name)
        for bucket in worker.buckets():
            state, _ = worker.task(bucket).state_backend.load()
            if state is not None:
                total += state["count"]
    return total


class TestShape:
    def test_initial_assignment_partitions_buckets(self, cluster, scribe):
        topology = make_topology(cluster, scribe, num_shards=3)
        assert topology.shard_names() == ["t-s000", "t-s001", "t-s002"]
        owned = []
        for shard_name in topology.shard_names():
            buckets = topology.worker(shard_name).buckets()
            owned.extend(buckets)
            for bucket in buckets:
                assert topology.owner_of(bucket) == shard_name
        assert sorted(owned) == list(range(NUM_BUCKETS))

    def test_every_shard_is_a_cluster_process(self, cluster, scribe):
        topology = make_topology(cluster, scribe, num_shards=2)
        for shard_name in topology.shard_names():
            process = cluster.process(shard_name)
            assert process.running
            assert topology.process(shard_name) is process

    def test_shard_count_bounds(self, cluster, scribe):
        with pytest.raises(ConfigError):
            make_topology(cluster, scribe, num_shards=0)
        with pytest.raises(ConfigError):
            make_topology(cluster, scribe, num_shards=NUM_BUCKETS + 1)

    def test_owner_of_rejects_unknown_bucket(self, cluster, scribe):
        topology = make_topology(cluster, scribe)
        with pytest.raises(ConfigError):
            topology.owner_of(NUM_BUCKETS)

    def test_shards_gauge_tracks_count(self, cluster, scribe):
        metrics = MetricsRegistry()
        topology = make_topology(cluster, scribe, num_shards=2,
                                 metrics=metrics)
        assert metrics.snapshot()["topology.t.shards"] == 2
        topology.rebalance(4)
        assert metrics.snapshot()["topology.t.shards"] == 4


class TestPumping:
    def test_drain_processes_everything_once(self, cluster, scribe):
        topology = make_topology(cluster, scribe, num_shards=2)
        write_events(scribe, "events", 200)
        assert topology.lag_messages() == 200
        assert topology.drain() == 200
        assert topology.lag_messages() == 0
        assert total_count(topology) == 200

    def test_scheduler_drives_pumps(self, cluster, scribe, clock):
        topology = make_topology(cluster, scribe, num_shards=2)
        scheduler = Scheduler(clock)
        topology.schedule_on(scheduler, interval=1.0, max_messages=50)
        write_events(scribe, "events", 120)
        scheduler.run_until(5.0)
        assert topology.lag_messages() == 0
        assert total_count(topology) == 120

    def test_crashed_shard_is_skipped_then_catches_up(self, cluster, scribe):
        topology = make_topology(cluster, scribe, num_shards=2)
        write_events(scribe, "events", 100)
        cluster.crash_process("t-s000")
        pumped = topology.drain()
        assert pumped < 100  # the dead shard's buckets wait
        assert topology.lag_messages() > 0
        cluster.restart_process("t-s000")
        topology.drain()
        assert topology.lag_messages() == 0
        assert total_count(topology) == 100


class TestRebalance:
    def test_split_moves_only_reassigned_buckets(self, cluster, scribe):
        topology = make_topology(cluster, scribe, num_shards=2)
        before = topology.assignment()
        moved = topology.rebalance(4)
        after = topology.assignment()
        assert topology.num_shards == 4
        assert moved == sorted(b for b in before if before[b] != after[b])
        assert 0 < len(moved) < NUM_BUCKETS  # some moved, not all
        for bucket in moved:
            assert after[bucket] in {"t-s002", "t-s003"}

    def test_split_preserves_counts_mid_stream(self, cluster, scribe):
        topology = make_topology(cluster, scribe, num_shards=2)
        write_events(scribe, "events", 150)
        topology.drain()
        topology.rebalance(4)
        write_events(scribe, "events", 150, start_time=150.0)
        topology.drain()
        assert total_count(topology) == 300

    def test_merge_retires_emptied_shards(self, cluster, scribe):
        topology = make_topology(cluster, scribe, num_shards=4)
        write_events(scribe, "events", 100)
        topology.drain()
        topology.rebalance(2)
        assert topology.shard_names() == ["t-s000", "t-s001"]
        assert cluster.find_process("t-s002") is None
        assert cluster.find_process("t-s003") is None
        topology.drain()
        assert total_count(topology) == 100

    def test_merge_then_split_reuses_shard_names(self, cluster, scribe):
        topology = make_topology(cluster, scribe, num_shards=4)
        write_events(scribe, "events", 80)
        topology.drain()
        topology.rebalance(1)
        topology.rebalance(4)  # respawns t-s001..t-s003
        assert topology.shard_names() == [
            "t-s000", "t-s001", "t-s002", "t-s003"]
        write_events(scribe, "events", 80, start_time=80.0)
        topology.drain()
        assert total_count(topology) == 160

    def test_same_count_is_a_no_op(self, cluster, scribe):
        topology = make_topology(cluster, scribe, num_shards=2)
        assert topology.rebalance(2) == []

    def test_bounds_enforced(self, cluster, scribe):
        topology = make_topology(cluster, scribe, num_shards=2)
        with pytest.raises(ConfigError):
            topology.rebalance(0)
        with pytest.raises(ConfigError):
            topology.rebalance(NUM_BUCKETS + 1)

    def test_rebalance_during_rebalance_rejected(self, cluster, scribe):
        topology = make_topology(cluster, scribe, num_shards=2)
        phases = []

        def hook(phase):
            phases.append(phase)
            with pytest.raises(SimulationError):
                topology.rebalance(2)

        topology.rebalance_fault_hook = hook
        topology.rebalance(4)
        assert phases == ["transfer"]
        assert topology.num_shards == 4  # outer rebalance completed

    def test_counters_track_rebalances(self, cluster, scribe):
        metrics = MetricsRegistry()
        topology = make_topology(cluster, scribe, num_shards=2,
                                 metrics=metrics)
        moved = topology.rebalance(4)
        snapshot = metrics.snapshot()
        assert snapshot["topology.t.rebalances"] == 1
        assert snapshot["topology.t.buckets_moved"] == len(moved)

    def test_handoff_reconciles_credits_for_trimmed_backlog(
            self, cluster, scribe, clock):
        # The wedge this guards against: credits are spent at write time;
        # retention trims a backlog nobody read; the owner dies inside
        # the transfer window with HDFS down, so the adopter falls back
        # to a fresh replay that starts *past* the trimmed history. No
        # future read grants those credits — without reconciliation at
        # adopt time the producer blocks forever on empty buckets.
        from repro.errors import Backpressure

        scribe.create_category("events", NUM_BUCKETS,
                               retention_seconds=30.0)
        hdfs = HdfsBlobStore(clock=clock)
        factory = stylus_worker_factory(
            scribe, "events", CountingProcessor, BackupEngine(hdfs),
            state_prefix="t", clock=clock,
        )
        topology = ShardedTopology("t", cluster, scribe, "events", 2, factory)
        limit = 4
        gate = scribe.enable_backpressure("events", max_outstanding=limit)
        for bucket in range(NUM_BUCKETS):
            for _ in range(limit):
                scribe.write("events", b"x", bucket=bucket)
            with pytest.raises(Backpressure):
                scribe.write("events", b"x", bucket=bucket)

        # The consumers never ran; retention trims the whole backlog.
        clock.advance(120.0)
        assert scribe.run_retention() == NUM_BUCKETS * limit
        with pytest.raises(Backpressure):
            scribe.write("events", b"x", bucket=0)

        # HDFS dies, then the owner dies inside the transfer window: the
        # adopters find no backup and fall back to a fresh replay.
        hdfs.set_available(False)
        topology.rebalance_fault_hook = (
            lambda phase: cluster.crash_process("t-s000"))
        moved = topology.rebalance(4)
        topology.rebalance_fault_hook = None
        assert moved

        # Pre-fix, these writes raised Backpressure forever.
        for bucket in moved:
            scribe.write("events", b"x", bucket=bucket)
            assert gate.outstanding(bucket) == 1

        # Unmoved buckets reconcile on their readers' retention skip.
        cluster.restart_process("t-s000")
        topology.drain()
        snapshot = scribe.metrics.snapshot()
        assert snapshot["scribe.credits.reconciled"] == NUM_BUCKETS * limit
        for bucket in range(NUM_BUCKETS):
            assert gate.outstanding(bucket) == 0
            scribe.write("events", b"x", bucket=bucket)

    def test_owner_killed_mid_transfer_loses_nothing(self, cluster, scribe):
        topology = make_topology(cluster, scribe, num_shards=2)
        write_events(scribe, "events", 120)
        topology.pump_all(30)  # partial progress, some of it uncheckpointed

        def hook(phase):
            # Kill a surviving owner inside the handoff window.
            cluster.crash_process("t-s000")

        topology.rebalance_fault_hook = hook
        topology.rebalance(4)
        topology.rebalance_fault_hook = None
        cluster.restart_process("t-s000")
        topology.drain()
        assert total_count(topology) == 120


class TestModeledScaling:
    def test_more_shards_shrink_the_makespan(self, cluster, scribe):
        # The same input drained by 1 shard vs 4: per-process timelines
        # make the makespan the busiest shard, so 4 shards should cut it
        # by well over half (consistent hashing leaves some skew).
        cost = CostModel()
        scribe.ensure_category("events", 32)
        write_events(scribe, "events", 1200)
        single = make_topology(cluster, scribe, num_shards=1, name="one",
                               num_buckets=32, cost_model=cost,
                               ring_replicas=128)
        quad = make_topology(cluster, scribe, num_shards=4, name="four",
                             num_buckets=32, cost_model=cost,
                             ring_replicas=128)
        single.drain()
        quad.drain()
        assert single.modeled_elapsed() == pytest.approx(
            1200 * cost.cpu_per_event)
        assert single.modeled_elapsed() / quad.modeled_elapsed() > 2.0

    def test_hot_shard_skew_is_visible_in_cost_gauges(self, cluster, scribe):
        # A hot key drives every event onto one bucket: the makespan
        # alone can't distinguish "cluster busy" from "one shard
        # buried", so the per-shard cost gauges must expose the skew.
        cost = CostModel()
        metrics = MetricsRegistry()
        topology = make_topology(cluster, scribe, num_shards=4, name="hot",
                                 metrics=metrics, cost_model=cost)
        for i in range(400):
            scribe.write_record("events", {"event_time": float(i), "seq": i},
                                bucket=0)
        topology.drain()
        costs = topology.shard_costs()
        assert len(costs) == 4
        assert max(costs.values()) == pytest.approx(topology.modeled_elapsed())
        snapshot = metrics.snapshot()
        assert snapshot["topology.hot.shard_cost_max"] == pytest.approx(
            topology.modeled_elapsed())
        # One shard did all the work: max / mean over 4 shards is 4.
        assert snapshot["topology.hot.shard_cost_imbalance"] == pytest.approx(
            4.0)
        assert snapshot["topology.hot.shard_cost_p99"] == \
            snapshot["topology.hot.shard_cost_max"]


PUMA_SOURCE = """
CREATE APPLICATION counts;
CREATE INPUT TABLE clicks(event_time, page, user) FROM SCRIBE("clicks")
TIME event_time;
CREATE TABLE clicks_1min AS
SELECT page, count(*) AS n FROM clicks [1 minute];
"""


class TestPumaWorkers:
    def test_split_preserves_aggregates(self, cluster, scribe):
        scribe.create_category("clicks", NUM_BUCKETS)
        hbase = HBaseTable("state")
        factory = puma_worker_factory(plan(parse(PUMA_SOURCE)), scribe, hbase,
                                      clock=scribe.clock)
        topology = ShardedTopology("p", cluster, scribe, "clicks", 2, factory)
        for i in range(90):
            scribe.write_record("clicks", {
                "event_time": float(i % 30), "page": "home", "user": f"u{i}",
            }, key=str(i))
        topology.drain()
        topology.rebalance(4)
        for i in range(90):
            scribe.write_record("clicks", {
                "event_time": float(i % 30), "page": "home", "user": f"u{i}",
            }, key=str(i))
        topology.drain()
        topology.checkpoint_all()
        # Same-plan apps share the HBase namespace: any worker sees the
        # merged whole once deltas are flushed.
        worker = topology.worker("p-s000")
        [row] = worker.app.query("clicks_1min", window_start=0.0)
        assert row["n"] == 180


class TestAdoptionSemantics:
    """Regressions the macro chaos campaign flushed out of shard handoff."""

    def make_emitting(self, cluster, scribe, semantics, metrics,
                      num_shards=2, name="e"):
        scribe.ensure_category("events", NUM_BUCKETS)
        scribe.ensure_category("events_out", NUM_BUCKETS)
        hdfs = HdfsBlobStore(clock=scribe.clock)
        factory = stylus_worker_factory(
            scribe, "events", ForwardingProcessor, BackupEngine(hdfs),
            state_prefix=name, clock=scribe.clock, semantics=semantics,
            output_category="events_out", metrics=metrics,
        )
        topology = ShardedTopology(name, cluster, scribe, "events",
                                   num_shards, factory, metrics=metrics)
        return topology, hdfs

    def test_amo_fallback_skips_already_published_history(
            self, cluster, scribe, metrics):
        # An at-most-once task adopted via the no-backup fallback used to
        # replay its bucket from the start and publish the whole history
        # a second time — duplication, the one direction at-most-once
        # must never err in. The fallback now resumes at the tail.
        topology, hdfs = self.make_emitting(
            cluster, scribe, SemanticsPolicy.at_most_once(), metrics)
        write_events(scribe, "events", 80)
        topology.drain()
        topology.checkpoint_all()  # at-most-once publishes post-checkpoint
        assert len(CategoryReader(scribe, "events_out").read_all()) == 80

        hdfs.set_available(False)  # every adoption falls back to fresh
        moved = topology.rebalance(4)
        assert moved
        hdfs.set_available(True)

        for i in range(80, 120):
            scribe.write_record(
                "events", {"event_time": float(i), "seq": i}, key=str(i))
        topology.drain()
        topology.checkpoint_all()
        assert len(CategoryReader(scribe, "events_out").read_all()) == 120
        snapshot = metrics.snapshot()
        assert snapshot["topology.e.adopt_fallbacks"] == len(moved)
        assert snapshot["topology.e.messages_skipped"] > 0

    def test_eo_committed_outputs_survive_adoption(
            self, cluster, scribe, metrics):
        # An adopted exactly-once task used to restart checkpoint
        # numbering at zero, so its first commit overwrote the previous
        # owner's ``out:000000000001`` row — committed outputs silently
        # lost entries while state and offset stayed exact. The index
        # now resumes from the durable rows.
        topology, _ = self.make_emitting(
            cluster, scribe, SemanticsPolicy.exactly_once(), metrics)
        write_events(scribe, "events", 60)
        topology.drain()
        topology.checkpoint_all()
        moved = topology.rebalance(4)  # HDFS up: the restore path
        assert moved
        for i in range(60, 120):
            scribe.write_record(
                "events", {"event_time": float(i), "seq": i}, key=str(i))
        topology.drain()
        topology.checkpoint_all()
        seqs = sorted(
            record["seq"]
            for shard in topology.shard_names()
            for bucket in topology.worker(shard).buckets()
            for record in (topology.worker(shard).task(bucket)
                           .state_backend.committed_outputs())
        )
        assert seqs == list(range(120))
