"""Tests for the metrics registry."""

import pytest

from repro.runtime.clock import SimClock
from repro.runtime.metrics import MetricsRegistry


class TestCounters:
    def test_increment_accumulates(self, metrics):
        metrics.counter("a.b").increment()
        metrics.counter("a.b").increment(4)
        assert metrics.counter("a.b").value == 5

    def test_counters_cannot_decrease(self, metrics):
        with pytest.raises(ValueError):
            metrics.counter("a").increment(-1)

    def test_same_name_is_same_counter(self, metrics):
        assert metrics.counter("x") is metrics.counter("x")


class TestGauges:
    def test_set_replaces_value(self, metrics):
        metrics.gauge("lag").set(10)
        metrics.gauge("lag").set(3)
        assert metrics.gauge("lag").value == 3


class TestTimers:
    def test_record_accumulates(self, metrics):
        metrics.timer("op").record(1.0)
        metrics.timer("op").record(3.0)
        assert metrics.timer("op").count == 2
        assert metrics.timer("op").total_seconds == 4.0
        assert metrics.timer("op").mean_seconds == 2.0

    def test_mean_of_empty_timer_is_zero(self, metrics):
        assert metrics.timer("never").mean_seconds == 0.0

    def test_negative_duration_rejected(self, metrics):
        with pytest.raises(ValueError):
            metrics.timer("op").record(-0.5)

    def test_time_context_uses_clock(self):
        clock = SimClock()
        registry = MetricsRegistry(clock=clock)
        with registry.time("span"):
            clock.advance(2.5)
        assert registry.timer("span").total_seconds == 2.5


class TestSnapshot:
    def test_snapshot_flattens_all_metrics(self, metrics):
        metrics.counter("c").increment(7)
        metrics.gauge("g").set(1.5)
        metrics.timer("t").record(0.5)
        snap = metrics.snapshot()
        assert snap["c"] == 7
        assert snap["g"] == 1.5
        assert snap["t.count"] == 1.0
        assert snap["t.total_seconds"] == 0.5

    def test_find_filters_by_prefix(self, metrics):
        metrics.counter("stylus.a.events").increment()
        metrics.counter("puma.b.events").increment()
        found = metrics.find("stylus.")
        assert list(found) == ["stylus.a.events"]
