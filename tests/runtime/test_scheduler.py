"""Tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.runtime.scheduler import Scheduler


@pytest.fixture
def scheduler():
    return Scheduler()


class TestScheduling:
    def test_events_run_in_timestamp_order(self, scheduler):
        order = []
        scheduler.at(3.0, lambda: order.append("c"))
        scheduler.at(1.0, lambda: order.append("a"))
        scheduler.at(2.0, lambda: order.append("b"))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_fifo(self, scheduler):
        order = []
        scheduler.at(1.0, lambda: order.append("first"))
        scheduler.at(1.0, lambda: order.append("second"))
        scheduler.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self, scheduler):
        seen = []
        scheduler.at(4.5, lambda: seen.append(scheduler.now()))
        scheduler.run()
        assert seen == [4.5]
        assert scheduler.clock.now() == 4.5

    def test_cannot_schedule_in_the_past(self, scheduler):
        scheduler.clock.advance(10.0)
        with pytest.raises(SimulationError):
            scheduler.at(9.0, lambda: None)

    def test_after_is_relative(self, scheduler):
        scheduler.clock.advance(5.0)
        seen = []
        scheduler.after(2.0, lambda: seen.append(scheduler.now()))
        scheduler.run()
        assert seen == [7.0]

    def test_negative_delay_rejected(self, scheduler):
        with pytest.raises(SimulationError):
            scheduler.after(-1.0, lambda: None)


class TestRunUntil:
    def test_runs_only_due_events(self, scheduler):
        fired = []
        scheduler.at(1.0, lambda: fired.append(1))
        scheduler.at(5.0, lambda: fired.append(5))
        scheduler.run_until(3.0)
        assert fired == [1]
        assert scheduler.clock.now() == 3.0
        assert scheduler.pending() == 1

    def test_lands_exactly_on_target(self, scheduler):
        scheduler.run_until(7.25)
        assert scheduler.clock.now() == 7.25

    def test_event_at_boundary_is_included(self, scheduler):
        fired = []
        scheduler.at(3.0, lambda: fired.append(3))
        scheduler.run_until(3.0)
        assert fired == [3]


class TestRecurring:
    def test_every_fires_repeatedly(self, scheduler):
        times = []
        scheduler.every(2.0, lambda: times.append(scheduler.now()))
        scheduler.run_until(7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_start_after_overrides_first_delay(self, scheduler):
        times = []
        scheduler.every(5.0, lambda: times.append(scheduler.now()),
                        start_after=1.0)
        scheduler.run_until(12.0)
        assert times == [1.0, 6.0, 11.0]

    def test_cancel_stops_future_firings(self, scheduler):
        times = []
        handle = scheduler.every(1.0, lambda: times.append(scheduler.now()))
        scheduler.run_until(2.5)
        handle.cancel()
        scheduler.run_until(10.0)
        assert times == [1.0, 2.0]

    def test_cancel_inside_callback(self, scheduler):
        times = []
        handle = scheduler.every(1.0, lambda: (
            times.append(scheduler.now()),
            handle.cancel() if len(times) >= 2 else None,
        ))
        scheduler.run_until(10.0)
        assert times == [1.0, 2.0]

    def test_non_positive_interval_rejected(self, scheduler):
        with pytest.raises(SimulationError):
            scheduler.every(0.0, lambda: None)


class TestGuards:
    def test_runaway_loop_detected(self, scheduler):
        def reschedule():
            scheduler.after(0.001, reschedule)

        scheduler.after(0.001, reschedule)
        with pytest.raises(SimulationError):
            scheduler.run(max_events=100)

    def test_run_returns_event_count(self, scheduler):
        for i in range(5):
            scheduler.at(float(i + 1), lambda: None)
        assert scheduler.run() == 5


class TestHandleBoundedness:
    def test_recurring_handle_tracks_one_pending_event(self, scheduler):
        handle = scheduler.every(1.0, lambda: None)
        scheduler.run_until(10_000.0)
        # Fired events are dead; only the next pending firing needs to
        # stay reachable for cancel(), no matter how long the timer runs.
        assert len(handle._events) == 1
        handle.cancel()
        before = scheduler.now()
        scheduler.run_until(before + 10.0)
        assert scheduler.pending() == 0


class TestClockAdvancingCallbacks:
    def test_callback_advancing_past_next_event_does_not_crash(self, scheduler):
        # A retry backoff (or modeled store latency) inside a callback can
        # push the clock past the next event's timestamp; that event is
        # then late, not "in the past", and must still fire.
        order = []
        scheduler.at(1.0, lambda: (order.append("a"),
                                   scheduler.clock.advance(10.0)))
        scheduler.at(2.0, lambda: order.append("b"))
        scheduler.run_until(20.0)
        assert order == ["a", "b"]
        assert scheduler.clock.now() == 20.0

    def test_step_also_tolerates_late_events(self, scheduler):
        scheduler.at(1.0, lambda: scheduler.clock.advance(5.0))
        scheduler.at(2.0, lambda: None)
        assert scheduler.step()
        assert scheduler.step()
        assert scheduler.clock.now() == 6.0
