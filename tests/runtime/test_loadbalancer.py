"""Tests for the dynamic load balancer (paper Section 7 future work)."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.runtime.cluster import Cluster
from repro.runtime.loadbalancer import JobSpec, LoadBalancer


@pytest.fixture
def world():
    cluster = Cluster()
    for name in ["m1", "m2", "m3"]:
        cluster.add_machine(name)
    return cluster, LoadBalancer(cluster)


class TestPlacement:
    def test_places_on_least_loaded(self, world):
        _, balancer = world
        balancer.place(JobSpec("heavy", load=10.0))
        target = balancer.place(JobSpec("light", load=1.0))
        assert target != balancer.placement_of("heavy")

    def test_many_jobs_spread_evenly(self, world):
        _, balancer = world
        for i in range(30):
            balancer.place(JobSpec(f"job{i}", load=1.0))
        loads = balancer.loads()
        assert max(loads.values()) - min(loads.values()) <= 1.0
        assert balancer.imbalance() == pytest.approx(1.0, abs=0.11)

    def test_duplicate_placement_rejected(self, world):
        _, balancer = world
        balancer.place(JobSpec("a"))
        with pytest.raises(ConfigError):
            balancer.place(JobSpec("a"))

    def test_no_live_machines_raises(self):
        cluster = Cluster()
        cluster.add_machine("m1")
        cluster.fail_machine("m1")
        balancer = LoadBalancer(cluster)
        with pytest.raises(SimulationError):
            balancer.place(JobSpec("a"))

    def test_invalid_job(self):
        with pytest.raises(ConfigError):
            JobSpec("a", load=0.0)


class TestRebalance:
    def test_hot_machine_is_relieved(self, world):
        _, balancer = world
        # Pile everything onto m1 artificially.
        for i in range(9):
            balancer._jobs[f"job{i}"] = JobSpec(f"job{i}", load=1.0)
            balancer._placement[f"job{i}"] = "m1"
        assert balancer.imbalance() == pytest.approx(3.0)
        moves = balancer.rebalance(max_moves=10)
        assert moves
        assert balancer.imbalance() < 1.5

    def test_lagging_jobs_move_first(self, world):
        _, balancer = world
        for i in range(6):
            spec = JobSpec(f"job{i}", load=1.0, lag=1000 if i == 3 else 0)
            balancer._jobs[spec.name] = spec
            balancer._placement[spec.name] = "m1"
        moves = balancer.rebalance(max_moves=1)
        assert moves[0].job == "job3"  # the lagging job got the quiet box

    def test_balanced_cluster_makes_no_moves(self, world):
        _, balancer = world
        for i in range(6):
            balancer.place(JobSpec(f"job{i}", load=1.0))
        assert balancer.rebalance() == []

    def test_move_budget_respected(self, world):
        _, balancer = world
        for i in range(20):
            balancer._jobs[f"job{i}"] = JobSpec(f"job{i}", load=1.0)
            balancer._placement[f"job{i}"] = "m1"
        moves = balancer.rebalance(max_moves=3)
        assert len(moves) <= 3

    def test_update_lag(self, world):
        _, balancer = world
        balancer.place(JobSpec("a"))
        balancer.update_lag("a", 500)
        assert balancer._jobs["a"].lag == 500
        with pytest.raises(ConfigError):
            balancer.update_lag("ghost", 1)


class TestFailureHandling:
    def test_dead_machines_jobs_are_replaced(self, world):
        cluster, balancer = world
        for i in range(9):
            balancer.place(JobSpec(f"job{i}", load=1.0))
        victim = "m2"
        orphaned = [job for job, machine in balancer._placement.items()
                    if machine == victim]
        cluster.fail_machine(victim)
        moves = balancer.handle_machine_failure(victim)
        assert sorted(m.job for m in moves) == sorted(orphaned)
        live = {"m1", "m3"}
        assert all(balancer.placement_of(job) in live for job in orphaned)

    def test_orphans_spread_across_survivors(self, world):
        cluster, balancer = world
        for i in range(12):
            balancer.place(JobSpec(f"job{i}", load=1.0))
        cluster.fail_machine("m3")
        balancer.handle_machine_failure("m3")
        loads = balancer.loads()
        assert set(loads) == {"m1", "m2"}
        assert abs(loads["m1"] - loads["m2"]) <= 1.0
