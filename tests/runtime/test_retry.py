"""Tests for the bounded-retry/backoff layer."""

import pytest

from repro.errors import ConfigError, StoreUnavailable
from repro.runtime.clock import SimClock
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.retry import Retrier, RetryPolicy
from repro.runtime.rng import make_rng


class Flaky:
    """Fails the first ``failures`` calls, then succeeds forever."""

    def __init__(self, failures, exc=StoreUnavailable):
        self.remaining = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc("injected")
        return "ok"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(timeout=0.0)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                             jitter=0.0)
        delays = [policy.backoff_delay(k) for k in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        a = [policy.backoff_delay(1, make_rng(7, "retry")) for _ in range(3)]
        b = [policy.backoff_delay(1, make_rng(7, "retry")) for _ in range(3)]
        assert a[0] == b[0]  # same stream, same first draw
        assert all(0.5 <= d <= 1.5 for d in a)

    def test_no_retries_factory(self):
        policy = RetryPolicy.no_retries()
        assert policy.max_attempts == 1


class TestRetrier:
    def make(self, policy, clock=None):
        registry = MetricsRegistry()
        retrier = Retrier(policy, clock=clock, rng=make_rng(1, "t"),
                          metrics=registry, scope="t")
        return retrier, registry

    def test_recovers_after_transient_failures(self):
        clock = SimClock()
        retrier, registry = self.make(
            RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0),
            clock=clock)
        flaky = Flaky(2)
        assert retrier.call(flaky) == "ok"
        assert flaky.calls == 3
        assert registry.counter("t.retry.attempts").value == 3
        assert registry.counter("t.retry.failures").value == 2
        assert registry.counter("t.retry.recoveries").value == 1
        assert registry.counter("t.retry.give_ups").value == 0
        # Two backoff waits were charged to the simulated clock.
        assert clock.now() == pytest.approx(0.1 + 0.2)

    def test_gives_up_after_max_attempts(self):
        retrier, registry = self.make(
            RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0))
        flaky = Flaky(10)
        with pytest.raises(StoreUnavailable):
            retrier.call(flaky)
        assert flaky.calls == 3
        assert registry.counter("t.retry.give_ups").value == 1
        assert registry.counter("t.retry.failures").value == 3

    def test_every_failure_ends_in_recovery_or_give_up(self):
        retrier, registry = self.make(
            RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0))
        for failures in (0, 1, 2, 3, 4):
            try:
                retrier.call(Flaky(failures))
            except StoreUnavailable:
                pass
        counters = {name: registry.counter(f"t.retry.{name}").value
                    for name in ("failures", "recoveries", "give_ups")}
        # 1+2 failures recovered; the 3- and 4-failure calls gave up after
        # 3 failed attempts each.
        assert counters["recoveries"] == 2
        assert counters["give_ups"] == 2
        assert counters["failures"] == 1 + 2 + 3 + 3

    def test_timeout_bounds_the_whole_call(self):
        clock = SimClock()
        retrier, registry = self.make(
            RetryPolicy(max_attempts=100, base_delay=1.0, multiplier=1.0,
                        jitter=0.0, timeout=2.5),
            clock=clock)
        flaky = Flaky(100)
        with pytest.raises(StoreUnavailable):
            retrier.call(flaky)
        # Attempts at t=0, 1, 2; the wait to t=3 would cross the deadline.
        assert flaky.calls == 3
        assert clock.now() == pytest.approx(2.0)
        assert registry.counter("t.retry.give_ups").value == 1

    def test_non_retryable_exceptions_pass_through(self):
        retrier, registry = self.make(RetryPolicy(max_attempts=5))
        with pytest.raises(ValueError):
            retrier.call(Flaky(3, exc=ValueError))
        assert registry.counter("t.retry.attempts").value == 1
        assert registry.counter("t.retry.failures").value == 0

    def test_identical_seeds_back_off_identically(self):
        def run():
            clock = SimClock()
            retrier = Retrier(
                RetryPolicy(max_attempts=5, base_delay=0.2, jitter=0.3),
                clock=clock, rng=make_rng(42, "retry"),
                metrics=MetricsRegistry(), scope="t")
            with pytest.raises(StoreUnavailable):
                retrier.call(Flaky(10))
            return clock.now()

        assert run() == run()
