"""Tests for machines, processes, and the failure model."""

import pytest

from repro.errors import SimulationError
from repro.runtime.cluster import Cluster, ProcessState


@pytest.fixture
def cluster():
    c = Cluster()
    c.add_machine("m1")
    c.add_machine("m2")
    return c


class TestTopology:
    def test_spawn_and_lookup(self, cluster):
        process = cluster.spawn("job-a", "m1")
        assert process.running
        assert cluster.process("job-a") is process
        assert cluster.machine("m1").processes["job-a"] is process

    def test_duplicate_machine_rejected(self, cluster):
        with pytest.raises(SimulationError):
            cluster.add_machine("m1")

    def test_duplicate_process_rejected(self, cluster):
        cluster.spawn("job-a", "m1")
        with pytest.raises(SimulationError):
            cluster.spawn("job-a", "m2")

    def test_unknown_lookups_raise(self, cluster):
        with pytest.raises(SimulationError):
            cluster.machine("nope")
        with pytest.raises(SimulationError):
            cluster.process("nope")


class TestProcessCrash:
    def test_crash_keeps_machine_disk(self, cluster):
        cluster.spawn("job-a", "m1")
        cluster.machine("m1").disk["data"] = [1, 2, 3]
        cluster.crash_process("job-a")
        assert cluster.process("job-a").state == ProcessState.CRASHED
        assert cluster.machine("m1").disk["data"] == [1, 2, 3]

    def test_crash_fires_callbacks(self, cluster):
        events = []
        process = cluster.spawn("job-a", "m1")
        process.on_crash(lambda: events.append("crash"))
        process.on_restart(lambda: events.append("restart"))
        cluster.crash_process("job-a")
        cluster.restart_process("job-a")
        assert events == ["crash", "restart"]

    def test_double_crash_is_idempotent(self, cluster):
        events = []
        process = cluster.spawn("job-a", "m1")
        process.on_crash(lambda: events.append("crash"))
        cluster.crash_process("job-a")
        cluster.crash_process("job-a")
        assert events == ["crash"]


class TestMachineFailure:
    def test_failure_wipes_disk_and_crashes_processes(self, cluster):
        cluster.spawn("job-a", "m1")
        cluster.machine("m1").disk["data"] = "precious"
        cluster.fail_machine("m1")
        assert not cluster.machine("m1").alive
        assert cluster.machine("m1").disk == {}
        assert cluster.process("job-a").state == ProcessState.CRASHED

    def test_cannot_restart_on_dead_machine(self, cluster):
        cluster.spawn("job-a", "m1")
        cluster.fail_machine("m1")
        with pytest.raises(SimulationError):
            cluster.restart_process("job-a")

    def test_revive_gives_empty_disk(self, cluster):
        cluster.machine("m1").disk["data"] = 1
        cluster.fail_machine("m1")
        machine = cluster.revive_machine("m1")
        assert machine.alive
        assert machine.disk == {}

    def test_cannot_spawn_on_dead_machine(self, cluster):
        cluster.fail_machine("m1")
        with pytest.raises(SimulationError):
            cluster.spawn("job-a", "m1")


class TestMoveProcess:
    def test_move_crashed_process(self, cluster):
        cluster.spawn("job-a", "m1")
        cluster.crash_process("job-a")
        process = cluster.move_process("job-a", "m2")
        assert process.machine.name == "m2"
        assert "job-a" not in cluster.machine("m1").processes
        cluster.restart_process("job-a")
        assert process.running

    def test_cannot_move_running_process(self, cluster):
        cluster.spawn("job-a", "m1")
        with pytest.raises(SimulationError):
            cluster.move_process("job-a", "m2")

    def test_cannot_move_to_dead_machine(self, cluster):
        cluster.spawn("job-a", "m1")
        cluster.crash_process("job-a")
        cluster.fail_machine("m2")
        with pytest.raises(SimulationError):
            cluster.move_process("job-a", "m2")
