"""Tests for the clock abstractions."""

import pytest

from repro.errors import SimulationError
from repro.runtime.clock import SimClock, WallClock


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock().now() == 0.0
        assert SimClock(start=5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(SimulationError):
            SimClock(start=-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5
        clock.advance(0.5)
        assert clock.now() == 3.0

    def test_advance_by_zero_is_allowed(self):
        clock = SimClock(start=1.0)
        clock.advance(0.0)
        assert clock.now() == 1.0

    def test_advance_rejects_negative_delta(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-0.1)

    def test_advance_to_absolute_time(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_same_time_is_allowed(self):
        clock = SimClock(start=3.0)
        clock.advance_to(3.0)
        assert clock.now() == 3.0

    def test_advance_to_rejects_going_backwards(self):
        clock = SimClock(start=5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.999)


class TestWallClock:
    def test_is_monotone_nondecreasing(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert second >= first
