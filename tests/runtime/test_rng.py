"""Tests for seeded random streams."""

from repro.runtime.rng import make_rng


class TestMakeRng:
    def test_same_seed_and_stream_reproduce(self):
        a = [make_rng(7, "events").random() for _ in range(5)]
        b = [make_rng(7, "events").random() for _ in range(5)]
        assert a == b

    def test_different_streams_are_uncorrelated(self):
        a = make_rng(7, "events").random()
        b = make_rng(7, "failures").random()
        assert a != b

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_default_stream_is_stable(self):
        assert make_rng(0).random() == make_rng(0, "").random()
