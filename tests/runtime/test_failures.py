"""Tests for scripted failure injection."""

import pytest

from repro.runtime.cluster import Cluster, ProcessState
from repro.runtime.failures import FailureKind, FailurePlan
from repro.runtime.rng import make_rng
from repro.runtime.scheduler import Scheduler


@pytest.fixture
def world():
    cluster = Cluster()
    cluster.add_machine("m1")
    cluster.spawn("job", "m1")
    return Scheduler(), cluster


class TestFailurePlan:
    def test_crash_and_restart_fire_at_times(self, world):
        scheduler, cluster = world
        FailurePlan().crash_and_restart("job", at=5.0, downtime=2.0) \
            .install(scheduler, cluster)

        scheduler.run_until(5.5)
        assert cluster.process("job").state == ProcessState.CRASHED
        scheduler.run_until(7.5)
        assert cluster.process("job").running

    def test_machine_failure_events(self, world):
        scheduler, cluster = world
        plan = FailurePlan()
        plan.fail_machine("m1", at=3.0)
        plan.revive_machine("m1", at=6.0)
        plan.install(scheduler, cluster)
        scheduler.run_until(4.0)
        assert not cluster.machine("m1").alive
        scheduler.run_until(10.0)
        assert cluster.machine("m1").alive

    def test_events_sorted_on_construction(self):
        plan = FailurePlan()
        plan.crash("job", at=9.0)
        plan.crash("job", at=1.0)
        installed_order = [e.at for e in sorted(plan.events,
                                                key=lambda e: e.at)]
        assert installed_order == [1.0, 9.0]

    def test_builders_chain(self):
        plan = (FailurePlan()
                .crash("a", 1.0)
                .restart("a", 2.0)
                .fail_machine("m", 3.0))
        assert [e.kind for e in plan.events] == [
            FailureKind.CRASH_PROCESS,
            FailureKind.RESTART_PROCESS,
            FailureKind.FAIL_MACHINE,
        ]


class TestRandomCrashes:
    def test_deterministic_for_seed(self):
        plan_a = FailurePlan.random_crashes("job", horizon=100.0, rate=0.1,
                                            downtime=1.0, rng=make_rng(42))
        plan_b = FailurePlan.random_crashes("job", horizon=100.0, rate=0.1,
                                            downtime=1.0, rng=make_rng(42))
        assert [(e.at, e.kind) for e in plan_a.events] == \
               [(e.at, e.kind) for e in plan_b.events]

    def test_all_events_within_horizon_plus_downtime(self):
        plan = FailurePlan.random_crashes("job", horizon=50.0, rate=0.5,
                                          downtime=2.0, rng=make_rng(1))
        assert all(e.at <= 52.0 for e in plan.events)
        # crashes and restarts alternate
        kinds = [e.kind for e in sorted(plan.events, key=lambda e: e.at)]
        for i in range(0, len(kinds) - 1, 2):
            assert kinds[i] == FailureKind.CRASH_PROCESS
            assert kinds[i + 1] == FailureKind.RESTART_PROCESS
