"""Tests for scripted failure injection."""

import pytest

from repro.runtime.cluster import Cluster, ProcessState
from repro.errors import SimulationError, StoreUnavailable
from repro.runtime.failures import FailureKind, FailurePlan, Network
from repro.runtime.rng import make_rng
from repro.runtime.scheduler import Scheduler


@pytest.fixture
def world():
    cluster = Cluster()
    cluster.add_machine("m1")
    cluster.spawn("job", "m1")
    return Scheduler(), cluster


class TestFailurePlan:
    def test_crash_and_restart_fire_at_times(self, world):
        scheduler, cluster = world
        FailurePlan().crash_and_restart("job", at=5.0, downtime=2.0) \
            .install(scheduler, cluster)

        scheduler.run_until(5.5)
        assert cluster.process("job").state == ProcessState.CRASHED
        scheduler.run_until(7.5)
        assert cluster.process("job").running

    def test_machine_failure_events(self, world):
        scheduler, cluster = world
        plan = FailurePlan()
        plan.fail_machine("m1", at=3.0)
        plan.revive_machine("m1", at=6.0)
        plan.install(scheduler, cluster)
        scheduler.run_until(4.0)
        assert not cluster.machine("m1").alive
        scheduler.run_until(10.0)
        assert cluster.machine("m1").alive

    def test_events_sorted_on_construction(self):
        plan = FailurePlan()
        plan.crash("job", at=9.0)
        plan.crash("job", at=1.0)
        installed_order = [e.at for e in sorted(plan.events,
                                                key=lambda e: e.at)]
        assert installed_order == [1.0, 9.0]

    def test_builders_chain(self):
        plan = (FailurePlan()
                .crash("a", 1.0)
                .restart("a", 2.0)
                .fail_machine("m", 3.0))
        assert [e.kind for e in plan.events] == [
            FailureKind.CRASH_PROCESS,
            FailureKind.RESTART_PROCESS,
            FailureKind.FAIL_MACHINE,
        ]


class TestRandomCrashes:
    def test_deterministic_for_seed(self):
        plan_a = FailurePlan.random_crashes("job", horizon=100.0, rate=0.1,
                                            downtime=1.0, rng=make_rng(42))
        plan_b = FailurePlan.random_crashes("job", horizon=100.0, rate=0.1,
                                            downtime=1.0, rng=make_rng(42))
        assert [(e.at, e.kind) for e in plan_a.events] == \
               [(e.at, e.kind) for e in plan_b.events]

    def test_all_events_within_horizon_plus_downtime(self):
        plan = FailurePlan.random_crashes("job", horizon=50.0, rate=0.5,
                                          downtime=2.0, rng=make_rng(1))
        assert all(e.at <= 52.0 for e in plan.events)
        # crashes and restarts alternate
        kinds = [e.kind for e in sorted(plan.events, key=lambda e: e.at)]
        for i in range(0, len(kinds) - 1, 2):
            assert kinds[i] == FailureKind.CRASH_PROCESS
            assert kinds[i + 1] == FailureKind.RESTART_PROCESS


class FakeStore:
    """Minimal FaultTarget for injection tests."""

    def __init__(self):
        self.available = True
        self.slow_factor = 1.0

    def set_available(self, available):
        self.available = available

    def set_slow_factor(self, factor):
        self.slow_factor = factor


class TestNetwork:
    def test_partition_is_symmetric_and_heals(self):
        net = Network()
        net.partition("stylus", "zippydb")
        assert not net.connected("zippydb", "stylus")
        with pytest.raises(StoreUnavailable):
            net.check("stylus", "zippydb", "put")
        net.heal("zippydb", "stylus")
        assert net.connected("stylus", "zippydb")
        net.check("stylus", "zippydb")

    def test_heal_all(self):
        net = Network()
        net.partition("a", "b")
        net.partition("a", "c")
        assert net.partitions() == [("a", "b"), ("a", "c")]
        net.heal_all()
        assert net.partitions() == []


class TestStoreFaults:
    def test_outage_window_schedules_down_and_up(self):
        scheduler = Scheduler()
        store = FakeStore()
        FailurePlan().store_outage("hdfs", at=2.0, until=5.0) \
            .install(scheduler, stores={"hdfs": store})
        scheduler.run_until(3.0)
        assert not store.available
        scheduler.run_until(6.0)
        assert store.available

    def test_latched_outage_holds_until_restored(self):
        scheduler = Scheduler()
        store = FakeStore()
        plan = FailurePlan().latch_store_down("db", at=1.0)
        plan.restore_store("db", at=50.0)
        plan.install(scheduler, stores={"db": store})
        scheduler.run_until(40.0)
        assert not store.available
        scheduler.run_until(51.0)
        assert store.available

    def test_slow_node_window(self):
        scheduler = Scheduler()
        store = FakeStore()
        FailurePlan().slow_node("db", at=1.0, until=4.0, factor=8.0) \
            .install(scheduler, stores={"db": store})
        scheduler.run_until(2.0)
        assert store.slow_factor == 8.0
        scheduler.run_until(5.0)
        assert store.slow_factor == 1.0

    def test_unknown_store_target_raises(self):
        scheduler = Scheduler()
        FailurePlan().latch_store_down("nope", at=1.0) \
            .install(scheduler, stores={})
        with pytest.raises(SimulationError):
            scheduler.run_until(2.0)


class TestPartitionEvents:
    def test_partition_and_heal_on_schedule(self):
        scheduler = Scheduler()
        net = Network()
        FailurePlan().partition("swift", "scribe", at=2.0, heal_at=4.0) \
            .install(scheduler, network=net)
        scheduler.run_until(3.0)
        assert not net.connected("swift", "scribe")
        scheduler.run_until(5.0)
        assert net.connected("swift", "scribe")

    def test_partition_needs_a_network(self):
        scheduler = Scheduler()
        FailurePlan().partition("a", "b", at=1.0).install(scheduler)
        with pytest.raises(SimulationError):
            scheduler.run_until(2.0)


class TestRandomChaos:
    def test_deterministic_for_seed(self):
        def draw():
            return FailurePlan.random_chaos(
                horizon=100.0, rng=make_rng(9, "chaos"),
                processes=["p"], stores=["hdfs", "db"],
                links=[("stylus", "db")])

        assert [(e.at, e.kind, e.target) for e in draw().events] == \
               [(e.at, e.kind, e.target) for e in draw().events]

    def test_every_window_closed_by_horizon(self):
        plan = FailurePlan.random_chaos(
            horizon=60.0, rng=make_rng(3, "chaos"),
            processes=["p"], stores=["hdfs"], links=[("a", "b")],
            crash_rate=0.2, outage_rate=0.2, partition_rate=0.2)
        assert plan.events, "expected some chaos at these rates"
        assert all(e.at <= 60.0 for e in plan.events)
        # Every down-ish event has a matching up-ish event, so running
        # past the horizon always ends with everything healed.
        downs = sum(1 for e in plan.events if e.kind in
                    (FailureKind.CRASH_PROCESS, FailureKind.STORE_DOWN,
                     FailureKind.PARTITION))
        ups = sum(1 for e in plan.events if e.kind in
                  (FailureKind.RESTART_PROCESS, FailureKind.STORE_UP,
                   FailureKind.HEAL))
        assert downs == ups
