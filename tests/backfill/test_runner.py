"""Tests for running Stylus processors in batch (Section 4.5.2)."""

from repro.backfill.runner import (
    run_monoid_backfill,
    run_stateful_backfill,
    run_stateless_backfill,
)
from repro.runtime.rng import make_rng

from tests.stylus.helpers import CountingProcessor, DimensionCounter, DropEvens


def rows(count=50):
    rng = make_rng(17, "backfill")
    out = [{"event_time": rng.uniform(0, 100), "seq": i}
           for i in range(count)]
    rng.shuffle(out)
    return out


class TestStatelessBackfill:
    def test_mapper_output_matches_processor(self):
        data = rows(20)
        output = run_stateless_backfill(DropEvens(), data)
        assert sorted(o["seq"] for o in output) == list(range(1, 20, 2))

    def test_empty_input(self):
        assert run_stateless_backfill(DropEvens(), []) == []


class TestStatefulBackfill:
    def test_reducer_folds_per_key(self):
        data = rows(30)
        states = run_stateful_backfill(
            CountingProcessor, data, key_fn=lambda r: r["seq"] % 3)
        assert {k: s["count"] for k, s in states.items()} == {
            0: 10, 1: 10, 2: 10,
        }

    def test_rows_are_time_ordered_within_key(self):
        order_seen = []

        class OrderSpy(CountingProcessor):
            def process(self, event, state):
                order_seen.append(event.event_time)
                return super().process(event, state)

        run_stateful_backfill(OrderSpy, rows(20), key_fn=lambda r: 0)
        assert order_seen == sorted(order_seen)


class TestMonoidBackfill:
    def test_partial_aggregation_matches_streaming_totals(self):
        data = rows(40)
        results = run_monoid_backfill(DimensionCounter(), data,
                                      num_map_tasks=4)
        assert sum(v["count"] for v in results.values()) == 40

    def test_map_task_count_does_not_change_results(self):
        data = rows(40)
        one = run_monoid_backfill(DimensionCounter(), data, num_map_tasks=1)
        many = run_monoid_backfill(DimensionCounter(), data, num_map_tasks=13)
        assert one == many

    def test_multi_dimension_events(self):
        data = rows(10)
        results = run_monoid_backfill(DimensionCounter(dims_per_event=3),
                                      data)
        assert sum(v["count"] for v in results.values()) == 30
