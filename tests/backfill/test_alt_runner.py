"""Tests: backfill on the dataset runtime matches the MapReduce runtime.

This is the evaluation the paper's Section 7 plans ("We plan to evaluate
Spark and Flink") — the must-hold property is result equivalence across
batch runtimes running the same processor code.
"""

from repro.backfill.alt_runner import (
    compare_runtimes,
    run_monoid_backfill_dataset,
    run_stateful_backfill_dataset,
    run_stateless_backfill_dataset,
)
from repro.backfill.runner import (
    run_monoid_backfill,
    run_stateful_backfill,
    run_stateless_backfill,
)
from repro.batch.dataset import DatasetContext
from repro.runtime.rng import make_rng

from tests.stylus.helpers import CountingProcessor, DimensionCounter, DropEvens


def rows(count=60):
    rng = make_rng(41, "alt-runner")
    data = [{"event_time": rng.uniform(0, 100), "seq": i}
            for i in range(count)]
    rng.shuffle(data)
    return data


class TestRuntimeEquivalence:
    def test_stateless_matches_mapreduce(self):
        data = rows()
        mapreduce = run_stateless_backfill(DropEvens(), data)
        dataset = run_stateless_backfill_dataset(DropEvens(), data)
        assert sorted(r["seq"] for r in dataset) == \
               sorted(r["seq"] for r in mapreduce)

    def test_monoid_matches_mapreduce(self):
        data = rows()
        mapreduce = run_monoid_backfill(DimensionCounter(dims_per_event=2),
                                        data)
        dataset = run_monoid_backfill_dataset(
            DimensionCounter(dims_per_event=2), data)
        assert dataset == mapreduce

    def test_stateful_matches_mapreduce(self):
        data = rows()
        mapreduce = run_stateful_backfill(CountingProcessor, data,
                                          key_fn=lambda r: r["seq"] % 4)
        dataset = run_stateful_backfill_dataset(
            CountingProcessor, data, key_fn=lambda r: r["seq"] % 4)
        assert dataset == mapreduce

    def test_compare_runtimes_reports_profile(self):
        data = rows()
        mapreduce = run_monoid_backfill(DimensionCounter(), data)
        comparison = compare_runtimes(DimensionCounter(), data, mapreduce)
        assert comparison.results_equal
        assert comparison.dataset_stages == 2  # narrow + one shuffle
        # Map-side combine: at most keys x partitions records shuffled.
        assert comparison.dataset_shuffled_records <= 10 * 4

    def test_partitioning_does_not_change_results(self):
        data = rows()
        results = [
            run_monoid_backfill_dataset(
                DimensionCounter(), data,
                context=DatasetContext(default_partitions=parts))
            for parts in [1, 2, 8]
        ]
        assert results[0] == results[1] == results[2]
