"""Tests for the hybrid realtime/batch pipeline scheduler (Section 5.3)."""

import pytest

from repro.backfill.hybrid import HybridPipeline, PipelineStage
from repro.errors import ConfigError


def paper_like_pipeline():
    """A daily pipeline whose batch critical path is ~14 hours."""
    return HybridPipeline([
        PipelineStage("ingest_clean", batch_hours=3.0),
        PipelineStage("sessionize", batch_hours=4.0,
                      depends_on=("ingest_clean",)),
        PipelineStage("join_dims", batch_hours=3.0,
                      depends_on=("sessionize",)),
        PipelineStage("ml_features", batch_hours=4.0,
                      depends_on=("join_dims",), convertible=False),
    ])


class TestScheduling:
    def test_all_batch_completion_is_sum_of_critical_path(self):
        pipeline = paper_like_pipeline()
        assert pipeline.pipeline_completion() == 14.0

    def test_converting_early_stages_pulls_in_completion(self):
        pipeline = paper_like_pipeline()
        converted = {"ingest_clean", "sessionize", "join_dims"}
        finish = pipeline.completion_times(converted)
        # converted results land minutes after midnight...
        assert finish["join_dims"] == pipeline.STREAMING_LANDING_HOURS
        # ...so only the non-convertible tail remains
        assert pipeline.pipeline_completion(converted) == pytest.approx(
            pipeline.STREAMING_LANDING_HOURS + 4.0)

    def test_speedup_matches_paper_scale(self):
        """The paper: 'we have sped up pipelines by 10 to 24 hours'."""
        pipeline = paper_like_pipeline()
        speedup = pipeline.speedup_hours(pipeline.convertible_prefix())
        assert speedup == pytest.approx(14.0 - 4.25)

    def test_streaming_stage_still_waits_for_batch_dependency(self):
        pipeline = HybridPipeline([
            PipelineStage("batch_only", batch_hours=6.0, convertible=False),
            PipelineStage("streamable", batch_hours=2.0,
                          depends_on=("batch_only",)),
        ])
        finish = pipeline.completion_times({"streamable"})
        assert finish["streamable"] == 6.0  # gated by the batch input

    def test_convertible_prefix_stops_at_non_convertible(self):
        pipeline = paper_like_pipeline()
        assert pipeline.convertible_prefix() == {
            "ingest_clean", "sessionize", "join_dims",
        }

    def test_parallel_branches(self):
        pipeline = HybridPipeline([
            PipelineStage("a", batch_hours=2.0),
            PipelineStage("b", batch_hours=5.0),
            PipelineStage("join", batch_hours=1.0, depends_on=("a", "b")),
        ])
        assert pipeline.pipeline_completion() == 6.0
        assert pipeline.pipeline_completion({"b"}) == 3.0


class TestValidation:
    def test_cycle_detected(self):
        with pytest.raises(ConfigError):
            HybridPipeline([
                PipelineStage("a", 1.0, depends_on=("b",)),
                PipelineStage("b", 1.0, depends_on=("a",)),
            ])

    def test_unknown_dependency(self):
        with pytest.raises(ConfigError):
            HybridPipeline([PipelineStage("a", 1.0, depends_on=("ghost",))])

    def test_cannot_convert_non_convertible(self):
        pipeline = paper_like_pipeline()
        with pytest.raises(ConfigError):
            pipeline.completion_times({"ml_features"})

    def test_unknown_conversion_target(self):
        with pytest.raises(ConfigError):
            paper_like_pipeline().completion_times({"ghost"})

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigError):
            HybridPipeline([])

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ConfigError):
            HybridPipeline([PipelineStage("a", 1.0),
                            PipelineStage("a", 2.0)])
