"""Tests for the functional stream paradigm (paper Section 4.1)."""

import pytest

from repro.errors import ConfigError
from repro.functional.streams import StreamBuilder
from repro.scribe.reader import CategoryReader
from repro.storage.merge import CounterMergeOperator, DictSumMergeOperator


@pytest.fixture
def builder(scribe, clock):
    return StreamBuilder(scribe, clock=clock, num_buckets=2,
                         checkpoint_every_events=50)


def feed(scribe, count=100, category="events"):
    for i in range(count):
        scribe.write_record(category, {
            "event_time": float(i),
            "event_type": "post" if i % 2 == 0 else "like",
            "topic": f"t{i % 3}",
            "score": i % 5,
        }, key=str(i))


def output(scribe, category):
    return [m.decode() for m in CategoryReader(scribe, category).read_all()]


def feed_interleaved(scribe, pipeline, count=100, chunk=10):
    """Feed in small chunks, pumping between them.

    Batch-pumping a whole backlog concatenates each upstream task's
    ordered sub-stream, which manufactures unbounded event-time disorder
    at a re-shard boundary; interleaving like a live deployment keeps
    the disorder bounded by the chunk size, which is what the windowed
    aggregator's watermark is designed for.
    """
    for start in range(0, count, chunk):
        for i in range(start, min(start + chunk, count)):
            scribe.write_record("events", {
                "event_time": float(i),
                "event_type": "post" if i % 2 == 0 else "like",
                "topic": f"t{i % 3}",
                "score": i % 5,
            }, key=str(i))
        pipeline.pump(chunk)
    pipeline.run_until_quiescent()


class TestNarrowFusion:
    def test_map_filter_chain(self, scribe, builder):
        pipeline = (builder.source("events")
                    .filter(lambda r: r["event_type"] == "post")
                    .map(lambda r: {**r, "doubled": r["score"] * 2})
                    .to("posts_out")
                    .build("p1"))
        feed(scribe)
        pipeline.run_until_quiescent()
        rows = output(scribe, "posts_out")
        assert len(rows) == 50
        assert all(r["doubled"] == r["score"] * 2 for r in rows)

    def test_narrow_ops_fuse_into_one_node(self, scribe, builder):
        pipeline = (builder.source("events")
                    .map(lambda r: r)
                    .filter(lambda r: True)
                    .map(lambda r: r)
                    .build("p2"))
        assert len(pipeline.jobs) == 1  # Section 4.2.1: collapsed

    def test_flat_map(self, scribe, builder):
        pipeline = (builder.source("events")
                    .flat_map(lambda r: [r, r])
                    .build("p3"))
        feed(scribe, 10)
        pipeline.run_until_quiescent()
        assert len(output(scribe, "p3.out")) == 20

    def test_map_preserves_event_time_if_dropped(self, scribe, builder):
        pipeline = (builder.source("events")
                    .map(lambda r: {"only": r["topic"]})
                    .build("p4"))
        feed(scribe, 5)
        pipeline.run_until_quiescent()
        rows = output(scribe, "p4.out")
        assert all("event_time" in r for r in rows)


class TestKeyByAndWindows:
    def test_key_by_creates_stage_boundary(self, scribe, builder):
        pipeline = (builder.source("events")
                    .map(lambda r: r)
                    .key_by(lambda r: r["topic"])
                    .map(lambda r: r)
                    .build("p5"))
        assert len(pipeline.jobs) == 2
        assert scribe.has_category("p5.stage0")

    def test_key_by_shards_downstream_input(self, scribe, builder):
        pipeline = (builder.source("events")
                    .key_by(lambda r: r["topic"])
                    .map(lambda r: r)
                    .build("p6"))
        feed(scribe)
        pipeline.run_until_quiescent()
        # Each topic's records all landed in a single stage0 bucket.
        category = scribe.category("p6.stage0")
        for bucket in range(category.num_buckets):
            topics = {m.decode()["topic"]
                      for m in scribe.read("p6.stage0", bucket, 0, 1000)}
            for other in range(category.num_buckets):
                if other != bucket:
                    other_topics = {
                        m.decode()["topic"]
                        for m in scribe.read("p6.stage0", other, 0, 1000)
                    }
                    assert not (topics & other_topics)

    def test_window_count(self, scribe, builder):
        pipeline = (builder.source("events")
                    .key_by(lambda r: r["topic"])
                    .window_count(30.0)
                    .build("p7"))
        feed_interleaved(scribe, pipeline, 100)  # windows [0,30), [30,60)...
        pipeline.checkpoint_all()
        pipeline.run_until_quiescent()
        rows = output(scribe, "p7.out")
        assert rows, "closed windows must have emitted"
        assert all(r["final"] for r in rows)
        # Topics cycle every 3 events: 10 per topic per 30 s window.
        assert all(r["value"] == 10 for r in rows)

    def test_window_aggregate_with_custom_monoid(self, scribe, builder):
        pipeline = (builder.source("events")
                    .key_by(lambda r: r["topic"])
                    .window_aggregate(30.0, DictSumMergeOperator(),
                                      lambda r: {"score": r["score"],
                                                 "n": 1})
                    .build("p8"))
        feed_interleaved(scribe, pipeline, 100)
        pipeline.checkpoint_all()
        pipeline.run_until_quiescent()
        rows = output(scribe, "p8.out")
        assert rows
        assert all(r["value"]["n"] == 10 for r in rows)

    def test_window_requires_key_by(self, builder):
        with pytest.raises(ConfigError):
            (builder.source("events")
             .window_aggregate(30.0, CounterMergeOperator(), lambda r: 1))

    def test_operators_after_window_rejected(self, builder):
        stream = (builder.source("events")
                  .key_by(lambda r: r["topic"])
                  .window_count(30.0))
        with pytest.raises(ConfigError):
            stream.map(lambda r: r)


class TestPipelineOperation:
    def test_immutable_chaining(self, scribe, builder):
        base = builder.source("events").filter(
            lambda r: r["event_type"] == "post")
        left = base.map(lambda r: {**r, "branch": "left"}).build("left")
        right = base.map(lambda r: {**r, "branch": "right"}).build("right")
        feed(scribe, 10)
        left.run_until_quiescent()
        right.run_until_quiescent()
        assert {r["branch"] for r in output(scribe, "left.out")} == {"left"}
        assert {r["branch"] for r in output(scribe, "right.out")} == {"right"}

    def test_lag_reporting(self, scribe, builder):
        pipeline = (builder.source("events")
                    .map(lambda r: r)
                    .build("p9"))
        feed(scribe, 7)
        assert pipeline.lag_messages() == 7
        pipeline.run_until_quiescent()
        assert pipeline.lag_messages() == 0


class TestWindowConfidencePropagation:
    def test_confidence_survives_to_and_build(self, scribe, builder):
        """Regression: .to() after window_aggregate must not drop the
        configured watermark confidence."""
        pipeline = (builder.source("events")
                    .key_by(lambda r: r["topic"])
                    .window_aggregate(30.0, CounterMergeOperator(),
                                      lambda r: 1, confidence=0.5)
                    .to("custom_out")
                    .build("pc"))
        window_task = pipeline.jobs[-1].tasks[0]
        assert window_task.processor.confidence == 0.5
        assert pipeline.output_category == "custom_out"
