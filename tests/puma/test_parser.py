"""Tests for the PQL parser."""

import pytest

from repro.errors import PqlSyntaxError
from repro.puma.ast import Aggregate, BinaryOp, Column, InList, Literal
from repro.puma.parser import parse

FIGURE_2 = """
CREATE APPLICATION top_events;

CREATE INPUT TABLE events_score(
    event_time,
    event,
    category,
    score
)
FROM SCRIBE("events_stream")
TIME event_time;

CREATE TABLE top_events_5min AS
SELECT
    category,
    event,
    topk(score) AS score
FROM
    events_score [5 minutes];
"""


class TestFigure2:
    """The paper's complete example app must parse verbatim."""

    def test_application(self):
        program = parse(FIGURE_2)
        assert program.application.name == "top_events"

    def test_input_table(self):
        table = parse(FIGURE_2).input_tables[0]
        assert table.name == "events_score"
        assert table.columns == ("event_time", "event", "category", "score")
        assert table.scribe_category == "events_stream"
        assert table.time_column == "event_time"

    def test_select_structure(self):
        select = parse(FIGURE_2).tables[0].select
        assert select.from_table == "events_score"
        assert select.window.seconds == 300.0
        aliases = [p.alias for p in select.projections]
        assert aliases == ["category", "event", "score"]
        assert isinstance(select.projections[2].expression, Aggregate)
        assert select.projections[2].expression.name == "topk"


class TestStatements:
    def test_time_column_must_be_declared(self):
        with pytest.raises(PqlSyntaxError):
            parse('CREATE INPUT TABLE t(a) FROM SCRIBE("c") TIME missing;')

    def test_scribe_category_must_be_quoted(self):
        with pytest.raises(PqlSyntaxError):
            parse("CREATE INPUT TABLE t(a) FROM SCRIBE(cat) TIME a;")

    def test_duplicate_application_rejected(self):
        with pytest.raises(PqlSyntaxError):
            parse("CREATE APPLICATION a; CREATE APPLICATION b;")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(PqlSyntaxError):
            parse("CREATE APPLICATION a")


class TestSelect:
    def parse_select(self, body):
        source = (
            "CREATE APPLICATION a; "
            'CREATE INPUT TABLE t(event_time, x, y) FROM SCRIBE("c") '
            "TIME event_time; "
            f"CREATE TABLE out AS {body};"
        )
        return parse(source).tables[0].select

    def test_where_clause(self):
        select = self.parse_select("SELECT x FROM t WHERE x > 5 AND y = 'a'")
        assert isinstance(select.where, BinaryOp)
        assert select.where.op == "AND"

    def test_group_by(self):
        select = self.parse_select(
            "SELECT x, count(*) AS n FROM t GROUP BY x")
        assert select.group_by == ("x",)

    def test_in_list(self):
        select = self.parse_select("SELECT x FROM t WHERE y IN ('a', 'b')")
        assert isinstance(select.where, InList)
        assert len(select.where.values) == 2

    def test_not_in_list(self):
        select = self.parse_select("SELECT x FROM t WHERE y NOT IN (1)")
        assert select.where.negated

    def test_window_units(self):
        assert self.parse_select(
            "SELECT count(*) AS n FROM t [30 seconds]").window.seconds == 30.0
        assert self.parse_select(
            "SELECT count(*) AS n FROM t [2 hours]").window.seconds == 7200.0
        assert self.parse_select(
            "SELECT count(*) AS n FROM t [1 day]").window.seconds == 86400.0

    def test_count_star(self):
        select = self.parse_select("SELECT count(*) AS n FROM t")
        aggregate = select.projections[0].expression
        assert aggregate.star
        assert aggregate.arg is None

    def test_aggregate_with_extra_literal_args(self):
        select = self.parse_select("SELECT topk(x, 3) AS t3 FROM t")
        aggregate = select.projections[0].expression
        assert aggregate.extra_args == (3,)

    def test_aggregate_extra_args_must_be_literals(self):
        with pytest.raises(PqlSyntaxError):
            self.parse_select("SELECT topk(x, y) AS bad FROM t")

    def test_arithmetic_precedence(self):
        select = self.parse_select("SELECT x + y * 2 AS v FROM t")
        expression = select.projections[0].expression
        assert expression.op == "+"
        assert expression.right.op == "*"

    def test_parenthesized_expression(self):
        select = self.parse_select("SELECT (x + y) * 2 AS v FROM t")
        assert select.projections[0].expression.op == "*"

    def test_unary_not_and_minus(self):
        select = self.parse_select("SELECT x FROM t WHERE NOT x > -5")
        assert select.where.op == "NOT"

    def test_scalar_function_calls(self):
        select = self.parse_select("SELECT lower(x) AS lx FROM t")
        call = select.projections[0].expression
        assert call.name == "lower"
        assert call.args == (Column("x"),)

    def test_default_aliases(self):
        select = self.parse_select("SELECT x, count(*) FROM t")
        assert [p.alias for p in select.projections] == ["x", "count"]

    def test_boolean_and_null_literals(self):
        select = self.parse_select(
            "SELECT x FROM t WHERE x = TRUE OR y = NULL")
        assert isinstance(select.where.left.right, Literal)
