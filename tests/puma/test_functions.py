"""Tests for PQL aggregation functions (all monoids) and scalar UDFs."""

import math

import pytest

from repro.errors import UnknownFunction
from repro.puma.functions import (
    AGGREGATE_FUNCTIONS,
    AggregateFunction,
    get_aggregate,
    get_udf,
    register_aggregate,
    register_udf,
)


def fold(name, values, extra=()):
    function = get_aggregate(name)
    state = function.create(extra)
    for value in values:
        state = function.update(state, value, extra)
    return function.result(state, extra)


class TestAggregates:
    def test_count_skips_nulls(self):
        assert fold("count", [1, None, 3]) == 2

    def test_sum(self):
        assert fold("sum", [1, 2, None, 3]) == 6

    def test_avg(self):
        assert fold("avg", [2, 4, 6]) == 4
        assert fold("avg", []) is None

    def test_min_max(self):
        assert fold("min", [3, 1, 2]) == 1
        assert fold("max", [3, 1, 2]) == 3
        assert fold("min", [None]) is None

    def test_topk_default_and_custom_k(self):
        values = list(range(20))
        assert fold("topk", values) == list(range(19, 9, -1))
        assert fold("topk", values, extra=(3,)) == [19, 18, 17]

    def test_approx_distinct_close_to_truth(self):
        estimate = fold("approx_distinct", [f"u{i}" for i in range(5000)])
        assert abs(estimate - 5000) / 5000 < 0.05

    def test_stddev(self):
        assert fold("stddev", [2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)
        assert fold("stddev", []) is None


class TestMonoidLaws:
    """Section 4.4.2: 'The aggregation functions in Puma are all monoid.'"""

    CASES = [
        ("count", [1, 2], [3], ()),
        ("sum", [1.5, 2], [3], ()),
        ("avg", [1, 2], [3, 4], ()),
        ("min", [5, 3], [4], ()),
        ("max", [5, 3], [9], ()),
        ("topk", [1, 9, 4], [7, 2], (2,)),
        ("approx_distinct", ["a", "b"], ["b", "c"], ()),
        ("stddev", [1.0, 2.0], [3.0, 4.0], ()),
    ]

    @pytest.mark.parametrize("name,left,right,extra", CASES,
                             ids=[c[0] for c in CASES])
    def test_split_merge_equals_sequential(self, name, left, right, extra):
        function = get_aggregate(name)
        state_left = function.create(extra)
        for value in left:
            state_left = function.update(state_left, value, extra)
        state_right = function.create(extra)
        for value in right:
            state_right = function.update(state_right, value, extra)
        merged = function.merge(state_left, state_right, extra)

        sequential = function.create(extra)
        for value in left + right:
            sequential = function.update(sequential, value, extra)

        result_merged = function.result(merged, extra)
        result_sequential = function.result(sequential, extra)
        if isinstance(result_merged, float):
            assert result_merged == pytest.approx(result_sequential)
        else:
            assert result_merged == result_sequential

    @pytest.mark.parametrize("name,left,right,extra", CASES,
                             ids=[c[0] for c in CASES])
    def test_identity_is_neutral(self, name, left, right, extra):
        function = get_aggregate(name)
        state = function.create(extra)
        for value in left:
            state = function.update(state, value, extra)
        with_identity = function.merge(state, function.create(extra), extra)
        assert function.result(with_identity, extra) == \
               function.result(state, extra)


class TestRegistry:
    def test_unknown_aggregate_raises(self):
        with pytest.raises(UnknownFunction):
            get_aggregate("no_such_agg")

    def test_register_custom_aggregate(self):
        class Product(AggregateFunction):
            name = "test_product"

            def create(self, extra_args=()):
                return 1

            def update(self, state, value, extra_args=()):
                return state * (value if value is not None else 1)

            def merge(self, left, right, extra_args=()):
                return left * right

            def result(self, state, extra_args=()):
                return state

        register_aggregate(Product())
        try:
            assert fold("test_product", [2, 3, 4]) == 24
        finally:
            del AGGREGATE_FUNCTIONS["test_product"]


class TestScalarUdfs:
    def test_builtins(self):
        assert get_udf("lower")("ABC") == "abc"
        assert get_udf("upper")("abc") == "ABC"
        assert get_udf("length")("abcd") == 4
        assert get_udf("contains")("hello world", "wor")
        assert not get_udf("contains")(None, "x")
        assert get_udf("concat")("a", 1, "b") == "a1b"
        assert get_udf("coalesce")(None, None, 3) == 3
        assert get_udf("if")(True, "yes", "no") == "yes"
        assert get_udf("abs")(-4) == 4
        assert get_udf("round")(3.14159, 2) == 3.14
        assert get_udf("floor")(2.9) == 2
        assert get_udf("ceil")(2.1) == 3

    def test_null_propagation(self):
        assert get_udf("lower")(None) is None
        assert get_udf("abs")(None) is None

    def test_register_custom_udf(self):
        register_udf("test_double", lambda x: x * 2)
        try:
            assert get_udf("test_double")(21) == 42
        finally:
            from repro.puma.functions import SCALAR_FUNCTIONS
            del SCALAR_FUNCTIONS["test_double"]

    def test_unknown_udf_raises(self):
        with pytest.raises(UnknownFunction):
            get_udf("no_such_fn")


class TestHiveUdfLibrary:
    """Section 5.3: the 'common Hive UDFs' needed for pipeline conversion."""

    def test_string_functions(self):
        assert get_udf("trim")("  x  ") == "x"
        assert get_udf("starts_with")("hello", "he")
        assert not get_udf("starts_with")(None, "he")
        assert get_udf("ends_with")("hello", "lo")
        assert get_udf("substr")("abcdef", 2, 3) == "bcd"   # 1-based
        assert get_udf("substr")("abcdef", 3) == "cdef"
        assert get_udf("split_part")("a,b,c", ",", 2) == "b"
        assert get_udf("split_part")("a,b,c", ",", 9) is None
        assert get_udf("replace")("aXbX", "X", "-") == "a-b-"
        assert get_udf("regexp_like")("user42", r"\d+")
        assert not get_udf("regexp_like")(None, r"\d+")

    def test_numeric_functions(self):
        assert get_udf("sqrt")(16) == 4.0
        assert get_udf("pow")(2, 10) == 1024
        assert get_udf("ln")(math.e) == pytest.approx(1.0)
        assert get_udf("log10")(1000) == pytest.approx(3.0)
        assert get_udf("mod")(17, 5) == 2
        assert get_udf("greatest")(1, None, 7, 3) == 7
        assert get_udf("least")(None, 4, 2) == 2
        assert get_udf("greatest")(None, None) is None

    def test_null_handling_functions(self):
        assert get_udf("nullif")(5, 5) is None
        assert get_udf("nullif")(5, 6) == 5
        assert get_udf("is_null")(None)
        assert not get_udf("is_null")(0)

    def test_time_functions(self):
        t = 2 * 86400 + 5 * 3600 + 42 * 60 + 7.0
        assert get_udf("hour_of_day")(t) == 5
        assert get_udf("minute_of_hour")(t) == 42
        assert get_udf("day_bucket")(t) == 2
        assert get_udf("time_bucket")(t, 3600) == 2 * 86400 + 5 * 3600
        assert get_udf("hour_of_day")(None) is None

    def test_udfs_usable_in_pql(self):
        """The library is reachable from a real query."""
        from repro.puma.parser import parse
        from repro.puma.planner import plan

        source = """
        CREATE APPLICATION udfs;
        CREATE INPUT TABLE t(event_time, name)
        FROM SCRIBE("c") TIME event_time;
        CREATE TABLE hourly AS
        SELECT hour_of_day(event_time) AS hour, count(*) AS n
        FROM t WHERE regexp_like(name, 'user');
        """
        app_plan = plan(parse(source))
        table = app_plan.table("hourly")
        assert table.predicate({"name": "user9"})
        assert not table.predicate({"name": "bot"})


class TestApproxPercentile:
    """The mobile-analytics aggregate (cold-start percentiles)."""

    def test_uniform_distribution_quantiles(self):
        values = list(range(1000))  # uniform 0..999
        p50 = fold("approx_percentile", values, extra=(50, 10.0))
        p95 = fold("approx_percentile", values, extra=(95, 10.0))
        assert abs(p50 - 500) <= 10
        assert abs(p95 - 950) <= 10

    def test_fraction_and_percent_forms_agree(self):
        values = [float(i) for i in range(100)]
        assert fold("approx_percentile", values, extra=(0.9,)) == \
               fold("approx_percentile", values, extra=(90,))

    def test_error_bounded_by_bucket_width(self):
        import random
        rng = random.Random(3)
        values = [rng.expovariate(1 / 100.0) for _ in range(5000)]
        estimate = fold("approx_percentile", values, extra=(95, 5.0))
        exact = sorted(values)[int(0.95 * len(values))]
        assert abs(estimate - exact) <= 10.0  # 2 buckets of slack

    def test_is_a_monoid(self):
        function = get_aggregate("approx_percentile")
        extra = (95, 1.0)
        left = function.create(extra)
        for v in [1.0, 5.0, 9.0]:
            left = function.update(left, v, extra)
        right = function.create(extra)
        for v in [2.0, 7.0]:
            right = function.update(right, v, extra)
        merged = function.merge(left, right, extra)
        sequential = function.create(extra)
        for v in [1.0, 5.0, 9.0, 2.0, 7.0]:
            sequential = function.update(sequential, v, extra)
        assert merged == sequential

    def test_empty_and_null_handling(self):
        assert fold("approx_percentile", [], extra=(50,)) is None
        assert fold("approx_percentile", [None, 5.0], extra=(50,)) \
            == pytest.approx(5.0, abs=1.0)

    def test_requires_percentile_argument(self):
        with pytest.raises(UnknownFunction):
            fold("approx_percentile", [1.0])

    def test_usable_from_pql(self):
        from repro.puma.parser import parse
        from repro.puma.planner import plan

        source = """
        CREATE APPLICATION mobile;
        CREATE INPUT TABLE starts(event_time, app, cold_start_ms)
        FROM SCRIBE("c") TIME event_time;
        CREATE TABLE p95 AS
        SELECT app, approx_percentile(cold_start_ms, 95, 10) AS p95_ms,
               count(*) AS n
        FROM starts [5 minutes];
        """
        table = plan(parse(source)).table("p95")
        assert [a.alias for a in table.aggregates] == ["p95_ms", "n"]
