"""Tests for PQL planning and expression compilation."""

import pytest

from repro.errors import PlanningError
from repro.puma.parser import parse
from repro.puma.planner import compile_expression, plan
from repro.puma.ast import BinaryOp, Column, Literal

BASE = (
    "CREATE APPLICATION app; "
    'CREATE INPUT TABLE t(event_time, x, y, name) FROM SCRIBE("cat") '
    "TIME event_time; "
)


def plan_of(body):
    return plan(parse(BASE + body + ";"))


class TestExpressionCompilation:
    COLUMNS = ("x", "y")

    def evaluate(self, expression, row):
        return compile_expression(expression, self.COLUMNS)(row)

    def test_literal_and_column(self):
        assert self.evaluate(Literal(5), {}) == 5
        assert self.evaluate(Column("x"), {"x": 9}) == 9

    def test_unknown_column_fails_at_compile_time(self):
        with pytest.raises(PlanningError):
            compile_expression(Column("zzz"), self.COLUMNS)

    def test_arithmetic_and_comparison(self):
        expression = BinaryOp("<", BinaryOp("+", Column("x"), Literal(1)),
                              Column("y"))
        assert self.evaluate(expression, {"x": 1, "y": 3})
        assert not self.evaluate(expression, {"x": 5, "y": 3})


class TestPlanning:
    def test_aggregation_plan(self):
        app_plan = plan_of(
            "CREATE TABLE agg AS SELECT name, count(*) AS n, sum(x) AS total "
            "FROM t [1 minute]")
        table = app_plan.table("agg")
        assert table.kind == "aggregation"
        assert table.window_seconds == 60.0
        assert [g[0] for g in table.group_keys] == ["name"]
        assert [a.alias for a in table.aggregates] == ["n", "total"]

    def test_filter_plan(self):
        app_plan = plan_of(
            "CREATE TABLE filtered AS SELECT name, x FROM t WHERE x > 3")
        table = app_plan.table("filtered")
        assert table.kind == "filter"
        assert table.predicate({"x": 4})
        assert not table.predicate({"x": 3})

    def test_explicit_group_by(self):
        app_plan = plan_of(
            "CREATE TABLE agg AS SELECT count(*) AS n FROM t GROUP BY name")
        assert [g[0] for g in app_plan.table("agg").group_keys] == ["name"]

    def test_group_key_extraction(self):
        app_plan = plan_of(
            "CREATE TABLE agg AS SELECT name, count(*) AS n FROM t")
        table = app_plan.table("agg")
        assert table.group_key({"name": "a", "x": 1}) == ("a",)

    def test_requires_application(self):
        with pytest.raises(PlanningError):
            plan(parse('CREATE INPUT TABLE t(a) FROM SCRIBE("c") TIME a;'))

    def test_requires_exactly_one_input_table(self):
        with pytest.raises(PlanningError):
            plan(parse("CREATE APPLICATION a;"))

    def test_requires_output_tables(self):
        with pytest.raises(PlanningError):
            plan(parse(BASE))

    def test_from_must_reference_input_table(self):
        with pytest.raises(PlanningError):
            plan_of("CREATE TABLE bad AS SELECT count(*) AS n FROM other")

    def test_unknown_column_in_projection(self):
        with pytest.raises(PlanningError):
            plan_of("CREATE TABLE bad AS SELECT nope FROM t")

    def test_group_by_without_aggregates_rejected(self):
        with pytest.raises(PlanningError):
            plan_of("CREATE TABLE bad AS SELECT name FROM t GROUP BY name")

    def test_duplicate_table_names_rejected(self):
        with pytest.raises(PlanningError):
            plan_of("CREATE TABLE a AS SELECT x FROM t; "
                    "CREATE TABLE a AS SELECT y FROM t")

    def test_plan_exposes_input_binding(self):
        app_plan = plan_of("CREATE TABLE f AS SELECT x FROM t")
        assert app_plan.scribe_category == "cat"
        assert app_plan.time_column == "event_time"

    def test_unknown_table_lookup_raises(self):
        app_plan = plan_of("CREATE TABLE f AS SELECT x FROM t")
        with pytest.raises(PlanningError):
            app_plan.table("ghost")
