"""Tests for plan lowering, the plan cache, and incremental views."""

import pytest

from repro.errors import ConfigError, PlanningError
from repro.laser.service import LaserTable
from repro.puma.app import PumaApp
from repro.puma.compiler import ExecutablePlan, PlanCache, compile_plan
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.puma.service import PumaService
from repro.runtime.metrics import MetricsRegistry
from repro.storage.hbase import HBaseTable

SOURCE = """
CREATE APPLICATION timings;
CREATE INPUT TABLE events(event_time, page, ms) FROM SCRIBE("events")
TIME event_time;
CREATE TABLE by_page AS
SELECT page, count(*) AS n, sum(ms) AS total, avg(ms) AS mean,
       max(ms) AS worst
FROM events [1 minute];
CREATE TABLE slow AS
SELECT page, ms FROM events WHERE ms > 100;
"""

REDEFINED_SOURCE = SOURCE.replace("ms > 100", "ms > 200")


@pytest.fixture
def app_plan():
    return plan(parse(SOURCE))


def make_rows(count):
    return [
        {"event_time": float(i), "page": f"p{i % 3}", "ms": 10 * i}
        for i in range(count)
    ]


class TestLowering:
    def test_fold_batch_matches_per_row_update_fold(self, app_plan):
        table = compile_plan(app_plan).table("by_page")
        rows = make_rows(50)
        deltas = table.fold_batch(rows)

        source = app_plan.table("by_page")
        expected = {}
        for row in rows:
            cell = ((row["event_time"] // 60) * 60.0, source.group_key(row))
            state = expected.setdefault(cell, {
                b.alias: b.function.create(b.extra_args)
                for b in source.aggregates
            })
            for b in source.aggregates:
                value = 1 if b.arg is None else b.arg(row)
                state[b.alias] = b.function.update(state[b.alias], value,
                                                   b.extra_args)
        assert deltas == expected

    def test_shared_argument_expressions_share_a_value_slot(self, app_plan):
        table = compile_plan(app_plan).table("by_page")
        # sum(ms), avg(ms), max(ms) read one column; count(*) reads none.
        assert len(table.arg_evaluators) == 1
        slots = [a.arg_slot for a in table.aggregates]
        assert slots == [None, 0, 0, 0]

    def test_project_batch_applies_predicate_and_projection(self, app_plan):
        table = compile_plan(app_plan).table("slow")
        out = table.project_batch(make_rows(20))
        assert all(record["ms"] > 100 for record, _ in out)
        assert [record["page"] for record, _ in out] == [
            f"p{i % 3}" for i in range(11, 20)
        ]
        # The scribe partition key is the first projection's value.
        assert all(key == record["page"] for record, key in out)

    def test_unknown_table_raises(self, app_plan):
        with pytest.raises(PlanningError):
            compile_plan(app_plan).table("nope")


class TestPlanCache:
    def test_same_plan_object_hits(self, app_plan):
        cache = PlanCache()
        first = cache.get(app_plan)
        assert cache.get(app_plan) is first
        assert cache.stats() == {"hits": 1, "misses": 1, "invalidations": 0}
        assert len(cache) == 1

    def test_redefinition_invalidates_and_recompiles(self, app_plan):
        cache = PlanCache()
        first = cache.get(app_plan)
        redefined = plan(parse(REDEFINED_SOURCE))
        second = cache.get(redefined)
        assert second is not first
        assert second.source is redefined
        assert cache.stats() == {"hits": 0, "misses": 2, "invalidations": 1}
        # The new program is now the cached one.
        assert cache.get(redefined) is second

    def test_explicit_invalidation(self, app_plan):
        cache = PlanCache()
        cache.get(app_plan)
        assert cache.invalidate(app_plan.name) is True
        assert cache.invalidate(app_plan.name) is False
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1

    def test_invalidate_all(self, app_plan):
        cache = PlanCache()
        cache.get(app_plan)
        assert cache.invalidate_all() == 1
        assert len(cache) == 0

    def test_counters_live_in_the_registry(self, app_plan):
        registry = MetricsRegistry()
        cache = PlanCache(metrics=registry)
        cache.get(app_plan)
        cache.get(app_plan)
        assert registry.counter("puma.plan_cache.hits").value == 1
        assert registry.counter("puma.plan_cache.misses").value == 1


class TestAppIntegration:
    def test_app_compiles_through_shared_cache(self, scribe, app_plan):
        scribe.create_category("events", 1)
        cache = PlanCache()
        app = PumaApp(app_plan, scribe, HBaseTable("state"),
                      clock=scribe.clock, plan_cache=cache)
        assert app._executable.source is app_plan
        assert cache.stats()["misses"] == 1
        # A restart re-resolves the program: a cache hit, no recompile.
        executable = app._executable
        app.crash()
        app.restart()
        assert app._executable is executable
        assert cache.stats()["hits"] >= 1

    def test_unknown_executor_rejected(self, scribe, app_plan):
        scribe.create_category("events", 1)
        with pytest.raises(ConfigError):
            PumaApp(app_plan, scribe, HBaseTable("state"),
                    clock=scribe.clock, executor="vectorized")

    def test_service_delete_and_redeploy_recompiles(self, scribe):
        """Regression: redefinition under one name must not serve the
        stale compiled program."""
        scribe.create_category("events", 1)
        service = PumaService(scribe, clock=scribe.clock)
        service.deploy(SOURCE)
        assert len(service.plan_cache) == 1
        service.delete("timings")
        assert len(service.plan_cache) == 0
        app = service.deploy(REDEFINED_SOURCE)
        # The recompiled program carries the new predicate.
        for i in range(10):
            scribe.write_record("events", {
                "event_time": float(i), "page": "home", "ms": 150,
            }, key=str(i))
        app.pump()
        # ms=150 passes the old predicate (>100) but not the new (>200).
        assert service.metrics.counter("puma.timings.slow.out").value == 0
        stats = service.plan_cache.stats()
        assert stats["invalidations"] == 1
        assert stats["misses"] == 2


class TestIncrementalLaserViews:
    def make_app(self, scribe, **kwargs):
        scribe.create_category("events", 1)
        return PumaApp(plan(parse(SOURCE)), scribe, HBaseTable("state"),
                       clock=scribe.clock, **kwargs)

    def write(self, scribe, count, start=0.0):
        for i in range(count):
            scribe.write_record("events", {
                "event_time": start + i, "page": f"p{i % 3}", "ms": 10 * i,
            }, key=str(i))

    def test_view_converges_to_durable_query_results(self, scribe, clock):
        app = self.make_app(scribe, checkpoint_every_events=25)
        view = LaserTable("by_page_view", ["page", "window_start"],
                         ["n", "total", "mean", "worst"], clock=clock)
        app.attach_laser_view("by_page", view)
        self.write(scribe, 150)
        app.pump()
        app.checkpoint()
        for row in app.query("by_page"):
            served = view.get(row["page"], row["window_start"])
            assert served == {"n": row["n"], "total": row["total"],
                              "mean": row["mean"], "worst": row["worst"]}

    def test_view_updates_are_incremental(self, scribe, clock, metrics):
        app = self.make_app(scribe, metrics=metrics,
                            checkpoint_every_events=1_000_000)
        view = LaserTable("by_page_view", ["page", "window_start"],
                         ["n"], clock=clock, metrics=metrics)
        app.attach_laser_view("by_page", view)
        self.write(scribe, 60)
        app.pump()
        app.checkpoint()  # 3 pages x 1 window flushed
        updates = metrics.counter("puma.timings.view_updates")
        assert updates.value == 3
        # A second checkpoint with no new data touches the view not at all.
        app.checkpoint()
        assert updates.value == 3
        # New data for one window refreshes only that window's cells.
        self.write(scribe, 3, start=10.0)
        app.pump()
        app.checkpoint()
        assert updates.value == 6

    def test_eviction_flushes_through_the_view(self, scribe, clock):
        app = self.make_app(scribe, retain_windows=1,
                            checkpoint_every_events=1_000_000)
        view = LaserTable("by_page_view", ["page", "window_start"],
                         ["n"], clock=clock)
        app.attach_laser_view("by_page", view)
        self.write(scribe, 120)  # two windows; the first gets evicted
        app.pump()
        assert view.get("p0", 0.0) == {"n": 20}

    def test_view_key_columns_validated(self, scribe, clock):
        app = self.make_app(scribe)
        bad = LaserTable("bad_view", ["user"], ["n"], clock=clock)
        with pytest.raises(ConfigError):
            app.attach_laser_view("by_page", bad)
        with pytest.raises(PlanningError):
            app.attach_laser_view("slow", bad)
