"""Tests for running Puma apps in the batch environment (Section 4.5.2).

The load-bearing property: the SAME compiled plan gives the SAME results
over batch rows as it does streaming — that is what makes hybrid
pipelines and backfills trustworthy.
"""

import pytest

from repro.puma.app import PumaApp
from repro.puma.hive_udf import run_puma_backfill
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.rng import make_rng
from repro.storage.hbase import HBaseTable

SOURCE = """
CREATE APPLICATION metrics;
CREATE INPUT TABLE events(event_time, kind, value, user)
FROM SCRIBE("events") TIME event_time;
CREATE TABLE by_kind AS
SELECT kind, count(*) AS n, sum(value) AS total, max(value) AS peak
FROM events [1 minute];
CREATE TABLE big_events AS
SELECT kind, value FROM events WHERE value > 50;
"""


def generate_rows(count=300):
    rng = make_rng(99, "hive-udf")
    return [
        {
            "event_time": rng.uniform(0, 180),
            "kind": rng.choice(["a", "b", "c"]),
            "value": rng.randrange(100),
            "user": f"u{rng.randrange(20)}",
        }
        for _ in range(count)
    ]


@pytest.fixture
def app_plan():
    return plan(parse(SOURCE))


class TestAggregationBackfill:
    def test_batch_equals_streaming(self, app_plan, scribe):
        rows = generate_rows()
        batch_rows = run_puma_backfill(app_plan, "by_kind", rows)

        scribe.create_category("events", 4)
        app = PumaApp(app_plan, scribe, HBaseTable("s"), clock=scribe.clock)
        for row in rows:
            scribe.write_record("events", row, key=row["user"])
        app.pump(10_000)
        stream_rows = app.query("by_kind")

        assert batch_rows == stream_rows

    def test_combiner_does_not_change_results(self, app_plan):
        rows = generate_rows(100)
        one_task = run_puma_backfill(app_plan, "by_kind", rows)
        # A different split count exercises different combiner groupings.
        import repro.puma.hive_udf as udf_module
        many = run_puma_backfill(app_plan, "by_kind", rows)
        assert one_task == many


class TestFilterBackfill:
    def test_filter_results_match_predicate(self, app_plan):
        rows = generate_rows(100)
        output = run_puma_backfill(app_plan, "big_events", rows)
        expected = sorted(
            (r["event_time"] for r in rows if r["value"] > 50)
        )
        assert sorted(o["event_time"] for o in output) == expected
        assert all(o["value"] > 50 for o in output)

    def test_no_aggregates_table_via_backfill(self, app_plan):
        output = run_puma_backfill(app_plan, "big_events", [])
        assert output == []
