"""Tests for the Puma deployment service."""

import pytest

from repro.errors import ConfigError, PqlSyntaxError
from repro.puma.service import PumaService

SOURCE = """
CREATE APPLICATION app1;
CREATE INPUT TABLE t(event_time, x) FROM SCRIBE("cat") TIME event_time;
CREATE TABLE c AS SELECT count(*) AS n FROM t [1 minute];
"""


@pytest.fixture
def service(scribe):
    scribe.create_category("cat", 2)
    return PumaService(scribe, clock=scribe.clock)


class TestDeployment:
    def test_deploy_and_list(self, service):
        service.deploy(SOURCE)
        assert service.apps() == ["app1"]
        assert service.app("app1").name == "app1"

    def test_compile_validates_without_deploying(self, service):
        plan = service.compile(SOURCE)
        assert plan.name == "app1"
        assert service.apps() == []

    def test_duplicate_deploy_rejected(self, service):
        service.deploy(SOURCE)
        with pytest.raises(ConfigError):
            service.deploy(SOURCE)

    def test_deploy_requires_existing_category(self, service):
        bad = SOURCE.replace('"cat"', '"missing"')
        with pytest.raises(ConfigError):
            service.deploy(bad)

    def test_bad_sql_fails_at_deploy(self, service):
        with pytest.raises(PqlSyntaxError):
            service.deploy("CREATE GARBAGE;")

    def test_delete(self, service):
        service.deploy(SOURCE)
        service.delete("app1")
        assert service.apps() == []
        with pytest.raises(ConfigError):
            service.delete("app1")


class TestOperation:
    def test_pump_all_drives_every_app(self, service, scribe):
        service.deploy(SOURCE)
        for i in range(5):
            scribe.write_record("cat", {"event_time": float(i), "x": i})
        assert service.pump_all() == 5

    def test_lag_report_and_alerts(self, service, scribe):
        service.lag_alert_threshold = 3
        service.deploy(SOURCE)
        for i in range(10):
            scribe.write_record("cat", {"event_time": float(i), "x": i})
        assert service.lag_report() == {"app1": 10}
        assert service.lag_alerts() == ["app1"]
        service.pump_all()
        assert service.lag_alerts() == []


class TestReviewWorkflow:
    """Section 6.3: 'the UI generates a code diff that must be reviewed'."""

    def test_propose_approve_deploys(self, service):
        diff = service.propose(SOURCE, author="alice")
        assert service.apps() == []  # not deployed yet
        app = service.approve(diff.diff_id, reviewer="bob")
        assert app.name == "app1"
        assert service.apps() == ["app1"]
        assert service.pending_diffs() == []

    def test_self_approval_rejected(self, service):
        diff = service.propose(SOURCE, author="alice")
        with pytest.raises(ConfigError):
            service.approve(diff.diff_id, reviewer="alice")
        assert service.pending_diffs()  # still pending

    def test_bad_sql_fails_at_proposal_not_review(self, service):
        with pytest.raises(PqlSyntaxError):
            service.propose("CREATE NONSENSE;", author="alice")

    def test_reject_discards(self, service):
        diff = service.propose(SOURCE, author="alice")
        service.reject(diff.diff_id)
        assert service.pending_diffs() == []
        with pytest.raises(ConfigError):
            service.approve(diff.diff_id, reviewer="bob")

    def test_reviewed_delete(self, service):
        service.deploy(SOURCE)
        diff = service.propose_delete("app1", author="alice")
        result = service.approve(diff.diff_id, reviewer="bob")
        assert result is None
        assert service.apps() == []

    def test_unknown_diff(self, service):
        with pytest.raises(ConfigError):
            service.approve(999, reviewer="bob")
        with pytest.raises(ConfigError):
            service.reject(999)
