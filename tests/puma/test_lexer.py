"""Tests for the PQL tokenizer."""

import pytest

from repro.errors import PqlSyntaxError
from repro.puma.lexer import TokenType, tokenize


def kinds(source):
    return [(t.type, t.value) for t in tokenize(source)[:-1]]


class TestTokenize:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("create TABLE Select")
        assert [t.value for t in tokens[:-1]] == ["CREATE", "TABLE", "SELECT"]
        assert all(t.type == TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        [token, _] = tokenize("myTable")
        assert token.type == TokenType.IDENTIFIER
        assert token.value == "myTable"

    def test_numbers(self):
        assert kinds("42 3.14") == [
            (TokenType.NUMBER, "42"), (TokenType.NUMBER, "3.14"),
        ]

    def test_strings_both_quote_styles(self):
        assert kinds("'abc' \"def\"") == [
            (TokenType.STRING, "abc"), (TokenType.STRING, "def"),
        ]

    def test_unterminated_string_raises_with_position(self):
        with pytest.raises(PqlSyntaxError) as exc:
            tokenize("SELECT 'oops")
        assert exc.value.line == 1

    def test_operators_including_two_char(self):
        values = [v for _, v in kinds("a <= b != c <> d")]
        assert values == ["a", "<=", "b", "!=", "c", "!=", "d"]

    def test_punctuation_and_window_brackets(self):
        values = [v for _, v in kinds("(a, b) [5 minutes];")]
        assert values == ["(", "a", ",", "b", ")", "[", "5", "MINUTES",
                          "]", ";"]

    def test_line_comments_are_skipped(self):
        assert kinds("a -- a comment\nb") == [
            (TokenType.IDENTIFIER, "a"), (TokenType.IDENTIFIER, "b"),
        ]

    def test_positions_track_lines(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character_raises(self):
        with pytest.raises(PqlSyntaxError):
            tokenize("a @ b")

    def test_end_token_always_present(self):
        assert tokenize("")[-1].type == TokenType.END
