"""Tests for the Puma app runtime: aggregation, filtering, recovery."""

import pytest

from repro.puma.app import PumaApp, combine_partial_states
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.scribe.reader import CategoryReader
from repro.storage.hbase import HBaseTable

AGG_SOURCE = """
CREATE APPLICATION counts;
CREATE INPUT TABLE clicks(event_time, page, user) FROM SCRIBE("clicks")
TIME event_time;
CREATE TABLE clicks_1min AS
SELECT page, count(*) AS n, approx_distinct(user) AS users
FROM clicks [1 minute];
"""

FILTER_SOURCE = """
CREATE APPLICATION only_home;
CREATE INPUT TABLE clicks(event_time, page, user) FROM SCRIBE("clicks")
TIME event_time;
CREATE TABLE home_clicks AS
SELECT user, page FROM clicks WHERE page = 'home';
"""


@pytest.fixture
def wired(scribe):
    scribe.create_category("clicks", 2)
    return scribe


def make_app(scribe, source=AGG_SOURCE, **kwargs):
    return PumaApp(plan(parse(source)), scribe, HBaseTable("state"),
                   clock=scribe.clock, **kwargs)


def write_clicks(scribe, count, pages=("home", "about"), start=0.0):
    for i in range(count):
        scribe.write_record("clicks", {
            "event_time": start + i,
            "page": pages[i % len(pages)],
            "user": f"u{i % 7}",
        }, key=str(i))


class TestAggregation:
    def test_windowed_group_counts(self, wired):
        app = make_app(wired)
        write_clicks(wired, 60)  # one event per second: one window
        app.pump()
        rows = app.query("clicks_1min", window_start=0.0)
        by_page = {row["page"]: row["n"] for row in rows}
        assert by_page == {"home": 30, "about": 30}

    def test_multiple_windows(self, wired):
        app = make_app(wired)
        write_clicks(wired, 120)
        app.pump()
        assert app.windows("clicks_1min") == [0.0, 60.0]

    def test_approx_distinct_in_query(self, wired):
        app = make_app(wired)
        write_clicks(wired, 60)
        app.pump()
        [home] = [r for r in app.query("clicks_1min", 0.0)
                  if r["page"] == "home"]
        # i % 7 cycles through all seven users on both pages (7 is odd, so
        # parity alternates); HLL is exact at this tiny cardinality.
        assert home["users"] == 7

    def test_query_top_k(self, wired):
        app = make_app(wired)
        write_clicks(wired, 90, pages=("home", "home", "about"))
        app.pump()
        top = app.query_top_k("clicks_1min", "n", 1, window_start=0.0)
        assert top[0]["page"] == "home"

    def test_query_non_aggregation_table_rejected(self, wired):
        app = make_app(wired, FILTER_SOURCE)
        from repro.errors import PlanningError
        with pytest.raises(PlanningError):
            app.query("home_clicks")

    def test_rows_without_event_time_are_skipped(self, wired):
        app = make_app(wired)
        wired.write_record("clicks", {"page": "home", "user": "u"})
        app.pump()
        assert app.query("clicks_1min") == []


class TestFiltering:
    def test_filter_writes_output_category(self, wired):
        app = make_app(wired, FILTER_SOURCE)
        write_clicks(wired, 10)
        app.pump()
        out = CategoryReader(wired, "home_clicks").read_all()
        records = [m.decode() for m in out]
        assert len(records) == 5
        assert all("event_time" in r for r in records)  # time propagates

    def test_filter_output_feeds_another_app(self, wired):
        """Section 2.2: output 'can then be the input to another Puma app'."""
        first = make_app(wired, FILTER_SOURCE)
        downstream_source = """
        CREATE APPLICATION downstream;
        CREATE INPUT TABLE home_clicks(event_time, user, page)
        FROM SCRIBE("home_clicks") TIME event_time;
        CREATE TABLE per_user AS
        SELECT user, count(*) AS n FROM home_clicks [1 minute];
        """
        write_clicks(wired, 10)
        first.pump()
        second = make_app(wired, downstream_source)
        second.pump()
        rows = second.query("per_user", 0.0)
        assert sum(r["n"] for r in rows) == 5


class TestCheckpointRecovery:
    def test_crash_without_checkpoint_replays_everything(self, wired):
        app = make_app(wired, checkpoint_every_events=10_000)
        write_clicks(wired, 20)
        app.pump()
        app.crash()
        app.restart()
        app.pump()
        rows = app.query("clicks_1min", 0.0)
        assert sum(r["n"] for r in rows) == 20  # replay rebuilt it exactly

    def test_crash_after_checkpoint_resumes(self, wired):
        app = make_app(wired)
        write_clicks(wired, 20)
        app.pump()
        app.checkpoint()
        app.crash()
        app.restart()
        rows = app.query("clicks_1min", 0.0)
        assert sum(r["n"] for r in rows) == 20

    def test_at_least_once_can_overcount_after_partial_checkpoint(self, wired):
        """State rows flushed but offsets not: replay double-counts.

        This is Puma's documented at-least-once guarantee (Section 4.3.2).
        """
        app = make_app(wired, checkpoint_every_events=10_000)
        write_clicks(wired, 10)
        app.pump()
        # Simulate the crash landing between the state writes and the
        # offset writes of the checkpoint: state rows are durable, offsets
        # are not.
        for state_key in sorted(app._dirty):
            table, window_start, group_key = state_key
            app.hbase.put(app._state_row(table, window_start, group_key),
                          dict(app._state[state_key]))
        app.crash()
        app.restart()
        app.pump()  # replays all 10 events on top of the saved state
        rows = app.query("clicks_1min", 0.0)
        assert sum(r["n"] for r in rows) == 20  # at-least-once: overcounted

    def test_crashed_app_pumps_nothing(self, wired):
        app = make_app(wired)
        write_clicks(wired, 5)
        app.crash()
        assert app.pump() == 0


class TestParallelism:
    def test_bucket_partitioned_instances_cover_stream(self, wired):
        left = make_app(wired, buckets=[0])
        right = PumaApp(plan(parse(AGG_SOURCE)), wired, left.hbase,
                        buckets=[1], clock=wired.clock)
        write_clicks(wired, 40)
        left.pump()
        right.pump()
        table = left.plan.table("clicks_1min")
        combined = combine_partial_states(table, [
            left.partial_states("clicks_1min"),
            right.partial_states("clicks_1min"),
        ])
        total = sum(state["n"] for state in combined.values())
        assert total == 40

    def test_combine_partials_matches_single_process(self, wired):
        whole = make_app(wired)
        write_clicks(wired, 30)
        whole.pump()
        table = whole.plan.table("clicks_1min")
        combined = combine_partial_states(
            table, [whole.partial_states("clicks_1min")])
        single = {key: state["n"]
                  for key, state in whole.partial_states("clicks_1min").items()}
        assert {k: v["n"] for k, v in combined.items()} == single


class TestWindowEviction:
    """Long-running apps bound their memory: old windows are evicted to
    HBase and still served by the query API."""

    def test_memory_holds_only_retained_windows(self, wired):
        app = make_app(wired, retain_windows=2)
        write_clicks(wired, 300)  # five 1-minute windows
        app.pump(1000)
        in_memory = {start for (_, start, _) in app._state}
        assert len(in_memory) == 2
        assert in_memory == {180.0, 240.0}
        assert app.metrics.counter("puma.counts.windows_evicted").value >= 3

    def test_evicted_windows_still_queryable(self, wired):
        unbounded = make_app(wired)
        write_clicks(wired, 300)
        unbounded.pump(1000)
        expected = unbounded.query("clicks_1min")

        bounded = PumaApp(plan(parse(AGG_SOURCE)), wired,
                          HBaseTable("bounded_state"),
                          retain_windows=2, clock=wired.clock)
        bounded.pump(1000)
        assert bounded.query("clicks_1min") == expected
        assert bounded.windows("clicks_1min") == \
            unbounded.windows("clicks_1min")

    def test_eviction_never_loses_counts(self, wired):
        app = make_app(wired, retain_windows=1)
        write_clicks(wired, 240)
        app.pump(1000)
        total = sum(r["n"] for r in app.query("clicks_1min"))
        assert total == 240


class TestPoisonMessages:
    def test_undecodable_message_is_skipped_and_counted(self, wired):
        app = make_app(wired)
        write_clicks(wired, 5)
        wired.write("clicks", b"\xff\xfenot json", bucket=0)
        write_clicks(wired, 5, start=100.0)
        assert app.pump(1000) == 11
        assert app.metrics.counter("puma.counts.poison").value == 1
        total = sum(r["n"] for r in app.query("clicks_1min"))
        assert total == 10  # the good rows all made it
