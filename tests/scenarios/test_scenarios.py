"""The macro scenarios: every check green, every run deterministic.

The smoke sizes are tuned so each scenario runs in seconds; ``full`` is
for local investigation (``python -m repro.scenarios all --scale full``)
and is deliberately not exercised here.
"""

import pytest

from repro.errors import ConfigError
from repro.scenarios import run_scenario, scenario_names

ALL_SCENARIOS = ("ad_click_join", "diurnal_flash_crowd", "hot_key_skew",
                 "multi_tenant", "session_trending")


class TestRegistry:
    def test_all_five_scenarios_registered(self):
        assert tuple(scenario_names()) == ALL_SCENARIOS

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            run_scenario("nope")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigError):
            run_scenario("hot_key_skew", scale="galactic")


class TestScenarioChecks:
    """Each scenario's own acceptance invariants, at smoke scale."""

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_scenario_passes_all_checks(self, name):
        result = run_scenario(name, scale="smoke", seed=0)
        assert result.ok, f"{name} failed: {result.failed_checks()}"
        assert result.events_in > 0
        assert result.final_lag == 0
        assert result.metrics_digest

    def test_checks_are_not_vacuous(self):
        # Every scenario must assert at least four distinct invariants;
        # a scenario with one check would pass by accident.
        for name in ALL_SCENARIOS:
            result = run_scenario(name, scale="smoke", seed=0)
            assert len(result.checks) >= 4, name


@pytest.mark.determinism
class TestDeterminism:
    """Double-run digests must be byte-identical (the CI smoke runs the
    CLI under two PYTHONHASHSEED values and diffs the same digests)."""

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_double_run_digests_agree(self, name):
        first = run_scenario(name, scale="smoke", seed=0)
        second = run_scenario(name, scale="smoke", seed=0)
        assert first.digest() == second.digest(), (
            f"{name} diverged: {first.as_dict()} != {second.as_dict()}")

    def test_different_seeds_diverge(self):
        # The digests must actually depend on the seed — otherwise the
        # double-run agreement above would be vacuous.
        assert (run_scenario("hot_key_skew", seed=0).digest()
                != run_scenario("hot_key_skew", seed=1).digest())
