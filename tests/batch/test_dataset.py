"""Tests for the Spark-style dataset engine."""

import pytest

from repro.batch.dataset import Dataset, DatasetContext
from repro.errors import ConfigError


@pytest.fixture
def context():
    return DatasetContext(default_partitions=4)


class TestNarrowTransformations:
    def test_map_filter_flat_map(self, context):
        result = (context.parallelize(range(10))
                  .map(lambda x: x * 2)
                  .filter(lambda x: x % 4 == 0)
                  .flat_map(lambda x: [x, x + 1])
                  .collect())
        assert sorted(result) == sorted(
            y for x in range(10) if (x * 2) % 4 == 0
            for y in [x * 2, x * 2 + 1]
        )

    def test_narrow_chain_fuses_into_one_stage(self, context):
        dataset = (context.parallelize(range(100))
                   .map(lambda x: x + 1)
                   .filter(lambda x: x % 2 == 0)
                   .map(lambda x: x * 3))
        context.stats.reset()
        dataset.collect()
        assert context.stats.stages == 1  # source only; no shuffle
        assert context.stats.shuffled_records == 0

    def test_count_and_take(self, context):
        dataset = context.parallelize(range(25))
        assert dataset.count() == 25
        assert len(dataset.take(5)) == 5

    def test_empty_input(self, context):
        assert context.parallelize([]).collect() == []

    def test_laziness(self, context):
        calls = []
        dataset = context.parallelize(range(5)).map(
            lambda x: calls.append(x) or x)
        assert calls == []  # nothing ran yet
        dataset.collect()
        assert len(calls) == 5


class TestWideTransformations:
    def test_group_by_key(self, context):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("a", 5)]
        grouped = (context.parallelize(pairs)
                   .group_by_key()
                   .collect_as_map())
        assert sorted(grouped["a"]) == [1, 3, 5]
        assert sorted(grouped["b"]) == [2, 4]

    def test_reduce_by_key(self, context):
        pairs = [(f"k{i % 3}", 1) for i in range(30)]
        totals = (context.parallelize(pairs)
                  .reduce_by_key(lambda a, b: a + b)
                  .collect_as_map())
        assert totals == {"k0": 10, "k1": 10, "k2": 10}

    def test_shuffle_counts_as_a_stage(self, context):
        pairs = [(f"k{i}", 1) for i in range(20)]
        dataset = context.parallelize(pairs).reduce_by_key(lambda a, b: a + b)
        context.stats.reset()
        dataset.collect()
        assert context.stats.stages == 2  # source + shuffle

    def test_map_side_combine_shrinks_the_shuffle(self, context):
        pairs = [(f"k{i % 3}", 1) for i in range(300)]
        combined = context.parallelize(pairs).reduce_by_key(
            lambda a, b: a + b)
        context.stats.reset()
        combined.collect()
        with_combine = context.stats.shuffled_records

        grouped = context.parallelize(pairs).group_by_key()
        context.stats.reset()
        grouped.collect()
        without_combine = context.stats.shuffled_records

        assert with_combine <= 3 * 4      # keys x partitions
        assert without_combine == 300      # every record crosses the wire
        assert with_combine < without_combine

    def test_key_by(self, context):
        result = (context.parallelize(["aa", "b", "cc"])
                  .key_by(len)
                  .group_by_key()
                  .collect_as_map())
        assert sorted(result[2]) == ["aa", "cc"]
        assert result[1] == ["b"]

    def test_partition_count_does_not_change_results(self):
        pairs = [(f"k{i % 7}", i) for i in range(100)]
        results = []
        for parts in [1, 3, 8]:
            context = DatasetContext(default_partitions=parts)
            results.append(context.parallelize(pairs)
                           .reduce_by_key(lambda a, b: a + b)
                           .collect_as_map())
        assert results[0] == results[1] == results[2]


class TestValidation:
    def test_invalid_partitions(self):
        with pytest.raises(ConfigError):
            DatasetContext(default_partitions=0)
