"""Tests for the Swift engine: checkpoints and at-least-once replay."""

import pytest

from repro.errors import ConfigError
from repro.scribe.checkpoints import CheckpointStore
from repro.swift.engine import SwiftApp, crash_after

from tests.conftest import write_events


@pytest.fixture
def wired(scribe):
    scribe.create_category("in", 1)
    return scribe


def make_app(scribe, client, **kwargs):
    kwargs.setdefault("checkpoint_every_messages", 10)
    return SwiftApp("app", scribe, "in", 0, client,
                    CheckpointStore(), **kwargs)


class TestDelivery:
    def test_delivers_everything_in_order(self, wired):
        seen = []
        app = make_app(wired, lambda m: seen.append(m.decode()["seq"]))
        write_events(wired, "in", 25)
        assert app.pump() == 25
        assert seen == list(range(25))

    def test_checkpoint_every_n_messages(self, wired):
        checkpoints = CheckpointStore()
        app = SwiftApp("app", wired, "in", 0, lambda m: None, checkpoints,
                       checkpoint_every_messages=10)
        write_events(wired, "in", 25)
        app.pump()
        saved = checkpoints.load("app", "in", 0)
        assert saved.offset == 20  # checkpoints at 10 and 20

    def test_checkpoint_every_b_bytes(self, wired):
        checkpoints = CheckpointStore()
        app = SwiftApp("app", wired, "in", 0, lambda m: None, checkpoints,
                       checkpoint_every_messages=None,
                       checkpoint_every_bytes=100)
        write_events(wired, "in", 20)
        app.pump()
        assert checkpoints.load("app", "in", 0) is not None

    def test_requires_a_trigger(self, wired):
        with pytest.raises(ConfigError):
            make_app(wired, lambda m: None, checkpoint_every_messages=None,
                     checkpoint_every_bytes=None)


class TestAtLeastOnceReplay:
    def test_crash_replays_from_last_checkpoint(self, wired):
        seen = []
        client = crash_after(25, lambda m: seen.append(m.decode()["seq"]),
                             wired)
        app = make_app(wired, client)
        write_events(wired, "in", 40)
        app.pump()
        assert app.crashed
        # 25 delivered; last checkpoint at 20 -> replay 20..39
        replay = []
        app.client = lambda m: replay.append(m.decode()["seq"])
        app.restart()
        app.pump()
        assert replay[0] == 20
        assert seen + replay == list(range(25)) + list(range(20, 40))

    def test_every_message_seen_at_least_once(self, wired):
        """The Swift guarantee: union of deliveries covers the stream."""
        seen = []
        client = crash_after(13, lambda m: seen.append(m.decode()["seq"]),
                             wired)
        app = make_app(wired, client, checkpoint_every_messages=5)
        write_events(wired, "in", 30)
        app.pump()
        app.client = lambda m: seen.append(m.decode()["seq"])
        app.restart()
        app.pump()
        assert set(seen) == set(range(30))
        assert len(seen) >= 30  # duplicates allowed, loss is not

    def test_crashed_app_pumps_nothing(self, wired):
        app = make_app(wired, crash_after(0, lambda m: None, wired))
        write_events(wired, "in", 5)
        app.pump()
        assert app.crashed
        assert app.pump() == 0

    def test_resume_picks_up_existing_checkpoint(self, wired):
        checkpoints = CheckpointStore()
        first = SwiftApp("app", wired, "in", 0, lambda m: None, checkpoints,
                         checkpoint_every_messages=10)
        write_events(wired, "in", 20)
        first.pump()
        # A new instance of the same app resumes from the checkpoint.
        seen = []
        second = SwiftApp("app", wired, "in", 0,
                          lambda m: seen.append(m.decode()["event_time"]),
                          checkpoints, checkpoint_every_messages=10)
        write_events(wired, "in", 5, start_time=100.0)
        second.pump()
        assert seen == [100.0, 101.0, 102.0, 103.0, 104.0]  # not the backlog

    def test_lag_reporting(self, wired):
        app = make_app(wired, lambda m: None)
        write_events(wired, "in", 7)
        assert app.lag_messages() == 7
        app.pump()
        assert app.lag_messages() == 0


class TestRestartAfterRetention:
    def test_restart_without_checkpoint_resumes_at_first_retained(
            self, scribe, clock):
        scribe.create_category("in", 1, retention_seconds=10.0)
        app = make_app(scribe, lambda m: None)
        write_events(scribe, "in", 5)
        # Everything written so far ages out of the retention window.
        clock.advance(100.0)
        assert scribe.run_retention() == 5
        first = scribe.first_retained_offset("in", 0)
        assert first == 5
        # No checkpoint was ever saved; a restart must not rewind to the
        # absolute offset 0, which no longer exists.
        app.restart()
        assert app.position == first
        assert app.lag_messages() == 0

    def test_restart_interleaved_with_retention_counts_lag_correctly(
            self, scribe, clock):
        scribe.create_category("in", 1, retention_seconds=10.0)
        app = make_app(scribe, lambda m: None)
        write_events(scribe, "in", 8)
        clock.advance(100.0)
        scribe.run_retention()
        write_events(scribe, "in", 3, start_time=clock.now())
        app.restart()
        # Only the 3 retained messages are pending; seeking to 0 would
        # report a lag of 11 and trip lag-based alerting/autoscaling.
        assert app.lag_messages() == 3
        assert app.pump() == 3
