"""Tests for gap-based sessionization."""

import pytest

from repro.core.event import Event
from repro.errors import ConfigError
from repro.scribe.reader import CategoryReader
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusTask
from repro.apps.sessions import SessionizeProcessor


def visit(t: float, user: str) -> Event:
    return Event(t, {"user": user})


class TestSessionBoundaries:
    def test_gap_closes_session_inline(self):
        proc = SessionizeProcessor(gap_seconds=30.0)
        state = proc.initial_state()
        assert proc.process(visit(0.0, "u1"), state) == []
        assert proc.process(visit(10.0, "u1"), state) == []
        [closed] = proc.process(visit(100.0, "u1"), state)
        assert closed.record["session_start"] == 0.0
        assert closed.record["session_end"] == 10.0
        assert closed.record["events"] == 2
        assert closed.record["duration"] == 10.0
        assert closed.key == "u1"
        # The triggering event opened the next session.
        assert proc.open_sessions(state) == 1
        assert proc.closed_sessions(state) == 1

    def test_watermark_closes_idle_session_at_checkpoint(self):
        proc = SessionizeProcessor(gap_seconds=30.0)
        state = proc.initial_state()
        proc.process(visit(0.0, "u1"), state)
        proc.process(visit(100.0, "u2"), state)  # advances the watermark
        [closed] = proc.on_checkpoint(state, now=0.0)
        assert closed.record["user"] == "u1"
        assert proc.open_sessions(state) == 1  # u2 still open

    def test_session_within_gap_stays_open(self):
        proc = SessionizeProcessor(gap_seconds=30.0)
        state = proc.initial_state()
        proc.process(visit(0.0, "u1"), state)
        proc.process(visit(29.0, "u1"), state)
        assert proc.on_checkpoint(state, now=0.0) == []
        assert state["open"]["u1"] == [0.0, 29.0, 2]

    def test_out_of_order_arrival_stretches_session_backwards(self):
        proc = SessionizeProcessor(gap_seconds=30.0)
        state = proc.initial_state()
        proc.process(visit(50.0, "u1"), state)
        proc.process(visit(40.0, "u1"), state)
        assert state["open"]["u1"] == [40.0, 50.0, 2]

    def test_users_are_independent(self):
        proc = SessionizeProcessor(gap_seconds=30.0)
        state = proc.initial_state()
        proc.process(visit(0.0, "u1"), state)
        proc.process(visit(5.0, "u2"), state)
        assert proc.open_sessions(state) == 2

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SessionizeProcessor(gap_seconds=0.0)


class TestEndToEnd:
    def test_sessions_flow_through_a_stylus_task(self, scribe):
        scribe.create_category("visits", 1)
        scribe.create_category("sessions", 1)
        # Two bursts per user separated by more than the gap.
        for user in ("u1", "u2"):
            offset = 0.0 if user == "u1" else 2.0
            for t in (0.0, 5.0, 10.0, 200.0, 210.0):
                scribe.write_record("visits", {
                    "event_time": t + offset, "user": user,
                }, key=user)
        scribe.write_record("visits", {"event_time": 1000.0, "user": "probe"},
                            key="probe")
        task = StylusTask(
            "sessions", scribe, "visits", 0,
            SessionizeProcessor(gap_seconds=30.0),
            output_category="sessions", clock=scribe.clock,
            checkpoint_policy=CheckpointPolicy(every_n_events=1000),
        )
        task.pump()
        task.checkpoint_now()  # watermark at 1000 closes the second bursts
        records = [m.decode() for m in
                   CategoryReader(scribe, "sessions").read_all()]
        by_user: dict[str, list] = {}
        for record in records:
            by_user.setdefault(record["user"], []).append(record)
        for user in ("u1", "u2"):
            [first, second] = sorted(by_user[user],
                                     key=lambda r: r["session_start"])
            assert first["events"] == 3
            assert first["duration"] == 10.0
            assert second["events"] == 2
