"""Tests for the page-insights and mobile-analytics apps (Section 1)."""

import pytest

from repro.apps.insights import MobileAnalyticsPipeline, PageInsightsPipeline
from repro.laser.service import LaserTable
from repro.runtime.rng import make_rng


class TestPageInsights:
    def feed(self, scribe, pipeline):
        rng = make_rng(71, "page-insights")
        for i in range(600):
            viewer = f"v{rng.randrange(150)}"
            action = rng.choices(
                ["view", "like", "comment", "share"],
                weights=[10, 3, 1, 1])[0]
            scribe.write_record("page_actions", {
                "event_time": i * 0.5,  # all within the first 5-min window
                "page": "acme",
                "post": f"post{i % 2}",
                "action": action,
                "viewer": viewer,
            }, key=viewer)
        pipeline.pump()

    def test_post_summary(self, scribe, clock):
        pipeline = PageInsightsPipeline(scribe, clock=clock)
        self.feed(scribe, pipeline)
        summary = pipeline.post_summary("acme", "post0", 0.0)
        assert summary["likes"] > 0
        assert summary["engagements"] >= summary["likes"]
        # reach is a distinct count: bounded by the viewer universe
        assert 0 < summary["reach"] <= 160

    def test_publish_to_laser(self, scribe, clock):
        pipeline = PageInsightsPipeline(scribe, clock=clock)
        self.feed(scribe, pipeline)
        laser = LaserTable("post_insights", ["page", "post"],
                           ["likes", "reach", "engagements"], clock=clock)
        published = pipeline.publish_to_laser(laser, 0.0)
        assert published == 2
        served = laser.get("acme", "post0")
        assert served["likes"] == pipeline.post_summary(
            "acme", "post0", 0.0)["likes"]


class TestMobileAnalytics:
    def feed(self, scribe, pipeline, bad_version=False):
        rng = make_rng(72, "mobile")
        for version, crash_weight, start_scale in [
            ("v1.0", 1, 200.0),
            ("v1.1", 30 if bad_version else 1,
             1200.0 if bad_version else 220.0),
        ]:
            for i in range(300):
                kind = rng.choices(
                    ["session_start", "cold_start", "crash"],
                    weights=[10, 5, crash_weight])[0]
                scribe.write_record("app_events", {
                    "event_time": i * 0.5,
                    "app_version": version,
                    "kind": kind,
                    "cold_start_ms": rng.expovariate(1 / start_scale)
                    if kind == "cold_start" else None,
                }, key=f"{version}:{i}")
        pipeline.pump()

    def test_version_health_card(self, scribe, clock):
        pipeline = MobileAnalyticsPipeline(scribe, clock=clock)
        self.feed(scribe, pipeline)
        health = pipeline.version_health("v1.0", 0.0)
        assert health["sessions"] > 0
        assert health["cold_start_p95_ms"] > health["cold_start_mean_ms"]
        assert 0.0 <= health["crash_rate"] < 0.5

    def test_regression_detection(self, scribe, clock):
        pipeline = MobileAnalyticsPipeline(scribe, clock=clock)
        self.feed(scribe, pipeline, bad_version=True)
        bad = pipeline.regressed_versions(0.0, p95_budget_ms=800.0,
                                          crash_budget=0.3)
        assert bad == ["v1.1"]

    def test_healthy_release_not_flagged(self, scribe, clock):
        pipeline = MobileAnalyticsPipeline(scribe, clock=clock)
        self.feed(scribe, pipeline, bad_version=False)
        assert pipeline.regressed_versions(0.0, p95_budget_ms=2000.0,
                                           crash_budget=0.5) == []

    def test_unknown_version_has_empty_card(self, scribe, clock):
        pipeline = MobileAnalyticsPipeline(scribe, clock=clock)
        self.feed(scribe, pipeline)
        health = pipeline.version_health("v9.9", 0.0)
        assert health["sessions"] == 0
        assert health["crash_rate"] is None
