"""Tests for the Figure 3 trending-events pipeline."""

import pytest

from repro.apps.trending import (
    ClassifierService,
    FiltererProcessor,
    JoinerProcessor,
    TrendingPipeline,
)
from repro.core.event import Event
from repro.laser.service import LaserTable
from repro.scribe.writer import ScribeWriter
from repro.workloads.events import TrendBurst, TrendingEventsWorkload


@pytest.fixture
def dimensions(clock):
    table = LaserTable("dims", ["dim_id"], ["language", "country"],
                       clock=clock)
    workload = TrendingEventsWorkload()
    for row in workload.dimension_rows():
        table.put_row(row)
    return table


class TestFilterer:
    def test_keeps_only_posts_and_shards_by_dim(self):
        filterer = FiltererProcessor()
        post = Event(1.0, {"event_type": "post", "dim_id": "d1", "text": "x"})
        like = Event(1.0, {"event_type": "like", "dim_id": "d1", "text": "x"})
        [output] = filterer.process(post)
        assert output.key == "d1"
        assert filterer.process(like) == []


class TestJoiner:
    def test_joins_dimension_and_classifies(self, dimensions):
        joiner = JoinerProcessor(dimensions, ClassifierService())
        event = Event(1.0, {"event_type": "post", "dim_id": "dim1",
                            "text": "all about movies #movies"})
        [output] = joiner.process(event)
        assert output.record["topic"] == "movies"
        assert output.record["language"] is not None
        assert output.key == "post:movies"

    def test_unknown_dimension_yields_null_join(self, dimensions):
        joiner = JoinerProcessor(dimensions, ClassifierService())
        event = Event(1.0, {"event_type": "post", "dim_id": "ghost",
                            "text": "plain"})
        [output] = joiner.process(event)
        assert output.record["language"] is None
        assert output.record["topic"] == "other"

    def test_cache_reduces_repeat_lookups(self, dimensions):
        joiner = JoinerProcessor(dimensions, ClassifierService(),
                                 cache_capacity=8)
        event = Event(1.0, {"event_type": "post", "dim_id": "dim1",
                            "text": "t"})
        for _ in range(10):
            joiner.process(event)
        assert joiner.cache_misses == 1
        assert joiner.cache_hits == 9
        assert joiner.cache_hit_rate() == pytest.approx(0.9)

    def test_sharded_input_improves_cache_hit_rate(self, dimensions):
        """Section 3: sharding the Joiner input by dim_id makes its cache
        effective; unsharded (round-robin) input thrashes it."""
        capacity = 8
        events = [
            Event(float(i), {"event_type": "post", "dim_id": f"dim{i % 64}",
                             "text": "t"})
            for i in range(512)
        ]
        # Sharded: this instance sees only its slice of the dim space.
        sharded = JoinerProcessor(dimensions, ClassifierService(),
                                  cache_capacity=capacity)
        for event in events:
            if int(event["dim_id"][3:]) % 8 == 0:  # 1-of-8 shard
                sharded.process(event)
        # Unsharded: the same instance sees every dimension.
        unsharded = JoinerProcessor(dimensions, ClassifierService(),
                                    cache_capacity=capacity)
        for event in events:
            unsharded.process(event)
        assert sharded.cache_hit_rate() > unsharded.cache_hit_rate()


class TestPipeline:
    def test_burst_topic_ranks_first_after_warmup(self, scribe, clock,
                                                  dimensions):
        workload = TrendingEventsWorkload(
            bursts=(TrendBurst("science", 150.0, 300.0, multiplier=30.0),),
            rate_per_second=60.0,
        )
        pipeline = TrendingPipeline(scribe, dimensions, clock=clock,
                                    checkpoint_interval=30.0)
        writer = ScribeWriter(scribe, "trend_input")
        events = list(workload.generate(300.0))
        index = 0
        for chunk_end in range(30, 330, 30):
            while (index < len(events)
                   and events[index]["event_time"] <= chunk_end - 30):
                writer.write(events[index], key=events[index]["dim_id"])
                index += 1
            clock.advance_to(float(chunk_end))
            pipeline.pump()
        while index < len(events):
            writer.write(events[index], key=events[index]["dim_id"])
            index += 1
        pipeline.run_until_quiescent()
        pipeline.checkpoint_all()
        pipeline.run_until_quiescent()

        last_window = max(pipeline.ranker.windows("top_events_5min"))
        top = pipeline.ranker.top_events(3, last_window)
        assert top[0]["event"] == "science"

    def test_cache_hit_rate_is_high_with_sharded_input(self, scribe, clock,
                                                       dimensions):
        pipeline = TrendingPipeline(scribe, dimensions, clock=clock)
        writer = ScribeWriter(scribe, "trend_input")
        workload = TrendingEventsWorkload(rate_per_second=50.0)
        for event in workload.generate(60.0):
            writer.write(event, key=event["dim_id"])
        pipeline.run_until_quiescent()
        assert pipeline.joiner_cache_hit_rate() > 0.8

    def test_stateless_and_stateful_nodes_compose(self, scribe, clock,
                                                  dimensions):
        pipeline = TrendingPipeline(scribe, dimensions, clock=clock)
        order = [n.name for n in pipeline.dag.topological_order()]
        assert order == ["filterer", "joiner", "scorer", "top_events"]


class TestScorer:
    """Unit coverage of the Scorer's trend logic (Figure 3, node 3)."""

    def make_events(self, topic, times):
        from repro.core.event import Event

        return [Event(t, {"topic": topic}) for t in times]

    def test_steady_topic_scores_near_one(self):
        from repro.apps.trending import ScorerProcessor

        scorer = ScorerProcessor(window_seconds=60.0, trend_decay=0.5)
        state = scorer.initial_state()
        # Same activity every window: score converges toward 1.
        score = None
        for window in range(8):
            for event in self.make_events(
                    "sports", [window * 60.0 + i for i in range(10)]):
                scorer.process(event, state)
            [output] = scorer.on_checkpoint(state, (window + 1) * 60.0)
            score = output.record["score"]
        assert 0.8 < score < 1.6

    def test_bursting_topic_scores_high(self):
        from repro.apps.trending import ScorerProcessor

        scorer = ScorerProcessor(window_seconds=60.0, trend_decay=0.5)
        state = scorer.initial_state()
        for window in range(5):  # establish a low baseline
            for event in self.make_events(
                    "science", [window * 60.0 + i for i in range(2)]):
                scorer.process(event, state)
            scorer.on_checkpoint(state, (window + 1) * 60.0)
        # The burst: 30 events in the next window.
        for event in self.make_events(
                "science", [300.0 + i for i in range(30)]):
            scorer.process(event, state)
        [output] = scorer.on_checkpoint(state, 360.0)
        assert output.record["score"] > 5.0

    def test_output_sharded_by_topic(self):
        from repro.apps.trending import ScorerProcessor

        scorer = ScorerProcessor()
        state = scorer.initial_state()
        for event in self.make_events("music", [1.0, 2.0]):
            scorer.process(event, state)
        [output] = scorer.on_checkpoint(state, 10.0)
        assert output.key == "music"

    def test_window_forgets_old_activity(self):
        from repro.apps.trending import ScorerProcessor

        scorer = ScorerProcessor(window_seconds=60.0)
        state = scorer.initial_state()
        for event in self.make_events("food", [0.0, 1.0, 2.0]):
            scorer.process(event, state)
        scorer.on_checkpoint(state, 60.0)
        # Much later, with no new activity: the window count is zero.
        [output] = scorer.on_checkpoint(state, 1_000.0)
        assert output.record["score"] == 0.0
