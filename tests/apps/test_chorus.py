"""Tests for the Chorus pipeline (Section 5.1)."""

import pytest

from repro.apps.chorus import ChorusPipeline
from repro.scribe.writer import ScribeWriter
from repro.workloads.posts import AdMoment, PostsWorkload


@pytest.fixture
def pipeline(scribe, clock):
    return ChorusPipeline(scribe, clock=clock, k_anonymity=20,
                          window_seconds=300.0)


def feed(scribe, clock, duration=600.0, **workload_kwargs):
    workload = PostsWorkload(**workload_kwargs)
    writer = ScribeWriter(scribe, "chorus_posts")
    for record in workload.generate(duration):
        writer.write(record, key=record["post_id"])
    clock.advance_to(duration)
    return workload


class TestChorusPipeline:
    def test_spike_hashtag_tops_its_window(self, scribe, clock, pipeline):
        feed(scribe, clock, ad_moment=AdMoment("#likeagirl", 300.0, 120.0,
                                               multiplier=40.0))
        pipeline.run_until_quiescent()
        pipeline.checkpoint_all()
        pipeline.run_until_quiescent()
        top = pipeline.top_topics(300.0, k=1)
        assert top[0][0] == "#likeagirl"

    def test_quiet_windows_have_organic_top(self, scribe, clock, pipeline):
        feed(scribe, clock, ad_moment=None)
        pipeline.run_until_quiescent()
        tops = pipeline.top_topics(0.0, k=5)
        assert len(tops) == 5
        counts = [count for _, count in tops]
        assert counts == sorted(counts, reverse=True)

    def test_k_anonymity_suppresses_small_cells(self, scribe, clock,
                                                pipeline):
        feed(scribe, clock, ad_moment=AdMoment("#likeagirl", 300.0, 120.0,
                                               multiplier=40.0))
        pipeline.run_until_quiescent()
        breakdown = pipeline.demographic_breakdown(300.0, "#likeagirl")
        assert breakdown  # the spiked tag has revealable cells
        assert all(count >= pipeline.k_anonymity
                   for count in breakdown.values())
        # A rare hashtag in a quiet window reveals nothing.
        rare = pipeline.demographic_breakdown(0.0, "#science")
        assert all(count >= pipeline.k_anonymity for count in rare.values())

    def test_summaries_reach_scuba(self, scribe, clock, pipeline):
        feed(scribe, clock)
        pipeline.run_until_quiescent()
        pipeline.checkpoint_all()
        pipeline.run_until_quiescent()
        assert pipeline.scuba_table.row_count() > 0

    def test_unknown_window_is_empty(self, pipeline):
        assert pipeline.top_topics(99_999.0) == []
        assert pipeline.demographic_breakdown(99_999.0, "#x") == {}

    def test_laser_lookup_join_resolves_regions(self, pipeline):
        assert pipeline.regions.get("US") == {"region": "amer"}
        assert pipeline.regions.get("JP") == {"region": "apac"}
