"""Scuba's row store: time-ordered raw events, kept for a bounded window."""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import islice
from operator import le
from typing import Any

from repro.errors import ScubaError

Row = dict[str, Any]


class ScubaTable:
    """Raw rows indexed by ingest-assigned timestamp.

    Scuba keeps recent raw data only (it is a trouble-shooting store);
    ``retention_seconds`` bounds the window and :meth:`trim` enforces it.
    Rows are kept sorted by their time column so time-range scans are
    binary-search slices.
    """

    def __init__(self, name: str, time_column: str = "event_time",
                 retention_seconds: float = 7 * 24 * 3600.0) -> None:
        if retention_seconds <= 0:
            raise ScubaError("retention must be positive")
        self.name = name
        self.time_column = time_column
        self.retention_seconds = retention_seconds
        self._times: list[float] = []
        self._rows: list[Row] = []

    def add(self, row: Row) -> None:
        time_value = row.get(self.time_column)
        if time_value is None:
            raise ScubaError(
                f"row lacks time column {self.time_column!r}"
            )
        time_value = float(time_value)
        if self._times and time_value >= self._times[-1]:
            self._times.append(time_value)
            self._rows.append(row)
        else:
            index = bisect_right(self._times, time_value)
            self._times.insert(index, time_value)
            self._rows.insert(index, row)

    def add_rows(self, rows: list[Row]) -> None:
        """Insert a batch of rows; equivalent to :meth:`add` in order.

        Live ingestion almost always delivers batches whose times are
        nondecreasing and at/after the current tail; that case is two
        list extends instead of per-row tail checks. Anything else falls
        back to the sequential inserts so ordering (including ties,
        which land after existing equal times) is identical.
        """
        if not rows:
            return
        column = self.time_column
        try:
            new_times = [float(row[column]) for row in rows]
        except (KeyError, TypeError):
            # Missing column or a None value; anything else (a string
            # that won't float, say) propagates exactly as add() would.
            for row in rows:
                if row.get(column) is None:
                    raise ScubaError(
                        f"row lacks time column {column!r}"
                    ) from None
            raise
        times = self._times
        if (not times or new_times[0] >= times[-1]) and all(
                map(le, new_times, islice(new_times, 1, None))):
            times.extend(new_times)
            self._rows.extend(rows)
            return
        for time_value, row in zip(new_times, rows):
            if times and time_value >= times[-1]:
                times.append(time_value)
                self._rows.append(row)
            else:
                index = bisect_right(times, time_value)
                times.insert(index, time_value)
                self._rows.insert(index, row)

    def rows_between(self, start: float, end: float) -> list[Row]:
        """Rows with time in ``[start, end)``."""
        lo = bisect_left(self._times, start)
        hi = bisect_left(self._times, end)
        return self._rows[lo:hi]

    def row_count(self) -> int:
        return len(self._rows)

    def trim(self, now: float) -> int:
        """Drop rows older than the retention window; return count."""
        cutoff = now - self.retention_seconds
        drop = bisect_left(self._times, cutoff)
        if drop:
            del self._times[:drop]
            del self._rows[:drop]
        return drop

    def min_time(self) -> float | None:
        return self._times[0] if self._times else None

    def max_time(self) -> float | None:
        return self._times[-1] if self._times else None
