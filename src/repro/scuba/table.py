"""Scuba's row store: time-ordered raw events, kept for a bounded window.

The store is columnar: older rows live in sealed, immutable, time-sorted
:class:`~repro.scuba.columns.Segment` objects (per-column arrays —
``array('d')`` floats, dictionary-encoded small-cardinality values),
while recent rows stay in a mutable row-dict *tail* that absorbs
out-of-order arrivals cheaply. The row-facing API (``add``,
``add_rows``, ``rows_between``, ``trim``) is unchanged; sealed rows are
materialized back into dicts lazily on demand.

Invariants:

- global time order: every tail row's time >= the last sealed segment's
  max time (``sealed_high``); segments are mutually time-sorted;
- a row arriving *below* ``sealed_high`` (deep out-of-order) is folded
  into the segment it belongs to by rebuilding that one segment under a
  fresh ``seg_id`` — which is also what invalidates cached partials
  computed from the old segment;
- ``trim`` drops whole expired segments and slices the boundary segment
  into a new ``seg_id``.

``columnar=False`` keeps every row in the tail forever — byte-for-byte
the seed's behavior — and is the paper-faithful baseline the Section 5.2
experiment charges one CPU unit per raw row against.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import islice
from operator import le
from typing import Any, Iterator

from repro.errors import ScubaError
from repro.scuba.cache import ScubaQueryCache
from repro.scuba.columns import Segment

Row = dict[str, Any]


class ScubaTable:
    """Raw rows indexed by ingest-assigned timestamp.

    Scuba keeps recent raw data only (it is a trouble-shooting store);
    ``retention_seconds`` bounds the window and :meth:`trim` enforces it.
    Rows are kept sorted by their time column so time-range scans are
    binary-search slices.
    """

    def __init__(self, name: str, time_column: str = "event_time",
                 retention_seconds: float = 7 * 24 * 3600.0,
                 columnar: bool = True, segment_rows: int = 2048) -> None:
        if retention_seconds <= 0:
            raise ScubaError("retention must be positive")
        if segment_rows < 1:
            raise ScubaError("segment_rows must be positive")
        self.name = name
        self.time_column = time_column
        self.retention_seconds = retention_seconds
        self.columnar = columnar
        self.segment_rows = segment_rows
        self._segments: list[Segment] = []
        self._seg_maxes: list[float] = []  # per-segment max time, sorted
        self._live_seg_ids: set[int] = set()
        self._sealed_rows = 0
        self._next_seg_id = 0
        self._times: list[float] = []  # the tail (all rows if not columnar)
        self._rows: list[Row] = []
        self.query_cache = ScubaQueryCache()

    # -- writes ----------------------------------------------------------------

    def add(self, row: Row) -> None:
        time_value = row.get(self.time_column)
        if time_value is None:
            raise ScubaError(
                f"row lacks time column {self.time_column!r}"
            )
        time_value = float(time_value)
        if self._segments and time_value < self._seg_maxes[-1]:
            self._insert_sealed(time_value, row)
            return
        if self._times and time_value >= self._times[-1]:
            self._times.append(time_value)
            self._rows.append(row)
        else:
            index = bisect_right(self._times, time_value)
            self._times.insert(index, time_value)
            self._rows.insert(index, row)
        self._maybe_seal()

    def add_rows(self, rows: list[Row]) -> None:
        """Insert a batch of rows; equivalent to :meth:`add` in order.

        Live ingestion almost always delivers batches whose times are
        nondecreasing and at/after the current tail; that case is two
        list extends instead of per-row tail checks. Anything else falls
        back to the sequential inserts so ordering (including ties,
        which land after existing equal times) is identical.
        """
        if not rows:
            return
        column = self.time_column
        try:
            new_times = [float(row[column]) for row in rows]
        except (KeyError, TypeError):
            # Missing column or a None value; anything else (a string
            # that won't float, say) propagates exactly as add() would.
            for row in rows:
                if row.get(column) is None:
                    raise ScubaError(
                        f"row lacks time column {column!r}"
                    ) from None
            raise
        times = self._times
        tail_floor = (self._seg_maxes[-1] if self._segments
                      else float("-inf"))
        if ((not times or new_times[0] >= times[-1])
                and new_times[0] >= tail_floor
                and all(map(le, new_times, islice(new_times, 1, None)))):
            times.extend(new_times)
            self._rows.extend(rows)
            self._maybe_seal()
            return
        for time_value, row in zip(new_times, rows):
            if time_value < tail_floor:
                self._insert_sealed(time_value, row)
                tail_floor = self._seg_maxes[-1]
                continue
            if times and time_value >= times[-1]:
                times.append(time_value)
                self._rows.append(row)
            else:
                index = bisect_right(times, time_value)
                times.insert(index, time_value)
                self._rows.insert(index, row)
        self._maybe_seal()

    # -- sealing ---------------------------------------------------------------

    def _maybe_seal(self) -> None:
        # Keep a full segment's worth of recent rows mutable so ordinary
        # out-of-order arrivals stay cheap bisect inserts.
        if not self.columnar:
            return
        while len(self._times) >= 2 * self.segment_rows:
            self._seal_prefix(self.segment_rows)

    def seal_tail(self) -> int:
        """Seal every tail row into a segment; returns rows sealed.

        Useful for benchmarks and maintenance ticks that want the whole
        table vectorizable/cacheable immediately instead of waiting for
        the tail to fill.
        """
        if not self.columnar or not self._times:
            return 0
        count = len(self._times)
        self._seal_prefix(count)
        return count

    def _seal_prefix(self, count: int) -> None:
        segment = Segment.seal(self._next_seg_id, self._times[:count],
                               self._rows[:count])
        self._next_seg_id += 1
        del self._times[:count]
        del self._rows[:count]
        self._segments.append(segment)
        self._seg_maxes.append(segment.times[-1])
        self._live_seg_ids.add(segment.seg_id)
        self._sealed_rows += segment.length

    def _insert_sealed(self, time_value: float, row: Row) -> None:
        """Fold a deep out-of-order row into its sealed segment."""
        index = bisect_right(self._seg_maxes, time_value)
        old = self._segments[index]
        times = list(old.times)
        rows = old.rows(0, old.length)
        at = bisect_right(times, time_value)
        times.insert(at, time_value)
        rows.insert(at, row)
        rebuilt = Segment.seal(self._next_seg_id, times, rows)
        self._next_seg_id += 1
        self._segments[index] = rebuilt
        self._seg_maxes[index] = rebuilt.times[-1]
        self._live_seg_ids.discard(old.seg_id)
        self._live_seg_ids.add(rebuilt.seg_id)
        self._sealed_rows += 1
        self.query_cache.drop_segment(old.seg_id)

    # -- reads -----------------------------------------------------------------

    def rows_between(self, start: float, end: float) -> list[Row]:
        """Rows with time in ``[start, end)``."""
        out: list[Row] = []
        for segment, lo, hi, _ in self.segments_overlapping(start, end):
            out.extend(segment.rows(lo, hi))
        lo = bisect_left(self._times, start)
        hi = bisect_left(self._times, end)
        out.extend(self._rows[lo:hi])
        return out

    def segments_overlapping(
            self, start: float,
            end: float) -> Iterator[tuple[Segment, int, int, bool]]:
        """Yield ``(segment, lo, hi, fully_covered)`` for the range.

        ``fully_covered`` means every row of the segment falls inside
        ``[start, end)`` — the condition under which a cached whole-
        segment partial is usable.
        """
        index = bisect_left(self._seg_maxes, start)
        while index < len(self._segments):
            segment = self._segments[index]
            if segment.times[0] >= end:
                break
            lo = bisect_left(segment.times, start)
            hi = bisect_left(segment.times, end)
            if hi > lo:
                yield segment, lo, hi, (lo == 0 and hi == segment.length)
            index += 1

    def tail_between(self, start: float, end: float) -> list[Row]:
        """The mutable-tail slice of ``[start, end)`` (newest rows)."""
        lo = bisect_left(self._times, start)
        hi = bisect_left(self._times, end)
        return self._rows[lo:hi]

    def sealed_high(self) -> float:
        """Max time of the sealed region; tail rows are all at/after it."""
        return self._seg_maxes[-1] if self._seg_maxes else float("-inf")

    def live_segment_ids(self) -> set[int]:
        return self._live_seg_ids

    def segment_count(self) -> int:
        return len(self._segments)

    def row_count(self) -> int:
        return self._sealed_rows + len(self._rows)

    # -- retention -------------------------------------------------------------

    def trim(self, now: float) -> int:
        """Drop rows older than the retention window; return count."""
        cutoff = now - self.retention_seconds
        dropped = 0
        while self._segments and self._segments[0].times[-1] < cutoff:
            segment = self._segments.pop(0)
            self._seg_maxes.pop(0)
            self._live_seg_ids.discard(segment.seg_id)
            self._sealed_rows -= segment.length
            dropped += segment.length
            self.query_cache.drop_segment(segment.seg_id)
        if self._segments:
            first = self._segments[0]
            cut = bisect_left(first.times, cutoff)
            if cut:
                sliced = first.sliced(cut, self._next_seg_id)
                self._next_seg_id += 1
                self._segments[0] = sliced
                self._live_seg_ids.discard(first.seg_id)
                self._live_seg_ids.add(sliced.seg_id)
                self._sealed_rows -= cut
                dropped += cut
                self.query_cache.drop_segment(first.seg_id)
        drop = bisect_left(self._times, cutoff)
        if drop:
            del self._times[:drop]
            del self._rows[:drop]
            dropped += drop
        return dropped

    # -- bounds ----------------------------------------------------------------

    def min_time(self) -> float | None:
        if self._segments:
            return self._segments[0].times[0]
        return self._times[0] if self._times else None

    def max_time(self) -> float | None:
        if self._times:
            return self._times[-1]
        return self._seg_maxes[-1] if self._seg_maxes else None
