"""Scuba's row store: time-ordered raw events, kept for a bounded window."""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any

from repro.errors import ScubaError

Row = dict[str, Any]


class ScubaTable:
    """Raw rows indexed by ingest-assigned timestamp.

    Scuba keeps recent raw data only (it is a trouble-shooting store);
    ``retention_seconds`` bounds the window and :meth:`trim` enforces it.
    Rows are kept sorted by their time column so time-range scans are
    binary-search slices.
    """

    def __init__(self, name: str, time_column: str = "event_time",
                 retention_seconds: float = 7 * 24 * 3600.0) -> None:
        if retention_seconds <= 0:
            raise ScubaError("retention must be positive")
        self.name = name
        self.time_column = time_column
        self.retention_seconds = retention_seconds
        self._times: list[float] = []
        self._rows: list[Row] = []

    def add(self, row: Row) -> None:
        time_value = row.get(self.time_column)
        if time_value is None:
            raise ScubaError(
                f"row lacks time column {self.time_column!r}"
            )
        time_value = float(time_value)
        if self._times and time_value >= self._times[-1]:
            self._times.append(time_value)
            self._rows.append(row)
        else:
            index = bisect_right(self._times, time_value)
            self._times.insert(index, time_value)
            self._rows.insert(index, row)

    def rows_between(self, start: float, end: float) -> list[Row]:
        """Rows with time in ``[start, end)``."""
        lo = bisect_left(self._times, start)
        hi = bisect_left(self._times, end)
        return self._rows[lo:hi]

    def row_count(self) -> int:
        return len(self._rows)

    def trim(self, now: float) -> int:
        """Drop rows older than the retention window; return count."""
        cutoff = now - self.retention_seconds
        drop = bisect_left(self._times, cutoff)
        if drop:
            del self._times[:drop]
            del self._rows[:drop]
        return drop

    def min_time(self) -> float | None:
        return self._times[0] if self._times else None

    def max_time(self) -> float | None:
        return self._times[-1] if self._times else None
