"""Incremental result cache for repeated Scuba dashboard queries.

Dashboards "run the same queries repeatedly, over a sliding time
window" (Section 5.2). Consecutive refreshes of a :class:`ScubaQuery`
via ``shifted()`` overlap almost entirely, so the expensive part of each
refresh is recomputable from cached *monoid partials*:

- ``run()``: one partial aggregate (group -> state) per fully-covered
  sealed segment, keyed by ``(query shape, seg_id)``. Aggregation states
  are monoids (Section 4.4.2), so partials merge across segments in time
  order and combine with the freshly-scanned window edges and tail.
- ``run_time_series()``: the per-group states of a *closed* time bucket
  (one that lies entirely inside the sealed region), keyed by
  ``(query shape, bucket_seconds, bucket_start)`` and stamped with the
  ids of the segments it read.

Invalidation is precise and structural rather than time-based: sealed
segments are immutable, and every mutation that could change their
contents (a deep out-of-order insert, a retention ``trim`` slicing a
boundary segment) replaces the segment under a *new* ``seg_id``. A
cached entry is therefore valid exactly while every ``seg_id`` it was
computed from is still live. Tail appends never invalidate anything:
tail rows are newer than every sealed row, so they can only affect
buckets the cache refuses to store in the first place.

The cache never stores results influenced by an opaque ``where``
callable — only declarative :class:`~repro.scuba.query.ColumnFilter`
predicates participate in the query shape.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.scuba.compiler import ScubaPlanCache

Shape = tuple
States = dict[tuple, Any]


class ScubaQueryCache:
    """Bounded LRU of per-segment partials and closed-bucket results.

    Also owns the table's :class:`~repro.scuba.compiler.ScubaPlanCache`
    (``plans``): plans share the shape identity the partials are keyed
    by and are dropped together on :meth:`clear`, but they hold no
    segment state, so ``drop_segment`` leaves them alone — and
    ``__len__`` counts only result entries, so "caching disabled" checks
    see an empty cache even after plans have been lowered.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._run: OrderedDict[tuple, States] = OrderedDict()
        self._buckets: OrderedDict[tuple, tuple[frozenset[int], States]] = \
            OrderedDict()
        self.plans = ScubaPlanCache()

    # -- run(): per-segment partial aggregates -------------------------------

    def get_run_partial(self, shape: Shape, seg_id: int) -> States | None:
        key = (shape, seg_id)
        states = self._run.get(key)
        if states is not None:
            self._run.move_to_end(key)
        return states

    def put_run_partial(self, shape: Shape, seg_id: int,
                        states: States) -> None:
        self._run[(shape, seg_id)] = states
        self._evict(self._run)

    # -- run_time_series(): closed-bucket results ----------------------------

    def get_bucket(self, shape: Shape, bucket_start: float,
                   live_seg_ids: frozenset[int] | set[int]) -> States | None:
        key = (shape, bucket_start)
        entry = self._buckets.get(key)
        if entry is None:
            return None
        seg_ids, states = entry
        if not seg_ids <= live_seg_ids:
            del self._buckets[key]  # a covering segment was replaced
            return None
        self._buckets.move_to_end(key)
        return states

    def put_bucket(self, shape: Shape, bucket_start: float,
                   seg_ids: frozenset[int], states: States) -> None:
        self._buckets[(shape, bucket_start)] = (seg_ids, states)
        self._evict(self._buckets)

    # -- invalidation --------------------------------------------------------

    def drop_segment(self, seg_id: int) -> None:
        """Forget everything computed from a replaced/dropped segment."""
        for key in [key for key in self._run if key[1] == seg_id]:
            del self._run[key]
        for key in [key for key, (seg_ids, _) in self._buckets.items()
                    if seg_id in seg_ids]:
            del self._buckets[key]

    def clear(self) -> None:
        self._run.clear()
        self._buckets.clear()
        self.plans.clear()

    def __len__(self) -> int:
        return len(self._run) + len(self._buckets)

    def _evict(self, store: OrderedDict) -> None:
        while len(store) > self.max_entries:
            store.popitem(last=False)
