"""Compile Scuba query shapes into fused per-segment programs.

The interpreted columnar engine re-derives the same facts on every
query: which aggregate and kernel to use, how each filter vectorizes
over each column encoding, how group codes combine. This module lowers
a query *shape* — the ``(aggregation, value_column, group_by, filters)``
identity the query cache already keys partials by — once, into an
immutable :class:`ScubaPlan` whose per-segment program is fused:

- filters are evaluated in the *dictionary domain* (once per distinct
  value, with whole-segment ``True``/``False`` early-outs when a
  predicate is non-selective at the domain level) or, for float
  columns, as inline comparator comprehensions — never as per-row
  ``passes()`` calls;
- selection, grouping, and aggregation share one pass over the
  surviving rows, folding through the same monoid kernels Puma's
  compiled plans use (:mod:`repro.core.kernels`), so compiled partials
  are *state-identical* to interpreted ones and the two engines share
  the query cache freely;
- single-group-column and no-filter shapes skip the general machinery
  the way :mod:`repro.puma.compiler` specializes them.

Zone maps (:class:`~repro.scuba.columns.ColumnZone`) let a plan refute
whole segments before any scan: if no value a segment *could* contain
passes a filter, the segment contributes nothing. Pruning is
conservative — a zone's claims may be weaker than reality (sliced
dictionary supersets) but never stronger — so a pruned segment is
exactly one whose fused program would have returned ``{}``.

Plans are cached in a :class:`ScubaPlanCache` keyed by shape, owned by
the table's :class:`~repro.scuba.cache.ScubaQueryCache` and cleared
with it. Plans hold no segment state, so segment replacement never
invalidates them — only redefinition of the shape universe (``clear``)
does.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from itertools import compress
from operator import and_
from typing import Any, Callable, Sequence

from repro.core.kernels import get_columnar_kernel
from repro.puma.functions import AggregateFunction, get_aggregate
from repro.scuba.columns import ColumnZone, DictColumn, FloatColumn, Segment
from repro.scuba.filters import ColumnFilter

Shape = tuple
States = dict[tuple, Any]

_NUMERIC = (int, float)


def generic_fold(function: AggregateFunction, codes, values,
                 n: int) -> dict[int, Any]:
    """Per-row monoid fallback for aggregates without a columnar kernel
    (topk, approx_distinct, stddev, ...) — still column-driven, so it
    caches and merges like the kernel paths."""
    states: dict[int, Any] = {}
    if codes is None:
        codes = [0] * n
    if values is None:
        values = [1] * n
    for code, value in zip(codes, values):
        state = states.get(code)
        if state is None:
            state = function.create()
        states[code] = function.update(state, value)
    return states


def _float_comparator(
        column_filter: ColumnFilter) -> Callable[[Sequence[float]],
                                                 list[bool]] | None:
    """A whole-slice comparator for all-float data, or ``None``.

    Semantically identical to mapping ``passes()`` over the slice —
    float-vs-numeric comparisons cannot raise ``TypeError`` — but
    several times faster: the op dispatches once per slice and the
    per-row work is a bare comparison in a comprehension, not a
    ``passes()`` call doing a dict lookup and a try/except per row.
    """
    op = column_filter.op
    operand = column_filter.operand
    if op in ("in", "not in"):
        try:
            members = frozenset(operand)
        except TypeError:
            return None
        if op == "in":
            return lambda data: [v in members for v in data]
        return lambda data: [v not in members for v in data]
    if not isinstance(operand, _NUMERIC):
        return None
    if op == "==":
        return lambda data: [v == operand for v in data]
    if op == "!=":
        return lambda data: [v != operand for v in data]
    if op == "<":
        return lambda data: [v < operand for v in data]
    if op == "<=":
        return lambda data: [v <= operand for v in data]
    if op == ">":
        return lambda data: [v > operand for v in data]
    return lambda data: [v >= operand for v in data]


def _zone_may_match(column_filter: ColumnFilter,
                    zone: ColumnZone | None) -> bool:
    """Whether any row of a segment with this zone *could* pass.

    Must never return ``False`` when a row would pass (pruning
    soundness); returning ``True`` too often only costs a scan.
    """
    if zone is None:  # column absent: every row reads as null
        return column_filter.missing_passes
    if zone.has_missing and column_filter.missing_passes:
        return True
    if zone.domain is not None:  # exact (or superset) value enumeration
        return any(column_filter.passes(value) for value in zone.domain)
    if zone.min_value is None:  # no sound range claim
        return True
    op = column_filter.op
    if op in (">", ">="):
        return column_filter.passes(zone.max_value)
    if op in ("<", "<="):
        return column_filter.passes(zone.min_value)
    if op == "==":
        operand = column_filter.operand
        if isinstance(operand, _NUMERIC):
            return zone.min_value <= operand <= zone.max_value
        return False  # a numeric value never equals a non-number
    if op == "in":
        try:
            return any(isinstance(value, _NUMERIC)
                       and zone.min_value <= value <= zone.max_value
                       for value in column_filter.operand)
        except TypeError:
            return True
    if zone.min_value == zone.max_value:  # constant column: test the value
        return column_filter.passes(zone.min_value)
    return True


class CompiledFilter:
    """One filter lowered against every column encoding it may meet."""

    __slots__ = ("filter", "column", "passes", "missing_passes",
                 "float_test")

    def __init__(self, column_filter: ColumnFilter) -> None:
        self.filter = column_filter
        self.column = column_filter.column
        self.passes = column_filter.passes
        self.missing_passes = column_filter.missing_passes
        self.float_test = _float_comparator(column_filter)

    def keep(self, segment: Segment, lo: int,
             hi: int) -> bool | list[bool]:
        """Row survival for ``[lo, hi)``: ``True`` (all), ``False``
        (none), or a per-row boolean list."""
        column = segment.columns.get(self.column)
        if column is None:
            return self.missing_passes
        if isinstance(column, DictColumn):
            codes, decoded = column.codes(lo, hi)
            allowed = [self.passes(value) for value in decoded]
            if all(allowed):
                return True
            if not any(allowed):
                return False
            return [allowed[code] for code in codes]
        if isinstance(column, FloatColumn) and self.float_test is not None:
            return self.float_test(column.data[lo:hi])
        return column.mask(self.passes, lo, hi)


class ScubaPlan:
    """An immutable fused program for one query shape."""

    __slots__ = ("shape", "aggregation", "value_column", "group_by",
                 "function", "kernel", "compiled_filters")

    def __init__(self, shape: Shape) -> None:
        aggregation, value_column, group_by, filters = shape
        self.shape = shape
        self.aggregation = aggregation
        self.value_column = value_column
        self.group_by = group_by
        self.function = get_aggregate(aggregation)
        self.kernel = get_columnar_kernel(aggregation)
        self.compiled_filters = tuple(
            CompiledFilter(column_filter) for column_filter in filters)

    def prunes(self, segment: Segment) -> bool:
        """True when the zone maps prove no row of ``segment`` passes.

        Sound for any sub-range: zones summarize the whole segment, so
        "no value in the segment can pass" covers every slice of it.
        """
        return any(
            not _zone_may_match(compiled.filter, segment.zone(compiled.column))
            for compiled in self.compiled_filters)

    def segment_states(self, segment: Segment, lo: int, hi: int) -> States:
        """The fused filter -> select -> group -> fold program.

        Produces states byte-identical to the interpreted engine's
        ``_segment_states`` for the same slice (property-tested), which
        is what lets both engines share cached partials.
        """
        keep: bool | list = True
        for compiled in self.compiled_filters:
            step = compiled.keep(segment, lo, hi)
            if step is False:
                return {}
            if step is True:
                continue
            # operator.and_ over bools/0-1 ints stays C-level; compress
            # and sum below only need truthiness.
            keep = step if keep is True else list(map(and_, keep, step))

        function = self.function
        kernel = self.kernel
        value_column = self.value_column

        if not self.group_by:  # no-group specialization: one implicit group
            if value_column is None:
                values = None
                n = (hi - lo) if keep is True else int(sum(keep))
            else:
                values = segment.values(value_column, lo, hi)
                if keep is not True:
                    values = list(compress(values, keep))
                n = len(values)
            coded = (kernel.fold(None, values, n) if kernel is not None
                     else generic_fold(function, None, values, n))
            return {(): state for state in coded.values()}

        # group_codes already specializes the single-column case (codes
        # come straight off the dictionary) and absent columns (one
        # implicit None group).
        codes, groups = segment.group_codes(self.group_by, lo, hi)
        if value_column is None:
            if kernel is not None and kernel.name in ("count", "sum"):
                # Fully fused tight loop: with no value column, count
                # and sum both count rows per group, so selection and
                # fold collapse into one C-level Counter pass. State
                # identity with the kernel holds because
                # CountKernel.fold(codes, None, n) *is* Counter(codes).
                selected = codes if keep is True else compress(codes, keep)
                return {groups[code]: count
                        for code, count in Counter(selected).items()}
            values = None
            if keep is not True:
                codes = list(compress(codes, keep))
            n = len(codes)
        else:
            values = segment.values(value_column, lo, hi)
            if keep is not True:
                codes = list(compress(codes, keep))
                values = list(compress(values, keep))
            n = len(codes)
        coded = (kernel.fold(codes, values, n) if kernel is not None
                 else generic_fold(function, codes, values, n))
        return {groups[code]: state for code, state in coded.items()}


class ScubaPlanCache:
    """Bounded LRU of :class:`ScubaPlan` objects keyed by query shape.

    Owned by the table's :class:`~repro.scuba.cache.ScubaQueryCache`
    and cleared with it. Plans are pure functions of their shape, so
    segment replacement never invalidates them.
    """

    def __init__(self, max_plans: int = 256) -> None:
        self.max_plans = max_plans
        self._plans: OrderedDict[Shape, ScubaPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, shape: Shape) -> tuple[ScubaPlan, bool]:
        """The cached (or freshly lowered) plan and whether it was a hit."""
        plan = self._plans.get(shape)
        if plan is not None:
            self.hits += 1
            self._plans.move_to_end(shape)
            return plan, True
        self.misses += 1
        plan = ScubaPlan(shape)
        self._plans[shape] = plan
        while len(self._plans) > self.max_plans:
            self._plans.popitem(last=False)
        return plan, False

    def clear(self) -> None:
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._plans)}
