"""Scuba's Scribe ingestion tier.

"Most data sent to Scuba is sampled and Scuba is a best-effort query
system ... a small amount of data loss is preferred to any data
duplication. Exactly-once semantics are not possible because Scuba does
not support transactions, so at-most-once output semantics are the best
choice" (Section 4.3.2). The ingester therefore samples rows and never
re-delivers: its position always moves forward, even across restarts.
Malformed payloads are counted and dropped — best effort extends to
poison messages, which must not wedge the ingestion loop.

Ingestion is batch-at-a-time by default: the sampling decisions are made
first (consuming the RNG stream in message order, exactly as the
per-message path does), then only the sampled-in payloads are decoded
in one :func:`repro.serde.decode_batch` call and stored with one
:meth:`ScubaTable.add_rows` call.
"""

from __future__ import annotations

import random

from repro import serde
from repro.errors import ConfigError
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.rng import make_rng
from repro.scribe.message import Message
from repro.scribe.reader import CategoryReader
from repro.scribe.store import ScribeStore
from repro.scuba.table import ScubaTable


class ScubaIngester:
    """Samples a Scribe category into a Scuba table, at-most-once."""

    def __init__(self, scribe: ScribeStore, category: str, table: ScubaTable,
                 sample_rate: float = 1.0, seed: int = 0,
                 metrics: MetricsRegistry | None = None,
                 batched: bool = True) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigError("sample_rate must be in (0, 1]")
        self.name = f"scuba.ingest.{table.name}"
        self.table = table
        self.sample_rate = sample_rate
        self.batched = batched
        # Rates and lag are measured on the bus's clock, never the wall
        # clock: a SimClock run is a pure function of its seed (R001),
        # so the rows/sec gauge only updates when modeled time passes.
        self.clock = scribe.clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._reader = CategoryReader(scribe, category)
        self._rng: random.Random = make_rng(seed, f"scuba:{category}")
        self._rows_counter = self.metrics.counter(f"{self.name}.rows")
        self._poison_counter = self.metrics.counter(f"{self.name}.poison")
        self._sampled_out_counter = self.metrics.counter(
            f"{self.name}.sampled_out")
        # Ingestion-health metrics so dashboards can plot ingest lag and
        # throughput next to query cost (Section 6.4's "built-in
        # monitoring"): a lag gauge refreshed every pump and a rows/sec
        # gauge over the most recent pump's wall time.
        self._lag_gauge = self.metrics.gauge(f"{self.name}.ingest_lag")
        self._rate_gauge = self.metrics.gauge(f"{self.name}.rows_per_sec")

    def pump(self, max_messages: int = 1000) -> int:
        """Ingest up to ``max_messages``; returns rows actually stored."""
        started = self.clock.now()
        messages = self._reader.read_batch(max_messages)
        if self.batched:
            stored = self._store_batched(messages)
        else:
            stored = self._store_per_message(messages)
        self._rows_counter.increment(stored)
        elapsed = self.clock.now() - started
        self._lag_gauge.set(float(self._reader.lag_messages()))
        if stored and elapsed > 0:
            self._rate_gauge.set(stored / elapsed)
        return stored

    def _store_per_message(self, messages: list[Message]) -> int:
        stored = 0
        sample_rate = self.sample_rate
        for message in messages:
            if (sample_rate < 1.0
                    and self._rng.random() >= sample_rate):
                self._sampled_out_counter.increment()
                continue
            try:
                row = message.decode()
            except serde.SerdeError:
                self._poison_counter.increment()
                continue
            self.table.add(row)
            stored += 1
        return stored

    def _store_batched(self, messages: list[Message]) -> int:
        sample_rate = self.sample_rate
        if sample_rate < 1.0:
            rng_random = self._rng.random
            sampled = []
            keep = sampled.append
            sampled_out = 0
            for message in messages:
                if rng_random() >= sample_rate:
                    sampled_out += 1
                else:
                    keep(message)
            if sampled_out:
                self._sampled_out_counter.increment(sampled_out)
        else:
            sampled = messages
        if not sampled:
            return 0
        decoded = serde.decode_batch(
            [message.payload for message in sampled], errors="none")
        rows = [row for row in decoded if row is not None]
        poison = len(decoded) - len(rows)
        if poison:
            self._poison_counter.increment(poison)
        self.table.add_rows(rows)
        return len(rows)

    def lag_messages(self) -> int:
        return self._reader.lag_messages()
