"""Scuba's Scribe ingestion tier.

"Most data sent to Scuba is sampled and Scuba is a best-effort query
system ... a small amount of data loss is preferred to any data
duplication. Exactly-once semantics are not possible because Scuba does
not support transactions, so at-most-once output semantics are the best
choice" (Section 4.3.2). The ingester therefore samples rows and never
re-delivers: its position always moves forward, even across restarts.
"""

from __future__ import annotations

import random

from repro.errors import ConfigError
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.rng import make_rng
from repro.scribe.reader import CategoryReader
from repro.scribe.store import ScribeStore
from repro.scuba.table import ScubaTable


class ScubaIngester:
    """Samples a Scribe category into a Scuba table, at-most-once."""

    def __init__(self, scribe: ScribeStore, category: str, table: ScubaTable,
                 sample_rate: float = 1.0, seed: int = 0,
                 metrics: MetricsRegistry | None = None) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigError("sample_rate must be in (0, 1]")
        self.name = f"scuba-ingest:{table.name}"
        self.table = table
        self.sample_rate = sample_rate
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._reader = CategoryReader(scribe, category)
        self._rng: random.Random = make_rng(seed, f"scuba:{category}")

    def pump(self, max_messages: int = 1000) -> int:
        """Ingest up to ``max_messages``; returns rows actually stored."""
        stored = 0
        for message in self._reader.read_batch(max_messages):
            if (self.sample_rate < 1.0
                    and self._rng.random() >= self.sample_rate):
                self.metrics.counter(f"{self.name}.sampled_out").increment()
                continue
            self.table.add(message.decode())
            stored += 1
        self.metrics.counter(f"{self.name}.rows").increment(stored)
        return stored

    def lag_messages(self) -> int:
        return self._reader.lag_messages()
