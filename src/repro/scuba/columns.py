"""Columnar segment storage for Scuba tables.

A sealed :class:`Segment` holds a time-sorted run of rows decomposed into
per-column arrays:

- :class:`FloatColumn` — ``array('d')``, used when the column is present
  in every row of the segment and every value is a ``float``;
- :class:`DictColumn` — dictionary-encoded codes in ``array('H')``, used
  for small-cardinality columns (strings, status codes, Nones, missing
  keys); the dictionary stores the exact original Python values;
- :class:`ObjectColumn` — a plain list fallback for high-cardinality or
  unhashable values.

Rows that lack a column are encoded with the :data:`MISSING` sentinel so
lazy row materialization can rebuild the original dicts exactly (a row
without a key is not the same row as one with the key set to ``None``).
Query semantics treat ``MISSING`` as ``None``, matching what the row
engine's ``row.get(column)`` returns.

Segments are immutable once sealed; every structural change (an
out-of-order insert landing inside a sealed range, a retention trim
slicing a boundary segment) produces a *new* segment with a fresh
``seg_id``. That is what makes the query cache's invalidation precise:
a cached partial keyed by ``seg_id`` is valid exactly as long as that
segment is still live.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

Row = dict[str, Any]

#: Sentinel marking "this row has no such key" inside a column. Never
#: escapes materialized rows; query layers treat it as None.
MISSING = object()

#: Above this many distinct values a column stops dictionary-encoding
#: and falls back to an object column. Must stay < 65536 ('H' codes).
DICT_MAX_CARDINALITY = 4096


@dataclass(frozen=True)
class ColumnZone:
    """Summary facts about one column of one sealed segment (zone map).

    Everything here is *sound for pruning*: a claim may be weaker than
    reality (a sliced DictColumn reports its parent's full dictionary as
    ``domain``, a superset of the values actually present) but never
    stronger — if the zone says no row can pass a filter, none can.

    - ``min_value``/``max_value``: range of the numeric non-null values,
      or ``None`` when the column holds non-numeric values (no sound
      range claim is possible);
    - ``has_missing``: whether any row reads as null (absent key or
      literal ``None``);
    - ``domain``: the distinct query-visible values (possibly a
      superset), or ``None`` when unknown — only dictionary-encoded
      columns are cheap enough to enumerate.
    """

    min_value: float | None
    max_value: float | None
    has_missing: bool
    domain: tuple | None


def _numeric_zone(values: Sequence[Any]) -> ColumnZone:
    """Zone for raw values that may include ``MISSING``/``None``."""
    lo = hi = None
    has_missing = False
    numeric = True
    for value in values:
        if value is MISSING or value is None:
            has_missing = True
        elif numeric and isinstance(value, (int, float)):
            if lo is None or value < lo:
                lo = value
            if hi is None or value > hi:
                hi = value
        else:
            numeric = False
    if not numeric:
        lo = hi = None
    return ColumnZone(lo, hi, has_missing, None)


class FloatColumn:
    """All rows present, all values ``float``: a bare ``array('d')``."""

    __slots__ = ("data", "_zone")

    def __init__(self, data: array) -> None:
        self.data = data
        self._zone: ColumnZone | None = None

    def zone(self) -> ColumnZone:
        if self._zone is None:
            data = self.data
            self._zone = ColumnZone(min(data) if data else None,
                                    max(data) if data else None,
                                    False, None)
        return self._zone

    def get(self, i: int) -> Any:
        return self.data[i]

    def values(self, lo: int, hi: int) -> Sequence[Any]:
        """Per-row Python values in ``[lo, hi)`` (``MISSING`` -> ``None``)."""
        return self.data[lo:hi]

    def codes(self, lo: int, hi: int) -> tuple[Sequence[int], list[Any]]:
        """Dictionary-encode on the fly for group-by."""
        mapping: dict[float, int] = {}
        out: list[int] = []
        append = out.append
        for value in self.data[lo:hi]:
            code = mapping.get(value)
            if code is None:
                code = mapping[value] = len(mapping)
            append(code)
        return out, list(mapping)

    def mask(self, passes: Callable[[Any], bool], lo: int,
             hi: int) -> list[bool]:
        return [passes(value) for value in self.data[lo:hi]]

    def sliced(self, lo: int) -> "FloatColumn":
        return FloatColumn(self.data[lo:])


class DictColumn:
    """Dictionary-encoded values; the dictionary keeps exact objects."""

    __slots__ = ("_codes", "dictionary", "_decoded", "_zone")

    def __init__(self, codes: array, dictionary: list[Any]) -> None:
        self._codes = codes
        self.dictionary = dictionary
        # The query-facing view of the dictionary: MISSING reads as None.
        self._decoded = [None if value is MISSING else value
                         for value in dictionary]
        self._zone: ColumnZone | None = None

    def zone(self) -> ColumnZone:
        # The dictionary may be a superset of the values present (sliced
        # columns share their parent's dictionary), so the zone's claims
        # are weaker than reality but still sound for pruning.
        if self._zone is None:
            base = _numeric_zone(self._decoded)
            self._zone = ColumnZone(base.min_value, base.max_value,
                                    base.has_missing, tuple(self._decoded))
        return self._zone

    def get(self, i: int) -> Any:
        return self.dictionary[self._codes[i]]

    def values(self, lo: int, hi: int) -> Sequence[Any]:
        decoded = self._decoded
        return [decoded[code] for code in self._codes[lo:hi]]

    def codes(self, lo: int, hi: int) -> tuple[Sequence[int], list[Any]]:
        return self._codes[lo:hi], list(self._decoded)

    def mask(self, passes: Callable[[Any], bool], lo: int,
             hi: int) -> list[bool]:
        # Evaluate the predicate once per dictionary entry, then project
        # the boolean through the codes — the vectorization win.
        allowed = [passes(value) for value in self._decoded]
        return [allowed[code] for code in self._codes[lo:hi]]

    def sliced(self, lo: int) -> "DictColumn":
        return DictColumn(self._codes[lo:], self.dictionary)


class ObjectColumn:
    """Fallback: a plain list of values (may contain ``MISSING``)."""

    __slots__ = ("data", "_zone")

    def __init__(self, data: list[Any]) -> None:
        self.data = data
        self._zone: ColumnZone | None = None

    def zone(self) -> ColumnZone:
        if self._zone is None:
            self._zone = _numeric_zone(self.data)
        return self._zone

    def get(self, i: int) -> Any:
        return self.data[i]

    def values(self, lo: int, hi: int) -> Sequence[Any]:
        return [None if value is MISSING else value
                for value in self.data[lo:hi]]

    def codes(self, lo: int, hi: int) -> tuple[Sequence[int], list[Any]]:
        mapping: dict[Any, int] = {}
        out: list[int] = []
        dictionary: list[Any] = []
        append = out.append
        for value in self.data[lo:hi]:
            if value is MISSING:
                value = None
            try:
                code = mapping.get(value)
            except TypeError:  # unhashable: identity-encode
                code = None
            if code is None:
                code = len(dictionary)
                dictionary.append(value)
                try:
                    mapping[value] = code
                except TypeError:
                    pass
            append(code)
        return out, dictionary

    def mask(self, passes: Callable[[Any], bool], lo: int,
             hi: int) -> list[bool]:
        return [passes(None if value is MISSING else value)
                for value in self.data[lo:hi]]

    def sliced(self, lo: int) -> "ObjectColumn":
        return ObjectColumn(self.data[lo:])


def build_column(values: list[Any]):
    """Pick the narrowest encoding that preserves every value exactly."""
    if all(type(value) is float for value in values):
        return FloatColumn(array("d", values))
    mapping: dict[Any, int] = {}
    codes: list[int] = []
    append = codes.append
    for value in values:
        try:
            code = mapping.setdefault(value, len(mapping))
        except TypeError:  # unhashable value: no dictionary possible
            return ObjectColumn(values)
        if len(mapping) > DICT_MAX_CARDINALITY:
            return ObjectColumn(values)
        append(code)
    return DictColumn(array("H", codes), list(mapping))


class Segment:
    """An immutable, time-sorted, columnar run of rows."""

    __slots__ = ("seg_id", "times", "columns", "length")

    def __init__(self, seg_id: int, times: array,
                 columns: dict[str, Any], length: int) -> None:
        self.seg_id = seg_id
        self.times = times  # array('d'), nondecreasing
        self.columns = columns
        self.length = length

    @classmethod
    def seal(cls, seg_id: int, times: Sequence[float],
             rows: list[Row]) -> "Segment":
        """Encode ``rows`` (already time-sorted) into columns."""
        n = len(rows)
        raw: dict[str, list[Any]] = {}
        for i, row in enumerate(rows):
            for key, value in row.items():
                col = raw.get(key)
                if col is None:
                    col = raw[key] = [MISSING] * n
                col[i] = value
        columns = {key: build_column(values) for key, values in raw.items()}
        return cls(seg_id, array("d", times), columns, n)

    # -- row materialization -------------------------------------------------

    def row(self, i: int) -> Row:
        out: Row = {}
        for name, column in self.columns.items():
            value = column.get(i)
            if value is not MISSING:
                out[name] = value
        return out

    def rows(self, lo: int, hi: int) -> list[Row]:
        """Materialize rows ``[lo, hi)`` back into dicts, lazily."""
        columns = list(self.columns.items())
        out: list[Row] = []
        for i in range(lo, hi):
            row: Row = {}
            for name, column in columns:
                value = column.get(i)
                if value is not MISSING:
                    row[name] = value
            out.append(row)
        return out

    def iter_rows(self) -> Iterator[Row]:
        for i in range(self.length):
            yield self.row(i)

    # -- query helpers -------------------------------------------------------

    def values(self, name: str, lo: int, hi: int) -> Sequence[Any]:
        column = self.columns.get(name)
        if column is None:
            return [None] * (hi - lo)
        return column.values(lo, hi)

    def group_codes(self, names: Sequence[str], lo: int,
                    hi: int) -> tuple[Sequence[int], list[tuple]]:
        """Per-row combined group codes plus the group-tuple dictionary."""
        per_column = []
        for name in names:
            column = self.columns.get(name)
            if column is None:
                per_column.append(([0] * (hi - lo), [None]))
            else:
                per_column.append(column.codes(lo, hi))
        if len(per_column) == 1:
            codes, dictionary = per_column[0]
            return codes, [(value,) for value in dictionary]
        combined: dict[tuple[int, ...], int] = {}
        groups: list[tuple] = []
        out: list[int] = []
        append = out.append
        dictionaries = [dictionary for _, dictionary in per_column]
        for key in zip(*(codes for codes, _ in per_column)):
            code = combined.get(key)
            if code is None:
                code = combined[key] = len(groups)
                groups.append(tuple(dictionary[c] for dictionary, c
                                    in zip(dictionaries, key)))
            append(code)
        return out, groups

    def filter_mask(self, name: str, passes: Callable[[Any], bool],
                    lo: int, hi: int) -> list[bool]:
        column = self.columns.get(name)
        if column is None:
            return [passes(None)] * (hi - lo)
        return column.mask(passes, lo, hi)

    def zone(self, name: str) -> ColumnZone | None:
        """The column's zone map, or ``None`` when the column is absent
        from this segment (every row reads as null)."""
        column = self.columns.get(name)
        return None if column is None else column.zone()

    def sliced(self, lo: int, seg_id: int) -> "Segment":
        """A new segment holding rows ``[lo, length)`` (retention trim)."""
        columns = {name: column.sliced(lo)
                   for name, column in self.columns.items()}
        return Segment(seg_id, self.times[lo:], columns, self.length - lo)
