"""Scuba's read-time slice-and-dice query engine.

"Scuba was designed for interactive, slice-and-dice queries. It does
aggregation at query time by reading all of the raw event data"
(Section 5.2). A :class:`ScubaQuery` is a time range, optional filters,
optional group-by columns, and aggregations; every run scans the raw
rows in range and charges one CPU unit per row examined to the metrics
registry — the currency the dashboard-migration experiment compares
against Puma's write-time cost.

Queries carry a ``limit`` defaulting to 7: "Most Scuba queries have a
limit of 7: it only makes sense to visualize up to 7 lines in a chart."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ScubaError
from repro.puma.functions import get_aggregate
from repro.runtime.metrics import MetricsRegistry
from repro.scuba.table import Row, ScubaTable


@dataclass(frozen=True)
class TimeSeriesPoint:
    """One bucket of a time-series query result."""

    bucket_start: float
    group: tuple
    value: Any


@dataclass
class ScubaQuery:
    """A compiled dashboard-style query, runnable repeatedly."""

    table: ScubaTable
    start: float
    end: float
    aggregation: str = "count"
    value_column: str | None = None
    group_by: tuple[str, ...] = ()
    where: Callable[[Row], bool] | None = None
    limit: int = 7
    bucket_seconds: float | None = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def shifted(self, delta: float) -> "ScubaQuery":
        """The same query over a slid time window (dashboard refresh)."""
        return ScubaQuery(self.table, self.start + delta, self.end + delta,
                          self.aggregation, self.value_column, self.group_by,
                          self.where, self.limit, self.bucket_seconds,
                          self.metrics)

    # -- execution -------------------------------------------------------------

    def run(self) -> list[Row]:
        """Aggregate over the range; returns up to ``limit`` group rows."""
        if self.end <= self.start:
            raise ScubaError("query range is empty")
        function = get_aggregate(self.aggregation)
        states: dict[tuple, Any] = {}
        scanned = 0
        for row in self.table.rows_between(self.start, self.end):
            scanned += 1
            if self.where is not None and not self.where(row):
                continue
            group = tuple(row.get(c) for c in self.group_by)
            state = states.get(group)
            if state is None:
                state = function.create()
            value = (row.get(self.value_column)
                     if self.value_column is not None else 1)
            states[group] = function.update(state, value)
        self._charge(scanned)
        results = [
            {**{c: g for c, g in zip(self.group_by, group)},
             "value": function.result(state)}
            for group, state in states.items()
        ]
        results.sort(key=lambda r: (_sortable(r["value"]),), reverse=True)
        return results[:self.limit]

    def run_time_series(self) -> list[TimeSeriesPoint]:
        """The same aggregation bucketed by ``bucket_seconds``."""
        if self.bucket_seconds is None or self.bucket_seconds <= 0:
            raise ScubaError("time-series queries need bucket_seconds")
        function = get_aggregate(self.aggregation)
        states: dict[tuple[float, tuple], Any] = {}
        scanned = 0
        for row in self.table.rows_between(self.start, self.end):
            scanned += 1
            if self.where is not None and not self.where(row):
                continue
            time_value = float(row[self.table.time_column])
            bucket = (time_value // self.bucket_seconds) * self.bucket_seconds
            group = tuple(row.get(c) for c in self.group_by)
            key = (bucket, group)
            state = states.get(key)
            if state is None:
                state = function.create()
            value = (row.get(self.value_column)
                     if self.value_column is not None else 1)
            states[key] = function.update(state, value)
        self._charge(scanned)
        return sorted(
            (TimeSeriesPoint(bucket, group, function.result(state))
             for (bucket, group), state in states.items()),
            key=lambda p: (p.bucket_start, repr(p.group)),
        )

    def _charge(self, scanned: int) -> None:
        self.metrics.counter(f"scuba.{self.table.name}.rows_scanned").increment(
            scanned
        )
        self.metrics.counter(f"scuba.{self.table.name}.queries").increment()


def _sortable(value: Any) -> Any:
    if isinstance(value, list):
        return value[0] if value else float("-inf")
    return value if value is not None else float("-inf")
