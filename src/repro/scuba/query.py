"""Scuba's read-time slice-and-dice query engine.

"Scuba was designed for interactive, slice-and-dice queries. It does
aggregation at query time by reading all of the raw event data"
(Section 5.2). A :class:`ScubaQuery` is a time range, optional filters,
optional group-by columns, and aggregations.

Three execution engines share one semantics (property-tested identical):

- ``engine="rows"`` — the paper-faithful baseline: scan every raw row in
  range as a dict, one CPU unit per row examined. This is the currency
  the Section 5.2 dashboard-migration experiment compares against Puma's
  write-time cost.
- ``engine="columnar"`` — interpreted vectorized execution over the
  table's sealed segments: group-by runs on dictionary codes, filters
  are evaluated once per dictionary entry and projected through the code
  arrays as selection masks, and count/sum/avg/min/max fold whole column
  slices through the shared columnar kernels in
  :mod:`repro.core.kernels`. Per-segment partial aggregates and closed
  time-series buckets are monoid states, so repeated dashboard refreshes
  over ``shifted()`` windows reuse them through the table's
  :class:`~repro.scuba.cache.ScubaQueryCache` instead of rescanning.
- ``engine="compiled"`` (default) — the query *shape* is lowered once
  into an immutable :class:`~repro.scuba.compiler.ScubaPlan` (cached per
  table) whose fused per-segment programs skip the interpreter's
  per-segment re-derivation, evaluate float filters as inline
  comparators, and refute whole segments against zone maps before any
  scan. Plans produce states identical to the interpreted engine, so
  both engines share the same cached partials; queries whose shape
  cannot be lowered (opaque ``where``, unhashable filter operands) fall
  back to interpreted columnar execution transparently.

Filters come in two shapes: declarative :class:`ColumnFilter` predicates
(vectorizable, participate in the cache's query shape) and an opaque
``where`` callable (always evaluated per materialized row, and disables
caching because its identity cannot be part of a shape key).

Queries carry a ``limit`` defaulting to 7: "Most Scuba queries have a
limit of 7: it only makes sense to visualize up to 7 lines in a chart."
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.errors import ScubaError
from repro.puma.functions import (
    AggregateFunction,
    get_aggregate,
    get_columnar_kernel,
)
from repro.runtime.metrics import MetricsRegistry
from repro.scuba.compiler import ScubaPlan, generic_fold
from repro.scuba.filters import ColumnFilter  # noqa: F401  (re-export —
# ColumnFilter's historical import path; it moved to repro.scuba.filters
# so the compiler can lower predicates without a circular import)
from repro.scuba.table import Row, ScubaTable


@dataclass(frozen=True)
class TimeSeriesPoint:
    """One bucket of a time-series query result."""

    bucket_start: float
    group: tuple
    value: Any


@dataclass
class ScubaQuery:
    """A compiled dashboard-style query, runnable repeatedly."""

    table: ScubaTable
    start: float
    end: float
    aggregation: str = "count"
    value_column: str | None = None
    group_by: tuple[str, ...] = ()
    where: Callable[[Row], bool] | None = None
    limit: int = 7
    bucket_seconds: float | None = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    filters: tuple[ColumnFilter, ...] = ()
    engine: str = "compiled"  # "compiled" | "columnar" | "rows"
    use_cache: bool = True

    def shifted(self, delta: float) -> "ScubaQuery":
        """The same query over a slid time window (dashboard refresh)."""
        return replace(self, start=self.start + delta, end=self.end + delta)

    # -- execution -------------------------------------------------------------

    def run(self) -> list[Row]:
        """Aggregate over the range; returns up to ``limit`` group rows."""
        if self.end <= self.start:
            raise ScubaError("query range is empty")
        function = get_aggregate(self.aggregation)
        if self.engine == "rows":
            states = self._run_rows(function)
        else:
            states = self._run_columnar(function, self._plan())
        results = [
            {**{c: g for c, g in zip(self.group_by, group)},
             "value": function.result(state)}
            for group, state in states.items()
        ]
        # Two stable passes: group key ascending, then value descending —
        # equal-valued groups therefore order deterministically by key
        # instead of by dict insertion (i.e. ingest) order.
        results.sort(key=lambda r: tuple(_sortable(r[c])
                                         for c in self.group_by))
        results.sort(key=lambda r: _sortable(r["value"]), reverse=True)
        return results[:self.limit]

    def run_time_series(self) -> list[TimeSeriesPoint]:
        """The same aggregation bucketed by ``bucket_seconds``."""
        if self.bucket_seconds is None or self.bucket_seconds <= 0:
            raise ScubaError("time-series queries need bucket_seconds")
        function = get_aggregate(self.aggregation)
        if self.engine == "rows":
            states = self._run_rows_time_series(function)
        else:
            states = self._run_columnar_time_series(function, self._plan())
        return sorted(
            (TimeSeriesPoint(bucket, group, function.result(state))
             for (bucket, group), state in states.items()),
            key=lambda p: (p.bucket_start, repr(p.group)),
        )

    # -- the paper-faithful row-scan engine --------------------------------------

    def _row_passes(self, row: Row) -> bool:
        for column_filter in self.filters:
            if not column_filter.passes(row.get(column_filter.column)):
                return False
        return self.where is None or bool(self.where(row))

    def _run_rows(self, function: AggregateFunction) -> dict[tuple, Any]:
        states: dict[tuple, Any] = {}
        scanned = 0
        value_column = self.value_column
        for row in self.table.rows_between(self.start, self.end):
            scanned += 1
            if not self._row_passes(row):
                continue
            group = tuple(row.get(c) for c in self.group_by)
            state = states.get(group)
            if state is None:
                state = function.create()
            value = row.get(value_column) if value_column is not None else 1
            states[group] = function.update(state, value)
        self._charge(scanned)
        return states

    def _run_rows_time_series(
            self, function: AggregateFunction) -> dict[tuple, Any]:
        states: dict[tuple[float, tuple], Any] = {}
        scanned = 0
        bucket_seconds = self.bucket_seconds
        value_column = self.value_column
        time_column = self.table.time_column
        for row in self.table.rows_between(self.start, self.end):
            scanned += 1
            if not self._row_passes(row):
                continue
            time_value = float(row[time_column])
            bucket = (time_value // bucket_seconds) * bucket_seconds
            group = tuple(row.get(c) for c in self.group_by)
            key = (bucket, group)
            state = states.get(key)
            if state is None:
                state = function.create()
            value = row.get(value_column) if value_column is not None else 1
            states[key] = function.update(state, value)
        self._charge(scanned)
        return states

    # -- the vectorized columnar engine -------------------------------------------

    def _plan_shape(self) -> tuple | None:
        """Hashable identity of this query's fixed part, or None if it
        cannot be lowered to a plan (opaque ``where``, unhashable filter
        operand). Independent of ``use_cache``: plans are pure functions
        of the shape, so compiling with result-caching disabled is
        still sound — and still fast."""
        if self.where is not None:
            return None
        shape = (self.aggregation, self.value_column, self.group_by,
                 self.filters)
        try:
            hash(shape)
        except TypeError:
            return None
        return shape

    def _cache_shape(self) -> tuple | None:
        """The result-cache key: the plan shape, or None when caching
        is disabled for this query."""
        if not self.use_cache:
            return None
        return self._plan_shape()

    def _plan(self) -> ScubaPlan | None:
        """The compiled plan for this query, or None to fall back to
        interpreted columnar execution."""
        if self.engine != "compiled":
            return None
        shape = self._plan_shape()
        if shape is None:
            return None
        plan, hit = self.table.query_cache.plans.get(shape)
        prefix = f"scuba.{self.table.name}"
        if hit:
            self.metrics.counter(f"{prefix}.plan_cache.hits").increment()
        else:
            self.metrics.counter(f"{prefix}.plan_cache.misses").increment()
        return plan

    def _run_columnar(self, function: AggregateFunction,
                      plan: ScubaPlan | None = None) -> dict[tuple, Any]:
        shape = self._cache_shape()
        cache = self.table.query_cache
        totals: dict[tuple, Any] = {}
        scanned = 0
        cached_rows = 0
        hits = misses = 0
        segments_pruned = rows_pruned = 0
        for segment, lo, hi, full in self.table.segments_overlapping(
                self.start, self.end):
            if plan is not None and plan.prunes(segment):
                # The zone maps prove no row of this segment passes the
                # filters, so its partial is {}: nothing to merge, and
                # nothing worth caching (replacement = fresh seg_id).
                segments_pruned += 1
                rows_pruned += hi - lo
                continue
            if shape is not None and full:
                partial = cache.get_run_partial(shape, segment.seg_id)
                if partial is None:
                    partial = (plan.segment_states(segment, 0, segment.length)
                               if plan is not None else
                               self._segment_states(segment, 0,
                                                    segment.length, function))
                    cache.put_run_partial(shape, segment.seg_id, partial)
                    scanned += segment.length
                    misses += 1
                else:
                    cached_rows += segment.length
                    hits += 1
                _merge_states(totals, partial, function)
            else:
                partial = (plan.segment_states(segment, lo, hi)
                           if plan is not None else
                           self._segment_states(segment, lo, hi, function))
                scanned += hi - lo
                _merge_states(totals, partial, function)
        scanned += self._fold_tail(totals, function)
        self._charge(scanned, cached_rows=cached_rows, hits=hits,
                     misses=misses, segments_pruned=segments_pruned,
                     rows_pruned=rows_pruned)
        return totals

    def _fold_tail(self, totals: dict[tuple, Any],
                   function: AggregateFunction) -> int:
        """Per-row fold over the mutable tail slice; returns rows scanned."""
        rows = self.table.tail_between(self.start, self.end)
        value_column = self.value_column
        for row in rows:
            if not self._row_passes(row):
                continue
            group = tuple(row.get(c) for c in self.group_by)
            state = totals.get(group)
            if state is None:
                state = function.create()
            value = row.get(value_column) if value_column is not None else 1
            totals[group] = function.update(state, value)
        return len(rows)

    def _segment_states(self, segment, lo: int, hi: int,
                        function: AggregateFunction) -> dict[tuple, Any]:
        """Vectorized fold of one segment slice into per-group states."""
        mask: list[bool] | None = None
        for column_filter in self.filters:
            step = segment.filter_mask(column_filter.column,
                                       column_filter.passes, lo, hi)
            mask = step if mask is None else [
                a and b for a, b in zip(mask, step)]
        if self.where is not None:
            rows = segment.rows(lo, hi)
            step = [bool(self.where(row)) for row in rows]
            mask = step if mask is None else [
                a and b for a, b in zip(mask, step)]

        if self.group_by:
            codes, groups = segment.group_codes(self.group_by, lo, hi)
        else:
            codes, groups = None, [()]
        values = (segment.values(self.value_column, lo, hi)
                  if self.value_column is not None else None)
        n = hi - lo
        if mask is not None:
            if codes is not None:
                codes = [c for c, keep in zip(codes, mask) if keep]
            if values is not None:
                values = [v for v, keep in zip(values, mask) if keep]
            n = (len(codes) if codes is not None
                 else len(values) if values is not None
                 else sum(mask))

        kernel = get_columnar_kernel(self.aggregation)
        if kernel is not None:
            coded = kernel.fold(codes, values, n)
        else:
            coded = generic_fold(function, codes, values, n)
        return {groups[code]: state for code, state in coded.items()}

    def _run_columnar_time_series(
            self, function: AggregateFunction,
            plan: ScubaPlan | None = None) -> dict[tuple, Any]:
        bucket_seconds = self.bucket_seconds
        shape = self._cache_shape()
        if shape is not None:
            shape = shape + (bucket_seconds,)
        cache = self.table.query_cache
        live_ids = self.table.live_segment_ids()
        sealed_high = self.table.sealed_high()
        states: dict[tuple[float, tuple], Any] = {}
        scanned = 0
        cached_rows = 0
        hits = misses = 0
        segments_pruned = rows_pruned = 0

        bucket = (self.start // bucket_seconds) * bucket_seconds
        while bucket < self.end:
            bucket_end = bucket + bucket_seconds
            lo = max(bucket, self.start)
            hi = min(bucket_end, self.end)
            # A bucket is "closed" when it lies entirely inside both the
            # query range and the sealed region: its contents can only
            # change by segment replacement, which the seg-id stamp sees.
            closed = (shape is not None and lo == bucket and hi == bucket_end
                      and bucket_end <= sealed_high)
            if closed:
                cached = cache.get_bucket(shape, bucket, live_ids)
                if cached is not None:
                    for group, state in cached.items():
                        states[(bucket, group)] = state
                    cached_rows += sum(
                        seg_hi - seg_lo for _, seg_lo, seg_hi, _ in
                        self.table.segments_overlapping(lo, hi))
                    hits += 1
                    bucket = bucket_end
                    continue
            bucket_states: dict[tuple, Any] = {}
            seg_ids = set()
            for segment, seg_lo, seg_hi, _ in self.table.segments_overlapping(
                    lo, hi):
                # A pruned segment still stamps the bucket with its
                # seg_id: the cached "nothing from this segment" claim
                # depends on its contents, and replacement (a deep
                # insert that might add a passing row) must invalidate.
                seg_ids.add(segment.seg_id)
                if plan is not None and plan.prunes(segment):
                    segments_pruned += 1
                    rows_pruned += seg_hi - seg_lo
                    continue
                partial = (plan.segment_states(segment, seg_lo, seg_hi)
                           if plan is not None else
                           self._segment_states(segment, seg_lo, seg_hi,
                                                function))
                scanned += seg_hi - seg_lo
                _merge_states(bucket_states, partial, function)
            scanned += self._fold_tail_bucket(bucket_states, function, lo, hi)
            if closed:
                cache.put_bucket(shape, bucket, frozenset(seg_ids),
                                 bucket_states)
                misses += 1
            for group, state in bucket_states.items():
                states[(bucket, group)] = state
            bucket = bucket_end
        self._charge(scanned, cached_rows=cached_rows, hits=hits,
                     misses=misses, segments_pruned=segments_pruned,
                     rows_pruned=rows_pruned)
        return states

    def _fold_tail_bucket(self, totals: dict[tuple, Any],
                          function: AggregateFunction, start: float,
                          end: float) -> int:
        rows = self.table.tail_between(start, end)
        value_column = self.value_column
        for row in rows:
            if not self._row_passes(row):
                continue
            group = tuple(row.get(c) for c in self.group_by)
            state = totals.get(group)
            if state is None:
                state = function.create()
            value = row.get(value_column) if value_column is not None else 1
            totals[group] = function.update(state, value)
        return len(rows)

    # -- accounting ------------------------------------------------------------

    def _charge(self, scanned: int, cached_rows: int = 0, hits: int = 0,
                misses: int = 0, segments_pruned: int = 0,
                rows_pruned: int = 0) -> None:
        prefix = f"scuba.{self.table.name}"
        self.metrics.counter(f"{prefix}.rows_scanned").increment(scanned)
        self.metrics.counter(f"{prefix}.queries").increment()
        if cached_rows:
            self.metrics.counter(f"{prefix}.rows_cached").increment(
                cached_rows)
        if hits:
            self.metrics.counter(f"{prefix}.cache.hits").increment(hits)
        if misses:
            self.metrics.counter(f"{prefix}.cache.misses").increment(misses)
        if hits and (scanned or misses):
            # The signature dashboard-refresh pattern: part of the window
            # was served from cached partials, the rest scanned fresh.
            self.metrics.counter(f"{prefix}.cache.partial_reuse").increment()
        if segments_pruned:
            self.metrics.counter(f"{prefix}.segments_pruned").increment(
                segments_pruned)
        if rows_pruned:
            self.metrics.counter(f"{prefix}.rows_pruned").increment(
                rows_pruned)


def _merge_states(totals: dict[tuple, Any], partial: dict[tuple, Any],
                  function: AggregateFunction) -> None:
    """Monoid-merge ``partial`` into ``totals`` (never mutates states)."""
    for group, state in partial.items():
        existing = totals.get(group)
        totals[group] = (state if existing is None
                         else function.merge(existing, state))


# -- result ordering ----------------------------------------------------------

#: Category order for values that raise TypeError when compared directly.
_TYPE_RANKS: list[type] = [bool, int, float, str, bytes, tuple, list, dict]


class _SortKey:
    """Total order over arbitrary aggregate values.

    Comparable values (numbers with numbers, strings with strings) keep
    their natural order; ``None`` sorts below everything; a mixed-type
    comparison that raises ``TypeError`` falls back to ``(type rank,
    repr)`` so ordering stays deterministic instead of crashing — e.g. a
    ``min`` whose groups yield both strings and numbers.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def _rank(self) -> tuple[int, str]:
        value = self.value
        for index, kind in enumerate(_TYPE_RANKS):
            if isinstance(value, kind):
                return index + 1, repr(value)
        return len(_TYPE_RANKS) + 1, f"{type(value).__name__}:{value!r}"

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None:
            return b is not None
        if b is None:
            return False
        try:
            return bool(a < b)
        except TypeError:
            return self._rank() < other._rank()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        try:
            return bool(self.value == other.value)
        except TypeError:
            return False

    def __hash__(self) -> int:  # pragma: no cover - keys aren't hashed
        return hash(id(self))


def _sortable(value: Any) -> _SortKey:
    if isinstance(value, list):
        value = value[0] if value else None
    return _SortKey(value)
