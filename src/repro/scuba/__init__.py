"""Scuba: the slice-and-dice analytics store (paper Section 2.6).

Scuba ingests raw event rows (optionally sampled) and aggregates **at
query time** by scanning them — flexible but CPU-intensive, which is the
tradeoff behind the Section 5.2 dashboard migration to Puma. Queries
charge their scanned-row work to a metrics registry so the migration
experiment can compare read-time versus write-time CPU directly.

Storage is columnar (sealed time-sorted segments + a mutable row tail,
:mod:`repro.scuba.columns`), execution is vectorized with an incremental
dashboard-refresh cache (:mod:`repro.scuba.cache`); the per-row scan
engine survives as ``ScubaQuery(engine="rows")`` — the paper-faithful
cost-model baseline.
"""

from repro.scuba.cache import ScubaQueryCache
from repro.scuba.columns import Segment
from repro.scuba.ingest import ScubaIngester
from repro.scuba.query import ColumnFilter, ScubaQuery, TimeSeriesPoint
from repro.scuba.table import ScubaTable

__all__ = ["ColumnFilter", "ScubaIngester", "ScubaQuery", "ScubaQueryCache",
           "ScubaTable", "Segment", "TimeSeriesPoint"]
