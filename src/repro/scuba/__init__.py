"""Scuba: the slice-and-dice analytics store (paper Section 2.6).

Scuba ingests raw event rows (optionally sampled) and aggregates **at
query time** by scanning them — flexible but CPU-intensive, which is the
tradeoff behind the Section 5.2 dashboard migration to Puma. Queries
charge their scanned-row work to a metrics registry so the migration
experiment can compare read-time versus write-time CPU directly.
"""

from repro.scuba.ingest import ScubaIngester
from repro.scuba.query import ScubaQuery, TimeSeriesPoint
from repro.scuba.table import ScubaTable

__all__ = ["ScubaIngester", "ScubaQuery", "ScubaTable", "TimeSeriesPoint"]
