"""Declarative Scuba filter predicates.

:class:`ColumnFilter` lives in its own module (rather than in
``repro.scuba.query``, which re-exports it) so the compiled-plan layer
in :mod:`repro.scuba.compiler` can lower filters without importing the
query engine that in turn imports the compiler.

Missing-value semantics are uniform across every engine and entry
point: a null or absent value passes a filter **only** when the op is
negative (``!=`` / ``not in``) — a row that doesn't carry the column
cannot equal, exceed, or be a member of anything, but it is genuinely
*not equal* to any operand. The same rule applies whether the column is
missing from one row or absent from a whole segment, and in ``run()``
and ``run_time_series()`` alike.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ScubaError

_FILTER_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "in": lambda value, operand: value in operand,
    "not in": lambda value, operand: value not in operand,
}

#: Negative ops: the only ones a null/missing value passes.
_MISSING_PASS_OPS = frozenset({"!=", "not in"})


@dataclass(frozen=True)
class ColumnFilter:
    """A declarative predicate: ``column <op> operand``.

    Rows where the column is null or missing pass only negative ops
    (``!=`` / ``not in``); positive comparisons collapse SQL-style
    three-valued logic to false, and so does a value that is not
    comparable to the operand. Being plain data, filters hash into the
    query-shape key, so filtered dashboard queries cache — and the
    compiler can evaluate them once per dictionary entry or zone map
    instead of once per row.
    """

    column: str
    op: str
    operand: Any

    def __post_init__(self) -> None:
        if self.op not in _FILTER_OPS:
            raise ScubaError(
                f"unknown filter op {self.op!r}; "
                f"one of {sorted(_FILTER_OPS)}"
            )

    @property
    def missing_passes(self) -> bool:
        """Whether a null/absent value passes this filter."""
        return self.op in _MISSING_PASS_OPS

    def passes(self, value: Any) -> bool:
        if value is None:
            return self.op in _MISSING_PASS_OPS
        try:
            return bool(_FILTER_OPS[self.op](value, self.operand))
        except TypeError:
            return False
