"""repro: a reproduction of "Realtime Data Processing at Facebook"
(SIGMOD 2016).

The package rebuilds the paper's whole ecosystem in Python on a
deterministic simulated cluster:

- :mod:`repro.scribe` — the persistent, replayable message bus;
- :mod:`repro.puma` — SQL (PQL) stream apps with windowed aggregation;
- :mod:`repro.swift` — checkpointed at-least-once delivery to clients;
- :mod:`repro.stylus` — the procedural framework: every Table 8
  semantics combination, local- and remote-DB state, monoid processors;
- :mod:`repro.laser`, :mod:`repro.scuba`, :mod:`repro.hive` — the
  serving / analytics / warehouse stores;
- :mod:`repro.storage` — the LSM (RocksDB), HDFS, ZippyDB, and HBase
  substrates;
- :mod:`repro.core` — events, windows, watermarks, sharding, semantics,
  DAG composition, and the design-decision registries (Tables 4 & 5);
- :mod:`repro.backfill` — the same app code run over Hive via MapReduce;
- :mod:`repro.apps` — the assembled trending (Figure 3) and Chorus
  (Section 5.1) pipelines.

Quickstart::

    from repro import SimClock, ScribeStore, PumaService
    clock = SimClock()
    scribe = ScribeStore(clock=clock)
    scribe.create_category("events_stream", num_buckets=4)
    service = PumaService(scribe, clock=clock)
    app = service.deploy(PQL_SOURCE)
    ...
"""

from repro.core.dag import Dag
from repro.core.event import Event
from repro.core.semantics import (
    OutputSemantics,
    SemanticsPolicy,
    StateSemantics,
)
from repro.errors import ReproError
from repro.laser.service import LaserService, LaserTable
from repro.puma.service import PumaService
from repro.runtime.clock import SimClock, WallClock
from repro.runtime.cluster import Cluster
from repro.runtime.scheduler import Scheduler
from repro.scribe.reader import CategoryReader, ScribeReader
from repro.scribe.store import ScribeStore
from repro.scribe.writer import ScribeWriter
from repro.scuba.table import ScubaTable
from repro.stylus.engine import StylusJob, StylusTask
from repro.swift.engine import SwiftApp

__version__ = "1.0.0"

__all__ = [
    "CategoryReader",
    "Cluster",
    "Dag",
    "Event",
    "LaserService",
    "LaserTable",
    "OutputSemantics",
    "PumaService",
    "ReproError",
    "Scheduler",
    "ScribeReader",
    "ScribeStore",
    "ScribeWriter",
    "ScubaTable",
    "SemanticsPolicy",
    "SimClock",
    "StateSemantics",
    "StylusJob",
    "StylusTask",
    "SwiftApp",
    "WallClock",
    "__version__",
]
