"""Baseline systems the paper compares against.

The data-transfer decision (Section 4.2) contrasts Scribe's persistent
message bus with direct (RPC) transfer as used by MillWheel, Flink,
Spark Streaming, and Storm: "In a tightly coupled system, back pressure
is propagated upstream and the peak processing throughput is determined
by the slowest node in the DAG." :mod:`repro.baselines.rpc_engine`
implements that tightly-coupled model so the claim is measurable.
"""

from repro.baselines.rpc_engine import (
    DecoupledPipelineModel,
    PipelineResult,
    RpcPipelineModel,
    StageSpec,
)

__all__ = [
    "DecoupledPipelineModel",
    "PipelineResult",
    "RpcPipelineModel",
    "StageSpec",
]
