"""Tightly-coupled (RPC) versus decoupled (persistent bus) pipelines.

Both models run the same stage chain over the same event arrivals and
report per-stage completion times, so the Section 4.2.2 claims become
measurements:

- **RPC** (:class:`RpcPipelineModel`): stages hand events directly to
  the next stage through a bounded in-memory queue. A full queue blocks
  the upstream stage (back pressure), so the whole chain runs at the
  slowest stage's rate; a stage outage stalls everything.
- **Decoupled** (:class:`DecoupledPipelineModel`): stages read from and
  write to a persistent bus. A slow or dead stage lags on its own; every
  other stage keeps its full throughput, and a restarted stage catches
  up from where it left off.

The simulation is the standard tandem-queue recurrence with
blocking-after-service: event ``i`` departs stage ``j`` at

    d[j][i] = max(d[j-1][i], d[j][i-1], d[j+1][i - capacity]) + service_j

(the third term is the back-pressure coupling; it is dropped in the
decoupled model). Stage outages add a hold: a stage does no work inside
its outage window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class StageSpec:
    """One processing stage.

    ``service_seconds`` is the per-event processing time; ``outages`` are
    [start, end) windows during which the stage does no work (a crashed
    process before its replacement picks up).
    """

    name: str
    service_seconds: float
    outages: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.service_seconds <= 0:
            raise ConfigError(f"stage {self.name!r} needs positive service time")
        for start, end in self.outages:
            if end <= start:
                raise ConfigError(f"stage {self.name!r} has an empty outage")

    def next_available(self, when: float) -> float:
        """The earliest time >= ``when`` the stage can start work."""
        current = when
        for start, end in sorted(self.outages):
            if start <= current < end:
                current = end
        return current


@dataclass
class PipelineResult:
    """Outcome of one simulated run."""

    stage_names: list[str]
    events: int
    #: per-stage departure time of the last event
    stage_finish: dict[str, float] = field(default_factory=dict)
    #: per-stage achieved throughput (events / its own busy span)
    stage_throughput: dict[str, float] = field(default_factory=dict)
    #: departure time of every event from the final stage
    final_departures: list[float] = field(default_factory=list)

    @property
    def end_to_end_seconds(self) -> float:
        return self.final_departures[-1] if self.final_departures else 0.0

    @property
    def pipeline_throughput(self) -> float:
        """Events per second through the full chain."""
        elapsed = self.end_to_end_seconds
        return self.events / elapsed if elapsed > 0 else 0.0

    def source_drain_seconds(self) -> float:
        """When the *first* stage finished — how long the source was held."""
        return self.stage_finish[self.stage_names[0]]


def _arrivals(events: int, rate: float) -> list[float]:
    if rate <= 0:
        raise ConfigError("arrival rate must be positive")
    return [i / rate for i in range(events)]


class RpcPipelineModel:
    """Direct transfer with bounded queues and back pressure."""

    def __init__(self, stages: list[StageSpec],
                 queue_capacity: int = 100) -> None:
        if not stages:
            raise ConfigError("need at least one stage")
        if queue_capacity < 1:
            raise ConfigError("queue capacity must be >= 1")
        self.stages = stages
        self.queue_capacity = queue_capacity

    def run(self, events: int, arrival_rate: float) -> PipelineResult:
        arrivals = _arrivals(events, arrival_rate)
        num_stages = len(self.stages)
        capacity = self.queue_capacity
        # depart[j][i]: when event i leaves stage j. Two rolling rows per
        # stage would do, but the full matrix keeps the blocking term easy.
        depart = [[0.0] * events for _ in range(num_stages)]
        for i in range(events):
            for j, stage in enumerate(self.stages):
                ready = arrivals[i] if j == 0 else depart[j - 1][i]
                if i > 0:
                    ready = max(ready, depart[j][i - 1])
                start = stage.next_available(ready)
                finish = start + stage.service_seconds
                depart[j][i] = finish
            # Back pressure: event i cannot leave stage j while stage j+1
            # still holds event i - capacity. Propagate right to left.
            for j in range(num_stages - 2, -1, -1):
                if i >= capacity:
                    blocked_until = depart[j + 1][i - capacity]
                    if depart[j][i] < blocked_until:
                        depart[j][i] = blocked_until
        return _summarize(self.stages, arrivals, depart)


class DecoupledPipelineModel:
    """Persistent-bus transfer: stages never block each other.

    ``bus_delay`` models Scribe's per-hop delivery latency ("a minimum
    latency of about a second per stream").
    """

    def __init__(self, stages: list[StageSpec], bus_delay: float = 1.0) -> None:
        if not stages:
            raise ConfigError("need at least one stage")
        if bus_delay < 0:
            raise ConfigError("bus delay must be >= 0")
        self.stages = stages
        self.bus_delay = bus_delay

    def run(self, events: int, arrival_rate: float) -> PipelineResult:
        arrivals = _arrivals(events, arrival_rate)
        num_stages = len(self.stages)
        depart = [[0.0] * events for _ in range(num_stages)]
        for j, stage in enumerate(self.stages):
            previous_finish = 0.0
            for i in range(events):
                ready = (arrivals[i] if j == 0
                         else depart[j - 1][i]) + self.bus_delay
                ready = max(ready, previous_finish)
                start = stage.next_available(ready)
                finish = start + stage.service_seconds
                depart[j][i] = finish
                previous_finish = finish
        return _summarize(self.stages, arrivals, depart)


def _summarize(stages: list[StageSpec], arrivals: list[float],
               depart: list[list[float]]) -> PipelineResult:
    events = len(arrivals)
    result = PipelineResult([s.name for s in stages], events)
    for j, stage in enumerate(stages):
        finish = depart[j][-1]
        result.stage_finish[stage.name] = finish
        first_start = depart[j][0] - stage.service_seconds
        span = finish - min(first_start, arrivals[0])
        result.stage_throughput[stage.name] = events / span if span > 0 else 0.0
    result.final_departures = list(depart[-1])
    return result
