"""Sharding and resharding.

Applications parallelize by sending different Scribe buckets to different
processes (Section 2.1), and re-shard between DAG nodes by writing their
output with a different shard key (Figure 3: the Filterer shards by
dimension id, the Joiner re-shards by (event, topic) pair).

This module centralizes the key -> bucket mapping, the process -> bucket
assignment, and the planning of a reshard when the bucket count changes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import ConfigError


def shard_for_key(key: str, num_shards: int) -> int:
    """Stable hash partitioning (crc32, not PYTHONHASHSEED-sensitive)."""
    if num_shards < 1:
        raise ConfigError("num_shards must be >= 1")
    return zlib.crc32(key.encode("utf-8")) % num_shards


@dataclass(frozen=True)
class ShardAssignment:
    """Which buckets each of ``num_processes`` processes consumes.

    Buckets are dealt round-robin, so the assignment is balanced to
    within one bucket and stable for a given (buckets, processes) pair.
    """

    num_buckets: int
    num_processes: int

    def __post_init__(self) -> None:
        if self.num_buckets < 1 or self.num_processes < 1:
            raise ConfigError("buckets and processes must be >= 1")

    def buckets_for(self, process_index: int) -> list[int]:
        if not 0 <= process_index < self.num_processes:
            raise ConfigError(
                f"process index {process_index} out of range "
                f"[0, {self.num_processes})"
            )
        return [
            bucket for bucket in range(self.num_buckets)
            if bucket % self.num_processes == process_index
        ]

    def process_for(self, bucket: int) -> int:
        if not 0 <= bucket < self.num_buckets:
            raise ConfigError(f"bucket {bucket} out of range")
        return bucket % self.num_processes

    def balance(self) -> tuple[int, int]:
        """(min, max) buckets per process."""
        counts = [len(self.buckets_for(p)) for p in range(self.num_processes)]
        return min(counts), max(counts)


class Resharder:
    """Plans key movement when a category's bucket count changes.

    The paper scales by "changing the number of buckets per Scribe
    category in a configuration file" (Section 4.2.2). Because bucketing
    is modular hashing, growing the count moves a predictable fraction of
    keys; :meth:`moved_fraction` quantifies it and :meth:`plan` reports,
    for a sample of keys, which moved where — used by the scaling
    experiment and by tests.
    """

    def __init__(self, old_buckets: int, new_buckets: int) -> None:
        if old_buckets < 1 or new_buckets < 1:
            raise ConfigError("bucket counts must be >= 1")
        self.old_buckets = old_buckets
        self.new_buckets = new_buckets

    def moved(self, key: str) -> bool:
        return (shard_for_key(key, self.old_buckets)
                != shard_for_key(key, self.new_buckets))

    def plan(self, keys: list[str]) -> dict[str, tuple[int, int]]:
        """Map each moved key to its (old bucket, new bucket)."""
        moves: dict[str, tuple[int, int]] = {}
        for key in keys:
            old = shard_for_key(key, self.old_buckets)
            new = shard_for_key(key, self.new_buckets)
            if old != new:
                moves[key] = (old, new)
        return moves

    def moved_fraction(self, keys: list[str]) -> float:
        if not keys:
            return 0.0
        return sum(1 for key in keys if self.moved(key)) / len(keys)
