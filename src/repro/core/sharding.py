"""Sharding and resharding.

Applications parallelize by sending different Scribe buckets to different
processes (Section 2.1), and re-shard between DAG nodes by writing their
output with a different shard key (Figure 3: the Filterer shards by
dimension id, the Joiner re-shards by (event, topic) pair).

This module centralizes the key -> bucket mapping, the process -> bucket
assignment, and the planning of a reshard when the bucket count changes.
"""

from __future__ import annotations

import hashlib
import zlib
from bisect import bisect_right, insort
from dataclasses import dataclass

from repro.errors import ConfigError


def shard_for_key(key: str, num_shards: int) -> int:
    """Stable hash partitioning (crc32, not PYTHONHASHSEED-sensitive)."""
    if num_shards < 1:
        raise ConfigError("num_shards must be >= 1")
    return zlib.crc32(key.encode("utf-8")) % num_shards


def shards_for_keys(keys: list[str], num_shards: int) -> list[int]:
    """Batch form of :func:`shard_for_key`: one validation, one tight loop.

    The writer hot path shards every record of a batch; paying a range
    check and a function call per key is pure per-event tax, so the
    whole batch goes through a single comprehension over ``zlib.crc32``.
    """
    if num_shards < 1:
        raise ConfigError("num_shards must be >= 1")
    crc32 = zlib.crc32
    return [crc32(key.encode("utf-8")) % num_shards for key in keys]


class HashRing:
    """Consistent hashing of buckets (or keys) onto named nodes.

    Each node is hashed onto the ring at ``replicas`` virtual points;
    a key belongs to the first node point at or clockwise-after the
    key's own point. Versus modular assignment, adding or removing one
    node moves only ~1/N of the buckets — the property that makes live
    shard splits and merges cheap (only the moved buckets hand state
    off). Ring points come from blake2b, not crc32: ring *balance* is a
    direct function of point uniformity, and crc32's clustering on
    near-identical tokens (``"node#0"``, ``"node#1"`` ...) skews node
    shares by 2x even at high replica counts. blake2b is equally stable
    across processes and Python releases (no ``PYTHONHASHSEED``
    sensitivity), and assignments depend only on the node *set*, so a
    node that leaves and comes back gets its old buckets back.
    """

    def __init__(self, nodes: list[str] | tuple[str, ...] = (),
                 replicas: int = 64) -> None:
        if replicas < 1:
            raise ConfigError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: set[str] = set()
        # Sorted (point, node) pairs; ties sort by node name, so even a
        # hash collision resolves deterministically.
        self._ring: list[tuple[int, str]] = []
        for node in nodes:
            self.add_node(node)

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @staticmethod
    def _point(token: str) -> int:
        digest = hashlib.blake2b(token.encode("utf-8"),
                                 digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _points(self, node: str) -> list[tuple[int, str]]:
        return [(self._point(f"{node}#{replica}"), node)
                for replica in range(self.replicas)]

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ConfigError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for point in self._points(node):
            insort(self._ring, point)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ConfigError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        drop = set(self._points(node))
        self._ring = [point for point in self._ring if point not in drop]

    def node_for_key(self, key: str) -> str:
        if not self._ring:
            raise ConfigError("hash ring has no nodes")
        point = self._point(key)
        # First node point strictly after the key's point, wrapping.
        index = bisect_right(self._ring, (point, "￿"))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def assign_buckets(self, num_buckets: int) -> dict[int, str]:
        """Map every bucket index of a category onto its owning node."""
        if num_buckets < 1:
            raise ConfigError("num_buckets must be >= 1")
        return {bucket: self.node_for_key(f"bucket:{bucket}")
                for bucket in range(num_buckets)}


@dataclass(frozen=True)
class ShardAssignment:
    """Which buckets each of ``num_processes`` processes consumes.

    Buckets are dealt round-robin, so the assignment is balanced to
    within one bucket and stable for a given (buckets, processes) pair.
    """

    num_buckets: int
    num_processes: int

    def __post_init__(self) -> None:
        if self.num_buckets < 1 or self.num_processes < 1:
            raise ConfigError("buckets and processes must be >= 1")

    def buckets_for(self, process_index: int) -> list[int]:
        if not 0 <= process_index < self.num_processes:
            raise ConfigError(
                f"process index {process_index} out of range "
                f"[0, {self.num_processes})"
            )
        return [
            bucket for bucket in range(self.num_buckets)
            if bucket % self.num_processes == process_index
        ]

    def process_for(self, bucket: int) -> int:
        if not 0 <= bucket < self.num_buckets:
            raise ConfigError(f"bucket {bucket} out of range")
        return bucket % self.num_processes

    def balance(self) -> tuple[int, int]:
        """(min, max) buckets per process."""
        counts = [len(self.buckets_for(p)) for p in range(self.num_processes)]
        return min(counts), max(counts)


class Resharder:
    """Plans key movement when a category's bucket count changes.

    The paper scales by "changing the number of buckets per Scribe
    category in a configuration file" (Section 4.2.2). Because bucketing
    is modular hashing, growing the count moves a predictable fraction of
    keys; :meth:`moved_fraction` quantifies it and :meth:`plan` reports,
    for a sample of keys, which moved where — used by the scaling
    experiment and by tests.
    """

    def __init__(self, old_buckets: int, new_buckets: int) -> None:
        if old_buckets < 1 or new_buckets < 1:
            raise ConfigError("bucket counts must be >= 1")
        self.old_buckets = old_buckets
        self.new_buckets = new_buckets

    def moved(self, key: str) -> bool:
        return (shard_for_key(key, self.old_buckets)
                != shard_for_key(key, self.new_buckets))

    def plan(self, keys: list[str]) -> dict[str, tuple[int, int]]:
        """Map each moved key to its (old bucket, new bucket)."""
        moves: dict[str, tuple[int, int]] = {}
        for key in keys:
            old = shard_for_key(key, self.old_buckets)
            new = shard_for_key(key, self.new_buckets)
            if old != new:
                moves[key] = (old, new)
        return moves

    def moved_fraction(self, keys: list[str]) -> float:
        if not keys:
            return 0.0
        return sum(1 for key in keys if self.moved(key)) / len(keys)
