"""The event model.

Processors handle :class:`Event` objects: a required **event time** (when
the thing happened, as opposed to when the bus delivered it — the paper's
Section 2.4 requires the application writer to identify this field) plus
arbitrary named fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ProcessingError
from repro.scribe.message import Message


@dataclass(frozen=True)
class Event:
    """An immutable event: ``event_time`` plus named fields."""

    event_time: float
    fields: Mapping[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)

    def __getitem__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise ProcessingError(f"event has no field {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.fields

    def with_fields(self, **updates: Any) -> "Event":
        """Return a copy with fields added or replaced."""
        merged = dict(self.fields)
        merged.update(updates)
        return Event(self.event_time, merged)

    def to_record(self) -> dict[str, Any]:
        """Flatten into a serializable record for Scribe."""
        record = dict(self.fields)
        record["event_time"] = self.event_time
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any],
                    time_field: str = "event_time") -> "Event":
        """Build an event from a decoded record; ``time_field`` is required."""
        if time_field not in record:
            raise ProcessingError(
                f"record is missing the event-time field {time_field!r}"
            )
        fields = {k: v for k, v in record.items() if k != time_field}
        return cls(float(record[time_field]), fields)

    @classmethod
    def from_message(cls, message: Message,
                     time_field: str = "event_time") -> "Event":
        """Deserialize a Scribe message into an event."""
        return cls.from_record(message.decode(), time_field)
