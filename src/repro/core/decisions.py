"""The design-decision registries behind the paper's Tables 4 and 5.

Table 4 ("Figure 4") maps each of the five design decisions to the data
quality attributes it affects. Table 5 ("Figure 5") records the choice
each surveyed system made for each decision. Both are reproduced as
queryable data, and the table benchmarks render them row-for-row.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DesignDecision(enum.Enum):
    """The five decisions of Section 4."""

    LANGUAGE_PARADIGM = "Language paradigm"
    DATA_TRANSFER = "Data transfer"
    PROCESSING_SEMANTICS = "Processing semantics"
    STATE_SAVING_MECHANISM = "State-saving mechanism"
    REPROCESSING = "Reprocessing"


class Quality(enum.Enum):
    """The quality attributes of the introduction."""

    EASE_OF_USE = "Ease of use"
    PERFORMANCE = "Performance"
    FAULT_TOLERANCE = "Fault tolerance"
    SCALABILITY = "Scalability"
    CORRECTNESS = "Correctness"


# Figure 4: which decision affects which qualities.
DECISION_MATRIX: dict[DesignDecision, frozenset[Quality]] = {
    DesignDecision.LANGUAGE_PARADIGM: frozenset({
        Quality.EASE_OF_USE, Quality.PERFORMANCE,
    }),
    DesignDecision.DATA_TRANSFER: frozenset({
        Quality.EASE_OF_USE, Quality.PERFORMANCE,
        Quality.FAULT_TOLERANCE, Quality.SCALABILITY,
    }),
    DesignDecision.PROCESSING_SEMANTICS: frozenset({
        Quality.FAULT_TOLERANCE, Quality.CORRECTNESS,
    }),
    DesignDecision.STATE_SAVING_MECHANISM: frozenset({
        Quality.EASE_OF_USE, Quality.PERFORMANCE,
        Quality.FAULT_TOLERANCE, Quality.SCALABILITY, Quality.CORRECTNESS,
    }),
    DesignDecision.REPROCESSING: frozenset({
        Quality.EASE_OF_USE, Quality.SCALABILITY, Quality.CORRECTNESS,
    }),
}


@dataclass(frozen=True)
class SystemProfile:
    """One column of Figure 5: the choices a system made."""

    name: str
    language: str
    data_transfer: str
    processing_semantics: tuple[str, ...]
    state_saving: str
    reprocessing: str


# Figure 5, column by column.
SYSTEM_DECISIONS: dict[str, SystemProfile] = {
    profile.name: profile
    for profile in (
        SystemProfile("Puma", "SQL", "Scribe",
                      ("at least",), "remote DB", "same code"),
        SystemProfile("Stylus", "C++", "Scribe",
                      ("at least", "at most", "exactly"),
                      "local DB, remote DB", "same code"),
        SystemProfile("Swift", "Python", "Scribe",
                      ("at least",), "limited", "no batch"),
        SystemProfile("Storm", "Java", "RPC",
                      ("at least", "at most"), "", "same DSL"),
        SystemProfile("Heron", "Java", "Stream Manager",
                      ("at least", "at most"), "", "same DSL"),
        SystemProfile("Spark Streaming", "Functional", "RPC",
                      ("best effort", "exactly"), "remote DB", "same code"),
        SystemProfile("Millwheel", "C++", "RPC",
                      ("at least", "exactly"), "remote DB", "same code"),
        SystemProfile("Flink", "Functional", "RPC",
                      ("at least", "exactly"), "global snapshot", "same code"),
        SystemProfile("Samza", "Java", "Kafka",
                      ("at least",), "local DB", "no batch"),
    )
}


def decision_matrix_rows() -> list[tuple[str, list[str]]]:
    """Figure 4 as printable rows: (decision, affected qualities in order)."""
    quality_order = [Quality.EASE_OF_USE, Quality.PERFORMANCE,
                     Quality.FAULT_TOLERANCE, Quality.SCALABILITY,
                     Quality.CORRECTNESS]
    rows = []
    for decision in DesignDecision:
        affected = DECISION_MATRIX[decision]
        rows.append((
            decision.value,
            [quality.value for quality in quality_order if quality in affected],
        ))
    return rows


def system_decision_rows() -> list[tuple[str, str, str, str, str, str]]:
    """Figure 5 as printable rows, one per system, in paper column order."""
    column_order = ["Puma", "Stylus", "Swift", "Storm", "Heron",
                    "Spark Streaming", "Millwheel", "Flink", "Samza"]
    rows = []
    for name in column_order:
        profile = SYSTEM_DECISIONS[name]
        rows.append((
            profile.name,
            profile.language,
            profile.data_transfer,
            ", ".join(profile.processing_semantics),
            profile.state_saving,
            profile.reprocessing,
        ))
    return rows


def systems_using(data_transfer: str) -> list[str]:
    """Which surveyed systems chose a given data-transfer mechanism."""
    return sorted(
        profile.name for profile in SYSTEM_DECISIONS.values()
        if profile.data_transfer == data_transfer
    )
