"""Event-time low-watermark estimation.

Stylus "requires the application writer to identify the event time data
in the stream. In return, Stylus provides a function to estimate the
event time low watermark with a given confidence interval" (Section 2.4).

The estimator tracks the recent distribution of event times as they are
observed in (imperfectly ordered) arrival order. The low watermark at
confidence ``c`` is the event time ``W`` such that an estimated fraction
``c`` of events still in flight have event time at least ``W`` — i.e. a
window ending at ``W`` can be closed with roughly ``1 - c`` expected
stragglers. We compute it as the ``(1 - c)``-quantile of a sliding sample
of observed event times, clamped to be monotonically non-decreasing so
downstream window-closing logic never regresses.
"""

from __future__ import annotations

from bisect import insort
from collections import deque

from repro.errors import ConfigError


class WatermarkEstimator:
    """Quantile-based low watermark over a sliding sample of event times."""

    def __init__(self, sample_size: int = 1000) -> None:
        if sample_size < 1:
            raise ConfigError("sample_size must be >= 1")
        self.sample_size = sample_size
        self._window: deque[float] = deque()
        self._sorted: list[float] = []
        self._observed = 0
        self._last_emitted: dict[float, float] = {}

    def observe(self, event_time: float) -> None:
        """Record one event's event time, in arrival order."""
        self._window.append(event_time)
        insort(self._sorted, event_time)
        self._observed += 1
        if len(self._window) > self.sample_size:
            oldest = self._window.popleft()
            # Remove one occurrence from the sorted mirror.
            index = _index_of(self._sorted, oldest)
            del self._sorted[index]

    def observe_batch(self, event_times: list[float]) -> None:
        """Record many event times at once.

        Lands on exactly the state sequential :meth:`observe` calls
        would (the sample is the newest ``sample_size`` observations,
        whichever way they arrived), but maintains the sorted mirror
        with one sort per batch instead of an insort and an O(n)
        delete per event.
        """
        if not event_times:
            return
        window = self._window
        window.extend(event_times)
        self._observed += len(event_times)
        for _ in range(len(window) - self.sample_size):
            window.popleft()
        self._sorted = sorted(window)

    @property
    def observed(self) -> int:
        return self._observed

    def low_watermark(self, confidence: float = 0.99) -> float | None:
        """Monotone low-watermark estimate at the given confidence.

        Returns None until at least one event has been observed.
        """
        if not 0.0 < confidence <= 1.0:
            raise ConfigError("confidence must be in (0, 1]")
        if not self._sorted:
            return None
        rank = int((1.0 - confidence) * (len(self._sorted) - 1))
        estimate = self._sorted[rank]
        previous = self._last_emitted.get(confidence)
        if previous is not None and estimate < previous:
            estimate = previous
        self._last_emitted[confidence] = estimate
        return estimate

    def max_event_time(self) -> float | None:
        return self._sorted[-1] if self._sorted else None


class LatenessWatermarkEstimator:
    """Low watermark from the observed out-of-orderness distribution.

    Tracks, per arrival, how far the event time lags the maximum event
    time seen so far ("lateness"). The low watermark at confidence ``c``
    is ``max_seen - q_c(lateness)``: with probability ~``c`` a future
    event's lateness will not exceed the ``c``-quantile, so events below
    the mark are (at that confidence) done arriving. For a perfectly
    ordered stream the mark equals the newest event time — windows close
    immediately — which the quantile-of-event-times estimator above
    cannot do on short streams.
    """

    def __init__(self, sample_size: int = 1000) -> None:
        if sample_size < 1:
            raise ConfigError("sample_size must be >= 1")
        self.sample_size = sample_size
        self._window: deque[float] = deque()
        self._sorted: list[float] = []
        self._max_seen: float | None = None
        self._last_emitted: dict[float, float] = {}

    def observe(self, event_time: float) -> None:
        if self._max_seen is None or event_time > self._max_seen:
            self._max_seen = event_time
        lateness = self._max_seen - event_time
        self._window.append(lateness)
        insort(self._sorted, lateness)
        if len(self._window) > self.sample_size:
            oldest = self._window.popleft()
            del self._sorted[_index_of(self._sorted, oldest)]

    def observe_batch(self, event_times: list[float]) -> None:
        """Batched :meth:`observe`: identical final state, one sort.

        Lateness is still computed per event (it depends on the running
        maximum), but the sorted mirror is rebuilt once per batch
        instead of paying an insort and an O(n) delete per event.
        """
        if not event_times:
            return
        max_seen = self._max_seen
        window = self._window
        append = window.append
        for event_time in event_times:
            if max_seen is None or event_time > max_seen:
                max_seen = event_time
            append(max_seen - event_time)
        self._max_seen = max_seen
        for _ in range(len(window) - self.sample_size):
            window.popleft()
        self._sorted = sorted(window)

    @property
    def max_event_time(self) -> float | None:
        return self._max_seen

    def lateness_quantile(self, confidence: float) -> float:
        if not 0.0 < confidence <= 1.0:
            raise ConfigError("confidence must be in (0, 1]")
        if not self._sorted:
            return 0.0
        rank = min(len(self._sorted) - 1,
                   int(confidence * (len(self._sorted) - 1) + 0.9999))
        return self._sorted[rank]

    def low_watermark(self, confidence: float = 0.99) -> float | None:
        if self._max_seen is None:
            return None
        estimate = self._max_seen - self.lateness_quantile(confidence)
        previous = self._last_emitted.get(confidence)
        if previous is not None and estimate < previous:
            estimate = previous
        self._last_emitted[confidence] = estimate
        return estimate


def _index_of(sorted_list: list[float], value: float) -> int:
    from bisect import bisect_left

    index = bisect_left(sorted_list, value)
    if index >= len(sorted_list) or sorted_list[index] != value:
        raise ValueError(f"{value} not present in sample")
    return index
