"""Shared columnar aggregate kernels — the common lowering layer.

Single-pass, column-at-a-time implementations of the hot aggregates,
used by *both* compiled execution tiers: Puma's
:class:`~repro.puma.compiler.ExecutablePlan` folds per-group value
columns through them, and Scuba's
:class:`~repro.scuba.compiler.ScubaPlan` runs them over sealed-segment
slices. Each kernel folds one column slice into *the same monoid
states* its per-row :class:`~repro.puma.functions.AggregateFunction`
builds (property-tested identical), so kernel output merges freely with
per-row states and with cached per-segment partials — the contract that
lets Scuba's query cache mix partials produced by the interpreted and
compiled engines.

Contract: ``fold(codes, values, n)`` where ``codes`` is a per-row
group-code sequence (``None`` means "one implicit group 0"), ``values``
is the per-row value sequence with ``None`` meaning SQL NULL (``None``
means "count(*)": every row counts 1), and ``n`` is the row count.
Returns ``{group_code: state}`` with an entry for every group that had
at least one row — even if all its values were NULL — matching the
row engine, which creates a state the first time it *sees* a group.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Any


class ColumnarKernel(ABC):
    """A vectorized fold producing per-group monoid states."""

    name: str = ""

    @abstractmethod
    def fold(self, codes, values, n: int) -> dict[int, Any]:
        """Fold a column slice into ``{group_code: state}``."""


def _seen_groups(codes, n: int) -> set[int]:
    return set(codes) if codes is not None else ({0} if n else set())


class CountKernel(ColumnarKernel):
    name = "count"

    def fold(self, codes, values, n: int) -> dict[int, Any]:
        if values is None:  # count(*): every row counts
            if codes is None:
                return {0: n} if n else {}
            return dict(Counter(codes))
        if codes is None:
            count = sum(1 for value in values if value is not None)
            return {0: count} if n else {}
        states = dict.fromkeys(_seen_groups(codes, n), 0)
        for code, value in zip(codes, values):
            if value is not None:
                states[code] += 1
        return states


class SumKernel(ColumnarKernel):
    name = "sum"

    def fold(self, codes, values, n: int) -> dict[int, Any]:
        if values is None:  # sum of the literal 1 == count(*)
            return CountKernel().fold(codes, None, n)
        if codes is None:
            if not n:
                return {}
            return {0: sum(value for value in values if value is not None)}
        states = dict.fromkeys(_seen_groups(codes, n), 0)
        for code, value in zip(codes, values):
            if value is not None:
                states[code] += value
        return states


class AvgKernel(ColumnarKernel):
    name = "avg"

    def fold(self, codes, values, n: int) -> dict[int, Any]:
        if values is None:
            counts = CountKernel().fold(codes, None, n)
            return {code: [float(count), count]
                    for code, count in counts.items()}
        if codes is None:
            if not n:
                return {}
            present = [value for value in values if value is not None]
            return {0: [float(sum(present)), len(present)]}
        sums: dict[int, float] = dict.fromkeys(_seen_groups(codes, n), 0.0)
        counts: dict[int, int] = dict.fromkeys(sums, 0)
        for code, value in zip(codes, values):
            if value is not None:
                sums[code] += value
                counts[code] += 1
        return {code: [sums[code], counts[code]] for code in sums}


class _ExtremeKernel(ColumnarKernel):
    """Shared min/max fold; ``_wins(value, state)`` picks the direction."""

    @staticmethod
    @abstractmethod
    def _wins(value: Any, state: Any) -> bool:
        """True when ``value`` should replace ``state``."""

    def fold(self, codes, values, n: int) -> dict[int, Any]:
        wins = self._wins
        if values is None:  # every value is the literal 1
            return {code: 1 for code in _seen_groups(codes, n)}
        if codes is None:
            if not n:
                return {}
            state = None
            for value in values:
                if value is not None and (state is None or wins(value, state)):
                    state = value
            return {0: state}
        states: dict[int, Any] = dict.fromkeys(_seen_groups(codes, n))
        for code, value in zip(codes, values):
            if value is not None:
                state = states[code]
                if state is None or wins(value, state):
                    states[code] = value
        return states


class MinKernel(_ExtremeKernel):
    name = "min"

    @staticmethod
    def _wins(value: Any, state: Any) -> bool:
        return value < state


class MaxKernel(_ExtremeKernel):
    name = "max"

    @staticmethod
    def _wins(value: Any, state: Any) -> bool:
        return value > state


COLUMNAR_KERNELS: dict[str, ColumnarKernel] = {
    kernel.name: kernel
    for kernel in (CountKernel(), SumKernel(), AvgKernel(), MinKernel(),
                   MaxKernel())
}


def get_columnar_kernel(name: str) -> ColumnarKernel | None:
    """The vectorized kernel for ``name``, or None (caller falls back
    to the per-row monoid update loop)."""
    return COLUMNAR_KERNELS.get(name.lower())
