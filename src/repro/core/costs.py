"""Resource cost model for throughput experiments.

The paper's throughput results (Figures 9 and 12) were measured on
production C++ services; a Python reproduction cannot match the absolute
numbers, so — per the substitution rule in DESIGN.md — the benchmarks
measure a *modeled* timeline. A processor is charged per-event costs on
two resources that real machines provide concurrently:

- the **receive** resource (network/pipe I/O: reading bytes from Scribe),
- the **cpu** resource (deserialization and processing),

plus a **checkpoint synchronization** cost during which at-most-once
output processors may not emit.

:class:`ResourceTimeline` tracks each resource's busy-until time.
An *overlapping* processor (Stylus: side-effect-free work between
checkpoints, Section 4.3.2) keeps both resources busy concurrently; a
*phased* processor (the Swift implementation in Figure 9: buffer, then
checkpoint, then process) serializes them. The timelines expose total
elapsed time and per-resource utilization so benchmarks can report both
throughput and the CPU-utilization explanation the paper gives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Per-event and per-checkpoint costs, in seconds.

    Defaults are calibrated (see EXPERIMENTS.md) so the Figure 9 setup —
    2-second checkpoints, deserialization as the bottleneck — reproduces
    the paper's ~4x Stylus/Swift throughput ratio at realistic MB/s
    magnitudes; the *shape* is what we reproduce, not the constants.
    """

    receive_per_event: float = 4e-6       # reading the event off the bus
    deserialize_per_event: float = 4e-6    # side-effect-free CPU work
    process_per_event: float = 1e-6        # the stateful/side-effect part
    checkpoint_sync: float = 1.0           # waiting for the checkpoint ack
    event_bytes: int = 1024                # average serialized event size

    def __post_init__(self) -> None:
        for name in ("receive_per_event", "deserialize_per_event",
                     "process_per_event", "checkpoint_sync"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.event_bytes <= 0:
            raise ConfigError("event_bytes must be positive")

    @property
    def cpu_per_event(self) -> float:
        return self.deserialize_per_event + self.process_per_event


@dataclass
class ResourceTimeline:
    """Busy-until tracking for a set of named concurrent resources."""

    resources: dict[str, float] = field(default_factory=dict)
    busy: dict[str, float] = field(default_factory=dict)

    def charge(self, resource: str, seconds: float,
               not_before: float = 0.0) -> float:
        """Occupy ``resource`` for ``seconds``; return the finish time.

        Work starts at ``max(resource free time, not_before)``, modeling a
        dependency on another resource's output (an event cannot be
        deserialized before it has been received).
        """
        if seconds < 0:
            raise ConfigError("cannot charge negative time")
        start = max(self.resources.get(resource, 0.0), not_before)
        finish = start + seconds
        self.resources[resource] = finish
        self.busy[resource] = self.busy.get(resource, 0.0) + seconds
        return finish

    def barrier(self, *resources: str) -> float:
        """Advance every named resource to the max of their frontiers."""
        frontier = max(self.resources.get(r, 0.0) for r in resources)
        for resource in resources:
            self.resources[resource] = frontier
        return frontier

    def elapsed(self) -> float:
        """The overall makespan across all resources."""
        return max(self.resources.values(), default=0.0)

    def utilization(self, resource: str) -> float:
        """Busy fraction of ``resource`` over the makespan."""
        elapsed = self.elapsed()
        if elapsed == 0:
            return 0.0
        return self.busy.get(resource, 0.0) / elapsed
