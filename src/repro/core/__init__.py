"""Core stream-processing abstractions shared by Puma, Swift, and Stylus.

This package is the paper's primary contribution in library form: the
event model, windowing, watermark estimation, sharding, the state/output
semantics lattice (Section 4.3), the design-decision registries behind
Tables 4 and 5, the resource cost model used by the throughput
experiments, and DAG composition of heterogeneous processors over Scribe.
"""

from repro.core.costs import CostModel, ResourceTimeline
from repro.core.dag import Dag, DagNode
from repro.core.decisions import (
    DECISION_MATRIX,
    SYSTEM_DECISIONS,
    DesignDecision,
    Quality,
    decision_matrix_rows,
    system_decision_rows,
)
from repro.core.event import Event
from repro.core.semantics import (
    OutputSemantics,
    SemanticsPolicy,
    StateSemantics,
    common_combinations,
    is_common_combination,
)
from repro.core.sharding import Resharder, ShardAssignment, shard_for_key
from repro.core.watermark import WatermarkEstimator
from repro.core.windows import SlidingWindow, TumblingWindow, WindowAssigner

__all__ = [
    "CostModel",
    "DECISION_MATRIX",
    "Dag",
    "DagNode",
    "DesignDecision",
    "Event",
    "OutputSemantics",
    "Quality",
    "Resharder",
    "ResourceTimeline",
    "SemanticsPolicy",
    "ShardAssignment",
    "SlidingWindow",
    "StateSemantics",
    "SYSTEM_DECISIONS",
    "TumblingWindow",
    "WatermarkEstimator",
    "WindowAssigner",
    "common_combinations",
    "decision_matrix_rows",
    "is_common_combination",
    "shard_for_key",
    "system_decision_rows",
]
