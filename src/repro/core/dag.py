"""DAG composition of stream processors over Scribe.

"Puma, Stylus, and Swift applications can be connected through Scribe
into a complex DAG" (Section 2). A :class:`Dag` is a set of nodes, each
declaring which categories it reads and writes; the edges are *the
categories themselves*, so any engine's node can feed any other's — the
composability the paper calls out as a key win (Section 6.1).

Nodes must implement the small :class:`Pumpable` protocol: the engines in
:mod:`repro.stylus`, :mod:`repro.swift`, and :mod:`repro.puma` all do, as
do the data-store ingestion tiers (Laser, Scuba, Hive).
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.errors import DagError
from repro.runtime.scheduler import EventHandle, Scheduler


@runtime_checkable
class Pumpable(Protocol):
    """Anything that can be driven by the DAG runner."""

    name: str

    def pump(self, max_messages: int = 1000) -> int:
        """Process up to ``max_messages`` pending inputs; return count."""
        ...


class DagNode:
    """A node plus its declared category edges."""

    def __init__(self, node: Pumpable, reads: Iterable[str] = (),
                 writes: Iterable[str] = ()) -> None:
        self.node = node
        self.reads = tuple(reads)
        self.writes = tuple(writes)

    @property
    def name(self) -> str:
        return self.node.name


class Dag:
    """A named collection of nodes wired by Scribe categories."""

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self._nodes: dict[str, DagNode] = {}

    def add(self, node: Pumpable, reads: Iterable[str] = (),
            writes: Iterable[str] = ()) -> DagNode:
        """Register a node; raises :class:`DagError` on duplicates/cycles."""
        if node.name in self._nodes:
            raise DagError(f"node {node.name!r} already in DAG {self.name!r}")
        dag_node = DagNode(node, reads, writes)
        self._nodes[node.name] = dag_node
        try:
            self.topological_order()
        except DagError:
            del self._nodes[node.name]
            raise
        return dag_node

    def nodes(self) -> list[DagNode]:
        return list(self._nodes.values())

    # -- structure ---------------------------------------------------------

    def edges(self) -> list[tuple[str, str]]:
        """(producer node, consumer node) pairs via shared categories."""
        producers: dict[str, list[str]] = {}
        for dag_node in self._nodes.values():
            for category in dag_node.writes:
                producers.setdefault(category, []).append(dag_node.name)
        result = []
        for dag_node in self._nodes.values():
            for category in dag_node.reads:
                for producer in producers.get(category, []):
                    result.append((producer, dag_node.name))
        return result

    def topological_order(self) -> list[DagNode]:
        """Nodes ordered so producers come before consumers.

        Raises :class:`DagError` if the category wiring contains a cycle —
        the graphs must be acyclic ("directed acyclic graph", Section 2).
        """
        edges = self.edges()
        dependents: dict[str, list[str]] = {name: [] for name in self._nodes}
        in_degree: dict[str, int] = {name: 0 for name in self._nodes}
        for producer, consumer in edges:
            dependents[producer].append(consumer)
            in_degree[consumer] += 1
        ready = sorted(name for name, deg in in_degree.items() if deg == 0)
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for consumer in sorted(dependents[name]):
                in_degree[consumer] -= 1
                if in_degree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._nodes):
            cyclic = sorted(set(self._nodes) - set(order))
            raise DagError(f"cycle detected involving nodes {cyclic}")
        return [self._nodes[name] for name in order]

    # -- execution ------------------------------------------------------------

    def pump_once(self, max_messages: int = 1000) -> int:
        """One pass over the DAG in topological order; return work done."""
        total = 0
        for dag_node in self.topological_order():
            total += dag_node.node.pump(max_messages)
        return total

    def run_until_quiescent(self, max_rounds: int = 10_000,
                            max_messages: int = 1000) -> int:
        """Pump until nothing makes progress; return total work done.

        With a :class:`~repro.runtime.clock.SimClock` and a delivery delay
        of zero this drains all in-flight data; with a delivery delay the
        caller interleaves clock advances with calls to this method.
        """
        total = 0
        for _ in range(max_rounds):
            work = self.pump_once(max_messages)
            if work == 0:
                return total
            total += work
        raise DagError(
            f"DAG {self.name!r} still busy after {max_rounds} rounds; "
            "cycle of work or runaway producer?"
        )

    def schedule_on(self, scheduler: Scheduler, interval: float,
                    max_messages: int = 1000) -> EventHandle:
        """Drive the DAG from a scheduler: one pump pass per interval."""
        return scheduler.every(
            interval, lambda: self.pump_once(max_messages)
        )
