"""Event-time windowing.

Puma's ``events_score [5 minutes]`` clause (Figure 2) and the Scorer's
"sliding window of the event counts per topic for recent history"
(Figure 3) both reduce to assigning events to time windows by their
event time.

Windows are identified by their start time; a :class:`WindowAssigner`
maps an event time to the (one or more) windows it belongs to.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigError


def _aligned_start(event_time: float, step: float) -> float:
    """The greatest multiple of ``step`` at or before ``event_time``.

    Plain ``(t // step) * step`` mis-rounds near grid boundaries (e.g.
    ``1.0 // 0.1 == 9.0``), which would assign an event to a window that
    does not contain it; nudge onto the correct grid point explicitly.
    """
    start = math.floor(event_time / step) * step
    if start + step <= event_time:
        start += step
    elif start > event_time:
        start -= step
    return start


#: Public name for the grid alignment primitive: batch loops that only
#: need the bucket key can call this directly instead of allocating a
#: :class:`Window` per event via :meth:`TumblingWindow.window_containing`.
aligned_start = _aligned_start


@dataclass(frozen=True)
class Window:
    """A half-open event-time interval ``[start, end)``."""

    start: float
    end: float

    def contains(self, event_time: float) -> bool:
        return self.start <= event_time < self.end

    @property
    def length(self) -> float:
        return self.end - self.start


class WindowAssigner(ABC):
    """Maps an event time to the windows it falls into."""

    @abstractmethod
    def assign(self, event_time: float) -> list[Window]:
        """All windows containing ``event_time``."""

    @abstractmethod
    def window_containing(self, event_time: float) -> Window:
        """The single aligned window whose start is the bucket key."""


class TumblingWindow(WindowAssigner):
    """Fixed, non-overlapping windows of ``size`` seconds.

    This is Puma's ``[5 minutes]``: each event belongs to exactly one
    window, aligned to multiples of the size.
    """

    def __init__(self, size: float) -> None:
        if size <= 0:
            raise ConfigError("window size must be positive")
        self.size = size

    def assign(self, event_time: float) -> list[Window]:
        return [self.window_containing(event_time)]

    def window_containing(self, event_time: float) -> Window:
        start = _aligned_start(event_time, self.size)
        return Window(start, start + self.size)


class SlidingWindow(WindowAssigner):
    """Overlapping windows of ``size`` seconds sliding every ``slide``.

    Each event belongs to ``ceil(size / slide)`` windows. ``slide`` must
    divide into the window grid (windows start at multiples of slide).
    """

    def __init__(self, size: float, slide: float) -> None:
        if size <= 0 or slide <= 0:
            raise ConfigError("window size and slide must be positive")
        if slide > size:
            raise ConfigError("slide larger than size leaves gaps")
        self.size = size
        self.slide = slide

    def assign(self, event_time: float) -> list[Window]:
        # The newest window starting at or before the event.
        newest_start = _aligned_start(event_time, self.slide)
        windows = []
        start = newest_start
        while start + self.size > event_time:
            windows.append(Window(start, start + self.size))
            start -= self.slide
            if start <= newest_start - self.size:
                break
        return list(reversed(windows))

    def window_containing(self, event_time: float) -> Window:
        start = _aligned_start(event_time, self.slide)
        return Window(start, start + self.size)
