"""Processing semantics: the state x output lattice of Section 4.3.

A stream processor does three activities — process input, generate
output, save checkpoints — and *the order in which the offset, the
in-memory state, and the output are saved* determines its semantics:

====================  =========================================
State semantics       Checkpoint ordering
====================  =========================================
at-least-once         save state, then save offset
at-most-once          save offset, then save state
exactly-once          save state and offset atomically
====================  =========================================

====================  =========================================
Output semantics      Output ordering relative to the checkpoint
====================  =========================================
at-least-once         emit output, then checkpoint
at-most-once          checkpoint, then emit output
exactly-once          emit atomically with the checkpoint
====================  =========================================

Table 8 of the paper lists which combinations occur in practice;
:func:`common_combinations` reproduces it, and the Stylus engine accepts
exactly those policies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SemanticsError


class StateSemantics(enum.Enum):
    """How many times each input event may count in the state."""

    AT_LEAST_ONCE = "at-least-once"
    AT_MOST_ONCE = "at-most-once"
    EXACTLY_ONCE = "exactly-once"


class OutputSemantics(enum.Enum):
    """How many times a given output value may appear downstream."""

    AT_LEAST_ONCE = "at-least-once"
    AT_MOST_ONCE = "at-most-once"
    EXACTLY_ONCE = "exactly-once"


# Table 8: the combinations marked with an X in the paper.
_COMMON: frozenset[tuple[StateSemantics, OutputSemantics]] = frozenset({
    (StateSemantics.AT_LEAST_ONCE, OutputSemantics.AT_LEAST_ONCE),
    (StateSemantics.AT_MOST_ONCE, OutputSemantics.AT_LEAST_ONCE),
    (StateSemantics.AT_LEAST_ONCE, OutputSemantics.AT_MOST_ONCE),
    (StateSemantics.AT_MOST_ONCE, OutputSemantics.AT_MOST_ONCE),
    (StateSemantics.EXACTLY_ONCE, OutputSemantics.EXACTLY_ONCE),
})


def common_combinations() -> list[tuple[StateSemantics, OutputSemantics]]:
    """The Table 8 combinations, in a stable display order."""
    order_state = [StateSemantics.AT_LEAST_ONCE, StateSemantics.AT_MOST_ONCE,
                   StateSemantics.EXACTLY_ONCE]
    order_output = [OutputSemantics.AT_LEAST_ONCE,
                    OutputSemantics.AT_MOST_ONCE,
                    OutputSemantics.EXACTLY_ONCE]
    return [
        (state, output)
        for output in order_output
        for state in order_state
        if (state, output) in _COMMON
    ]


def is_common_combination(state: StateSemantics,
                          output: OutputSemantics) -> bool:
    return (state, output) in _COMMON


@dataclass(frozen=True)
class SemanticsPolicy:
    """A validated (state, output) semantics pair for a stateful processor.

    Exactly-once on either axis requires the other to match: mixing
    exactly-once with weaker semantics is not one of the paper's
    supported combinations (Table 8), and the engine rejects it.
    """

    state: StateSemantics
    output: OutputSemantics

    def __post_init__(self) -> None:
        if not is_common_combination(self.state, self.output):
            raise SemanticsError(
                f"unsupported combination: state={self.state.value}, "
                f"output={self.output.value} (see paper Table 8)"
            )

    @property
    def transactional(self) -> bool:
        """True if the checkpoint must be a distributed transaction."""
        return self.state == StateSemantics.EXACTLY_ONCE

    @property
    def emits_before_checkpoint(self) -> bool:
        return self.output == OutputSemantics.AT_LEAST_ONCE

    @property
    def emits_after_checkpoint(self) -> bool:
        return self.output == OutputSemantics.AT_MOST_ONCE

    @classmethod
    def at_least_once(cls) -> "SemanticsPolicy":
        """Low latency, duplicates possible (Puma's guarantee)."""
        return cls(StateSemantics.AT_LEAST_ONCE, OutputSemantics.AT_LEAST_ONCE)

    @classmethod
    def at_most_once(cls) -> "SemanticsPolicy":
        """Loss preferred over duplication (the Scuba ingest choice)."""
        return cls(StateSemantics.AT_MOST_ONCE, OutputSemantics.AT_MOST_ONCE)

    @classmethod
    def exactly_once(cls) -> "SemanticsPolicy":
        """Transactional: requires a data-store receiver, extra latency."""
        return cls(StateSemantics.EXACTLY_ONCE, OutputSemantics.EXACTLY_ONCE)

    def describe(self) -> str:
        return f"state={self.state.value}/output={self.output.value}"
