"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure. Subsystems define
narrower classes here rather than in their own modules so that the hierarchy
is visible in one place.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


# --------------------------------------------------------------------------
# Runtime / simulation
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid internal state."""


class DeterminismViolation(SimulationError):
    """Two runs of the same seeded experiment diverged.

    Raised by the determinism sanitizer (:mod:`repro.lint.sanitizer`)
    when metric snapshots, Scribe offsets, or Stylus state digests differ
    between identically seeded runs — some component is reading wall
    clock, global randomness, or unordered-collection iteration order.
    """


class ProcessCrashed(ReproError):
    """A simulated process crashed (normally injected by a failure plan)."""

    def __init__(self, process_name: str, at_time: float) -> None:
        super().__init__(f"process {process_name!r} crashed at t={at_time:.3f}")
        self.process_name = process_name
        self.at_time = at_time


# --------------------------------------------------------------------------
# Scribe message bus
# --------------------------------------------------------------------------


class ScribeError(ReproError):
    """Base class for Scribe bus failures."""


class UnknownCategory(ScribeError):
    """A reader or writer referenced a category that was never created."""


class Backpressure(ScribeError):
    """A write was refused because the bucket is out of credits.

    Raised by :class:`~repro.scribe.store.ScribeStore` when credit-based
    flow control is enabled for a category and the target bucket already
    holds ``max_outstanding`` unconsumed messages. The producer should
    back off and retry once consumers grant credits (drain the bucket).
    """

    def __init__(self, category: str, bucket: int, outstanding: int,
                 max_outstanding: int) -> None:
        super().__init__(
            f"bucket {category}[{bucket}] is out of credits: "
            f"{outstanding} outstanding >= limit {max_outstanding}"
        )
        self.category = category
        self.bucket = bucket
        self.outstanding = outstanding
        self.max_outstanding = max_outstanding


class OffsetOutOfRange(ScribeError):
    """A read targeted an offset that fell outside the retained window."""

    def __init__(self, category: str, bucket: int, offset: int,
                 first_retained: int, end: int) -> None:
        super().__init__(
            f"offset {offset} out of range for {category}[{bucket}]: "
            f"retained window is [{first_retained}, {end})"
        )
        self.category = category
        self.bucket = bucket
        self.offset = offset
        self.first_retained = first_retained
        self.end = end


# --------------------------------------------------------------------------
# Storage engines
# --------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class StoreClosed(StorageError):
    """An operation was attempted on a closed store."""


class BackupNotFound(StorageError):
    """A restore referenced a backup id that does not exist."""


class StoreUnavailable(StorageError):
    """A (simulated) remote store is temporarily unavailable."""


class TransactionAborted(StorageError):
    """A transactional commit could not be applied atomically."""


# --------------------------------------------------------------------------
# Stream processing
# --------------------------------------------------------------------------


class ProcessingError(ReproError):
    """Base class for stream-processor failures."""


class CheckpointError(ProcessingError):
    """A checkpoint could not be saved or restored."""


class SemanticsError(ProcessingError):
    """An invalid combination of state/output semantics was requested."""


class DagError(ProcessingError):
    """A processing DAG was mis-assembled (cycle, missing edge, ...)."""


# --------------------------------------------------------------------------
# Puma query language
# --------------------------------------------------------------------------


class PumaError(ReproError):
    """Base class for Puma (PQL) failures."""


class PqlSyntaxError(PumaError):
    """The PQL source text could not be parsed."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class PlanningError(PumaError):
    """A parsed PQL application could not be compiled into a plan."""


class UnknownFunction(PumaError):
    """A PQL query referenced an aggregation or UDF that is not registered."""


# --------------------------------------------------------------------------
# Data stores built on the bus
# --------------------------------------------------------------------------


class LaserError(ReproError):
    """Base class for Laser key-value serving failures."""


class ScubaError(ReproError):
    """Base class for Scuba analytics-store failures."""


class HiveError(ReproError):
    """Base class for Hive warehouse failures."""


class PartitionNotReady(HiveError):
    """A query referenced a day partition that has not landed yet."""
