"""The Puma app runtime.

A :class:`PumaApp` executes a compiled :class:`~repro.puma.planner.AppPlan`
against its input Scribe category:

- **aggregation tables** maintain per-(window, group) monoid *deltas* in
  memory — the unflushed change since the last checkpoint, starting from
  the aggregate's identity — checkpoint them to an HBase-style store by
  monoid-merging each dirty delta into its durable base (at-least-once
  by default, state rows first, then offsets — Section 4.3.2: "Puma
  guarantees at-least-once state and output semantics with checkpoints
  to HBase"), and serve pre-computed results through :meth:`query`
  (the paper's Thrift API);
- **filter tables** (no aggregates) write each passing, projected event
  to the output Scribe category named after the table, so the result
  "can then be the input to another Puma app, any other realtime stream
  processor, or a data store" (Section 2.2).

Three executors share the delta representation and are property-tested
observably identical (``tests/property/``):

- ``"compiled"`` (default): the :mod:`repro.puma.compiler` fused batch
  programs — monomorphic folds, shared value columns, columnar kernels;
- ``"batch"``: the interpreted batch path — per-row
  ``AggregateFunction.update`` dispatch over grouped chunks (the
  pre-compiler executor, kept as the benchmark baseline);
- ``"row"``: the event-at-a-time oracle.

Because in-memory state is a delta, recovery loads only offsets (the
durable base stays in HBase until queried or merged), a checkpoint
writes only the cells that actually changed, and attached Laser views
(:meth:`attach_laser_view`) are refreshed incrementally from exactly
those flushed cells.
"""

from __future__ import annotations

import json
from bisect import insort
from typing import Any, Callable

from repro import serde
from repro.core.semantics import StateSemantics
from repro.core.windows import TumblingWindow, aligned_start
from repro.errors import ConfigError, PlanningError, ProcessCrashed
from repro.serde import SerdeError
from repro.puma.compiler import (
    GLOBAL_WINDOW,
    CompiledTable,
    ExecutablePlan,
    PlanCache,
)
from repro.puma.planner import AppPlan, TablePlan
from repro.runtime.clock import Clock, WallClock
from repro.runtime.metrics import MetricsRegistry
from repro.scribe.reader import ScribeReader
from repro.scribe.store import ScribeStore
from repro.scribe.writer import ScribeWriter
from repro.storage.hbase import HBaseTable

Row = dict[str, Any]

_EXECUTORS = ("compiled", "batch", "row")


class PumaApp:  # lint: effect[output=at_least_once]
    """One Puma app process, consuming an assigned set of buckets.

    Running several instances with disjoint ``buckets`` parallelizes the
    app; their HBase row spaces are disjoint because the group key is in
    the row key, except for the Section 5.2 dashboard case — for that,
    use :meth:`partial_states` plus :func:`combine_partial_states`.
    """

    def __init__(self, plan: AppPlan, scribe: ScribeStore, hbase: HBaseTable,
                 buckets: list[int] | None = None,
                 checkpoint_every_events: int = 500,
                 retain_windows: int | None = None,
                 clock: Clock | None = None,
                 metrics: MetricsRegistry | None = None,
                 batched: bool = True,
                 executor: str | None = None,
                 plan_cache: PlanCache | None = None,
                 semantics: StateSemantics = StateSemantics.AT_LEAST_ONCE
                 ) -> None:
        self.plan = plan
        self.name = plan.name
        self.scribe = scribe
        self.hbase = hbase
        self.clock = clock if clock is not None else WallClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.checkpoint_every_events = checkpoint_every_events
        #: Execution mode. ``batched=False`` is kept as shorthand for the
        #: per-message oracle ("row"); ``executor`` wins when given.
        #: Batch modes decode the whole Scribe batch in one serde pass
        #: and run each table's program over the chunk. Observably
        #: identical to the per-message path — the property suite
        #: asserts it — but a crash raised by a predicate/projection
        #: lands at a coarser point, so crash-*scheduling* tests may
        #: force the row executor.
        if executor is None:
            executor = "compiled" if batched else "row"
        if executor not in _EXECUTORS:
            raise ConfigError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        self.executor = executor
        self.batched = executor != "row"
        #: Checkpoint ordering (Section 4.3): at-least-once is the
        #: paper's Puma guarantee; the other two are supported so the
        #: semantics lattice can be property-tested on this runtime too.
        self.checkpoint_semantics = semantics
        #: Test hook invoked between the two checkpoint phases (state
        #: flush and offset save) for the non-atomic semantics; raising
        #: ProcessCrashed here simulates a crash landing exactly between
        #: them. EXACTLY_ONCE has no such point — the two phases commit
        #: atomically (which real HBase cannot do across rows; that is
        #: why the paper's Puma stops at at-least-once).
        self.checkpoint_fault_hook: Callable[[], None] | None = None
        # Memory bound for long-running apps: keep only the newest N
        # windows per table in memory; evicted windows live in HBase and
        # are still served by query() (apps "run for months or years",
        # Section 2.2 — unbounded window state would not).
        self.retain_windows = retain_windows
        self.crashed = False

        # Every executor runs off the compiled program: the fused batch
        # path executes through it, and the interpreted paths share its
        # per-aggregate create/merge/result closures for state plumbing
        # (flush, query, views). Cached per app name; a redefinition
        # under the same name invalidates (see compiler.PlanCache).
        self.plan_cache = (plan_cache if plan_cache is not None
                           else PlanCache(metrics=self.metrics))
        self._executable: ExecutablePlan = self.plan_cache.get(plan)
        self._compiled_tables: dict[str, CompiledTable] = {
            table.name: table for table in self._executable.tables
            if table.kind == "aggregation"
        }
        # Per-message oracle specs: (alias, update, arg, extra_args)
        # resolved once per app, not per row (the ABC lookups are pure
        # per-event tax).
        self._row_specs: dict[str, tuple] = {
            table.name: tuple(
                (bound.alias, bound.function.update, bound.arg,
                 bound.extra_args)
                for bound in table.aggregates
            )
            for table in plan.tables if table.kind == "aggregation"
        }
        self._time_column = plan.time_column

        category = scribe.category(plan.scribe_category)
        if buckets is None:
            buckets = list(range(category.num_buckets))
        self.buckets = buckets
        self._readers = {
            bucket: ScribeReader(scribe, plan.scribe_category, bucket)
            for bucket in buckets
        }
        self._writers: dict[str, ScribeWriter] = {}
        for table in plan.tables:
            if table.kind == "filter":
                scribe.ensure_category(table.name)
                self._writers[table.name] = ScribeWriter(scribe, table.name)

        # (table, window_start, group_key) -> {alias: delta state}.
        # Deltas start from the identity; the durable base lives in
        # HBase and the two meet only at flush (merge) or query (merge).
        self._state: dict[tuple[str, float, tuple], dict[str, Any]] = {}
        self._dirty: set[tuple[str, float, tuple]] = set()
        # Incremental eviction index: per-table sorted window starts
        # plus the member cells of each (table, window) — so eviction
        # never re-derives (or re-sorts) anything from the full keyset.
        self._window_starts: dict[str, list[float]] = {}
        self._window_cells: dict[tuple[str, float],
                                 set[tuple[str, float, tuple]]] = {}
        # Per-table tumbling-window handles, so assigning a row to its
        # window does not allocate a TumblingWindow per row.
        self._windows: dict[str, TumblingWindow] = {}
        self._events_since_checkpoint = 0
        # (bucket, position) for the message batch currently being
        # processed: ``read_batch`` advances the reader past the whole
        # batch up front, so a mid-batch checkpoint must save the offset
        # of the last *processed* message, not the reader's read-ahead
        # position — otherwise a crash loses the tail of the batch and
        # breaks at-least-once.
        self._inflight: tuple[int, int] | None = None
        # Laser tables maintained incrementally from flushed deltas.
        self._views: dict[str, list[Any]] = {}

        # Metric handles resolved once — re-resolving through the
        # registry (plus an f-string) per event is pure per-event tax.
        registry = self.metrics
        self._events_counter = registry.counter(f"puma.{self.name}.events")
        self._poison_counter = registry.counter(f"puma.{self.name}.poison")
        self._checkpoints_counter = registry.counter(
            f"puma.{self.name}.checkpoints")
        self._evicted_counter = registry.counter(
            f"puma.{self.name}.windows_evicted")
        self._flushes_counter = registry.counter(
            f"puma.{self.name}.state_flushes")
        self._view_updates_counter = registry.counter(
            f"puma.{self.name}.view_updates")
        self._lag_gauge = registry.gauge(f"puma.{self.name}.lag")
        self._out_counters = {
            table.name: registry.counter(
                f"puma.{self.name}.{table.name}.out")
            for table in plan.tables if table.kind == "filter"
        }
        self._recover()

    # -- recovery / checkpointing (Section 4.3) ---------------------------------

    def _offset_row(self, bucket: int) -> str:
        return f"__offset__|{self.name}|{bucket:06d}"

    def _state_row(self, table: str, window_start: float,
                   group_key: tuple) -> str:
        return (f"{self.name}|{table}|{window_start:020.6f}|"
                f"{json.dumps(list(group_key), sort_keys=True)}")

    def _recover(self) -> None:
        """Load saved offsets from HBase.

        State rows deliberately stay on disk: in-memory cells are
        deltas, so a restart begins from the identity and the durable
        base is consulted lazily (query merges it in, flushes merge
        onto it). Recovery cost is therefore proportional to the bucket
        count, not to the app's entire aggregation history.
        """
        for bucket, reader in self._readers.items():
            saved = self.hbase.get_column(self._offset_row(bucket), "offset")
            if saved is not None:
                reader.seek(saved)

    def checkpoint(self) -> None:
        """Flush dirty deltas and offsets, ordered by the semantics.

        AT_LEAST_ONCE (the paper's guarantee): state first, then
        offsets — a crash between them replays input onto saved state.
        AT_MOST_ONCE: offsets first — a crash between them loses the
        unflushed deltas. EXACTLY_ONCE: both phases commit with no
        fault point between them (an atomicity real HBase cannot give
        across rows, which is why the paper's Puma does not offer it).
        """
        semantics = self.checkpoint_semantics
        if semantics is StateSemantics.AT_MOST_ONCE:
            self._checkpoint_offsets()
            self._fault_point()
            self._flush_state_rows()
        elif semantics is StateSemantics.EXACTLY_ONCE:
            self._flush_state_rows()
            self._checkpoint_offsets()
        else:
            self._flush_state_rows()
            self._fault_point()
            self._checkpoint_offsets()
        self._events_since_checkpoint = 0
        self._checkpoints_counter.increment()

    def _fault_point(self) -> None:
        hook = self.checkpoint_fault_hook
        if hook is not None:
            hook()

    def _flush_state_rows(self) -> None:
        """Merge every dirty delta into its durable HBase base.

        Only cells touched since the last flush are written; each
        in-memory delta then resets to the identity (the cell itself
        stays resident, so the retention window is unaffected).
        Attached Laser views receive exactly the flushed cells.
        """
        if not self._dirty:
            return
        flushed: dict[str, list[tuple[float, tuple, dict[str, Any]]]] = {}
        for state_key in sorted(self._dirty):
            table_name, window_start, group_key = state_key
            merged = self._merge_into_hbase(state_key)
            self._state[state_key] = self._identity_state(table_name)
            if table_name in self._views:
                flushed.setdefault(table_name, []).append(
                    (window_start, group_key, merged))
        self._flushes_counter.increment(len(self._dirty))
        self._dirty.clear()
        for table_name, cells in flushed.items():
            self._refresh_views(table_name, cells)

    def _merge_into_hbase(self, state_key: tuple[str, float, tuple]
                          ) -> dict[str, Any]:
        """Write one cell's delta merged onto its saved base; returns
        the merged (total) state."""
        table_name, window_start, group_key = state_key
        delta = self._state[state_key]
        row_key = self._state_row(table_name, window_start, group_key)
        saved = self.hbase.get(row_key)
        if saved is None:
            merged = dict(delta)
        else:
            merged = {}
            for aggregate in self._compiled_tables[table_name].aggregates:
                alias = aggregate.alias
                if alias in saved:
                    merged[alias] = aggregate.merge(saved[alias],
                                                    delta[alias])
                else:
                    merged[alias] = delta[alias]
        self.hbase.put(row_key, merged)
        return merged

    def _identity_state(self, table_name: str) -> dict[str, Any]:
        return {
            aggregate.alias: aggregate.create()
            for aggregate in self._compiled_tables[table_name].aggregates
        }

    def _checkpoint_offsets(self) -> None:
        inflight = self._inflight
        for bucket, reader in self._readers.items():
            position = reader.position
            if inflight is not None and inflight[0] == bucket:
                position = inflight[1]
            self.hbase.put(self._offset_row(bucket), {"offset": position})

    def crash(self) -> None:
        """Lose the process: in-memory state and positions are gone."""
        self.crashed = True
        self._state = {}
        self._dirty = set()
        self._window_starts = {}
        self._window_cells = {}
        self._inflight = None

    def restart(self) -> None:
        """Recover from HBase (replays uncheckpointed input: at-least-once)."""
        self._readers = {
            bucket: ScribeReader(self.scribe, self.plan.scribe_category, bucket)
            for bucket in self.buckets
        }
        self._state = {}
        self._dirty = set()
        self._window_starts = {}
        self._window_cells = {}
        self._events_since_checkpoint = 0
        self._inflight = None
        self._executable = self.plan_cache.get(self.plan)
        self._recover()
        self.crashed = False

    # -- processing ----------------------------------------------------------------

    def pump(self, max_messages: int = 1000) -> int:
        """Process up to ``max_messages`` across this app's buckets."""
        if self.crashed:
            return 0
        processed = 0
        per_message = self.executor == "row"
        try:
            for bucket, reader in self._readers.items():
                while processed < max_messages:
                    batch = reader.read_batch(
                        min(100, max_messages - processed)
                    )
                    if not batch:
                        break
                    if per_message:
                        processed += self._process_per_message(bucket, batch)
                    else:
                        processed += self._process_batch(bucket, batch)
                    self._inflight = None
        except ProcessCrashed:
            self.crash()
        self._lag_gauge.set(self.lag_messages())
        return processed

    def _process_per_message(self, bucket: int, batch) -> int:
        """The seed's event-at-a-time path (kept as the oracle)."""
        processed = 0
        for message in batch:
            self._inflight = (bucket, message.offset + 1)
            try:
                row = message.decode()
            except SerdeError:
                self._poison_counter.increment()
                processed += 1
                self._events_since_checkpoint += 1
                continue
            self._process_row(row)
            processed += 1
            self._events_since_checkpoint += 1
            if (self._events_since_checkpoint
                    >= self.checkpoint_every_events):
                self.checkpoint()
        return processed

    def _process_batch(self, bucket: int, batch) -> int:
        """Batch-at-a-time: one serde pass, one table program per chunk.

        The batch is split into chunks aligned with the checkpoint
        cadence (poison messages count toward it, exactly as in the
        per-message path), so checkpoints land at identical offsets.
        """
        decoded = serde.decode_batch(
            [message.payload for message in batch], errors="none"
        )
        index = 0
        total = len(batch)
        every = self.checkpoint_every_events
        while index < total:
            # Chunk end = the good row at which the per-message path
            # would checkpoint (poison rows count toward the cadence but
            # never trigger it themselves — they `continue` past the
            # check), or the end of the batch.
            since = self._events_since_checkpoint
            end = index
            checkpoint_after = False
            while end < total:
                good = decoded[end] is not None
                end += 1
                if good and since + (end - index) >= every:
                    checkpoint_after = True
                    break
            rows = [row for row in decoded[index:end] if row is not None]
            self._inflight = (bucket, batch[end - 1].offset + 1)
            # Poison is counted per chunk, not per read batch: a crash
            # replays whole chunks, so counting ahead of the chunk being
            # processed would double-count on recovery.
            poison = (end - index) - len(rows)
            if poison:
                self._poison_counter.increment(poison)
            if rows:
                self._process_rows(rows)
            self._events_since_checkpoint += end - index
            index = end
            if checkpoint_after:
                self.checkpoint()
        return total

    def _process_row(self, row: Row) -> None:
        self._events_counter.increment()
        for table in self.plan.tables:
            if table.predicate is not None and not table.predicate(row):
                continue
            if table.kind == "filter":
                self._emit_filtered(table, row)
            else:
                self._aggregate_row(table, row)

    def _process_rows(self, rows: list[Row]) -> None:
        """One chunk through the batch executor.

        Tables are independent, per-group fold order preserves row
        order, and evicted windows continue from their durable HBase
        base — so table-major execution is observably identical to the
        row-major per-message path.
        """
        self._events_counter.increment(len(rows))
        if self.executor == "compiled":
            for ctable in self._executable.tables:
                if ctable.kind == "filter":
                    projected = ctable.project_batch(rows)
                    if projected:
                        self._emit_projected(ctable.name, projected)
                else:
                    deltas = ctable.fold_batch(rows)
                    if deltas:
                        self._merge_deltas(ctable, deltas)
                    if self.retain_windows is not None:
                        self._evict_old_windows(ctable.name)
            return
        # Interpreted batch: the pre-compiler executor (per-row ABC
        # dispatch over grouped chunks), kept as the benchmark baseline
        # and a second equivalence point for the property suite.
        for table in self.plan.tables:
            predicate = table.predicate
            passing = (rows if predicate is None
                       else [row for row in rows if predicate(row)])
            if not passing:
                continue
            if table.kind == "filter":
                self._emit_filtered_rows(table, passing)
            else:
                self._aggregate_rows(table, passing)

    def _emit_filtered(self, table: TablePlan, row: Row) -> None:
        record = {alias: evaluator(row)
                  for alias, evaluator in table.projections}
        time_column = self._time_column
        record.setdefault(time_column, row.get(time_column))
        key = str(record.get(table.projections[0][0], ""))
        self._writers[table.name].write(record, key=key)
        self._out_counters[table.name].increment()

    def _emit_filtered_rows(self, table: TablePlan, rows: list[Row]) -> None:
        projections = table.projections
        time_column = self._time_column
        key_alias = projections[0][0]
        write = self._writers[table.name].write
        for row in rows:
            record = {alias: evaluator(row)
                      for alias, evaluator in projections}
            record.setdefault(time_column, row.get(time_column))
            write(record, key=str(record.get(key_alias, "")))
        self._out_counters[table.name].increment(len(rows))

    def _emit_projected(self, table_name: str,
                        projected: list[tuple[Row, str]]) -> None:
        write = self._writers[table_name].write
        for record, key in projected:
            write(record, key=key)
        self._out_counters[table_name].increment(len(projected))

    def _aggregate_row(self, table: TablePlan, row: Row) -> None:
        event_time = row.get(self._time_column)
        if event_time is None:
            return  # rows without an event time cannot be windowed
        window_start = self._window_start(table, float(event_time))
        table_name = table.name
        state_key = (table_name, window_start, table.group_key(row))
        group_state = self._state.get(state_key)
        if group_state is None:
            group_state = self._identity_state(table_name)
            self._state[state_key] = group_state
            self._register_window(table_name, window_start, state_key)
        for alias, update, arg, extra in self._row_specs[table_name]:
            value = 1 if arg is None else arg(row)
            group_state[alias] = update(group_state[alias], value, extra)
        self._dirty.add(state_key)
        if self.retain_windows is not None:
            self._evict_old_windows(table_name)

    def _aggregate_rows(self, table: TablePlan, rows: list[Row]) -> None:
        """Fold a chunk's rows with one state touch per (window, group).

        Row order is preserved within each group, so every aggregate's
        update sequence matches the per-message path exactly; eviction
        runs once per chunk, which is equivalent because evicted windows
        always continue from their durable HBase base.
        """
        time_column = self._time_column
        window_seconds = table.window_seconds
        group_key_of = table.group_key
        table_name = table.name
        groups: dict[tuple[float, tuple], list[Row]] = {}
        for row in rows:
            event_time = row.get(time_column)
            if event_time is None:
                continue  # rows without an event time cannot be windowed
            cell = (GLOBAL_WINDOW if window_seconds is None
                    else aligned_start(float(event_time), window_seconds),
                    group_key_of(row))
            bucket = groups.get(cell)
            if bucket is None:
                groups[cell] = [row]
            else:
                bucket.append(row)
        if not groups:
            return
        state = self._state
        dirty = self._dirty
        for (window_start, group_key), grouped in groups.items():
            state_key = (table_name, window_start, group_key)
            group_state = state.get(state_key)
            if group_state is None:
                group_state = self._identity_state(table_name)
                state[state_key] = group_state
                self._register_window(table_name, window_start, state_key)
            for bound in table.aggregates:
                update = bound.function.update
                arg = bound.arg
                extra = bound.extra_args
                acc = group_state[bound.alias]
                if arg is None:
                    for _ in grouped:
                        acc = update(acc, 1, extra)
                else:
                    for row in grouped:
                        acc = update(acc, arg(row), extra)
                group_state[bound.alias] = acc
            dirty.add(state_key)
        if self.retain_windows is not None:
            self._evict_old_windows(table_name)

    def _merge_deltas(self, ctable: CompiledTable,
                      deltas: dict[tuple[float, tuple], dict[str, Any]]
                      ) -> None:
        """Monoid-merge one chunk's compiled deltas into window state."""
        table_name = ctable.name
        state = self._state
        dirty = self._dirty
        aggregates = ctable.aggregates
        for (window_start, group_key), delta in deltas.items():
            state_key = (table_name, window_start, group_key)
            existing = state.get(state_key)
            if existing is None:
                # fold_batch built the delta dict fresh: adopt it.
                state[state_key] = delta
                self._register_window(table_name, window_start, state_key)
            else:
                for aggregate in aggregates:
                    alias = aggregate.alias
                    existing[alias] = aggregate.merge(existing[alias],
                                                      delta[alias])
            dirty.add(state_key)

    # -- window eviction ---------------------------------------------------------

    def _register_window(self, table_name: str, window_start: float,
                         state_key: tuple[str, float, tuple]) -> None:
        """Index a cell under its window (incremental eviction order)."""
        cells = self._window_cells.get((table_name, window_start))
        if cells is None:
            self._window_cells[(table_name, window_start)] = {state_key}
            insort(self._window_starts.setdefault(table_name, []),
                   window_start)
        else:
            cells.add(state_key)

    def _evict_old_windows(self, table_name: str) -> None:
        """Flush and drop in-memory windows beyond the retention count.

        The per-table sorted window list is maintained incrementally by
        :meth:`_register_window`, so this never re-sorts the state
        keyset; only still-dirty cells are written (a clean cell's
        delta is the identity — its durable base is already current).
        """
        starts = self._window_starts.get(table_name)
        if starts is None:
            return
        retain = self.retain_windows
        dirty = self._dirty
        while len(starts) > retain:
            victim_start = starts.pop(0)
            cells = self._window_cells.pop((table_name, victim_start))
            flushed: list[tuple[float, tuple, dict[str, Any]]] = []
            for state_key in sorted(cells):
                if state_key in dirty:
                    # Durable first, then drop: eviction never loses data.
                    merged = self._merge_into_hbase(state_key)
                    dirty.discard(state_key)
                    self._flushes_counter.increment()
                    if table_name in self._views:
                        flushed.append((state_key[1], state_key[2], merged))
                del self._state[state_key]
            self._evicted_counter.increment()
            if flushed:
                self._refresh_views(table_name, flushed)

    def _window_start(self, table: TablePlan, event_time: float) -> float:
        if table.window_seconds is None:
            return GLOBAL_WINDOW
        window = self._windows.get(table.name)
        if window is None:
            window = self._windows[table.name] = TumblingWindow(
                table.window_seconds)
        return window.window_containing(event_time).start

    # -- Laser-facing incremental views (Section 2.5 use case one) ---------------

    def attach_laser_view(self, table_name: str, laser_table: Any) -> None:
        """Maintain a Laser table incrementally from this app's deltas.

        Every flush (checkpoint or eviction) pushes the flushed cells'
        finalized rows — ``window_start`` plus the group columns as
        keys, aggregate results as values — into the Laser table in one
        write batch. The view is only ever touched for cells whose
        state actually changed; it is never recomputed from a full
        query. It therefore converges to the *durable* (checkpointed)
        state, exactly what a serving tier fed from checkpoints sees.
        """
        table = self.plan.table(table_name)
        if table.kind != "aggregation":
            raise PlanningError(
                f"table {table_name!r} is not an aggregation")
        ctable = self._compiled_tables[table_name]
        produced = set(ctable.group_columns) | {"window_start"}
        produced.update(aggregate.alias for aggregate in ctable.aggregates)
        missing = [column for column in laser_table.key_columns
                   if column not in produced]
        if missing:
            raise ConfigError(
                f"laser table {laser_table.name!r} keys on {missing}, "
                f"which table {table_name!r} does not produce "
                f"(columns: {sorted(produced)})"
            )
        self._views.setdefault(table_name, []).append(laser_table)

    def _refresh_views(self, table_name: str,
                       cells: list[tuple[float, tuple, dict[str, Any]]]
                       ) -> None:
        ctable = self._compiled_tables[table_name]
        group_columns = ctable.group_columns
        aggregates = ctable.aggregates
        rows: list[Row] = []
        for window_start, group_key, merged in cells:
            row: Row = {"window_start": window_start}
            for column, value in zip(group_columns, group_key):
                row[column] = value
            for aggregate in aggregates:
                row[aggregate.alias] = aggregate.result(
                    merged[aggregate.alias])
            rows.append(row)
        for laser_table in self._views[table_name]:
            laser_table.put_rows(rows)
        self._view_updates_counter.increment(len(rows))

    # -- the query API (the paper's "Thrift API") ---------------------------------------

    def query(self, table_name: str,
              window_start: float | None = None) -> list[Row]:
        """Pre-computed results for one table (optionally one window).

        Each row carries the group columns, the finalized aggregate
        values, and ``window_start``.
        """
        table = self.plan.table(table_name)
        if table.kind != "aggregation":
            raise PlanningError(f"table {table_name!r} is not an aggregation")
        ctable = self._compiled_tables[table_name]
        aggregates = ctable.aggregates
        cells: dict[tuple[float, tuple], dict[str, Any]] = {}
        # The durable base: checkpointed and evicted cells ...
        prefix = f"{self.name}|{table_name}|"
        for row_key, columns in self.hbase.scan(prefix, prefix + "￿"):
            _, _, window_text, key_json = row_key.split("|", 3)
            cells[(float(window_text), tuple(json.loads(key_json)))] = columns
        # ... and the in-memory deltas monoid-merge on top of it.
        for (name, start, group_key), delta in self._state.items():
            if name != table_name:
                continue
            saved = cells.get((start, group_key))
            if saved is None:
                cells[(start, group_key)] = delta
            else:
                cells[(start, group_key)] = {
                    aggregate.alias: (
                        aggregate.merge(saved[aggregate.alias],
                                        delta[aggregate.alias])
                        if aggregate.alias in saved
                        else delta[aggregate.alias])
                    for aggregate in aggregates
                }
        rows: list[Row] = []
        for (start, group_key), state in cells.items():
            if window_start is not None and start != window_start:
                continue
            row: Row = {"window_start": start}
            for column, value in zip(ctable.group_columns, group_key):
                row[column] = value
            for aggregate in aggregates:
                row[aggregate.alias] = aggregate.result(state[aggregate.alias])
            rows.append(row)
        rows.sort(key=lambda r: (r["window_start"],
                                 json.dumps([r[c]
                                             for c in ctable.group_columns])))
        return rows

    def query_top_k(self, table_name: str, metric: str, k: int,
                    window_start: float | None = None) -> list[Row]:
        """The K groups with the largest ``metric`` (dashboard helper)."""
        rows = self.query(table_name, window_start)

        def sort_value(row: Row) -> float:
            value = row.get(metric)
            if isinstance(value, list):  # topk() results sort by their head
                return value[0] if value else float("-inf")
            return value if value is not None else float("-inf")

        rows.sort(key=sort_value, reverse=True)
        return rows[:k]

    def windows(self, table_name: str) -> list[float]:
        """All window start times with any data (in memory or HBase)."""
        starts = {
            start for (name, start, _) in self._state if name == table_name
        }
        prefix = f"{self.name}|{table_name}|"
        for row_key, _ in self.hbase.scan(prefix, prefix + "￿"):
            starts.add(float(row_key.split("|", 3)[2]))
        return sorted(starts)

    # -- parallel-process support (Section 5.2) ---------------------------------------------

    def partial_states(self, table_name: str) -> dict[tuple, dict[str, Any]]:
        """(window, group) -> unflushed delta states for this process.

        Deltas are monoid partials, so :func:`combine_partial_states`
        merges them across shard processes exactly as before; note that
        cells flushed by a checkpoint have reset to the identity (their
        flushed portion lives in HBase).
        """
        return {
            (start, group_key): dict(state)
            for (name, start, group_key), state in self._state.items()
            if name == table_name
        }

    def lag_messages(self) -> int:
        return sum(reader.lag_messages() for reader in self._readers.values())

    # -- the autoscaler contract (Section 6.4) --------------------------------

    def input_category(self) -> str:
        return self.plan.scribe_category

    def grow_to_buckets(self) -> int:
        """Attach readers for buckets added by a category resize.

        Only whole-category apps auto-grow; an instance pinned to an
        explicit bucket subset is one shard of a manually parallelized
        deployment and must not steal its siblings' buckets.
        """
        category = self.scribe.category(self.plan.scribe_category)
        for bucket in range(len(self._readers), category.num_buckets):
            self.buckets.append(bucket)
            self._readers[bucket] = ScribeReader(
                self.scribe, self.plan.scribe_category, bucket
            )
            saved = self.hbase.get_column(self._offset_row(bucket), "offset")
            if saved is not None:
                self._readers[bucket].seek(saved)
        return len(self._readers)

    # -- shard handoff (live rebalancing) --------------------------------------

    def release_bucket(self, bucket: int) -> None:
        """Detach ``bucket`` so a sibling instance can adopt it.

        Puma state is monoid deltas over a shared HBase namespace (state
        rows are keyed by group, offset rows by bucket), so the whole
        handoff is: flush what this instance holds, drop the reader. The
        adopting instance picks up the durable offset and merges onto
        the same state rows. A crashed instance has nothing in memory to
        flush — its last checkpoint is already the durable truth.
        """
        if bucket not in self._readers:
            raise ConfigError(
                f"app {self.name!r} does not own bucket {bucket}"
            )
        if not self.crashed:
            self.checkpoint()
        self.buckets.remove(bucket)
        del self._readers[bucket]
        if self._inflight is not None and self._inflight[0] == bucket:
            self._inflight = None

    def adopt_bucket(self, bucket: int) -> int:
        """Attach ``bucket`` released by a sibling; resume at its saved
        offset. Returns the new reader count."""
        if bucket in self._readers:
            raise ConfigError(f"app {self.name!r} already owns bucket {bucket}")
        self.buckets.append(bucket)
        reader = ScribeReader(self.scribe, self.plan.scribe_category, bucket)
        saved = self.hbase.get_column(self._offset_row(bucket), "offset")
        if saved is not None:
            reader.seek(saved)
        self._readers[bucket] = reader
        return len(self._readers)

    def bucket_position(self, bucket: int) -> int:
        """The read position of an owned bucket's reader."""
        if bucket not in self._readers:
            raise ConfigError(
                f"app {self.name!r} does not own bucket {bucket}"
            )
        return self._readers[bucket].position


def combine_partial_states(table: TablePlan,
                           partials: list[dict[tuple, dict[str, Any]]]
                           ) -> dict[tuple, dict[str, Any]]:
    """Merge per-process partial aggregates into totals (Section 5.2).

    "The processes must use a different sharding key and compute partial
    aggregates. One process then combines the partial aggregates." Since
    all Puma aggregation functions are monoids, the merge is exact.
    """
    combined: dict[tuple, dict[str, Any]] = {}
    for partial in partials:
        for key, state in partial.items():
            if key not in combined:
                combined[key] = {
                    bound.alias: bound.function.create(bound.extra_args)
                    for bound in table.aggregates
                }
            for bound in table.aggregates:
                combined[key][bound.alias] = bound.function.merge(
                    combined[key][bound.alias], state[bound.alias],
                    bound.extra_args,
                )
    return combined
