"""The Puma app runtime.

A :class:`PumaApp` executes a compiled :class:`~repro.puma.planner.AppPlan`
against its input Scribe category:

- **aggregation tables** maintain per-(window, group) monoid states in
  memory, checkpoint them to an HBase-style store with at-least-once
  semantics (state rows first, then offsets — Section 4.3.2: "Puma
  guarantees at-least-once state and output semantics with checkpoints
  to HBase"), and serve pre-computed results through :meth:`query`
  (the paper's Thrift API);
- **filter tables** (no aggregates) write each passing, projected event
  to the output Scribe category named after the table, so the result
  "can then be the input to another Puma app, any other realtime stream
  processor, or a data store" (Section 2.2).
"""

from __future__ import annotations

import json
from typing import Any

from repro import serde
from repro.core.windows import TumblingWindow, aligned_start
from repro.errors import PlanningError, ProcessCrashed
from repro.serde import SerdeError
from repro.puma.planner import AppPlan, TablePlan
from repro.runtime.clock import Clock, WallClock
from repro.runtime.metrics import MetricsRegistry
from repro.scribe.reader import ScribeReader
from repro.scribe.store import ScribeStore
from repro.scribe.writer import ScribeWriter
from repro.storage.hbase import HBaseTable

Row = dict[str, Any]

#: Window key used for tables without a window clause (all-time totals).
GLOBAL_WINDOW = 0.0


class PumaApp:
    """One Puma app process, consuming an assigned set of buckets.

    Running several instances with disjoint ``buckets`` parallelizes the
    app; their HBase row spaces are disjoint because the group key is in
    the row key, except for the Section 5.2 dashboard case — for that,
    use :meth:`partial_states` plus :func:`combine_partial_states`.
    """

    def __init__(self, plan: AppPlan, scribe: ScribeStore, hbase: HBaseTable,
                 buckets: list[int] | None = None,
                 checkpoint_every_events: int = 500,
                 retain_windows: int | None = None,
                 clock: Clock | None = None,
                 metrics: MetricsRegistry | None = None,
                 batched: bool = True) -> None:
        self.plan = plan
        self.name = plan.name
        self.scribe = scribe
        self.hbase = hbase
        self.clock = clock if clock is not None else WallClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.checkpoint_every_events = checkpoint_every_events
        #: Batch-at-a-time execution (decode the whole Scribe batch in
        #: one serde pass, then run each table's filter/project/aggregate
        #: as a vectorized loop over the chunk). Observably identical to
        #: the per-message path — the property suite asserts it — but a
        #: crash raised by a predicate/projection lands at a coarser
        #: point, so crash-*scheduling* tests may force batched=False.
        self.batched = batched
        # Memory bound for long-running apps: keep only the newest N
        # windows per table in memory; evicted windows live in HBase and
        # are still served by query() (apps "run for months or years",
        # Section 2.2 — unbounded window state would not).
        self.retain_windows = retain_windows
        self.crashed = False

        category = scribe.category(plan.scribe_category)
        if buckets is None:
            buckets = list(range(category.num_buckets))
        self.buckets = buckets
        self._readers = {
            bucket: ScribeReader(scribe, plan.scribe_category, bucket)
            for bucket in buckets
        }
        self._writers: dict[str, ScribeWriter] = {}
        for table in plan.tables:
            if table.kind == "filter":
                scribe.ensure_category(table.name)
                self._writers[table.name] = ScribeWriter(scribe, table.name)

        # (table, window_start, group_key) -> {alias: aggregate state}
        self._state: dict[tuple[str, float, tuple], dict[str, Any]] = {}
        self._dirty: set[tuple[str, float, tuple]] = set()
        # Per-table tumbling-window handles, so assigning a row to its
        # window does not allocate a TumblingWindow per row.
        self._windows: dict[str, TumblingWindow] = {}
        self._events_since_checkpoint = 0

        # Metric handles resolved once — re-resolving through the
        # registry (plus an f-string) per event is pure per-event tax.
        registry = self.metrics
        self._events_counter = registry.counter(f"puma.{self.name}.events")
        self._poison_counter = registry.counter(f"puma.{self.name}.poison")
        self._checkpoints_counter = registry.counter(
            f"puma.{self.name}.checkpoints")
        self._lag_gauge = registry.gauge(f"puma.{self.name}.lag")
        self._out_counters = {
            table.name: registry.counter(
                f"puma.{self.name}.{table.name}.out")
            for table in plan.tables if table.kind == "filter"
        }
        self._recover()

    # -- recovery / checkpointing (at-least-once, Section 4.3.2) ----------------

    def _offset_row(self, bucket: int) -> str:
        return f"__offset__|{self.name}|{bucket:06d}"

    def _state_row(self, table: str, window_start: float,
                   group_key: tuple) -> str:
        return (f"{self.name}|{table}|{window_start:020.6f}|"
                f"{json.dumps(list(group_key), sort_keys=True)}")

    def _recover(self) -> None:
        """Load saved offsets and state rows from HBase."""
        for bucket, reader in self._readers.items():
            saved = self.hbase.get_column(self._offset_row(bucket), "offset")
            if saved is not None:
                reader.seek(saved)
        prefix = f"{self.name}|"
        for row_key, columns in self.hbase.scan(prefix, prefix + "￿"):
            _, table, window_text, key_json = row_key.split("|", 3)
            group_key = tuple(json.loads(key_json))
            self._state[(table, float(window_text), group_key)] = dict(columns)

    def checkpoint(self) -> None:
        """At-least-once order: dirty state rows first, then offsets."""
        for state_key in sorted(self._dirty):
            table, window_start, group_key = state_key
            self.hbase.put(
                self._state_row(table, window_start, group_key),
                dict(self._state[state_key]),
            )
        self._dirty.clear()
        for bucket, reader in self._readers.items():
            self.hbase.put(self._offset_row(bucket),
                           {"offset": reader.position})
        self._events_since_checkpoint = 0
        self._checkpoints_counter.increment()

    def crash(self) -> None:
        """Lose the process: in-memory state and positions are gone."""
        self.crashed = True
        self._state = {}
        self._dirty = set()

    def restart(self) -> None:
        """Recover from HBase (replays uncheckpointed input: at-least-once)."""
        self._readers = {
            bucket: ScribeReader(self.scribe, self.plan.scribe_category, bucket)
            for bucket in self.buckets
        }
        self._state = {}
        self._dirty = set()
        self._events_since_checkpoint = 0
        self._recover()
        self.crashed = False

    # -- processing ----------------------------------------------------------------

    def pump(self, max_messages: int = 1000) -> int:
        """Process up to ``max_messages`` across this app's buckets."""
        if self.crashed:
            return 0
        processed = 0
        batched = self.batched
        try:
            for reader in self._readers.values():
                while processed < max_messages:
                    batch = reader.read_batch(
                        min(100, max_messages - processed)
                    )
                    if not batch:
                        break
                    if batched:
                        processed += self._process_batch(batch)
                    else:
                        processed += self._process_per_message(batch)
        except ProcessCrashed:
            self.crash()
        self._lag_gauge.set(self.lag_messages())
        return processed

    def _process_per_message(self, batch) -> int:
        """The seed's event-at-a-time path (kept for equivalence tests)."""
        processed = 0
        for message in batch:
            try:
                row = message.decode()
            except SerdeError:
                self._poison_counter.increment()
                processed += 1
                self._events_since_checkpoint += 1
                continue
            self._process_row(row)
            processed += 1
            self._events_since_checkpoint += 1
            if (self._events_since_checkpoint
                    >= self.checkpoint_every_events):
                self.checkpoint()
        return processed

    def _process_batch(self, batch) -> int:
        """Batch-at-a-time: one serde pass, vectorized per-table loops.

        The batch is split into chunks aligned with the checkpoint
        cadence (poison messages count toward it, exactly as in the
        per-message path), so checkpoints land at identical offsets.
        """
        decoded = serde.decode_batch(
            [message.payload for message in batch], errors="none"
        )
        poison = sum(1 for row in decoded if row is None)
        if poison:
            self._poison_counter.increment(poison)
        index = 0
        total = len(batch)
        every = self.checkpoint_every_events
        while index < total:
            # Chunk end = the good row at which the per-message path
            # would checkpoint (poison rows count toward the cadence but
            # never trigger it themselves — they `continue` past the
            # check), or the end of the batch.
            since = self._events_since_checkpoint
            end = index
            checkpoint_after = False
            while end < total:
                good = decoded[end] is not None
                end += 1
                if good and since + (end - index) >= every:
                    checkpoint_after = True
                    break
            rows = [row for row in decoded[index:end] if row is not None]
            if rows:
                self._process_rows(rows)
            self._events_since_checkpoint += end - index
            index = end
            if checkpoint_after:
                self.checkpoint()
        return total

    def _process_row(self, row: Row) -> None:
        self._events_counter.increment()
        for table in self.plan.tables:
            if table.predicate is not None and not table.predicate(row):
                continue
            if table.kind == "filter":
                self._emit_filtered(table, row)
            else:
                self._aggregate_row(table, row)

    def _process_rows(self, rows: list[Row]) -> None:
        """Vectorized chunk processing: per-table loops over row lists.

        Tables are independent, per-group fold order preserves row
        order, and evicted windows continue from their durable HBase
        base — so table-major execution is observably identical to the
        row-major per-message path.
        """
        self._events_counter.increment(len(rows))
        for table in self.plan.tables:
            predicate = table.predicate
            passing = (rows if predicate is None
                       else [row for row in rows if predicate(row)])
            if not passing:
                continue
            if table.kind == "filter":
                self._emit_filtered_rows(table, passing)
            else:
                self._aggregate_rows(table, passing)

    def _emit_filtered(self, table: TablePlan, row: Row) -> None:
        record = {alias: evaluator(row)
                  for alias, evaluator in table.projections}
        time_column = self.plan.time_column
        record.setdefault(time_column, row.get(time_column))
        key = str(record.get(table.projections[0][0], ""))
        self._writers[table.name].write(record, key=key)
        self._out_counters[table.name].increment()

    def _emit_filtered_rows(self, table: TablePlan, rows: list[Row]) -> None:
        projections = table.projections
        time_column = self.plan.time_column
        key_alias = projections[0][0]
        write = self._writers[table.name].write
        for row in rows:
            record = {alias: evaluator(row)
                      for alias, evaluator in projections}
            record.setdefault(time_column, row.get(time_column))
            write(record, key=str(record.get(key_alias, "")))
        self._out_counters[table.name].increment(len(rows))

    def _aggregate_row(self, table: TablePlan, row: Row) -> None:
        event_time = row.get(self.plan.time_column)
        if event_time is None:
            return  # rows without an event time cannot be windowed
        window_start = self._window_start(table, float(event_time))
        group_key = table.group_key(row)
        state_key = (table.name, window_start, group_key)
        group_state = self._state.get(state_key)
        if group_state is None:
            # A previously evicted (or checkpointed-then-restarted) cell
            # must continue from its durable base, not restart from the
            # identity — otherwise late traffic into an old window would
            # erase the evicted counts.
            saved = self.hbase.get(
                self._state_row(table.name, window_start, group_key)
            )
            group_state = saved if saved is not None else {
                bound.alias: bound.function.create(bound.extra_args)
                for bound in table.aggregates
            }
            self._state[state_key] = group_state
        for bound in table.aggregates:
            value = bound.arg(row) if bound.arg is not None else 1
            group_state[bound.alias] = bound.function.update(
                group_state[bound.alias], value, bound.extra_args
            )
        self._dirty.add(state_key)
        if self.retain_windows is not None:
            self._evict_old_windows(table.name)

    def _aggregate_rows(self, table: TablePlan, rows: list[Row]) -> None:
        """Fold a chunk's rows with one state touch per (window, group).

        Row order is preserved within each group, so every aggregate's
        update sequence matches the per-message path exactly; eviction
        runs once per chunk, which is equivalent because evicted windows
        always continue from their durable HBase base.
        """
        time_column = self.plan.time_column
        window_seconds = table.window_seconds
        group_key_of = table.group_key
        groups: dict[tuple[float, tuple], list[Row]] = {}
        for row in rows:
            event_time = row.get(time_column)
            if event_time is None:
                continue  # rows without an event time cannot be windowed
            cell = (GLOBAL_WINDOW if window_seconds is None
                    else aligned_start(float(event_time), window_seconds),
                    group_key_of(row))
            bucket = groups.get(cell)
            if bucket is None:
                groups[cell] = [row]
            else:
                bucket.append(row)
        if not groups:
            return
        state = self._state
        dirty = self._dirty
        for (window_start, group_key), grouped in groups.items():
            state_key = (table.name, window_start, group_key)
            group_state = state.get(state_key)
            if group_state is None:
                saved = self.hbase.get(
                    self._state_row(table.name, window_start, group_key)
                )
                group_state = saved if saved is not None else {
                    bound.alias: bound.function.create(bound.extra_args)
                    for bound in table.aggregates
                }
                state[state_key] = group_state
            for bound in table.aggregates:
                update = bound.function.update
                arg = bound.arg
                extra = bound.extra_args
                acc = group_state[bound.alias]
                if arg is None:
                    for _ in grouped:
                        acc = update(acc, 1, extra)
                else:
                    for row in grouped:
                        acc = update(acc, arg(row), extra)
                group_state[bound.alias] = acc
            dirty.add(state_key)
        if self.retain_windows is not None:
            self._evict_old_windows(table.name)

    def _evict_old_windows(self, table_name: str) -> None:
        """Flush and drop in-memory windows beyond the retention count."""
        starts = sorted({
            start for (name, start, _) in self._state if name == table_name
        })
        while len(starts) > self.retain_windows:
            victim_start = starts.pop(0)
            victims = [key for key in self._state
                       if key[0] == table_name and key[1] == victim_start]
            for state_key in victims:
                _, window_start, group_key = state_key
                # Durable first, then drop: eviction must never lose data.
                self.hbase.put(
                    self._state_row(table_name, window_start, group_key),
                    dict(self._state[state_key]),
                )
                self._dirty.discard(state_key)
                del self._state[state_key]
            self.metrics.counter(
                f"puma.{self.name}.windows_evicted").increment()

    def _window_start(self, table: TablePlan, event_time: float) -> float:
        if table.window_seconds is None:
            return GLOBAL_WINDOW
        window = self._windows.get(table.name)
        if window is None:
            window = self._windows[table.name] = TumblingWindow(
                table.window_seconds)
        return window.window_containing(event_time).start

    # -- the query API (the paper's "Thrift API") ---------------------------------------

    def query(self, table_name: str,
              window_start: float | None = None) -> list[Row]:
        """Pre-computed results for one table (optionally one window).

        Each row carries the group columns, the finalized aggregate
        values, and ``window_start``.
        """
        table = self.plan.table(table_name)
        if table.kind != "aggregation":
            raise PlanningError(f"table {table_name!r} is not an aggregation")
        cells: dict[tuple[float, tuple], dict[str, Any]] = {}
        # Evicted windows are served from HBase ...
        prefix = f"{self.name}|{table_name}|"
        for row_key, columns in self.hbase.scan(prefix, prefix + "￿"):
            _, _, window_text, key_json = row_key.split("|", 3)
            cells[(float(window_text), tuple(json.loads(key_json)))] = columns
        # ... and in-memory state (strictly newer) overrides them.
        for (name, start, group_key), state in self._state.items():
            if name == table_name:
                cells[(start, group_key)] = state
        rows: list[Row] = []
        for (start, group_key), state in cells.items():
            if window_start is not None and start != window_start:
                continue
            row: Row = {"window_start": start}
            for (column, _), value in zip(table.group_keys, group_key):
                row[column] = value
            for bound in table.aggregates:
                row[bound.alias] = bound.function.result(
                    state[bound.alias], bound.extra_args
                )
            rows.append(row)
        rows.sort(key=lambda r: (r["window_start"],
                                 json.dumps([r[c] for c, _ in table.group_keys])))
        return rows

    def query_top_k(self, table_name: str, metric: str, k: int,
                    window_start: float | None = None) -> list[Row]:
        """The K groups with the largest ``metric`` (dashboard helper)."""
        rows = self.query(table_name, window_start)

        def sort_value(row: Row) -> float:
            value = row.get(metric)
            if isinstance(value, list):  # topk() results sort by their head
                return value[0] if value else float("-inf")
            return value if value is not None else float("-inf")

        rows.sort(key=sort_value, reverse=True)
        return rows[:k]

    def windows(self, table_name: str) -> list[float]:
        """All window start times with any data (in memory or HBase)."""
        starts = {
            start for (name, start, _) in self._state if name == table_name
        }
        prefix = f"{self.name}|{table_name}|"
        for row_key, _ in self.hbase.scan(prefix, prefix + "￿"):
            starts.add(float(row_key.split("|", 3)[2]))
        return sorted(starts)

    # -- parallel-process support (Section 5.2) ---------------------------------------------

    def partial_states(self, table_name: str) -> dict[tuple, dict[str, Any]]:
        """Raw (window, group) -> aggregate-state map for this process."""
        return {
            (start, group_key): dict(state)
            for (name, start, group_key), state in self._state.items()
            if name == table_name
        }

    def lag_messages(self) -> int:
        return sum(reader.lag_messages() for reader in self._readers.values())

    # -- the autoscaler contract (Section 6.4) --------------------------------

    def input_category(self) -> str:
        return self.plan.scribe_category

    def grow_to_buckets(self) -> int:
        """Attach readers for buckets added by a category resize.

        Only whole-category apps auto-grow; an instance pinned to an
        explicit bucket subset is one shard of a manually parallelized
        deployment and must not steal its siblings' buckets.
        """
        category = self.scribe.category(self.plan.scribe_category)
        for bucket in range(len(self._readers), category.num_buckets):
            self.buckets.append(bucket)
            self._readers[bucket] = ScribeReader(
                self.scribe, self.plan.scribe_category, bucket
            )
            saved = self.hbase.get_column(self._offset_row(bucket), "offset")
            if saved is not None:
                self._readers[bucket].seek(saved)
        return len(self._readers)


def combine_partial_states(table: TablePlan,
                           partials: list[dict[tuple, dict[str, Any]]]
                           ) -> dict[tuple, dict[str, Any]]:
    """Merge per-process partial aggregates into totals (Section 5.2).

    "The processes must use a different sharding key and compute partial
    aggregates. One process then combines the partial aggregates." Since
    all Puma aggregation functions are monoids, the merge is exact.
    """
    combined: dict[tuple, dict[str, Any]] = {}
    for partial in partials:
        for key, state in partial.items():
            if key not in combined:
                combined[key] = {
                    bound.alias: bound.function.create(bound.extra_args)
                    for bound in table.aggregates
                }
            for bound in table.aggregates:
                combined[key][bound.alias] = bound.function.merge(
                    combined[key][bound.alias], state[bound.alias],
                    bound.extra_args,
                )
    return combined
